//! # streamcache — network-aware partial caching for streaming media
//!
//! An open-source reproduction of *Accelerating Internet Streaming Media
//! Delivery using Network-Aware Partial Caching* (Shudong Jin, Azer
//! Bestavros, Arun Iyengar; ICDCS 2002).
//!
//! This umbrella crate re-exports the workspace's component crates:
//!
//! | Module | Crate | What it provides |
//! |--------|-------|------------------|
//! | [`cache`] | `sc-cache` | The paper's contribution: partial-caching allocation math, the IF/IB/PB/PB(e)/PB-V/IB-V replacement policies, the cache engine, and the offline optimal solvers. |
//! | [`workload`] | `sc-workload` | GISMO-like synthetic workload generation (Zipf popularity, Poisson arrivals, lognormal durations). |
//! | [`netmodel`] | `sc-netmodel` | Bandwidth models: NLANR-like base distribution, variability models, time series, TCP throughput, bandwidth estimators. |
//! | [`sim`] | `sc-sim` | The simulator and the per-figure experiment drivers (`fig5` … `fig13`, `table1`). |
//! | [`proxy`] | `sc-proxy` | A runnable origin + caching proxy + measuring client prototype over TCP. |
//!
//! ## Quick start
//!
//! ```
//! use streamcache::cache::policy::PartialBandwidth;
//! use streamcache::cache::{CacheEngine, ObjectKey, ObjectMeta};
//!
//! # fn main() -> Result<(), streamcache::cache::CacheError> {
//! // A one-hour, 48 KB/s stream reachable over a 20 KB/s path.
//! let movie = ObjectMeta::new(ObjectKey::new(1), 3_600.0, 48_000.0, 0.0);
//! let bandwidth = 20_000.0;
//!
//! let mut cache = CacheEngine::new(1e9, PartialBandwidth::new())?;
//! cache.on_access(&movie, bandwidth);
//!
//! // The cache stores exactly the bandwidth-deficit prefix, which removes
//! // the startup delay for subsequent viewers.
//! let cached = cache.cached_bytes(movie.key);
//! assert_eq!(cached, (48_000.0 - 20_000.0) * 3_600.0);
//! assert_eq!(movie.service_delay(bandwidth, cached), 0.0);
//! # Ok(())
//! # }
//! ```
//!
//! See the `examples/` directory for end-to-end scenarios and `crates/bench`
//! for the harness that regenerates every table and figure of the paper.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// The core caching library (`sc-cache`).
pub use sc_cache as cache;
/// Bandwidth and network models (`sc-netmodel`).
pub use sc_netmodel as netmodel;
/// The streaming proxy prototype (`sc-proxy`).
pub use sc_proxy as proxy;
/// The simulator and experiment drivers (`sc-sim`).
pub use sc_sim as sim;
/// Synthetic workload generation (`sc-workload`).
pub use sc_workload as workload;
