//! The execution layer's hard constraint: sharding the `(configuration,
//! seed)` grid across threads must be **byte-identical** to running it
//! sequentially. Every multi-run entry point — replicated runs, paired
//! comparisons, and the sweeps behind the figures — is checked with the
//! sequential executor (threads = 1) against a parallel one (threads = 4),
//! comparing every float field bit-for-bit.

use streamcache::cache::policy::PolicyKind;
use streamcache::sim::exec::{ExecConfig, ParallelExecutor};
use streamcache::sim::sweep::{
    sweep_cache_size_with, sweep_estimator_with, sweep_policies_with, sweep_zipf_alpha_with,
};
use streamcache::sim::{
    run_comparison_with, run_replicated_with, run_session_comparison_with,
    run_sessions_replicated_with, BandwidthModel, EstimatorKind, Metrics, SessionMetrics,
    SimulationConfig, VariabilityKind,
};

fn small(policy: PolicyKind, cache_fraction: f64) -> SimulationConfig {
    SimulationConfig {
        policy,
        ..SimulationConfig::small()
    }
    .with_cache_fraction(cache_fraction)
}

fn sequential() -> ParallelExecutor {
    ParallelExecutor::sequential()
}

fn parallel() -> ParallelExecutor {
    ParallelExecutor::new(ExecConfig::with_threads(4))
}

/// Bit-for-bit equality on every metric field (PartialEq would treat
/// -0.0 == 0.0 and is therefore weaker than what the golden tests need).
fn assert_bit_identical(a: &Metrics, b: &Metrics, what: &str) {
    assert_eq!(a.requests, b.requests, "{what}: requests");
    for (field, x, y) in [
        (
            "traffic_reduction_ratio",
            a.traffic_reduction_ratio,
            b.traffic_reduction_ratio,
        ),
        (
            "avg_service_delay_secs",
            a.avg_service_delay_secs,
            b.avg_service_delay_secs,
        ),
        (
            "avg_stream_quality",
            a.avg_stream_quality,
            b.avg_stream_quality,
        ),
        (
            "total_added_value",
            a.total_added_value,
            b.total_added_value,
        ),
        ("hit_ratio", a.hit_ratio, b.hit_ratio),
        ("immediate_ratio", a.immediate_ratio, b.immediate_ratio),
    ] {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{what}: {field} diverged between sequential and parallel ({x} vs {y})"
        );
    }
}

#[test]
fn replicated_runs_are_thread_count_invariant() {
    for policy in [
        PolicyKind::PartialBandwidth,
        PolicyKind::IntegralFrequency,
        PolicyKind::HybridPartialBandwidth { e: 0.5 },
    ] {
        let config = small(policy, 0.05);
        let seq = run_replicated_with(&config, 4, &sequential()).unwrap();
        let par = run_replicated_with(&config, 4, &parallel()).unwrap();
        assert_bit_identical(&seq, &par, &policy.label());
    }
}

#[test]
fn comparisons_are_thread_count_invariant_and_paired() {
    let configs = vec![
        small(PolicyKind::IntegralFrequency, 0.05),
        small(PolicyKind::PartialBandwidth, 0.05),
        small(PolicyKind::IntegralBandwidth, 0.05),
    ];
    let seq = run_comparison_with(&configs, 2, &sequential()).unwrap();
    let par = run_comparison_with(&configs, 2, &parallel()).unwrap();
    assert_eq!(seq.len(), par.len());
    for (i, (a, b)) in seq.iter().zip(&par).enumerate() {
        assert_bit_identical(a, b, &configs[i].policy.label());
    }
    // The shared-workload path must agree with generating each replicated
    // run on its own (the pre-refactor behaviour of run_comparison).
    for (config, compared) in configs.iter().zip(&seq) {
        let alone = run_replicated_with(config, 2, &sequential()).unwrap();
        assert_bit_identical(compared, &alone, "comparison vs standalone");
    }
}

#[test]
fn policy_sweep_is_thread_count_invariant() {
    let base = SimulationConfig {
        variability: VariabilityKind::MeasuredModerate,
        ..SimulationConfig::small()
    };
    let policies = [PolicyKind::PartialBandwidth, PolicyKind::IntegralBandwidth];
    let fractions = [0.02, 0.05, 0.1];
    let seq = sweep_policies_with(&base, &policies, &fractions, 2, &sequential()).unwrap();
    let par = sweep_policies_with(&base, &policies, &fractions, 2, &parallel()).unwrap();
    assert_eq!(seq.len(), par.len());
    for (s, p) in seq.iter().zip(&par) {
        assert_eq!(s.label, p.label);
        assert_eq!(s.points.len(), p.points.len());
        for (sp, pp) in s.points.iter().zip(&p.points) {
            assert_eq!(sp.x.to_bits(), pp.x.to_bits());
            assert_bit_identical(&sp.metrics, &pp.metrics, &s.label);
        }
    }
    // The flattened multi-policy grid must agree with per-policy sweeps.
    for (i, &policy) in policies.iter().enumerate() {
        let single = sweep_cache_size_with(&base, policy, &fractions, 2, &sequential()).unwrap();
        for (sp, pp) in seq[i].points.iter().zip(&single.points) {
            assert_bit_identical(&sp.metrics, &pp.metrics, "flattened vs single sweep");
        }
    }
}

#[test]
fn estimator_and_zipf_sweeps_are_thread_count_invariant() {
    let base = SimulationConfig::small();
    let seq_e = sweep_estimator_with(&base, 0.05, &[0.0, 0.5, 1.0], false, 2, &sequential());
    let par_e = sweep_estimator_with(&base, 0.05, &[0.0, 0.5, 1.0], false, 2, &parallel());
    for ((xs, ms), (xp, mp)) in seq_e.unwrap().iter().zip(&par_e.unwrap()) {
        assert_eq!(xs, xp);
        assert_bit_identical(ms, mp, "estimator sweep");
    }

    let seq_z = sweep_zipf_alpha_with(
        &base,
        PolicyKind::PartialBandwidth,
        0.05,
        &[0.6, 1.2],
        2,
        &sequential(),
    );
    let par_z = sweep_zipf_alpha_with(
        &base,
        PolicyKind::PartialBandwidth,
        0.05,
        &[0.6, 1.2],
        2,
        &parallel(),
    );
    for ((xs, ms), (xp, mp)) in seq_z.unwrap().iter().zip(&par_z.unwrap()) {
        assert_eq!(xs, xp);
        assert_bit_identical(ms, mp, "zipf sweep");
    }
}

#[test]
fn ar1_mode_is_thread_count_invariant() {
    // Time-varying bandwidth pre-generates one AR(1) series per path from
    // the run seed; sharding across threads must not change a single bit,
    // for the replicated entry point and for a flattened policy sweep.
    let mut config = small(PolicyKind::PartialBandwidth, 0.05);
    config.variability = VariabilityKind::MeasuredModerate;
    config.bandwidth_model = BandwidthModel::ar1_default();
    let seq = run_replicated_with(&config, 4, &sequential()).unwrap();
    for threads in [4, 32] {
        let par = run_replicated_with(
            &config,
            4,
            &ParallelExecutor::new(ExecConfig::with_threads(threads)),
        )
        .unwrap();
        assert_bit_identical(&seq, &par, &format!("ar1 replicated, {threads} threads"));
    }

    let base = SimulationConfig {
        variability: VariabilityKind::NlanrLike,
        bandwidth_model: BandwidthModel::ar1_default(),
        ..SimulationConfig::small()
    };
    let policies = [PolicyKind::PartialBandwidth, PolicyKind::IntegralFrequency];
    let fractions = [0.02, 0.05];
    let seq = sweep_policies_with(&base, &policies, &fractions, 2, &sequential()).unwrap();
    let par = sweep_policies_with(&base, &policies, &fractions, 2, &parallel()).unwrap();
    for (s, p) in seq.iter().zip(&par) {
        for (sp, pp) in s.points.iter().zip(&p.points) {
            assert_bit_identical(&sp.metrics, &pp.metrics, &format!("ar1 sweep {}", s.label));
        }
    }
}

#[test]
fn stateful_estimators_are_thread_count_invariant() {
    // Estimator state lives inside each worker, so even history-dependent
    // estimates cannot couple runs across threads.
    for estimator in [
        EstimatorKind::Ewma { alpha: 0.3 },
        EstimatorKind::Windowed { window: 8 },
        EstimatorKind::Probe,
    ] {
        let mut config = small(PolicyKind::PartialBandwidth, 0.05);
        config.variability = VariabilityKind::MeasuredModerate;
        config.bandwidth_model = BandwidthModel::ar1_default();
        config.estimator = estimator;
        let seq = run_replicated_with(&config, 3, &sequential()).unwrap();
        let par = run_replicated_with(&config, 3, &parallel()).unwrap();
        assert_bit_identical(&seq, &par, estimator.label());
    }
}

/// Session-mode analogue of [`assert_bit_identical`]: every float field of
/// the time-weighted metrics, including each egress bin, bit-for-bit.
fn assert_session_bit_identical(a: &SessionMetrics, b: &SessionMetrics, what: &str) {
    assert_eq!(a.sessions, b.sessions, "{what}: sessions");
    assert_eq!(
        a.peak_concurrent_viewers, b.peak_concurrent_viewers,
        "{what}: peak viewers"
    );
    for (field, x, y) in [
        ("viewer_seconds", a.viewer_seconds, b.viewer_seconds),
        (
            "avg_concurrent_viewers",
            a.avg_concurrent_viewers,
            b.avg_concurrent_viewers,
        ),
        (
            "rebuffer_probability",
            a.rebuffer_probability,
            b.rebuffer_probability,
        ),
        (
            "avg_rebuffer_secs",
            a.avg_rebuffer_secs,
            b.avg_rebuffer_secs,
        ),
        (
            "traffic_reduction_ratio",
            a.traffic_reduction_ratio,
            b.traffic_reduction_ratio,
        ),
        (
            "origin_bytes_total",
            a.origin_bytes_total,
            b.origin_bytes_total,
        ),
        ("horizon_secs", a.horizon_secs, b.horizon_secs),
    ] {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{what}: {field} diverged between sequential and parallel ({x} vs {y})"
        );
    }
    assert_eq!(
        a.egress_bins_bytes.len(),
        b.egress_bins_bytes.len(),
        "{what}: egress bin count"
    );
    for (i, (x, y)) in a
        .egress_bins_bytes
        .iter()
        .zip(&b.egress_bins_bytes)
        .enumerate()
    {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{what}: egress bin {i} diverged ({x} vs {y})"
        );
    }
}

#[test]
fn session_mode_is_thread_count_invariant() {
    // The session event core rides the same grid engine as the per-request
    // mode; its time-weighted metrics must be byte-identical at any thread
    // count, for IID and AR(1) bandwidth alike.
    let mut config = small(PolicyKind::PartialBandwidth, 0.05);
    config.variability = VariabilityKind::MeasuredModerate;
    let seq = run_sessions_replicated_with(&config, 3, &sequential()).unwrap();
    for threads in [4, 32] {
        let par = run_sessions_replicated_with(
            &config,
            3,
            &ParallelExecutor::new(ExecConfig::with_threads(threads)),
        )
        .unwrap();
        assert_session_bit_identical(
            &seq,
            &par,
            &format!("session replicated, {threads} threads"),
        );
    }

    let mut ar1 = small(PolicyKind::IntegralBandwidth, 0.05);
    ar1.variability = VariabilityKind::NlanrLike;
    ar1.bandwidth_model = BandwidthModel::ar1_default();
    let seq = run_sessions_replicated_with(&ar1, 2, &sequential()).unwrap();
    let par = run_sessions_replicated_with(&ar1, 2, &parallel()).unwrap();
    assert_session_bit_identical(&seq, &par, "session ar1 replicated");
}

#[test]
fn session_comparisons_are_thread_count_invariant_and_paired() {
    let configs = vec![
        small(PolicyKind::PartialBandwidth, 0.05),
        small(PolicyKind::IntegralBandwidth, 0.05),
        small(PolicyKind::Lru, 0.05),
    ];
    let seq = run_session_comparison_with(&configs, 2, &sequential()).unwrap();
    let par = run_session_comparison_with(&configs, 2, &parallel()).unwrap();
    assert_eq!(seq.len(), par.len());
    for (i, (a, b)) in seq.iter().zip(&par).enumerate() {
        assert_session_bit_identical(a, b, &configs[i].policy.label());
    }
    // Paired workloads: the comparison must agree bit-for-bit with running
    // each configuration's replications on their own.
    for (config, compared) in configs.iter().zip(&seq) {
        let alone = run_sessions_replicated_with(config, 2, &sequential()).unwrap();
        assert_session_bit_identical(compared, &alone, "session comparison vs standalone");
    }
}

#[test]
fn oversubscribed_executor_is_still_deterministic() {
    // More threads than work items, and a thread count far above the
    // machine's parallelism, must not change a single bit.
    let config = small(PolicyKind::PartialBandwidth, 0.05);
    let seq = run_replicated_with(&config, 2, &sequential()).unwrap();
    let over = run_replicated_with(
        &config,
        2,
        &ParallelExecutor::new(ExecConfig::with_threads(32)),
    )
    .unwrap();
    assert_bit_identical(&seq, &over, "oversubscribed");
}
