//! The regression floor for every future scaling/perf PR:
//!
//! * seeded determinism — identical configurations produce byte-identical
//!   metrics, different seeds produce different metrics;
//! * golden metrics — a fixed small scenario is asserted against
//!   checked-in values, so any behavioural change to the workload
//!   generator, bandwidth models, cache engine or simulator loop shows up
//!   as a diff here (update the constants deliberately, never casually);
//! * cross-policy sanity — the offline optimal allocation dominates every
//!   online policy, and PB beats the network-oblivious baselines on the
//!   paper's headline metric (startup delay) at small cache sizes.

use rand::rngs::StdRng;
use rand::SeedableRng;
use streamcache::cache::policy::PolicyKind;
use streamcache::cache::{
    average_service_delay, optimal_partial_allocation, CacheEngine, ObjectKey, ObjectMeta,
    OfflineObject,
};
use streamcache::netmodel::{NlanrBandwidthModel, PathSet, VariabilityModel};
use streamcache::sim::{run_sessions, run_simulation, Metrics, SimulationConfig};
use streamcache::workload::WorkloadBuilder;

fn small(policy: PolicyKind, cache_fraction: f64) -> SimulationConfig {
    SimulationConfig {
        policy,
        ..SimulationConfig::small()
    }
    .with_cache_fraction(cache_fraction)
}

/// Two runs of the same configuration must agree bit-for-bit, and a
/// different seed must actually change the outcome.
#[test]
fn same_seed_produces_byte_identical_metrics() {
    let config = small(PolicyKind::PartialBandwidth, 0.05);
    let a = run_simulation(&config).unwrap().metrics;
    let b = run_simulation(&config).unwrap().metrics;
    assert_eq!(a, b, "identical configs diverged");
    // PartialEq on f64 is what we want here, but make bit-identity explicit
    // for the float fields that feed the golden values.
    assert_eq!(
        a.traffic_reduction_ratio.to_bits(),
        b.traffic_reduction_ratio.to_bits()
    );
    assert_eq!(
        a.avg_service_delay_secs.to_bits(),
        b.avg_service_delay_secs.to_bits()
    );
    assert_eq!(
        a.avg_stream_quality.to_bits(),
        b.avg_stream_quality.to_bits()
    );
    assert_eq!(a.total_added_value.to_bits(), b.total_added_value.to_bits());

    let mut reseeded = config;
    reseeded.seed += 1;
    let c = run_simulation(&reseeded).unwrap().metrics;
    assert_ne!(a, c, "changing the seed did not change the metrics");
}

fn assert_close(actual: f64, golden: f64, what: &str) {
    let tolerance = golden.abs().max(1.0) * 1e-9;
    assert!(
        (actual - golden).abs() <= tolerance,
        "{what}: got {actual}, golden {golden} — a behavioural change reached \
         the simulator; if intentional, update the golden values in this test"
    );
}

fn assert_golden(actual: Metrics, golden: Metrics) {
    assert_eq!(actual.requests, golden.requests, "requests");
    assert_close(
        actual.traffic_reduction_ratio,
        golden.traffic_reduction_ratio,
        "traffic_reduction_ratio",
    );
    assert_close(
        actual.avg_service_delay_secs,
        golden.avg_service_delay_secs,
        "avg_service_delay_secs",
    );
    assert_close(
        actual.avg_stream_quality,
        golden.avg_stream_quality,
        "avg_stream_quality",
    );
    assert_close(
        actual.total_added_value,
        golden.total_added_value,
        "total_added_value",
    );
    assert_close(actual.hit_ratio, golden.hit_ratio, "hit_ratio");
    assert_close(
        actual.immediate_ratio,
        golden.immediate_ratio,
        "immediate_ratio",
    );
}

/// End-to-end golden regression: seeded workload → PathSet → CacheEngine →
/// simulator, asserted against checked-in metric values for two policies.
///
/// The scenario is `SimulationConfig::small()` (500 objects, 5,000
/// requests, constant bandwidth, seed 1) at a 5% cache. The golden values
/// were produced by this code; their exact magnitudes are not meaningful,
/// their *stability* is.
#[test]
fn golden_metrics_small_scenario() {
    let pb = run_simulation(&small(PolicyKind::PartialBandwidth, 0.05))
        .unwrap()
        .metrics;
    assert_golden(
        pb,
        Metrics {
            requests: 2500,
            traffic_reduction_ratio: 0.06756428265714427,
            avg_service_delay_secs: 1124.8637681579226,
            avg_stream_quality: 0.9037905439562554,
            total_added_value: 9829.267454113455,
            hit_ratio: 0.144,
            immediate_ratio: 0.78,
        },
    );

    let integral = run_simulation(&small(PolicyKind::IntegralFrequency, 0.05))
        .unwrap()
        .metrics;
    assert_golden(
        integral,
        Metrics {
            requests: 2500,
            traffic_reduction_ratio: 0.3380915058241122,
            avg_service_delay_secs: 2013.3189995663856,
            avg_stream_quality: 0.8758244325884198,
            total_added_value: 9633.25860709988,
            hit_ratio: 0.3632,
            immediate_ratio: 0.7624,
        },
    );
}

/// Session-mode goldens for the same small scenario: the discrete-event
/// core replays the identical workload as 5,000 playback-spanning sessions
/// under processor-shared bottlenecks. Any change to the event core, the
/// session arrival derivation, or the shared bandwidth/estimator/cache
/// layers shows up here — while the per-request goldens above pin that the
/// original path is untouched.
///
/// (Note the reversal against the per-request delay ordering: under
/// contention LRU's whole objects free more bottleneck bandwidth than PB's
/// minimal deficit prefixes, so LRU rebuffers *less* — contention is
/// exactly the effect the session mode adds.)
#[test]
fn golden_session_metrics_small_scenario() {
    let pb = run_sessions(&small(PolicyKind::PartialBandwidth, 0.05))
        .unwrap()
        .metrics;
    assert_eq!(pb.sessions, 5000);
    assert_eq!(pb.peak_concurrent_viewers, 2903);
    assert_eq!(pb.egress_bins_bytes.len(), 24);
    assert_close(pb.viewer_seconds, 15997017.782627294, "PB viewer_seconds");
    assert_close(
        pb.avg_concurrent_viewers,
        730.8745577830542,
        "PB avg_concurrent_viewers",
    );
    assert_close(pb.rebuffer_probability, 0.8496, "PB rebuffer_probability");
    assert_close(
        pb.avg_rebuffer_secs,
        2475.531715947582,
        "PB avg_rebuffer_secs",
    );
    assert_close(
        pb.traffic_reduction_ratio,
        0.06973689141298253,
        "PB traffic_reduction_ratio",
    );
    assert_close(
        pb.origin_bytes_total,
        714308903548.2557,
        "PB origin_bytes_total",
    );
    assert_close(pb.horizon_secs, 21887.501230239424, "PB horizon_secs");
    let binned: f64 = pb.egress_bins_bytes.iter().sum();
    assert_close(binned, pb.origin_bytes_total, "PB egress bins sum");

    let lru = run_sessions(&small(PolicyKind::Lru, 0.05)).unwrap().metrics;
    assert_eq!(lru.sessions, 5000);
    assert_close(lru.rebuffer_probability, 0.665, "LRU rebuffer_probability");
    assert_close(
        lru.avg_rebuffer_secs,
        2120.058232349771,
        "LRU avg_rebuffer_secs",
    );
    assert_close(
        lru.traffic_reduction_ratio,
        0.17941676651642335,
        "LRU traffic_reduction_ratio",
    );
    assert_close(
        lru.origin_bytes_total,
        630090459751.8009,
        "LRU origin_bytes_total",
    );

    // Paired workloads: the viewer curve is policy-independent (the cache
    // changes what sessions download, not when they watch).
    assert_eq!(pb.peak_concurrent_viewers, lru.peak_concurrent_viewers);
    assert_close(lru.viewer_seconds, pb.viewer_seconds, "viewer pairing");
}

/// Session-mode seeded determinism mirrors the per-request contract.
#[test]
fn session_mode_same_seed_is_byte_identical_and_seed_sensitive() {
    let config = small(PolicyKind::PartialBandwidth, 0.05);
    let a = run_sessions(&config).unwrap().metrics;
    let b = run_sessions(&config).unwrap().metrics;
    assert_eq!(a, b, "identical session configs diverged");
    assert_eq!(a.viewer_seconds.to_bits(), b.viewer_seconds.to_bits());
    assert_eq!(
        a.origin_bytes_total.to_bits(),
        b.origin_bytes_total.to_bits()
    );

    let mut reseeded = config;
    reseeded.seed += 1;
    let c = run_sessions(&reseeded).unwrap().metrics;
    assert_ne!(a, c, "changing the seed did not change the session metrics");
}

/// Rate-weighted delay-reduction utility of an allocation:
/// `Σ λ_i · (d_i(0) − d_i(x_i))`, the objective the fractional-knapsack
/// optimum of Section 2.3 maximises.
fn total_utility(objects: &[OfflineObject], allocation: &[f64]) -> f64 {
    objects
        .iter()
        .zip(allocation)
        .map(|(o, &x)| {
            let none = o.meta.service_delay(o.bandwidth_bps, 0.0);
            let with = o.meta.service_delay(o.bandwidth_bps, x);
            o.arrival_rate * (none - with)
        })
        .sum()
}

fn to_meta(obj: &streamcache::workload::MediaObject) -> ObjectMeta {
    ObjectMeta::new(
        ObjectKey::new(obj.id.index() as u64),
        obj.duration_secs,
        obj.bitrate_bps,
        obj.value,
    )
}

/// On a small workload, the offline optimal allocation achieves at least
/// the total (delay-reduction) utility of every online policy, because any
/// online allocation is a feasible solution of the same fractional
/// knapsack.
#[test]
fn optimal_allocation_dominates_every_online_policy_on_total_utility() {
    let workload = WorkloadBuilder::new()
        .objects(200)
        .requests(4_000)
        .seed(17)
        .build()
        .unwrap();
    let mut rng = StdRng::seed_from_u64(17);
    let paths = PathSet::generate(
        200,
        &NlanrBandwidthModel::paper_default(),
        VariabilityModel::constant(),
        &mut rng,
    );
    let capacity = 0.04 * workload.catalog.total_bytes();
    let counts = workload.trace.request_counts(workload.catalog.len());
    let offline: Vec<OfflineObject> = workload
        .catalog
        .iter()
        .map(|o| {
            OfflineObject::new(
                to_meta(o),
                counts[o.id.index()] as f64,
                paths.mean_bps(o.id.index()),
            )
        })
        .collect();

    let optimal_alloc = optimal_partial_allocation(&offline, capacity).unwrap();
    let optimal_utility = total_utility(&offline, &optimal_alloc);
    assert!(
        optimal_utility > 0.0,
        "optimal allocation should add utility"
    );

    for kind in [
        PolicyKind::PartialBandwidth,
        PolicyKind::IntegralBandwidth,
        PolicyKind::IntegralFrequency,
        PolicyKind::HybridPartialBandwidth { e: 0.5 },
        PolicyKind::Lru,
        PolicyKind::Lfu,
    ] {
        let mut cache = CacheEngine::new(capacity, kind.build()).unwrap();
        for request in workload.trace.iter() {
            let obj = workload.catalog.object(request.object);
            cache.on_access(&to_meta(obj), paths.mean_bps(obj.id.index()));
        }
        let online_alloc: Vec<f64> = workload
            .catalog
            .iter()
            .map(|o| cache.cached_bytes(ObjectKey::new(o.id.index() as u64)))
            .collect();
        let online_utility = total_utility(&offline, &online_alloc);
        assert!(
            optimal_utility + 1e-6 >= online_utility,
            "offline optimum {optimal_utility} beaten by online {} ({online_utility})",
            kind.label()
        );
        // Cross-check through the delay objective as well.
        let optimal_delay = average_service_delay(&offline, &optimal_alloc).unwrap();
        let online_delay = average_service_delay(&offline, &online_alloc).unwrap();
        assert!(optimal_delay <= online_delay + 1e-6);
    }
}

/// The paper's headline claim at small cache sizes: network-aware partial
/// caching (PB) accelerates delivery — its average startup delay is well
/// below the network-oblivious LRU baseline for the same cache budget.
///
/// (On the *traffic-reduction* axis the ordering is reversed by design:
/// PB stores only minimal deficit prefixes, so integral policies such as
/// LRU/IF always reduce more bytes — the seed's figure tests pin that
/// ordering. Delay is the metric the paper optimises and the one PB wins.)
#[test]
fn pb_beats_lru_on_service_delay_at_small_cache_sizes() {
    for fraction in [0.01, 0.02, 0.05] {
        let pb = run_simulation(&small(PolicyKind::PartialBandwidth, fraction))
            .unwrap()
            .metrics;
        let lru = run_simulation(&small(PolicyKind::Lru, fraction))
            .unwrap()
            .metrics;
        assert!(
            pb.avg_service_delay_secs < lru.avg_service_delay_secs,
            "fraction {fraction}: PB delay {} should beat LRU delay {}",
            pb.avg_service_delay_secs,
            lru.avg_service_delay_secs
        );
        // The acceleration is substantial, not marginal: at least 20% less
        // average startup delay for the same cache budget.
        assert!(
            pb.avg_service_delay_secs < 0.8 * lru.avg_service_delay_secs,
            "fraction {fraction}: PB {} vs LRU {} is not a clear win",
            pb.avg_service_delay_secs,
            lru.avg_service_delay_secs
        );
        // And PB buys more stream quality, too.
        assert!(pb.avg_stream_quality >= lru.avg_stream_quality - 1e-9);
    }
}
