//! Integration: the running proxy prototype and the analytic delivery model
//! agree qualitatively — the prefix the PB policy stores is the one the
//! formulas say is needed, and the measured startup delay behaves like the
//! model's service delay.

use streamcache::cache::{prefix_bytes_needed, service_delay_secs};
use streamcache::proxy::{
    CachingProxy, ObjectSpec, OriginConfig, OriginServer, ProxyConfig, StreamingClient,
};

#[test]
fn proxy_prefix_matches_the_analytic_deficit() {
    // 300 KB at 600 KB/s bit-rate over a 200 KB/s path: duration 0.5 s,
    // deficit (600-200)*0.5 = 200 KB.
    let origin = OriginServer::start(OriginConfig {
        objects: vec![ObjectSpec::new("clip", 300_000, 600_000.0)],
        rate_limit_bps: 200_000.0,
    })
    .unwrap();
    let proxy = CachingProxy::start(ProxyConfig::new(origin.addr(), 10_000_000.0)).unwrap();
    let client = StreamingClient::new();

    let cold = client.fetch(proxy.addr(), "clip").unwrap();
    assert!(cold.content_ok);

    let duration = 300_000.0 / 600_000.0;
    // The proxy estimated the origin bandwidth from the observed transfer;
    // accept a generous tolerance around the configured 200 KB/s.
    let estimated = proxy.stats().estimated_origin_bps;
    assert!(
        (120_000.0..260_000.0).contains(&estimated),
        "estimated origin bandwidth {estimated}"
    );
    let expected_prefix = prefix_bytes_needed(duration, 600_000.0, estimated);
    let actual_prefix = proxy.cached_prefix_len("clip") as f64;
    let relative_error = (actual_prefix - expected_prefix).abs() / expected_prefix;
    assert!(
        relative_error < 0.25,
        "cached prefix {actual_prefix} vs analytic deficit {expected_prefix}"
    );

    // The analytic model predicts (r/b - 1)*T ≈ 1.0 s of startup delay for a
    // cold client and ~0 for a warm one; the measured values should follow
    // the same ordering with a clear gap.
    let model_cold = service_delay_secs(duration, 600_000.0, 200_000.0, 0.0);
    let model_warm = service_delay_secs(duration, 600_000.0, 200_000.0, actual_prefix);
    let warm = client.fetch(proxy.addr(), "clip").unwrap();
    assert!(model_cold > model_warm);
    assert!(
        warm.startup_delay_secs < cold.startup_delay_secs,
        "warm {} vs cold {}",
        warm.startup_delay_secs,
        cold.startup_delay_secs
    );
    // Cold measured delay should be within a factor of ~2 of the model
    // (scheduling noise, TCP buffering).
    assert!(
        cold.startup_delay_secs > model_cold * 0.3,
        "cold measured {} vs model {}",
        cold.startup_delay_secs,
        model_cold
    );
}
