//! Integration: bandwidth estimators feeding caching decisions, and the
//! sweep helpers used by the experiment harness.

use rand::rngs::StdRng;
use rand::SeedableRng;
use streamcache::cache::policy::{PartialBandwidth, PolicyKind};
use streamcache::cache::{CacheEngine, ObjectKey, ObjectMeta};
use streamcache::netmodel::{
    BandwidthEstimator, ConservativeEstimator, EwmaEstimator, NlanrBandwidthModel,
    VariabilityModel, WindowedEstimator,
};
use streamcache::sim::sweep::{sweep_cache_size, sweep_policies};
use streamcache::sim::SimulationConfig;

/// A passive EWMA estimator converges near the true mean bandwidth of a
/// variable path, so the PB allocation it drives converges near the
/// allocation computed from the true mean.
#[test]
fn ewma_estimator_drives_pb_towards_the_true_deficit() {
    let mut rng = StdRng::seed_from_u64(3);
    let variability = VariabilityModel::measured_path_moderate();
    let true_mean = 24_000.0;
    let mut estimator = EwmaEstimator::new(0.2);
    let object = ObjectMeta::new(ObjectKey::new(1), 600.0, 48_000.0, 0.0);
    let mut cache = CacheEngine::new(1e9, PartialBandwidth::new()).unwrap();

    for _ in 0..200 {
        let observed = variability.apply(&mut rng, true_mean);
        estimator.observe(observed);
        let estimate = estimator.estimate_bps().unwrap();
        cache.on_access(&object, estimate);
    }
    let estimate = estimator.estimate_bps().unwrap();
    assert!(
        (estimate - true_mean).abs() / true_mean < 0.35,
        "EWMA estimate {estimate} should be near {true_mean}"
    );
    let cached = cache.cached_bytes(object.key);
    let ideal = object.prefix_needed(true_mean);
    // The allocation only grows when estimates dip below the mean, so it is
    // at least the ideal deficit and never more than the whole object.
    assert!(cached >= ideal * 0.9, "cached {cached} vs ideal {ideal}");
    assert!(cached <= object.size_bytes());
}

/// A conservative wrapper around a windowed estimator grows the allocation
/// relative to the raw estimate (the over-provisioning heuristic of
/// Section 2.5).
#[test]
fn conservative_estimator_grows_allocations() {
    let mut raw = WindowedEstimator::new(8);
    let mut conservative = ConservativeEstimator::new(WindowedEstimator::new(8), 0.5);
    for sample in [30_000.0, 28_000.0, 32_000.0, 31_000.0] {
        raw.observe(sample);
        conservative.observe(sample);
    }
    let object = ObjectMeta::new(ObjectKey::new(1), 600.0, 48_000.0, 0.0);
    let raw_prefix = object.prefix_needed(raw.estimate_bps().unwrap());
    let conservative_prefix = object.prefix_needed(conservative.estimate_bps().unwrap());
    assert!(conservative_prefix > raw_prefix);
    assert!(conservative_prefix <= object.size_bytes());
}

/// Per-path mean bandwidths drawn from the NLANR model produce a mix of
/// "needs caching" and "does not need caching" objects, as the paper's
/// motivation requires.
#[test]
fn nlanr_model_yields_a_mixed_population_at_48kbps() {
    let model = NlanrBandwidthModel::paper_default();
    let mut rng = StdRng::seed_from_u64(9);
    let samples = model.sample_n_bps(&mut rng, 5_000);
    let starved = samples.iter().filter(|&&b| b < 48_000.0).count() as f64 / 5_000.0;
    assert!(
        (0.25..0.50).contains(&starved),
        "fraction of starved paths {starved}"
    );
}

/// The sweep helpers return one point per requested parameter and keep the
/// series labels stable — the experiment drivers and EXPERIMENTS.md rely on
/// both properties.
#[test]
fn sweeps_produce_complete_labelled_series() {
    let base = SimulationConfig::small();
    let fractions = [0.01, 0.05];
    let series = sweep_policies(
        &base,
        &[
            PolicyKind::IntegralFrequency,
            PolicyKind::PartialBandwidth,
            PolicyKind::HybridPartialBandwidth { e: 0.5 },
        ],
        &fractions,
        1,
    )
    .unwrap();
    assert_eq!(series.len(), 3);
    assert_eq!(series[0].label, "IF");
    assert_eq!(series[2].label, "PB(e=0.50)");
    for s in &series {
        assert_eq!(s.points.len(), fractions.len());
        for (point, fraction) in s.points.iter().zip(fractions) {
            assert_eq!(point.x, fraction);
            assert!(point.metrics.requests > 0);
        }
    }

    let single = sweep_cache_size(&base, PolicyKind::Lfu, &[0.05], 1).unwrap();
    assert_eq!(single.label, "LFU");
    assert_eq!(single.points.len(), 1);
}
