//! Integration: the simulator reproduces the paper's qualitative results at
//! test scale (the full-scale numbers are produced by `sc-bench`).

use streamcache::cache::policy::PolicyKind;
use streamcache::sim::experiments::{fig10, fig5, fig7, table1, ExperimentScale};
use streamcache::sim::{run_replicated, SimulationConfig, VariabilityKind};

#[test]
fn table1_reports_paper_like_workload_statistics() {
    let t = table1(ExperimentScale::Test).unwrap();
    assert_eq!(t.objects, 300);
    assert!((40.0..70.0).contains(&t.catalog.mean_duration_minutes));
    assert!((45.0..50.0).contains(&(t.bitrate_bps / 1_000.0)));
    assert!(t.trace.top_decile_share > 0.15);
}

#[test]
fn fig5_constant_bandwidth_shape() {
    let fig = fig5(ExperimentScale::Test).unwrap();
    let if_s = fig.series("IF").unwrap();
    let pb_s = fig.series("PB").unwrap();
    let ib_s = fig.series("IB").unwrap();
    // Larger caches help every policy.
    for series in [if_s, pb_s, ib_s] {
        let first = series.points.first().unwrap().metrics;
        let last = series.points.last().unwrap().metrics;
        assert!(last.traffic_reduction_ratio + 0.02 >= first.traffic_reduction_ratio);
        assert!(last.avg_service_delay_secs <= first.avg_service_delay_secs + 1.0);
    }
    // PB's delay advantage over IF holds at every cache size.
    for (pb, iff) in pb_s.points.iter().zip(&if_s.points) {
        assert!(pb.metrics.avg_service_delay_secs <= iff.metrics.avg_service_delay_secs + 1.0);
    }
}

#[test]
fn fig7_high_variability_erases_pb_advantage() {
    let constant = fig5(ExperimentScale::Test).unwrap();
    let variable = fig7(ExperimentScale::Test).unwrap();
    // Delays increase for every policy when bandwidth varies wildly.
    for label in ["IF", "PB", "IB"] {
        let c = constant
            .series(label)
            .unwrap()
            .points
            .last()
            .unwrap()
            .metrics;
        let v = variable
            .series(label)
            .unwrap()
            .points
            .last()
            .unwrap()
            .metrics;
        assert!(
            v.avg_service_delay_secs >= c.avg_service_delay_secs - 1.0,
            "{label}: variable {} vs constant {}",
            v.avg_service_delay_secs,
            c.avg_service_delay_secs
        );
        assert!(v.avg_stream_quality <= c.avg_stream_quality + 0.02);
    }
    // Under high variability IB is at least competitive with PB on delay
    // (the paper: "IB caching is no worse than PB caching").
    let pb = variable
        .series("PB")
        .unwrap()
        .points
        .last()
        .unwrap()
        .metrics;
    let ib = variable
        .series("IB")
        .unwrap()
        .points
        .last()
        .unwrap()
        .metrics;
    assert!(
        ib.avg_service_delay_secs <= pb.avg_service_delay_secs * 1.35 + 5.0,
        "IB {} should be competitive with PB {}",
        ib.avg_service_delay_secs,
        pb.avg_service_delay_secs
    );
}

#[test]
fn fig10_value_based_ordering() {
    let fig = fig10(ExperimentScale::Test).unwrap();
    let if_v = fig.series("IF").unwrap().points.last().unwrap().metrics;
    let pbv = fig.series("PB-V").unwrap().points.last().unwrap().metrics;
    assert!(pbv.total_added_value + 1e-9 >= if_v.total_added_value);
    assert!(if_v.traffic_reduction_ratio >= pbv.traffic_reduction_ratio - 0.03);
}

#[test]
fn lru_and_lfu_baselines_run_end_to_end() {
    for policy in [PolicyKind::Lru, PolicyKind::Lfu] {
        let config = SimulationConfig {
            policy,
            variability: VariabilityKind::MeasuredLow,
            ..SimulationConfig::small()
        }
        .with_cache_fraction(0.05);
        let metrics = run_replicated(&config, 1).unwrap();
        assert!(metrics.traffic_reduction_ratio > 0.0);
        assert!(metrics.avg_stream_quality > 0.5);
    }
}
