//! Integration: drive the cache engine directly with a generated workload
//! and bandwidth model, and check the optimal-offline solver against the
//! online policies.

use rand::rngs::StdRng;
use rand::SeedableRng;
use streamcache::cache::policy::{PartialBandwidth, PolicyKind};
use streamcache::cache::{
    average_service_delay, optimal_partial_allocation, CacheEngine, ObjectKey, ObjectMeta,
    OfflineObject,
};
use streamcache::netmodel::{NlanrBandwidthModel, PathSet, VariabilityModel};
use streamcache::workload::WorkloadBuilder;

fn setup(objects: usize, requests: usize) -> (streamcache::workload::Workload, PathSet) {
    let workload = WorkloadBuilder::new()
        .objects(objects)
        .requests(requests)
        .seed(11)
        .build()
        .expect("valid workload");
    let mut rng = StdRng::seed_from_u64(11);
    let paths = PathSet::generate(
        objects,
        &NlanrBandwidthModel::paper_default(),
        VariabilityModel::constant(),
        &mut rng,
    );
    (workload, paths)
}

fn to_meta(obj: &streamcache::workload::MediaObject) -> ObjectMeta {
    ObjectMeta::new(
        ObjectKey::new(obj.id.index() as u64),
        obj.duration_secs,
        obj.bitrate_bps,
        obj.value,
    )
}

#[test]
fn online_pb_tracks_request_frequencies_and_respects_capacity() {
    let (workload, paths) = setup(200, 3_000);
    let capacity = 0.05 * workload.catalog.total_bytes();
    let mut cache = CacheEngine::new(capacity, PartialBandwidth::new()).unwrap();
    for request in workload.trace.iter() {
        let obj = workload.catalog.object(request.object);
        cache.on_access(&to_meta(obj), paths.mean_bps(obj.id.index()));
        assert!(cache.used_bytes() <= cache.capacity_bytes() + 1e-3);
    }
    let stats = cache.stats();
    assert_eq!(stats.requests, 3_000);
    assert!(stats.traffic_reduction_ratio() > 0.0);
    assert!(stats.traffic_reduction_ratio() < 1.0);
    // High-utility objects should be cached. PB ranks by `F/b` (not raw
    // frequency): take the ten starved objects with the highest observed
    // count-to-bandwidth ratio and check most hold a prefix.
    let counts = workload.trace.request_counts(workload.catalog.len());
    let mut ranked: Vec<usize> = (0..workload.catalog.len())
        .filter(|&i| paths.mean_bps(i) < workload.catalog.as_slice()[i].bitrate_bps)
        .collect();
    ranked.sort_by(|&a, &b| {
        let ua = counts[a] as f64 / paths.mean_bps(a);
        let ub = counts[b] as f64 / paths.mean_bps(b);
        ub.partial_cmp(&ua).expect("utilities are finite")
    });
    let cached_hot = ranked
        .iter()
        .take(10)
        .filter(|&&i| cache.cached_bytes(ObjectKey::new(i as u64)) > 0.0)
        .count();
    assert!(
        cached_hot >= 6,
        "only {cached_hot}/10 high-utility starved objects cached"
    );
}

#[test]
fn offline_optimum_is_no_worse_than_online_policies_on_average_delay() {
    let (workload, paths) = setup(150, 4_000);
    let capacity = 0.04 * workload.catalog.total_bytes();
    let counts = workload.trace.request_counts(workload.catalog.len());

    // Offline optimal allocation computed from the true request counts.
    let offline: Vec<OfflineObject> = workload
        .catalog
        .iter()
        .map(|o| {
            OfflineObject::new(
                to_meta(o),
                counts[o.id.index()] as f64,
                paths.mean_bps(o.id.index()),
            )
        })
        .collect();
    let optimal_alloc = optimal_partial_allocation(&offline, capacity).unwrap();
    let optimal_delay = average_service_delay(&offline, &optimal_alloc).unwrap();

    // Online PB allocation after replaying the trace.
    for kind in [
        PolicyKind::PartialBandwidth,
        PolicyKind::IntegralBandwidth,
        PolicyKind::IntegralFrequency,
        PolicyKind::Lru,
    ] {
        let mut cache = CacheEngine::new(capacity, kind.build()).unwrap();
        for request in workload.trace.iter() {
            let obj = workload.catalog.object(request.object);
            cache.on_access(&to_meta(obj), paths.mean_bps(obj.id.index()));
        }
        let online_alloc: Vec<f64> = workload
            .catalog
            .iter()
            .map(|o| cache.cached_bytes(ObjectKey::new(o.id.index() as u64)))
            .collect();
        // The online allocation may exceed capacity *bounds* never, so it is
        // a feasible solution of the same knapsack; the offline optimum must
        // be at least as good.
        let online_delay = average_service_delay(&offline, &online_alloc).unwrap();
        assert!(
            optimal_delay <= online_delay + 1e-6,
            "offline optimum {optimal_delay} worse than online {} ({online_delay})",
            kind.label()
        );
    }
}

#[test]
fn bandwidth_aware_online_policy_beats_frequency_only_policy_on_delay() {
    let (workload, paths) = setup(300, 6_000);
    let capacity = 0.03 * workload.catalog.total_bytes();
    let counts = workload.trace.request_counts(workload.catalog.len());
    let offline: Vec<OfflineObject> = workload
        .catalog
        .iter()
        .map(|o| {
            OfflineObject::new(
                to_meta(o),
                counts[o.id.index()] as f64,
                paths.mean_bps(o.id.index()),
            )
        })
        .collect();

    let mut delays = Vec::new();
    for kind in [PolicyKind::PartialBandwidth, PolicyKind::IntegralFrequency] {
        let mut cache = CacheEngine::new(capacity, kind.build()).unwrap();
        for request in workload.trace.iter() {
            let obj = workload.catalog.object(request.object);
            cache.on_access(&to_meta(obj), paths.mean_bps(obj.id.index()));
        }
        let alloc: Vec<f64> = workload
            .catalog
            .iter()
            .map(|o| cache.cached_bytes(ObjectKey::new(o.id.index() as u64)))
            .collect();
        delays.push(average_service_delay(&offline, &alloc).unwrap());
    }
    assert!(
        delays[0] <= delays[1] + 1e-6,
        "PB delay {} should not exceed IF delay {}",
        delays[0],
        delays[1]
    );
}
