//! Regression tests for the time-varying (AR(1)) bandwidth mode.
//!
//! Three contracts:
//!
//! * enabling AR(1) mode must not perturb i.i.d. runs — a configuration
//!   that spells out the defaults (`BandwidthModel::Iid`,
//!   `EstimatorKind::Oracle`) is byte-identical to the seed behaviour the
//!   golden metrics pin;
//! * AR(1) runs are seeded-deterministic and actually different from their
//!   i.i.d. counterparts;
//! * every bandwidth a request observes in AR(1) mode stays inside the
//!   configured floor/ceiling of the underlying time series.

use rand::rngs::StdRng;
use rand::SeedableRng;
use streamcache::cache::policy::PolicyKind;
use streamcache::netmodel::{BandwidthTimeSeries, TimeSeriesConfig};
use streamcache::sim::{
    run_simulation, BandwidthModel, BandwidthProvider, EstimatorKind, SimulationConfig,
    VariabilityKind,
};

fn small(policy: PolicyKind, cache_fraction: f64) -> SimulationConfig {
    SimulationConfig {
        policy,
        ..SimulationConfig::small()
    }
    .with_cache_fraction(cache_fraction)
}

fn ar1_config() -> SimulationConfig {
    SimulationConfig {
        variability: VariabilityKind::MeasuredModerate,
        bandwidth_model: BandwidthModel::ar1_default(),
        ..small(PolicyKind::PartialBandwidth, 0.05)
    }
}

/// Spelling out the i.i.d. defaults is a no-op: the golden metrics of
/// `determinism_and_golden.rs` are reproduced bit-for-bit, so the new
/// plumbing cannot have touched the seed behaviour.
#[test]
fn explicit_iid_oracle_matches_default_run_bit_for_bit() {
    let default_run = run_simulation(&small(PolicyKind::PartialBandwidth, 0.05))
        .unwrap()
        .metrics;
    let mut explicit = small(PolicyKind::PartialBandwidth, 0.05);
    explicit.bandwidth_model = BandwidthModel::Iid;
    explicit.estimator = EstimatorKind::Oracle;
    let explicit_run = run_simulation(&explicit).unwrap().metrics;
    assert_eq!(default_run, explicit_run);
    assert_eq!(
        default_run.avg_service_delay_secs.to_bits(),
        explicit_run.avg_service_delay_secs.to_bits()
    );
    assert_eq!(
        default_run.traffic_reduction_ratio.to_bits(),
        explicit_run.traffic_reduction_ratio.to_bits()
    );
}

/// AR(1) runs are reproducible under a fixed seed, sensitive to the seed,
/// and genuinely different from the i.i.d. run of the same configuration.
#[test]
fn ar1_mode_is_seeded_deterministic_and_distinct_from_iid() {
    let config = ar1_config();
    let a = run_simulation(&config).unwrap().metrics;
    let b = run_simulation(&config).unwrap().metrics;
    assert_eq!(a, b, "same-seed AR(1) runs diverged");

    let mut reseeded = config;
    reseeded.seed += 1;
    let c = run_simulation(&reseeded).unwrap().metrics;
    assert_ne!(a, c, "changing the seed did not change the AR(1) metrics");

    let mut iid = config;
    iid.bandwidth_model = BandwidthModel::Iid;
    let d = run_simulation(&iid).unwrap().metrics;
    assert_ne!(a, d, "AR(1) mode produced the i.i.d. result");
}

/// Every estimator kind runs under drift, deterministically, and stale
/// estimators actually change the cache's decisions relative to the oracle.
#[test]
fn estimators_run_deterministically_under_drift() {
    let oracle = run_simulation(&ar1_config()).unwrap().metrics;
    let mut any_divergence = false;
    for estimator in [
        EstimatorKind::Ewma { alpha: 0.3 },
        EstimatorKind::Windowed { window: 8 },
        EstimatorKind::Probe,
    ] {
        let mut config = ar1_config();
        config.estimator = estimator;
        let a = run_simulation(&config).unwrap().metrics;
        let b = run_simulation(&config).unwrap().metrics;
        assert_eq!(a, b, "{}: same-seed runs diverged", estimator.label());
        if a != oracle {
            any_divergence = true;
        }
    }
    assert!(
        any_divergence,
        "no estimator ever changed a decision vs the oracle"
    );
}

/// Seeded-loop property test: in AR(1) mode, every bandwidth the provider
/// hands to a request lies inside the configured floor/ceiling band of the
/// path's series, across a long simulated horizon.
#[test]
fn ar1_request_bandwidth_stays_within_series_bounds() {
    let model = BandwidthModel::Ar1 {
        autocorrelation: 0.9,
        interval_secs: 120.0,
    };
    for seed in 0..8u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let horizon = 200_000.0;
        let provider = BandwidthProvider::generate_with_model(
            40,
            VariabilityKind::MeasuredHigh,
            model,
            horizon,
            &mut rng,
        );
        let default_bounds = TimeSeriesConfig::default();
        for index in 0..40 {
            let mean = provider.estimated_bps(index);
            let lo = mean * default_bounds.floor_ratio;
            let hi = mean * default_bounds.ceiling_ratio;
            let series = provider.series(index).unwrap();
            assert!(series.len() as f64 * 120.0 >= horizon);
            for step in 0..=2_000 {
                let t = horizon * step as f64 / 2_000.0;
                let bw = provider.request_bps(index, t, &mut rng);
                assert!(
                    bw >= lo && bw <= hi,
                    "seed {seed} path {index} t={t}: {bw} outside [{lo}, {hi}]"
                );
            }
        }
    }
}

/// The floor/ceiling configuration itself is honoured by the raw series
/// generator over a long run (the sim uses the defaults; ablations can
/// tighten them).
#[test]
fn configured_floor_and_ceiling_bound_long_series() {
    for seed in 0..8u64 {
        let cfg = TimeSeriesConfig {
            mean_bps: 120_000.0,
            cov: 0.5,
            autocorrelation: 0.95,
            interval_secs: 240.0,
            floor_ratio: 0.25,
            ceiling_ratio: 2.0,
            ..TimeSeriesConfig::default()
        };
        let mut rng = StdRng::seed_from_u64(0xF100 + seed);
        let ts = BandwidthTimeSeries::generate(&cfg, 50_000, &mut rng).unwrap();
        assert!(ts
            .samples_bps()
            .iter()
            .all(|&x| (30_000.0..=240_000.0).contains(&x)));
    }
}
