//! Chaos harness: seeded origin faults composed with seeded client
//! misbehaviour over deterministic schedules.
//!
//! PR 8's resilience layer was proven against a *failing origin*; this
//! suite adds the client side — slow readers, mid-request disconnects,
//! malformed frames and bursts beyond admission capacity — drawn from the
//! same seeded-schedule discipline (`StdRng::seed_from_u64`), so every
//! run of a given seed replays the exact same misbehaviour. After every
//! storm the standing invariants are re-asserted: graceful shutdown
//! drains, store ⊆ engine byte accounting, capacity conservation across
//! shards, and every counter consistent with what clients observed.
//!
//! `SC_SIM_THREADS` scales the number of concurrent chaos clients (the CI
//! matrix runs 1 and 4); the per-thread schedules depend only on the seed
//! and the thread index, never on interleaving.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sc_cache::policy::PolicyKind;
use sc_proxy::protocol::{read_response, Response};
use sc_proxy::{
    verify_content, BreakerConfig, CachingProxy, FaultPlan, FaultProfile, ObjectSpec, OriginConfig,
    OriginServer, ProxyConfig, RetryPolicy, StreamingClient,
};
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::sync::Mutex;
use std::time::Duration;

/// Concurrent chaos clients: `SC_SIM_THREADS` when set (the CI matrix runs
/// the suite at 1 and 4), else 4.
fn chaos_threads() -> usize {
    std::env::var("SC_SIM_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(4)
}

/// One client's behaviour for one connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ClientAction {
    /// A well-behaved fetch reading the stream to completion.
    Normal,
    /// Reads the stream in small chunks with short pauses: slow, but
    /// within the proxy's write tolerance.
    SlowReader { pause_ms: u64 },
    /// Reads the header and up to `bytes` of payload, then disconnects.
    DisconnectAfter { bytes: u64 },
    /// Sends a malformed frame (variant selects which) and expects a
    /// bounded `ERR` or a clean close — never a hang.
    Malformed { variant: u8 },
}

/// The deterministic misbehaviour schedule for one chaos thread: depends
/// only on the seed, never on wall-clock or interleaving.
fn seeded_actions(seed: u64, n: usize) -> Vec<ClientAction> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let u: f64 = rng.gen();
            // Draw the parameter unconditionally so every action consumes a
            // fixed number of RNG words (mirrors `FaultPlan::seeded`).
            let p = rng.gen_range(0..4096u64);
            if u < 0.15 {
                ClientAction::SlowReader {
                    pause_ms: 1 + p % 8,
                }
            } else if u < 0.30 {
                ClientAction::DisconnectAfter { bytes: p * 8 }
            } else if u < 0.45 {
                ClientAction::Malformed {
                    variant: (p % 6) as u8,
                }
            } else {
                ClientAction::Normal
            }
        })
        .collect()
}

/// What one chaos connection observed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Outcome {
    /// `OK` header and the whole advertised payload arrived, content-exact.
    ServedFull,
    /// `OK` header but the stream ended early (origin fault the proxy
    /// could not mask, a degraded prefix, or our own disconnect); every
    /// byte that did arrive was content-exact.
    ServedPartial,
    /// `BUSY <retry-after-ms>`: shed under overload.
    Busy(u64),
    /// `ERR <reason>` line.
    ErrLine,
    /// The connection closed before any header arrived.
    Closed,
}

/// Runs one scheduled action against the proxy and classifies the result.
/// Panics only on invariant violations (corrupt payload bytes, oversized
/// streams); everything else — refusals, sheds, closes — is an outcome.
fn run_action(addr: SocketAddr, name: &str, action: ClientAction) -> Outcome {
    let Ok(stream) = TcpStream::connect(addr) else {
        return Outcome::Closed;
    };
    stream.set_nodelay(true).ok();
    // A liveness bound, not a correctness knob: a healthy proxy answers
    // orders of magnitude faster; a wedged one fails the test here.
    stream.set_read_timeout(Some(Duration::from_secs(30))).ok();
    let Ok(read_half) = stream.try_clone() else {
        return Outcome::Closed;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = BufWriter::new(stream);

    if let ClientAction::Malformed { variant } = action {
        let junk: &[u8] = match variant {
            0 => b"PUT clip 0\n",
            1 => &[b'G'; 2048],
            2 => b"GET \xff\xfe\xfd\n",
            3 => b"GET\n",
            4 => b"OK 5 2.0\n",
            _ => b"GET a b c d e f\n",
        };
        if writer
            .write_all(junk)
            .and_then(|()| writer.flush())
            .is_err()
        {
            return Outcome::Closed;
        }
        // Half-close so a junk frame without a newline still terminates
        // the proxy's bounded read.
        let _ = writer.get_ref().shutdown(Shutdown::Write);
        let mut line = String::new();
        return match reader.read_line(&mut line) {
            Ok(0) => Outcome::Closed,
            Ok(_) if line.starts_with("ERR ") => Outcome::ErrLine,
            Ok(_) => panic!("malformed frame drew a non-ERR answer: {line:?}"),
            Err(_) => Outcome::Closed,
        };
    }

    if writer
        .write_all(format!("GET {name} 0\n").as_bytes())
        .and_then(|()| writer.flush())
        .is_err()
    {
        return Outcome::Closed;
    }
    let (size, _bitrate, _degraded) = match read_response(&mut reader) {
        Ok(Response::Ok {
            size,
            bitrate_bps,
            degraded,
        }) => (size, bitrate_bps, degraded),
        Ok(Response::Busy { retry_after_ms }) => {
            assert!(retry_after_ms > 0, "BUSY must carry a usable retry pause");
            return Outcome::Busy(retry_after_ms);
        }
        Ok(Response::Err(_)) => return Outcome::ErrLine,
        Err(_) => return Outcome::Closed,
    };

    let read_cap = match action {
        ClientAction::DisconnectAfter { bytes } => bytes.min(size),
        _ => size,
    };
    let mut received: u64 = 0;
    let mut chunk = vec![0u8; 16 * 1024];
    while received < read_cap {
        if let ClientAction::SlowReader { pause_ms } = action {
            std::thread::sleep(Duration::from_millis(pause_ms));
        }
        let want = chunk.len().min((read_cap - received) as usize);
        let n = match reader.read(&mut chunk[..want]) {
            Ok(0) => break,
            Ok(n) => n,
            Err(_) => break,
        };
        // The standing payload invariant: whatever the proxy serves is
        // content-exact at its offset, chaos or not.
        assert_eq!(
            verify_content(name, received, &chunk[..n]),
            None,
            "corrupt payload byte for {name} at offset {received}"
        );
        received += n as u64;
    }
    assert!(received <= size, "stream longer than advertised");
    if matches!(action, ClientAction::DisconnectAfter { .. }) {
        // Drop without draining: the proxy's write side sees the reset.
        return Outcome::ServedPartial;
    }
    if received == size {
        // Drain until close to synchronise with the proxy's bookkeeping
        // (mirrors `StreamingClient::fetch`).
        let mut sink = [0u8; 1024];
        while reader.read(&mut sink).map(|n| n > 0).unwrap_or(false) {}
        Outcome::ServedFull
    } else {
        Outcome::ServedPartial
    }
}

/// Asserts the engine/store byte-accounting invariants on a drained proxy
/// (the same contract the stress suite pins): every store entry belongs to
/// a live engine entry and never exceeds the engine's grant, the engine
/// respects its capacity, and the store summary counters agree.
fn assert_byte_accounting(proxy: &CachingProxy, capacity_bytes: f64) {
    let contents = proxy.contents();
    let mut engine_total = 0.0;
    let mut store_total = 0usize;
    for (name, engine_bytes, store_bytes) in &contents {
        assert!(!name.is_empty(), "engine entry without a registered name");
        assert!(
            *store_bytes as f64 <= engine_bytes.ceil(),
            "store holds {store_bytes} B of `{name}` but the engine granted only {engine_bytes}"
        );
        engine_total += engine_bytes;
        store_total += store_bytes;
    }
    assert!(
        engine_total <= capacity_bytes + 1e-6,
        "engine over capacity: {engine_total} > {capacity_bytes}"
    );
    let stats = proxy.stats();
    assert_eq!(
        stats.cached_bytes as usize, store_total,
        "store holds bytes for objects the engine does not track"
    );
    assert_eq!(stats.cached_objects, contents.len());
}

/// Short-fused resilient proxy config (the stress suite's, plus the
/// overload knobs this suite exercises).
fn chaos_config(origin: SocketAddr, capacity: f64) -> ProxyConfig {
    let mut config = ProxyConfig::new(origin, capacity);
    config.connect_timeout = Duration::from_millis(500);
    config.origin_read_timeout = Duration::from_millis(120);
    config.retry = RetryPolicy {
        max_attempts: 2,
        base_backoff: Duration::from_millis(5),
        max_backoff: Duration::from_millis(20),
        deadline: Duration::from_secs(2),
        jitter_seed: 7,
    };
    config.breaker = BreakerConfig {
        failure_threshold: 2,
        open_duration: Duration::from_millis(80),
    };
    config.client_write_timeout = Duration::from_secs(2);
    config.queue_deadline = Duration::from_secs(10);
    config
}

#[test]
fn seeded_schedules_are_byte_stable_across_reruns() {
    let profile = FaultProfile {
        refuse: 0.1,
        reset: 0.1,
        stall: 0.05,
        truncate: 0.1,
        fault_offset_max: 16 * 1024,
        stall_millis: 150,
    };
    for seed in [1u64, 7, 11, 23, 42] {
        assert_eq!(
            seeded_actions(seed, 64),
            seeded_actions(seed, 64),
            "client schedule for seed {seed} must replay identically"
        );
        // FaultPlan has no PartialEq; its Debug form lists every action.
        assert_eq!(
            format!("{:?}", FaultPlan::seeded(seed, 64, profile)),
            format!("{:?}", FaultPlan::seeded(seed, 64, profile)),
            "fault plan for seed {seed} must replay identically"
        );
    }
    assert_ne!(
        seeded_actions(1, 64),
        seeded_actions(2, 64),
        "different seeds must draw different schedules"
    );
}

/// The composed storm: seeded origin faults and seeded client misbehaviour
/// at the same time, across multiple seeds, invariants asserted after each.
#[test]
fn composed_chaos_preserves_invariants_across_seeds() {
    const OBJECTS: usize = 12;
    const OBJECT_BYTES: u64 = 32 * 1024;
    for seed in [11u64, 23] {
        let origin = OriginServer::start_with_faults(
            OriginConfig {
                objects: (0..OBJECTS)
                    .map(|i| ObjectSpec::new(format!("movie-{i}"), OBJECT_BYTES, 4e6))
                    .collect(),
                rate_limit_bps: 2e6,
            },
            FaultPlan::seeded(
                seed,
                48,
                FaultProfile {
                    refuse: 0.1,
                    reset: 0.1,
                    stall: 0.05,
                    truncate: 0.1,
                    fault_offset_max: 16 * 1024,
                    stall_millis: 150,
                },
            ),
        )
        .unwrap();
        let capacity = 6.0 * OBJECT_BYTES as f64;
        let mut config = chaos_config(origin.addr(), capacity);
        config.worker_threads = 3;
        config.max_origin_connections = 8;
        let mut proxy = CachingProxy::start(config).unwrap();
        let addr = proxy.addr();

        let threads = chaos_threads();
        let outcomes: Mutex<Vec<Outcome>> = Mutex::new(Vec::new());
        std::thread::scope(|scope| {
            for t in 0..threads {
                let outcomes = &outcomes;
                scope.spawn(move || {
                    let actions =
                        seeded_actions(seed.wrapping_mul(1_000).wrapping_add(t as u64), 10);
                    for (i, action) in actions.into_iter().enumerate() {
                        let name = format!("movie-{}", (t * 7 + i * 3) % OBJECTS);
                        let outcome = run_action(addr, &name, action);
                        outcomes.lock().unwrap().push(outcome);
                    }
                });
            }
        });
        let outcomes = outcomes.into_inner().unwrap();
        assert_eq!(outcomes.len(), threads * 10);

        // The pool survived the storm: a healthy origin (the fault plan is
        // exhausted or will be shortly) plus a live worker pool must serve
        // a plain fetch once the breaker's cooldown passes.
        let client = StreamingClient::new();
        let mut recovered = false;
        for _ in 0..20 {
            if let Ok(report) = client.fetch(addr, "movie-0") {
                assert!(report.content_ok, "post-chaos payload corruption");
                recovered = true;
                break;
            }
            std::thread::sleep(Duration::from_millis(100));
        }
        assert!(recovered, "the proxy never recovered after the storm");

        // Counter consistency against what the clients observed.
        let stats = proxy.stats();
        let served_full = outcomes
            .iter()
            .filter(|o| matches!(o, Outcome::ServedFull))
            .count() as u64;
        let busy = outcomes
            .iter()
            .filter(|o| matches!(o, Outcome::Busy(_)))
            .count() as u64;
        assert!(
            stats.requests >= served_full,
            "clients confirmed {served_full} full serves but the proxy counted {}",
            stats.requests
        );
        assert!(
            stats.shed_requests >= busy,
            "clients saw {busy} BUSY answers but the proxy counted {} sheds",
            stats.shed_requests
        );

        // The STATS verb reports the same counters the API snapshot does
        // (the pool is idle now, so the two snapshots must agree).
        let json = client.stats(addr).unwrap();
        for needle in [
            format!("\"requests\": {}", stats.requests),
            format!("\"shed_requests\": {}", stats.shed_requests),
            format!("\"client_timeouts\": {}", stats.client_timeouts),
            format!("\"cached_bytes\": {}", stats.cached_bytes),
            format!("\"degraded_hits\": {}", stats.degraded_hits),
        ] {
            assert!(json.contains(&needle), "STATS dump {json} missing {needle}");
        }

        // Byte accounting holds after the storm, and shutdown drains.
        assert_byte_accounting(&proxy, capacity);
        proxy.shutdown();
        let after = proxy.stats();
        assert_eq!(after.cached_bytes, proxy.stats().cached_bytes);
        assert!(after.requests >= stats.requests);
    }
}

/// A burst far beyond the in-flight cap: excess connections get `BUSY`
/// deterministically, the admitted ones are served correctly, and the
/// proxy recovers to full service afterwards.
#[test]
fn burst_beyond_capacity_sheds_with_busy_and_recovers() {
    const CLIENTS: usize = 12;
    let origin = OriginServer::start(OriginConfig {
        objects: vec![ObjectSpec::new("clip", 16 * 1024, 1e6)],
        rate_limit_bps: 0.0,
    })
    .unwrap();
    let mut config = ProxyConfig::new(origin.addr(), 1e9);
    config.worker_threads = 2;
    config.max_in_flight = 2;
    // Per-client pacing gives every request a ~250 ms service time, so the
    // burst genuinely exceeds capacity instead of draining instantly.
    config.client_rate_limit_bps = 64_000.0;
    config.queue_deadline = Duration::from_secs(10);
    let proxy = CachingProxy::start(config).unwrap();
    let addr = proxy.addr();

    let outcomes: Mutex<Vec<Outcome>> = Mutex::new(Vec::new());
    std::thread::scope(|scope| {
        for _ in 0..CLIENTS {
            let outcomes = &outcomes;
            scope.spawn(move || {
                let outcome = run_action(addr, "clip", ClientAction::Normal);
                outcomes.lock().unwrap().push(outcome);
            });
        }
    });
    let outcomes = outcomes.into_inner().unwrap();
    let served = outcomes
        .iter()
        .filter(|o| matches!(o, Outcome::ServedFull))
        .count();
    let busy = outcomes
        .iter()
        .filter(|o| matches!(o, Outcome::Busy(_)))
        .count();
    let closed = outcomes
        .iter()
        .filter(|o| matches!(o, Outcome::Closed))
        .count();
    assert_eq!(
        served + busy + closed,
        CLIENTS,
        "unexpected outcome mix: {outcomes:?}"
    );
    assert!(served >= 1, "the admitted requests must be served");
    assert!(busy >= 1, "a 6× burst over the cap must shed");
    let stats = proxy.stats();
    assert!(
        stats.shed_requests >= busy as u64,
        "every BUSY answer must be counted"
    );

    // The burst over, admission is open again.
    let report = StreamingClient::new().fetch(addr, "clip").unwrap();
    assert!(report.content_ok);
    assert_eq!(report.bytes, 16 * 1024);
}

/// Requests that outwait the queue deadline are shed by the workers with
/// the deadline-derived retry pause, and the wait/depth gauges move.
#[test]
fn queue_deadline_sheds_stale_requests_with_busy() {
    const CLIENTS: usize = 6;
    let origin = OriginServer::start(OriginConfig {
        objects: vec![ObjectSpec::new("clip", 16 * 1024, 1e6)],
        rate_limit_bps: 0.0,
    })
    .unwrap();
    let mut config = ProxyConfig::new(origin.addr(), 1e9);
    config.worker_threads = 1;
    config.client_rate_limit_bps = 64_000.0; // ~250 ms per request
    config.queue_deadline = Duration::from_millis(100);
    let proxy = CachingProxy::start(config).unwrap();
    let addr = proxy.addr();

    let outcomes: Mutex<Vec<Outcome>> = Mutex::new(Vec::new());
    std::thread::scope(|scope| {
        for _ in 0..CLIENTS {
            let outcomes = &outcomes;
            scope.spawn(move || {
                let outcome = run_action(addr, "clip", ClientAction::Normal);
                outcomes.lock().unwrap().push(outcome);
            });
        }
    });
    let outcomes = outcomes.into_inner().unwrap();
    let busy: Vec<u64> = outcomes
        .iter()
        .filter_map(|o| match o {
            Outcome::Busy(ms) => Some(*ms),
            _ => None,
        })
        .collect();
    assert!(
        !busy.is_empty(),
        "a single slow worker must shed stale queue entries: {outcomes:?}"
    );
    for ms in &busy {
        assert_eq!(*ms, 50, "retry-after must be half the queue deadline");
    }
    let stats = proxy.stats();
    assert!(stats.shed_requests >= busy.len() as u64);
    assert!(
        stats.queue_wait_micros >= 100_000,
        "shed requests waited at least one deadline: {} µs",
        stats.queue_wait_micros
    );
    assert!(stats.peak_queue_depth >= 1);
}

/// A reader that stalls mid-download is cut off by the per-write timeout,
/// counted, and does not wedge the pool for well-behaved clients.
#[test]
fn stalled_reader_is_disconnected_counted_and_does_not_wedge_the_pool() {
    const BIG: u64 = 4 * 1024 * 1024;
    let origin = OriginServer::start(OriginConfig {
        objects: vec![ObjectSpec::new("big", BIG, 8e6)],
        rate_limit_bps: 0.0,
    })
    .unwrap();
    let mut config = ProxyConfig::new(origin.addr(), 1e9);
    // IF caches whole objects regardless of the bandwidth estimate, so the
    // stalled read below is served from cache and stalls on the *client*
    // write path, not the origin.
    config.policy = PolicyKind::IntegralFrequency;
    config.worker_threads = 2;
    config.client_write_timeout = Duration::from_millis(200);
    let proxy = CachingProxy::start(config).unwrap();
    let addr = proxy.addr();

    let client = StreamingClient::new();
    let warm = client.fetch(addr, "big").unwrap();
    assert_eq!(warm.bytes, BIG);
    assert_eq!(proxy.cached_prefix_len("big") as u64, BIG);

    // The wedged client: request the object, read a token amount, then
    // stop reading entirely. The proxy's 4 MB of writes overwhelm the
    // socket buffers and the write timeout fires.
    let stream = TcpStream::connect(addr).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut writer = BufWriter::new(stream);
    writer.write_all(b"GET big 0\n").unwrap();
    writer.flush().unwrap();
    let mut token = [0u8; 1024];
    let _ = reader.read(&mut token).unwrap();
    std::thread::sleep(Duration::from_millis(900));

    // While the wedged client still holds its socket, a healthy client is
    // served in full: the pool was not wedged.
    let healthy = client.fetch(addr, "big").unwrap();
    assert_eq!(healthy.bytes, BIG);
    assert!(healthy.content_ok);
    assert!(
        proxy.stats().client_timeouts >= 1,
        "the stalled reader must surface as a counted client timeout"
    );
    drop(reader);
    drop(writer);
}

/// The STATS verb on a quiet proxy: counters match the API snapshot and
/// requests are not inflated by the scrape itself.
#[test]
fn stats_verb_dumps_the_snapshot_without_counting_as_a_request() {
    let origin = OriginServer::start(OriginConfig {
        objects: vec![ObjectSpec::new("clip", 8 * 1024, 1e6)],
        rate_limit_bps: 0.0,
    })
    .unwrap();
    let proxy = CachingProxy::start(ProxyConfig::new(origin.addr(), 1e9)).unwrap();
    let client = StreamingClient::new();
    client.fetch(proxy.addr(), "clip").unwrap();
    client.fetch(proxy.addr(), "clip").unwrap();

    let json = client.stats(proxy.addr()).unwrap();
    assert_eq!(json, proxy.stats().to_json());
    assert!(json.contains("\"requests\": 2"));
    // Scraping is free: a second scrape reports the same request count.
    let again = client.stats(proxy.addr()).unwrap();
    assert!(again.contains("\"requests\": 2"));
}
