//! Multi-client stress tests of the worker-pool proxy: concurrent requests
//! over a shared catalog, with byte-accounting consistency between the
//! cache engine's grants and the prefix store checked after the load
//! drains. The store is reconciled from the engine's delta log, so these
//! invariants are exactly what the O(changes) reconciliation must
//! preserve against the old full-`contents()` rescan semantics.

use sc_cache::policy::PolicyKind;
use sc_proxy::{
    BreakerConfig, BreakerState, CachingProxy, FaultAction, FaultPlan, ObjectSpec, OriginConfig,
    OriginServer, ProxyConfig, RetryPolicy, StreamingClient,
};
use std::time::Duration;

/// Asserts the engine/store byte-accounting invariants on a drained proxy:
/// every store entry belongs to a live engine entry and never exceeds the
/// engine's grant, no store bytes exist outside engine-tracked entries,
/// and the engine respects its capacity.
fn assert_byte_accounting(proxy: &CachingProxy, capacity_bytes: f64) {
    let contents = proxy.contents();
    let mut engine_total = 0.0;
    let mut store_total = 0usize;
    for (name, engine_bytes, store_bytes) in &contents {
        assert!(!name.is_empty(), "engine entry without a registered name");
        assert!(
            *store_bytes as f64 <= engine_bytes.ceil(),
            "store holds {store_bytes} B of `{name}` but the engine granted only {engine_bytes}"
        );
        engine_total += engine_bytes;
        store_total += store_bytes;
    }
    assert!(
        engine_total <= capacity_bytes + 1e-6,
        "engine over capacity: {engine_total} > {capacity_bytes}"
    );
    // No orphans: every byte the store holds is accounted to a live engine
    // entry (store mutations are serialized under the engine lock).
    let stats = proxy.stats();
    assert_eq!(
        stats.cached_bytes as usize, store_total,
        "store holds bytes for objects the engine does not track"
    );
    assert_eq!(stats.cached_objects, contents.len());
}

#[test]
fn concurrent_clients_shared_catalog_accounting_stays_consistent() {
    const OBJECTS: u32 = 24;
    const OBJECT_BYTES: u64 = 32 * 1024;
    const BITRATE: f64 = 4e6; // bit-rate far above the path: PB caches prefixes
    let specs: Vec<ObjectSpec> = (0..OBJECTS)
        .map(|i| ObjectSpec::new(format!("movie-{i}"), OBJECT_BYTES, BITRATE))
        .collect();
    let origin = OriginServer::start(OriginConfig {
        objects: specs,
        rate_limit_bps: 2e6,
    })
    .unwrap();
    // Capacity for roughly six whole objects: admissions and evictions
    // churn continuously under the shared catalog.
    let capacity = 6.0 * OBJECT_BYTES as f64;
    let mut config = ProxyConfig::new(origin.addr(), capacity);
    config.worker_threads = 4;
    config.max_origin_connections = 8;
    let proxy = CachingProxy::start(config).unwrap();
    let addr = proxy.addr();

    std::thread::scope(|scope| {
        for c in 0..8usize {
            scope.spawn(move || {
                let client = StreamingClient::new();
                for r in 0..12usize {
                    // Zipf-ish skew: low object ids are requested often,
                    // the tail rarely — steady eviction pressure.
                    let id = ((c + r * 7) % 36).min((OBJECTS - 1) as usize);
                    let report = client.fetch(addr, &format!("movie-{id}")).unwrap();
                    assert!(report.content_ok, "payload corruption under load");
                    assert_eq!(report.bytes, OBJECT_BYTES);
                }
            });
        }
    });

    let stats = proxy.stats();
    assert_eq!(stats.requests, 8 * 12);
    assert!(stats.bytes_from_origin > 0);
    assert_byte_accounting(&proxy, capacity);
}

#[test]
fn tiny_worker_pool_and_origin_budget_still_serve_everyone() {
    // 1 worker and 1 origin permit: everything serializes but nothing
    // deadlocks, drops or corrupts.
    let origin = OriginServer::start(OriginConfig {
        objects: (0..6)
            .map(|i| ObjectSpec::new(format!("clip-{i}"), 16 * 1024, 1e6))
            .collect(),
        rate_limit_bps: 0.0,
    })
    .unwrap();
    let mut config = ProxyConfig::new(origin.addr(), 1e9);
    config.worker_threads = 1;
    config.accept_queue_len = 4;
    config.max_origin_connections = 1;
    let proxy = CachingProxy::start(config).unwrap();
    let addr = proxy.addr();

    std::thread::scope(|scope| {
        for c in 0..6usize {
            scope.spawn(move || {
                let client = StreamingClient::new();
                for r in 0..4usize {
                    let report = client
                        .fetch(addr, &format!("clip-{}", (c + r) % 6))
                        .unwrap();
                    assert!(report.content_ok);
                }
            });
        }
    });
    assert_eq!(proxy.stats().requests, 24);
    assert_byte_accounting(&proxy, 1e9);
}

#[test]
fn graceful_shutdown_drains_and_joins() {
    let origin = OriginServer::start(OriginConfig {
        objects: vec![ObjectSpec::new("clip", 64 * 1024, 1e6)],
        rate_limit_bps: 0.0,
    })
    .unwrap();
    let mut proxy = CachingProxy::start(ProxyConfig::new(origin.addr(), 1e9)).unwrap();
    let client = StreamingClient::new();
    for _ in 0..3 {
        client.fetch(proxy.addr(), "clip").unwrap();
    }
    let before = proxy.stats();
    proxy.shutdown();
    // Shutdown is idempotent and the stats survive it.
    proxy.shutdown();
    assert_eq!(proxy.stats().requests, before.requests);
    // New connections are refused once shut down: either the connect fails
    // outright or the connection is dropped without a response.
    assert!(client.fetch(proxy.addr(), "clip").is_err());
}

/// A proxy config with test-friendly resilience bounds: short per-attempt
/// timeouts, two attempts with millisecond backoff, and a breaker that
/// trips after two consecutive failures and cools down in 80 ms.
fn resilient_config(origin: std::net::SocketAddr, capacity: f64) -> ProxyConfig {
    let mut config = ProxyConfig::new(origin, capacity);
    config.connect_timeout = Duration::from_millis(500);
    config.origin_read_timeout = Duration::from_millis(120);
    config.retry = RetryPolicy {
        max_attempts: 2,
        base_backoff: Duration::from_millis(5),
        max_backoff: Duration::from_millis(20),
        deadline: Duration::from_secs(2),
        jitter_seed: 7,
    };
    config.breaker = BreakerConfig {
        failure_threshold: 2,
        open_duration: Duration::from_millis(80),
    };
    config
}

#[test]
fn refused_connection_is_retried_and_served_in_full() {
    let origin = OriginServer::start_with_faults(
        OriginConfig {
            objects: vec![ObjectSpec::new("clip", 32 * 1024, 1e6)],
            rate_limit_bps: 0.0,
        },
        FaultPlan::from_actions(vec![FaultAction::Refuse]),
    )
    .unwrap();
    let proxy = CachingProxy::start(resilient_config(origin.addr(), 1e9)).unwrap();
    let report = StreamingClient::new().fetch(proxy.addr(), "clip").unwrap();
    assert_eq!(report.bytes, 32 * 1024);
    assert!(report.content_ok);
    assert!(!report.degraded, "a successful retry is not degraded");
    let stats = proxy.stats();
    assert!(stats.origin_retries >= 1, "the refusal must cost a retry");
    assert_eq!(stats.degraded_hits, 0);
    assert_eq!(proxy.breaker_state(), BreakerState::Closed);
}

#[test]
fn full_outage_serves_degraded_prefix_and_breaker_recovers_half_open() {
    // A bandwidth-starved object so PB caches a substantial prefix, then a
    // full outage window: connection 0 warms the cache, connections 1–2
    // are refused (exactly the proxy's two attempts), everything after is
    // healthy again.
    let origin = OriginServer::start_with_faults(
        OriginConfig {
            objects: vec![ObjectSpec::new("clip", 240_000, 480_000.0)],
            rate_limit_bps: 160_000.0,
        },
        FaultPlan::from_actions(vec![
            FaultAction::None,
            FaultAction::Refuse,
            FaultAction::Refuse,
        ]),
    )
    .unwrap();
    let mut config = resilient_config(origin.addr(), 10_000_000.0);
    // A wide-open window so the fast-fail fetch below cannot race the
    // breaker into half-open on a slow machine.
    config.breaker.open_duration = Duration::from_millis(400);
    let proxy = CachingProxy::start(config).unwrap();
    let client = StreamingClient::new();

    // Warm the prefix over the healthy connection.
    let warm = client.fetch(proxy.addr(), "clip").unwrap();
    assert!(warm.content_ok && !warm.degraded);
    let prefix = proxy.cached_prefix_len("clip");
    assert!(
        prefix > 0 && prefix < 240_000,
        "PB must cache a strict prefix"
    );

    // Outage: both attempts are refused, the breaker trips open, and the
    // request degrades to the cached prefix — range-correct and byte-exact.
    let masked = client.fetch(proxy.addr(), "clip").unwrap();
    assert!(masked.degraded, "outage must be flagged on the wire");
    assert_eq!(masked.bytes as usize, prefix, "degraded hit is byte-exact");
    assert!(masked.content_ok, "degraded prefix content must verify");
    assert_eq!(proxy.breaker_state(), BreakerState::Open);

    // While open the breaker fails fast: another degraded hit without a
    // single new origin connection.
    let dialed_before = origin.fault_connections_seen();
    let fast = client.fetch(proxy.addr(), "clip").unwrap();
    assert!(fast.degraded);
    assert_eq!(fast.bytes as usize, prefix);
    assert_eq!(
        origin.fault_connections_seen(),
        dialed_before,
        "an open breaker must not dial the origin"
    );

    // After the cool-down the half-open probe finds a healthy origin and
    // the breaker closes: full content again.
    std::thread::sleep(Duration::from_millis(500));
    let recovered = client.fetch(proxy.addr(), "clip").unwrap();
    assert!(!recovered.degraded);
    assert_eq!(recovered.bytes, 240_000);
    assert!(recovered.content_ok);
    assert_eq!(proxy.breaker_state(), BreakerState::Closed);

    let stats = proxy.stats();
    assert_eq!(stats.degraded_hits, 2);
    assert!(stats.origin_retries >= 1);
    assert!(
        stats.breaker_transitions >= 3,
        "closed→open, open→half-open, half-open→closed"
    );
}

#[test]
fn origin_death_degrades_warm_objects_and_errors_cold_ones() {
    let mut origin = OriginServer::start(OriginConfig {
        objects: vec![ObjectSpec::new("clip", 240_000, 480_000.0)],
        rate_limit_bps: 160_000.0,
    })
    .unwrap();
    let proxy = CachingProxy::start(resilient_config(origin.addr(), 10_000_000.0)).unwrap();
    let client = StreamingClient::new();
    client.fetch(proxy.addr(), "clip").unwrap();
    let prefix = proxy.cached_prefix_len("clip");
    assert!(prefix > 0);

    // Kill the origin outright: dials now fail at the connect level.
    origin.shutdown();
    drop(origin);

    let masked = client.fetch(proxy.addr(), "clip").unwrap();
    assert!(masked.degraded);
    assert_eq!(masked.bytes as usize, prefix);
    assert!(masked.content_ok);
    // No cached prefix and no metadata: nothing can mask the outage.
    assert!(client.fetch(proxy.addr(), "ghost").is_err());
    assert!(proxy.stats().degraded_hits >= 1);
}

#[test]
fn mid_stream_faults_are_resumed_transparently() {
    // Three cold fetches, each hitting a different mid-stream fault on its
    // first connection: a truncated response, an abrupt reset, and a
    // slow-loris stall longer than the proxy's read timeout. Every resume
    // reconnects at the exact broken offset, so the client still sees full,
    // verified content.
    let origin = OriginServer::start_with_faults(
        OriginConfig {
            objects: (0..3)
                .map(|i| ObjectSpec::new(format!("clip-{i}"), 64 * 1024, 1e6))
                .collect(),
            rate_limit_bps: 0.0,
        },
        FaultPlan::from_actions(vec![
            FaultAction::TruncateAfter(8_192),
            FaultAction::None,
            FaultAction::ResetAfter(4_096),
            FaultAction::None,
            FaultAction::StallAt {
                offset: 16_384,
                millis: 400,
            },
            FaultAction::None,
        ]),
    )
    .unwrap();
    let proxy = CachingProxy::start(resilient_config(origin.addr(), 1e9)).unwrap();
    let client = StreamingClient::new();
    for i in 0..3 {
        let report = client.fetch(proxy.addr(), &format!("clip-{i}")).unwrap();
        assert_eq!(report.bytes, 64 * 1024, "clip-{i} must arrive in full");
        assert!(
            report.content_ok,
            "clip-{i} content must survive the resume"
        );
        assert!(!report.degraded);
    }
    let stats = proxy.stats();
    assert_eq!(
        stats.origin_resumes, 3,
        "each fault costs exactly one resume"
    );
    assert_byte_accounting(&proxy, 1e9);
}

#[test]
fn graceful_shutdown_mid_outage_drains_and_joins() {
    let origin = OriginServer::start_with_faults(
        OriginConfig {
            objects: vec![ObjectSpec::new("clip", 240_000, 480_000.0)],
            rate_limit_bps: 160_000.0,
        },
        FaultPlan::refuse_window(1, 64),
    )
    .unwrap();
    let mut config = resilient_config(origin.addr(), 10_000_000.0);
    // Long enough for the shutdown to land mid-retry-loop.
    config.retry.deadline = Duration::from_millis(400);
    config.retry.max_attempts = 16;
    config.breaker.failure_threshold = 1_000; // keep it retrying, not tripping
    let mut proxy = CachingProxy::start(config).unwrap();
    let client = StreamingClient::new();
    client.fetch(proxy.addr(), "clip").unwrap();
    let prefix = proxy.cached_prefix_len("clip");
    assert!(prefix > 0);

    // One request enters the outage (it will spin in the retry loop), then
    // the proxy shuts down while it is in flight: shutdown must drain the
    // request — served degraded from the prefix — and join every worker.
    let addr = proxy.addr();
    let in_flight = std::thread::spawn(move || StreamingClient::new().fetch(addr, "clip"));
    std::thread::sleep(Duration::from_millis(60));
    proxy.shutdown();
    let report = in_flight
        .join()
        .unwrap()
        .expect("the in-flight request must be drained, not dropped");
    assert!(report.degraded);
    assert_eq!(report.bytes as usize, prefix);
    assert!(report.content_ok);
    assert_eq!(proxy.stats().degraded_hits, 1);
}

#[test]
fn integral_policy_under_concurrency_caches_whole_objects() {
    const OBJECTS: u32 = 8;
    const OBJECT_BYTES: u64 = 16 * 1024;
    let origin = OriginServer::start(OriginConfig {
        objects: (0..OBJECTS)
            .map(|i| ObjectSpec::new(format!("clip-{i}"), OBJECT_BYTES, 1e6))
            .collect(),
        rate_limit_bps: 0.0,
    })
    .unwrap();
    let mut config = ProxyConfig::new(origin.addr(), 1e9);
    config.policy = PolicyKind::IntegralFrequency;
    let proxy = CachingProxy::start(config).unwrap();
    let addr = proxy.addr();

    std::thread::scope(|scope| {
        for c in 0..4usize {
            scope.spawn(move || {
                let client = StreamingClient::new();
                for r in 0..8usize {
                    let id = (c * 2 + r) as u32 % OBJECTS;
                    let report = client.fetch(addr, &format!("clip-{id}")).unwrap();
                    assert!(report.content_ok);
                }
            });
        }
    });

    // Ample capacity + integral policy: every requested object ends up
    // fully cached, and the accounting matches exactly.
    for i in 0..OBJECTS {
        assert_eq!(
            proxy.cached_prefix_len(&format!("clip-{i}")),
            OBJECT_BYTES as usize,
            "clip-{i} not fully cached"
        );
    }
    assert_byte_accounting(&proxy, 1e9);
}
