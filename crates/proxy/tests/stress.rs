//! Multi-client stress tests of the worker-pool proxy: concurrent requests
//! over a shared catalog, with byte-accounting consistency between the
//! cache engine's grants and the prefix store checked after the load
//! drains. The store is reconciled from the engine's delta log, so these
//! invariants are exactly what the O(changes) reconciliation must
//! preserve against the old full-`contents()` rescan semantics.

use sc_cache::policy::PolicyKind;
use sc_proxy::{
    CachingProxy, ObjectSpec, OriginConfig, OriginServer, ProxyConfig, StreamingClient,
};

/// Asserts the engine/store byte-accounting invariants on a drained proxy:
/// every store entry belongs to a live engine entry and never exceeds the
/// engine's grant, no store bytes exist outside engine-tracked entries,
/// and the engine respects its capacity.
fn assert_byte_accounting(proxy: &CachingProxy, capacity_bytes: f64) {
    let contents = proxy.contents();
    let mut engine_total = 0.0;
    let mut store_total = 0usize;
    for (name, engine_bytes, store_bytes) in &contents {
        assert!(!name.is_empty(), "engine entry without a registered name");
        assert!(
            *store_bytes as f64 <= engine_bytes.ceil(),
            "store holds {store_bytes} B of `{name}` but the engine granted only {engine_bytes}"
        );
        engine_total += engine_bytes;
        store_total += store_bytes;
    }
    assert!(
        engine_total <= capacity_bytes + 1e-6,
        "engine over capacity: {engine_total} > {capacity_bytes}"
    );
    // No orphans: every byte the store holds is accounted to a live engine
    // entry (store mutations are serialized under the engine lock).
    let stats = proxy.stats();
    assert_eq!(
        stats.cached_bytes as usize, store_total,
        "store holds bytes for objects the engine does not track"
    );
    assert_eq!(stats.cached_objects, contents.len());
}

#[test]
fn concurrent_clients_shared_catalog_accounting_stays_consistent() {
    const OBJECTS: u32 = 24;
    const OBJECT_BYTES: u64 = 32 * 1024;
    const BITRATE: f64 = 4e6; // bit-rate far above the path: PB caches prefixes
    let specs: Vec<ObjectSpec> = (0..OBJECTS)
        .map(|i| ObjectSpec::new(format!("movie-{i}"), OBJECT_BYTES, BITRATE))
        .collect();
    let origin = OriginServer::start(OriginConfig {
        objects: specs,
        rate_limit_bps: 2e6,
    })
    .unwrap();
    // Capacity for roughly six whole objects: admissions and evictions
    // churn continuously under the shared catalog.
    let capacity = 6.0 * OBJECT_BYTES as f64;
    let mut config = ProxyConfig::new(origin.addr(), capacity);
    config.worker_threads = 4;
    config.max_origin_connections = 8;
    let proxy = CachingProxy::start(config).unwrap();
    let addr = proxy.addr();

    std::thread::scope(|scope| {
        for c in 0..8usize {
            scope.spawn(move || {
                let client = StreamingClient::new();
                for r in 0..12usize {
                    // Zipf-ish skew: low object ids are requested often,
                    // the tail rarely — steady eviction pressure.
                    let id = ((c + r * 7) % 36).min((OBJECTS - 1) as usize);
                    let report = client.fetch(addr, &format!("movie-{id}")).unwrap();
                    assert!(report.content_ok, "payload corruption under load");
                    assert_eq!(report.bytes, OBJECT_BYTES);
                }
            });
        }
    });

    let stats = proxy.stats();
    assert_eq!(stats.requests, 8 * 12);
    assert!(stats.bytes_from_origin > 0);
    assert_byte_accounting(&proxy, capacity);
}

#[test]
fn tiny_worker_pool_and_origin_budget_still_serve_everyone() {
    // 1 worker and 1 origin permit: everything serializes but nothing
    // deadlocks, drops or corrupts.
    let origin = OriginServer::start(OriginConfig {
        objects: (0..6)
            .map(|i| ObjectSpec::new(format!("clip-{i}"), 16 * 1024, 1e6))
            .collect(),
        rate_limit_bps: 0.0,
    })
    .unwrap();
    let mut config = ProxyConfig::new(origin.addr(), 1e9);
    config.worker_threads = 1;
    config.accept_queue_len = 4;
    config.max_origin_connections = 1;
    let proxy = CachingProxy::start(config).unwrap();
    let addr = proxy.addr();

    std::thread::scope(|scope| {
        for c in 0..6usize {
            scope.spawn(move || {
                let client = StreamingClient::new();
                for r in 0..4usize {
                    let report = client
                        .fetch(addr, &format!("clip-{}", (c + r) % 6))
                        .unwrap();
                    assert!(report.content_ok);
                }
            });
        }
    });
    assert_eq!(proxy.stats().requests, 24);
    assert_byte_accounting(&proxy, 1e9);
}

#[test]
fn graceful_shutdown_drains_and_joins() {
    let origin = OriginServer::start(OriginConfig {
        objects: vec![ObjectSpec::new("clip", 64 * 1024, 1e6)],
        rate_limit_bps: 0.0,
    })
    .unwrap();
    let mut proxy = CachingProxy::start(ProxyConfig::new(origin.addr(), 1e9)).unwrap();
    let client = StreamingClient::new();
    for _ in 0..3 {
        client.fetch(proxy.addr(), "clip").unwrap();
    }
    let before = proxy.stats();
    proxy.shutdown();
    // Shutdown is idempotent and the stats survive it.
    proxy.shutdown();
    assert_eq!(proxy.stats().requests, before.requests);
    // New connections are refused once shut down: either the connect fails
    // outright or the connection is dropped without a response.
    assert!(client.fetch(proxy.addr(), "clip").is_err());
}

#[test]
fn integral_policy_under_concurrency_caches_whole_objects() {
    const OBJECTS: u32 = 8;
    const OBJECT_BYTES: u64 = 16 * 1024;
    let origin = OriginServer::start(OriginConfig {
        objects: (0..OBJECTS)
            .map(|i| ObjectSpec::new(format!("clip-{i}"), OBJECT_BYTES, 1e6))
            .collect(),
        rate_limit_bps: 0.0,
    })
    .unwrap();
    let mut config = ProxyConfig::new(origin.addr(), 1e9);
    config.policy = PolicyKind::IntegralFrequency;
    let proxy = CachingProxy::start(config).unwrap();
    let addr = proxy.addr();

    std::thread::scope(|scope| {
        for c in 0..4usize {
            scope.spawn(move || {
                let client = StreamingClient::new();
                for r in 0..8usize {
                    let id = (c * 2 + r) as u32 % OBJECTS;
                    let report = client.fetch(addr, &format!("clip-{id}")).unwrap();
                    assert!(report.content_ok);
                }
            });
        }
    });

    // Ample capacity + integral policy: every requested object ends up
    // fully cached, and the accounting matches exactly.
    for i in 0..OBJECTS {
        assert_eq!(
            proxy.cached_prefix_len(&format!("clip-{i}")),
            OBJECT_BYTES as usize,
            "clip-{i} not fully cached"
        );
    }
    assert_byte_accounting(&proxy, 1e9);
}
