//! Seeded malformed-input property tests for the wire protocol.
//!
//! The parsers in `sc_proxy::protocol` promise three things for arbitrary
//! input: they never panic, they never read unboundedly (every line is
//! capped at [`MAX_LINE_BYTES`]), and a failure is a clean
//! `ProxyError::Protocol`/`Io`, never garbage silently accepted. These
//! tests drive the parsers — and a live proxy socket — with seeded
//! pseudo-random junk so every failure reproduces from its seed.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sc_proxy::protocol::{
    read_command, read_response, write_request, Command, Request, Response, MAX_LINE_BYTES,
};
use sc_proxy::{
    CachingProxy, ObjectSpec, OriginConfig, OriginServer, ProxyConfig, StreamingClient,
};
use std::io::{BufReader, Cursor, Read, Write};
use std::net::{Shutdown, TcpStream};
use std::time::Duration;

/// Draws a junk byte string: arbitrary bytes (newlines included) with a
/// length biased around the line bound so both sides of the limit are hit.
fn junk_bytes(rng: &mut StdRng) -> Vec<u8> {
    let len = match rng.gen_range(0u32..4) {
        0 => rng.gen_range(0..32),
        1 => rng.gen_range(0..MAX_LINE_BYTES),
        2 => rng.gen_range(MAX_LINE_BYTES - 8..MAX_LINE_BYTES + 8),
        _ => rng.gen_range(MAX_LINE_BYTES..4 * MAX_LINE_BYTES),
    };
    (0..len).map(|_| rng.gen_range(0u8..=255)).collect()
}

#[test]
fn seeded_junk_never_panics_the_parsers() {
    for seed in 0u64..64 {
        let mut rng = StdRng::seed_from_u64(seed);
        for round in 0..64 {
            let junk = junk_bytes(&mut rng);
            // Either outcome is fine; panicking or hanging is not. The
            // Cursor is finite, so termination here plus the explicit
            // oversized-line tests below covers the bounded-read claim.
            let _ = read_command(&mut Cursor::new(junk.clone()));
            let _ = read_response(&mut Cursor::new(junk.clone()));
            // Whatever happened, a well-formed command still parses on a
            // fresh reader: the parsers hold no hidden state.
            match read_command(&mut Cursor::new(b"GET movie 42\n".to_vec())) {
                Ok(Command::Get(req)) => {
                    assert_eq!(req.name, "movie");
                    assert_eq!(req.offset, 42);
                }
                other => panic!("seed {seed} round {round}: valid GET parsed as {other:?}"),
            }
        }
    }
}

#[test]
fn mutated_valid_lines_parse_or_fail_cleanly() {
    for seed in 0u64..64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut line = b"GET movie-7 1024\n".to_vec();
        for _ in 0..48 {
            // One random edit per round: flip, insert or delete a byte.
            match rng.gen_range(0u32..3) {
                0 => {
                    let i = rng.gen_range(0..line.len());
                    line[i] ^= 1u8 << rng.gen_range(0u32..8);
                }
                1 => {
                    let i = rng.gen_range(0..=line.len());
                    line.insert(i, rng.gen_range(0u8..=255));
                }
                _ if line.len() > 1 => {
                    let i = rng.gen_range(0..line.len());
                    line.remove(i);
                }
                _ => {}
            }
            if let Ok(Command::Get(req)) = read_command(&mut Cursor::new(line.clone())) {
                // Accepted input must round-trip: whatever the parser made
                // of the mutated bytes re-serialises and re-parses equal.
                let mut rewritten = Vec::new();
                write_request(&mut rewritten, &req).expect("accepted request must re-serialise");
                match read_command(&mut Cursor::new(rewritten)) {
                    Ok(Command::Get(again)) => assert_eq!(req, again, "seed {seed}"),
                    other => panic!("seed {seed}: round-trip failed: {other:?}"),
                }
            }
        }
    }
}

#[test]
fn junk_ok_headers_never_yield_inconsistent_responses() {
    for seed in 0u64..32 {
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..64 {
            let mut line = Vec::new();
            line.extend_from_slice(b"OK ");
            let junk = junk_bytes(&mut rng);
            line.extend_from_slice(&junk[..junk.len().min(64)]);
            line.push(b'\n');
            if let Ok(Response::Ok { bitrate_bps, .. }) = read_response(&mut Cursor::new(line)) {
                // If the parser accepted it, the numeric fields must have
                // actually parsed — NaN would poison every downstream rate
                // computation.
                assert!(!bitrate_bps.is_nan(), "seed {seed}: NaN bitrate accepted");
            }
        }
    }
}

#[test]
fn live_proxy_answers_junk_with_err_or_close_and_keeps_serving() {
    let origin = OriginServer::start(OriginConfig {
        objects: vec![ObjectSpec::new("movie", 16 * 1024, 1e6)],
        rate_limit_bps: 0.0,
    })
    .expect("origin start");
    let mut config = ProxyConfig::new(origin.addr(), 1e9);
    config.worker_threads = 2;
    let mut proxy = CachingProxy::start(config).expect("proxy start");
    let client = StreamingClient::new();

    for seed in 0u64..24 {
        let mut rng = StdRng::seed_from_u64(0xBAD_F00D ^ seed);
        let junk = junk_bytes(&mut rng);
        let stream = TcpStream::connect(proxy.addr()).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .expect("read timeout");
        let mut writer = stream.try_clone().expect("clone");
        // The proxy may rightfully close mid-write on oversized garbage;
        // a send error is an acceptable outcome, not a test failure.
        let _ = writer.write_all(&junk);
        let _ = writer.flush();
        let _ = stream.shutdown(Shutdown::Write);
        let mut reply = Vec::new();
        let mut reader = BufReader::new(stream);
        reader.read_to_end(&mut reply).expect("junk reply read");
        // Whatever came back is a bounded protocol answer (possibly
        // nothing), never a payload stream leaked for a request that was
        // never made.
        let text = String::from_utf8_lossy(&reply);
        assert!(
            reply.is_empty() || text.starts_with("ERR ") || text.starts_with("BUSY "),
            "seed {seed}: junk produced a non-error reply: {text:?}"
        );
        assert!(
            reply.len() <= 2 * MAX_LINE_BYTES,
            "seed {seed}: unbounded reply to junk ({} bytes)",
            reply.len()
        );

        // The worker that handled the garbage is immediately healthy again.
        let report = client
            .fetch(proxy.addr(), "movie")
            .expect("fetch after junk");
        assert!(report.content_ok, "seed {seed}: content corrupted by junk");
        assert_eq!(report.bytes, 16 * 1024);
    }

    let stats = proxy.stats();
    assert!(stats.requests >= 24, "served fetches must all be counted");
    proxy.shutdown();
}

#[test]
fn oversized_request_lines_are_rejected_not_buffered() {
    // A "line" that never ends must be rejected after MAX_LINE_BYTES, not
    // accumulated: reading from an endless source terminates with an error.
    let endless = std::io::repeat(b'A');
    let mut reader = BufReader::new(endless.take(64 * 1024));
    let err = read_command(&mut reader).expect_err("endless line must be rejected");
    let msg = err.to_string();
    assert!(
        msg.contains("line") || msg.contains("long") || msg.contains("protocol"),
        "unexpected error for oversized line: {msg}"
    );
    let err = read_response(&mut BufReader::new(std::io::repeat(b'B').take(64 * 1024)))
        .expect_err("endless response line must be rejected");
    let _ = err.to_string();

    // An oversized but newline-terminated request is equally rejected.
    let mut big = vec![b'G'; 2 * MAX_LINE_BYTES];
    big.push(b'\n');
    assert!(read_command(&mut Cursor::new(big)).is_err());

    // And write_request refuses to produce such a line in the first place.
    let long_name = "x".repeat(2 * MAX_LINE_BYTES);
    let err = write_request(
        &mut Vec::new(),
        &Request {
            name: long_name,
            offset: 0,
        },
    )
    .expect_err("oversized name must not serialise");
    let _ = err.to_string();
}
