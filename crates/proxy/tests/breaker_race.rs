//! Concurrency tests pinning the circuit breaker's half-open gate.
//!
//! The breaker's contract under contention: a cooled-down open breaker
//! admits *exactly one* probe no matter how many threads race `allow()`;
//! `release_probe` hands the slot to at most one successor; and a failed
//! probe re-opens the breaker so the cooldown restarts. These are the
//! invariants the proxy's origin path leans on — a double-admitted probe
//! would stampede a recovering origin, a lost slot would wedge the breaker
//! half-open forever.

use sc_proxy::{BreakerConfig, BreakerState, CircuitBreaker};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Barrier};
use std::time::Duration;

const RACERS: usize = 16;

/// Trips the breaker open and waits out the cooldown so the next `allow`
/// race is over a half-open-eligible breaker.
fn trip_and_cool(breaker: &CircuitBreaker, open_duration: Duration) {
    breaker.record_failure();
    assert_eq!(breaker.state(), BreakerState::Open);
    std::thread::sleep(open_duration + Duration::from_millis(10));
}

/// Races `RACERS` threads through `allow()` from a shared barrier and
/// returns how many were admitted.
fn race_allow(breaker: &Arc<CircuitBreaker>) -> usize {
    let admitted = AtomicUsize::new(0);
    let barrier = Barrier::new(RACERS);
    std::thread::scope(|scope| {
        for _ in 0..RACERS {
            scope.spawn(|| {
                barrier.wait();
                if breaker.allow() {
                    admitted.fetch_add(1, Ordering::SeqCst);
                }
            });
        }
    });
    admitted.load(Ordering::SeqCst)
}

#[test]
fn exactly_one_probe_wins_the_cooled_half_open_race() {
    let open_duration = Duration::from_millis(20);
    let breaker = Arc::new(CircuitBreaker::new(BreakerConfig {
        failure_threshold: 1,
        open_duration,
    }));
    for round in 0..20 {
        trip_and_cool(&breaker, open_duration);
        let admitted = race_allow(&breaker);
        assert_eq!(
            admitted, 1,
            "round {round}: a cooled breaker must admit exactly one probe"
        );
        assert_eq!(breaker.state(), BreakerState::HalfOpen);
        // Losers keep failing fast while the probe is in flight.
        assert!(!breaker.allow());
        // Close it out for the next round.
        breaker.record_success();
        assert_eq!(breaker.state(), BreakerState::Closed);
    }
}

#[test]
fn release_probe_racing_allow_admits_at_most_one_successor() {
    let open_duration = Duration::from_millis(10);
    let breaker = Arc::new(CircuitBreaker::new(BreakerConfig {
        failure_threshold: 1,
        open_duration,
    }));
    let mut rounds_with_successor = 0usize;
    for round in 0..40 {
        trip_and_cool(&breaker, open_duration);
        assert!(breaker.allow(), "round {round}: the initial probe");
        assert_eq!(breaker.state(), BreakerState::HalfOpen);

        // RACERS-1 threads hammer allow() while one thread releases the
        // in-flight probe. Depending on interleaving zero or one of the
        // allow() calls lands after the release — never more: the slot is
        // a single token, not a broadcast.
        let admitted = AtomicUsize::new(0);
        let barrier = Barrier::new(RACERS);
        let (admitted_ref, barrier_ref, breaker_ref) = (&admitted, &barrier, &breaker);
        std::thread::scope(|scope| {
            for i in 0..RACERS {
                scope.spawn(move || {
                    barrier_ref.wait();
                    if i == 0 {
                        breaker_ref.release_probe();
                    } else if breaker_ref.allow() {
                        admitted_ref.fetch_add(1, Ordering::SeqCst);
                    }
                });
            }
        });
        let admitted = admitted.load(Ordering::SeqCst);
        assert!(
            admitted <= 1,
            "round {round}: release_probe handed out {admitted} probe slots"
        );
        if admitted == 1 {
            rounds_with_successor += 1;
            // The successor holds the only slot.
            assert!(!breaker.allow());
        } else {
            // Every allow() beat the release; the freed slot is still
            // there for the next caller.
            assert!(breaker.allow(), "round {round}: released slot was lost");
        }
        assert_eq!(breaker.state(), BreakerState::HalfOpen);
        breaker.record_success();
    }
    // With 40 rounds of 15 racing admitters, the release wins at least
    // once; a zero here means release_probe never actually freed the slot.
    assert!(
        rounds_with_successor > 0,
        "release_probe never admitted a successor in 40 races"
    );
}

#[test]
fn failed_probe_reopens_and_restarts_the_cooldown() {
    let open_duration = Duration::from_millis(40);
    let breaker = Arc::new(CircuitBreaker::new(BreakerConfig {
        failure_threshold: 1,
        open_duration,
    }));
    trip_and_cool(&breaker, open_duration);
    assert_eq!(race_allow(&breaker), 1);

    // The winning probe fails: straight back to open, and the cooldown
    // starts over — even a full stampede is locked out until it elapses.
    breaker.record_failure();
    assert_eq!(breaker.state(), BreakerState::Open);
    assert_eq!(race_allow(&breaker), 0, "re-opened breaker must fail fast");

    // After the fresh cooldown the cycle repeats: one probe, and this time
    // its success closes the breaker for everyone.
    std::thread::sleep(open_duration + Duration::from_millis(10));
    assert_eq!(race_allow(&breaker), 1);
    breaker.record_success();
    assert_eq!(breaker.state(), BreakerState::Closed);
    assert_eq!(
        race_allow(&breaker),
        RACERS,
        "a closed breaker admits everyone"
    );
}
