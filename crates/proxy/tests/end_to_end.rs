//! End-to-end tests: origin ↔ caching proxy ↔ measuring client.
//!
//! These tests exercise the full acceleration story of the paper on
//! localhost: an object whose bit-rate exceeds the (rate-limited) origin
//! path bandwidth suffers a startup delay when fetched directly, and the
//! delay disappears once the proxy holds the bandwidth-deficit prefix.

use sc_cache::policy::PolicyKind;
use sc_proxy::{
    CachingProxy, ObjectSpec, OriginConfig, OriginServer, ProxyConfig, StreamingClient,
};

/// Spin up an origin hosting `objects` with the given per-connection rate
/// limit, plus a proxy in front of it.
fn setup(
    objects: Vec<ObjectSpec>,
    rate_limit_bps: f64,
    capacity: f64,
    policy: PolicyKind,
) -> (OriginServer, CachingProxy) {
    let origin = OriginServer::start(OriginConfig {
        objects,
        rate_limit_bps,
    })
    .expect("origin starts");
    let proxy = CachingProxy::start(ProxyConfig {
        policy,
        ..ProxyConfig::new(origin.addr(), capacity)
    })
    .expect("proxy starts");
    (origin, proxy)
}

#[test]
fn direct_fetch_of_a_starved_object_has_startup_delay() {
    // 240 KB object at 480 KB/s bit-rate over a 160 KB/s path: the path
    // sustains only a third of the encoding rate.
    let origin = OriginServer::start(OriginConfig {
        objects: vec![ObjectSpec::new("starved", 240_000, 480_000.0)],
        rate_limit_bps: 160_000.0,
    })
    .unwrap();
    let report = StreamingClient::new()
        .fetch(origin.addr(), "starved")
        .unwrap();
    assert_eq!(report.bytes, 240_000);
    assert!(report.content_ok);
    // Transfer takes ~1.5 s but playout only needs 0.5 s: the client must
    // wait roughly a second before starting.
    assert!(
        report.startup_delay_secs > 0.4,
        "startup delay {}",
        report.startup_delay_secs
    );
}

#[test]
fn warm_proxy_hides_the_startup_delay() {
    let (_origin, proxy) = setup(
        vec![ObjectSpec::new("clip", 240_000, 480_000.0)],
        160_000.0,
        10_000_000.0,
        PolicyKind::PartialBandwidth,
    );
    let client = StreamingClient::new();

    // Cold fetch: the proxy has nothing; delay comparable to direct access.
    let cold = client.fetch(proxy.addr(), "clip").unwrap();
    assert_eq!(cold.bytes, 240_000);
    assert!(cold.content_ok);
    assert!(
        cold.startup_delay_secs > 0.3,
        "cold delay {}",
        cold.startup_delay_secs
    );

    // The PB policy should now hold the bandwidth-deficit prefix
    // ((r - b)/r = 2/3 of the object).
    let cached = proxy.cached_prefix_len("clip");
    assert!(
        cached >= 140_000,
        "expected a substantial prefix, got {cached} bytes"
    );

    // Warm fetch: prefix arrives at LAN speed, the rest trickles from the
    // origin while the prefix plays — the startup delay collapses.
    let warm = client.fetch(proxy.addr(), "clip").unwrap();
    assert_eq!(warm.bytes, 240_000);
    assert!(warm.content_ok);
    assert!(
        warm.startup_delay_secs < cold.startup_delay_secs / 2.0,
        "warm delay {} vs cold {}",
        warm.startup_delay_secs,
        cold.startup_delay_secs
    );

    let stats = proxy.stats();
    assert_eq!(stats.requests, 2);
    assert!(stats.bytes_from_cache > 0);
    assert!(stats.bytes_from_origin > 0);
    assert!(stats.estimated_origin_bps > 0.0);
}

#[test]
fn well_connected_objects_are_not_cached_by_pb() {
    // Bit-rate 40 KB/s over an effectively unlimited path: PB never caches.
    let (_origin, proxy) = setup(
        vec![ObjectSpec::new("easy", 120_000, 40_000.0)],
        0.0,
        10_000_000.0,
        PolicyKind::PartialBandwidth,
    );
    let client = StreamingClient::new();
    let a = client.fetch(proxy.addr(), "easy").unwrap();
    let b = client.fetch(proxy.addr(), "easy").unwrap();
    assert!(a.content_ok && b.content_ok);
    assert!(a.startup_delay_secs < 0.2);
    assert!(b.startup_delay_secs < 0.2);
    assert_eq!(proxy.cached_prefix_len("easy"), 0);
}

#[test]
fn integral_policy_caches_whole_objects() {
    let (_origin, proxy) = setup(
        vec![ObjectSpec::new("whole", 200_000, 400_000.0)],
        150_000.0,
        10_000_000.0,
        PolicyKind::IntegralBandwidth,
    );
    let client = StreamingClient::new();
    client.fetch(proxy.addr(), "whole").unwrap();
    assert_eq!(proxy.cached_prefix_len("whole"), 200_000);
    // Fully cached: the origin is not contacted again.
    let before = proxy.stats().bytes_from_origin;
    let warm = client.fetch(proxy.addr(), "whole").unwrap();
    assert!(warm.content_ok);
    assert!(warm.startup_delay_secs < 0.1);
    assert_eq!(proxy.stats().bytes_from_origin, before);
}

#[test]
fn unknown_objects_propagate_an_error() {
    let (_origin, proxy) = setup(vec![], 0.0, 1_000_000.0, PolicyKind::PartialBandwidth);
    let err = StreamingClient::new().fetch(proxy.addr(), "ghost");
    assert!(err.is_err());
}

#[test]
fn capacity_pressure_evicts_lower_utility_objects() {
    // Two starved objects but capacity for roughly one deficit prefix.
    let (_origin, proxy) = setup(
        vec![
            ObjectSpec::new("popular", 120_000, 360_000.0),
            ObjectSpec::new("rare", 120_000, 360_000.0),
        ],
        120_000.0,
        100_000.0,
        PolicyKind::PartialBandwidth,
    );
    let client = StreamingClient::new();
    // Make "popular" clearly more popular.
    client.fetch(proxy.addr(), "rare").unwrap();
    for _ in 0..3 {
        client.fetch(proxy.addr(), "popular").unwrap();
    }
    let popular = proxy.cached_prefix_len("popular");
    let rare = proxy.cached_prefix_len("rare");
    assert!(
        popular >= rare,
        "popular prefix {popular} should be at least the rare prefix {rare}"
    );
    let stats = proxy.stats();
    assert!(
        stats.cached_bytes <= 100_000 + 16_384,
        "cached {}",
        stats.cached_bytes
    );
}
