//! A measuring streaming client.

use crate::content::verify_content;
use crate::error::ProxyError;
use crate::protocol::{read_response, write_request, Request, Response};
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Instant;

/// What a [`StreamingClient`] measured while downloading one object.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransferReport {
    /// Total bytes received.
    pub bytes: u64,
    /// Wall-clock transfer duration in seconds.
    pub duration_secs: f64,
    /// Average throughput in bytes per second.
    pub throughput_bps: f64,
    /// The object's CBR bit-rate as reported by the server.
    pub bitrate_bps: f64,
    /// Minimal startup delay (seconds) that would have allowed stall-free
    /// playout at the object's bit-rate, computed from the byte arrival
    /// curve: `max_p (arrival_time(p) − p / r)⁺`.
    pub startup_delay_secs: f64,
    /// Whether the payload matched the expected synthetic content.
    pub content_ok: bool,
    /// Whether the server flagged the response as degraded: an origin
    /// outage was masked with a cached prefix, so `bytes` covers only that
    /// prefix rather than the full object.
    pub degraded: bool,
}

impl TransferReport {
    /// Whether the transfer could have started playing immediately without
    /// stalling (startup delay below `tolerance_secs`).
    pub fn immediate(&self, tolerance_secs: f64) -> bool {
        self.startup_delay_secs <= tolerance_secs
    }
}

/// A simple client that downloads one object and measures the startup delay
/// a streaming player would have experienced.
#[derive(Debug, Default, Clone, Copy)]
pub struct StreamingClient;

impl StreamingClient {
    /// Creates a client.
    pub fn new() -> Self {
        StreamingClient
    }

    /// Downloads `name` from `addr` (an origin server or a caching proxy)
    /// and returns the measured [`TransferReport`].
    ///
    /// # Errors
    ///
    /// Returns [`ProxyError::UnknownObject`] if the server reports an
    /// error, [`ProxyError::Busy`] if it shed the request under overload
    /// (the payload is the suggested retry pause in milliseconds), and
    /// [`ProxyError::Io`]/[`ProxyError::Protocol`] for transport failures.
    pub fn fetch(&self, addr: SocketAddr, name: &str) -> Result<TransferReport, ProxyError> {
        // The clock starts at the request, so time spent by the server
        // before the first payload byte counts towards the startup delay.
        let started = Instant::now();
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        let mut reader = BufReader::new(stream.try_clone()?);
        let mut writer = BufWriter::new(stream);
        write_request(
            &mut writer,
            &Request {
                name: name.to_string(),
                offset: 0,
            },
        )?;
        let (size, bitrate_bps, degraded) = match read_response(&mut reader)? {
            Response::Ok {
                size,
                bitrate_bps,
                degraded,
            } => (size, bitrate_bps, degraded),
            Response::Err(message) => return Err(ProxyError::UnknownObject(message)),
            Response::Busy { retry_after_ms } => return Err(ProxyError::Busy(retry_after_ms)),
        };
        let mut received: u64 = 0;
        let mut startup_delay: f64 = 0.0;
        let mut content_ok = true;
        let mut chunk = vec![0u8; 16 * 1024];
        while received < size {
            let want = chunk.len().min((size - received) as usize);
            let n = reader.read(&mut chunk[..want])?;
            if n == 0 {
                break;
            }
            if content_ok && verify_content(name, received, &chunk[..n]).is_some() {
                content_ok = false;
            }
            let arrival = started.elapsed().as_secs_f64();
            // The first byte of this chunk plays at `delay + received / r`;
            // it arrived at `arrival`, so the delay must cover the gap.
            let required = arrival - received as f64 / bitrate_bps;
            if required > startup_delay {
                startup_delay = required;
            }
            received += n as u64;
        }
        let duration = started.elapsed().as_secs_f64();
        // Drain until the server closes the connection. This does not change
        // the measurements but synchronises with the server's post-transfer
        // bookkeeping (cache admission at a proxy), which keeps callers that
        // immediately inspect proxy state free of races.
        let mut sink = [0u8; 1024];
        while reader.read(&mut sink).map(|n| n > 0).unwrap_or(false) {}
        Ok(TransferReport {
            bytes: received,
            duration_secs: duration,
            throughput_bps: if duration > 0.0 {
                received as f64 / duration
            } else {
                0.0
            },
            bitrate_bps,
            startup_delay_secs: startup_delay.max(0.0),
            content_ok,
            degraded,
        })
    }

    /// Scrapes a proxy's `STATS` verb from `addr` and returns the raw
    /// single-line JSON dump (see `sc_proxy::ProxyStats::to_json`).
    ///
    /// # Errors
    ///
    /// Returns [`ProxyError::Io`] for transport failures and
    /// [`ProxyError::Protocol`] if the server closed without answering.
    pub fn stats(&self, addr: SocketAddr) -> Result<String, ProxyError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        let mut reader = BufReader::new(stream.try_clone()?);
        let mut writer = BufWriter::new(stream);
        writer.write_all(b"STATS\n")?;
        writer.flush()?;
        let mut line = String::new();
        reader.read_line(&mut line)?;
        if line.is_empty() {
            return Err(ProxyError::Protocol(
                "server closed without a STATS answer".into(),
            ));
        }
        Ok(line.trim_end().to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn immediate_threshold() {
        let report = TransferReport {
            bytes: 10,
            duration_secs: 1.0,
            throughput_bps: 10.0,
            bitrate_bps: 100.0,
            startup_delay_secs: 0.05,
            content_ok: true,
            degraded: false,
        };
        assert!(report.immediate(0.1));
        assert!(!report.immediate(0.01));
    }
}
