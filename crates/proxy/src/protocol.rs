//! The minimal line-based streaming protocol used by the prototype.
//!
//! The paper's architecture is transport-agnostic (the authors mention RTSP
//! and RTP); the prototype only needs a way to request an object (or a byte
//! range of it) and receive the payload sequentially, so a tiny text
//! protocol suffices:
//!
//! ```text
//! client → server:  GET <object-name> <start-offset>\n
//!                   STATS\n
//! server → client:  OK <total-size> <bitrate-bps>[ degraded]\n   followed by payload bytes
//!                   ERR <message>\n
//!                   BUSY <retry-after-ms>\n
//! ```
//!
//! The optional trailing `degraded` token marks a response served from a
//! proxy's cached prefix while the origin is unreachable: the header still
//! carries the object's full size, but only the prefix follows. `BUSY` is
//! the overload-shedding answer: the server refused to do any work for this
//! connection and suggests retrying after the given pause. `STATS` asks a
//! proxy to dump its counters as one JSON line (see
//! [`crate::ProxyStats::to_json`]).
//!
//! Parsing is hardened against adversarial peers: every line read is
//! bounded by [`MAX_LINE_BYTES`] and [`MAX_LINE_FIELDS`], so junk input
//! costs a bounded read and a clean protocol error — never an unbounded
//! buffer or a panic.

use crate::error::ProxyError;
use std::io::{BufRead, Write};

/// Hard upper bound on any protocol line in bytes (terminator excluded).
/// A peer that streams a longer line gets a protocol error after at most
/// this many bytes have been buffered; the rest is never read.
pub const MAX_LINE_BYTES: usize = 1024;

/// Hard upper bound on the number of whitespace-separated fields in a
/// protocol line. No legal message has more than four (`OK <size> <bps>
/// degraded`).
pub const MAX_LINE_FIELDS: usize = 4;

/// A parsed request line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Name of the requested object.
    pub name: String,
    /// Byte offset at which the transfer should start.
    pub offset: u64,
}

/// A parsed client command: a [`Request`] for object bytes, or a query
/// verb that carries no payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Command {
    /// Fetch an object (optionally from a byte offset).
    Get(Request),
    /// Dump the server's statistics as one line of JSON.
    Stats,
}

/// A parsed response header.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// The object exists: total size in bytes and its CBR bit-rate.
    Ok {
        /// Total object size in bytes.
        size: u64,
        /// Encoding bit-rate in bytes per second.
        bitrate_bps: f64,
        /// The server is masking an origin outage: only its cached prefix
        /// follows, not the full `size` bytes.
        degraded: bool,
    },
    /// The request failed.
    Err(String),
    /// The server is overloaded and shed this request before doing any
    /// work; the client should retry after the suggested pause.
    Busy {
        /// Suggested pause before retrying, in milliseconds.
        retry_after_ms: u64,
    },
}

/// Reads one newline-terminated line, refusing to buffer more than
/// [`MAX_LINE_BYTES`]: the defence against a peer that streams an endless
/// "line" to balloon server memory. At EOF whatever arrived is the line.
fn read_line_bounded<R: BufRead>(reader: &mut R) -> Result<String, ProxyError> {
    let mut line: Vec<u8> = Vec::new();
    loop {
        let available = match reader.fill_buf() {
            Ok(buf) => buf,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(ProxyError::Io(e)),
        };
        if available.is_empty() {
            break;
        }
        let (chunk, newline) = match available.iter().position(|&b| b == b'\n') {
            Some(i) => (&available[..i], true),
            None => (available, false),
        };
        if line.len() + chunk.len() > MAX_LINE_BYTES {
            return Err(ProxyError::Protocol(format!(
                "line exceeds {MAX_LINE_BYTES} bytes"
            )));
        }
        let consumed = chunk.len() + usize::from(newline);
        line.extend_from_slice(chunk);
        reader.consume(consumed);
        if newline {
            break;
        }
    }
    String::from_utf8(line)
        .map_err(|_| ProxyError::Protocol("non-UTF-8 bytes in protocol line".into()))
}

/// Splits a line into at most [`MAX_LINE_FIELDS`] whitespace-separated
/// fields, rejecting lines with more.
fn bounded_fields(line: &str) -> Result<Vec<&str>, ProxyError> {
    let mut fields = Vec::with_capacity(4);
    for field in line.split_whitespace() {
        if fields.len() == MAX_LINE_FIELDS {
            return Err(ProxyError::Protocol(format!(
                "more than {MAX_LINE_FIELDS} fields in protocol line"
            )));
        }
        fields.push(field);
    }
    Ok(fields)
}

/// Writes a request line.
///
/// # Errors
///
/// Returns [`ProxyError::Protocol`] for an object name that cannot be
/// framed (empty, over [`MAX_LINE_BYTES`], or containing whitespace or
/// control bytes) and propagates I/O errors from the writer.
pub fn write_request<W: Write>(writer: &mut W, request: &Request) -> Result<(), ProxyError> {
    if request.name.is_empty()
        || request.name.len() > MAX_LINE_BYTES - 32
        || request
            .name
            .bytes()
            .any(|b| b.is_ascii_whitespace() || b.is_ascii_control())
    {
        return Err(ProxyError::Protocol(format!(
            "object name {:?} cannot be framed",
            request.name
        )));
    }
    writeln!(writer, "GET {} {}", request.name, request.offset)?;
    writer.flush()?;
    Ok(())
}

/// Rejects object names a well-behaved client could never have framed:
/// `write_request` refuses control bytes, so a name containing one here is
/// line noise, not a cache key. Keeps reader and writer symmetric — every
/// accepted request re-serialises.
fn validate_name(name: &str) -> Result<(), ProxyError> {
    if name.len() > MAX_LINE_BYTES - 32 {
        return Err(ProxyError::Protocol("object name too long".into()));
    }
    if name.bytes().any(|b| b.is_ascii_control()) {
        return Err(ProxyError::Protocol(
            "object name contains control bytes".into(),
        ));
    }
    Ok(())
}

/// Reads and parses a client command line (`GET` or `STATS`).
///
/// # Errors
///
/// Returns [`ProxyError::Protocol`] for malformed, oversized or non-UTF-8
/// lines and propagates I/O errors.
pub fn read_command<R: BufRead>(reader: &mut R) -> Result<Command, ProxyError> {
    let line = read_line_bounded(reader)?;
    let fields = bounded_fields(&line)?;
    match fields.as_slice() {
        ["GET", name] => {
            validate_name(name)?;
            Ok(Command::Get(Request {
                name: (*name).to_string(),
                offset: 0,
            }))
        }
        ["GET", name, offset] => {
            validate_name(name)?;
            let offset = offset
                .parse::<u64>()
                .map_err(|_| ProxyError::Protocol(format!("bad offset `{offset}`")))?;
            Ok(Command::Get(Request {
                name: (*name).to_string(),
                offset,
            }))
        }
        ["STATS"] => Ok(Command::Stats),
        _ => Err(ProxyError::Protocol(format!(
            "expected `GET <name> [offset]` or `STATS`, got {line:?}"
        ))),
    }
}

/// Reads and parses a request line (`GET` only — servers that do not serve
/// statistics, like the origin, use this and treat `STATS` as malformed).
///
/// # Errors
///
/// Returns [`ProxyError::Protocol`] for malformed lines (including
/// `STATS`) and propagates I/O errors.
pub fn read_request<R: BufRead>(reader: &mut R) -> Result<Request, ProxyError> {
    match read_command(reader)? {
        Command::Get(request) => Ok(request),
        Command::Stats => Err(ProxyError::Protocol(
            "STATS is not served on this endpoint".into(),
        )),
    }
}

/// Writes a response header.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_response<W: Write>(writer: &mut W, response: &Response) -> Result<(), ProxyError> {
    match response {
        Response::Ok {
            size,
            bitrate_bps,
            degraded: false,
        } => writeln!(writer, "OK {size} {bitrate_bps}")?,
        Response::Ok {
            size,
            bitrate_bps,
            degraded: true,
        } => writeln!(writer, "OK {size} {bitrate_bps} degraded")?,
        Response::Err(message) => writeln!(writer, "ERR {message}")?,
        Response::Busy { retry_after_ms } => writeln!(writer, "BUSY {retry_after_ms}")?,
    }
    writer.flush()?;
    Ok(())
}

/// Reads and parses a response header.
///
/// # Errors
///
/// Returns [`ProxyError::Protocol`] for malformed, oversized or non-UTF-8
/// lines and propagates I/O errors.
pub fn read_response<R: BufRead>(reader: &mut R) -> Result<Response, ProxyError> {
    let line = read_line_bounded(reader)?;
    let trimmed = line.trim_end();
    if let Some(rest) = trimmed.strip_prefix("OK ") {
        let fields = bounded_fields(rest)?;
        let (size, bitrate_bps, extra) = match fields.as_slice() {
            [size, bps] => (size, bps, None),
            [size, bps, extra] => (size, bps, Some(*extra)),
            _ => {
                return Err(ProxyError::Protocol(format!("bad OK header {trimmed:?}")));
            }
        };
        let size = size
            .parse::<u64>()
            .map_err(|_| ProxyError::Protocol(format!("bad OK header {trimmed:?}")))?;
        let bitrate_bps = bitrate_bps
            .parse::<f64>()
            .map_err(|_| ProxyError::Protocol(format!("bad OK header {trimmed:?}")))?;
        let degraded = match extra {
            None => false,
            Some("degraded") => true,
            Some(extra) => {
                return Err(ProxyError::Protocol(format!(
                    "unexpected OK header token `{extra}` in {trimmed:?}"
                )))
            }
        };
        Ok(Response::Ok {
            size,
            bitrate_bps,
            degraded,
        })
    } else if let Some(message) = trimmed.strip_prefix("ERR ") {
        Ok(Response::Err(message.to_string()))
    } else if let Some(rest) = trimmed.strip_prefix("BUSY ") {
        let retry_after_ms = rest
            .trim()
            .parse::<u64>()
            .map_err(|_| ProxyError::Protocol(format!("bad BUSY header {trimmed:?}")))?;
        Ok(Response::Busy { retry_after_ms })
    } else {
        Err(ProxyError::Protocol(format!(
            "expected `OK`/`ERR`/`BUSY` header, got {trimmed:?}"
        )))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    #[test]
    fn request_roundtrip() {
        let mut buf = Vec::new();
        let req = Request {
            name: "movie-7".into(),
            offset: 4096,
        };
        write_request(&mut buf, &req).unwrap();
        let parsed = read_request(&mut BufReader::new(buf.as_slice())).unwrap();
        assert_eq!(parsed, req);
    }

    #[test]
    fn request_without_offset_defaults_to_zero() {
        let parsed = read_request(&mut BufReader::new("GET clip\n".as_bytes())).unwrap();
        assert_eq!(parsed.offset, 0);
        assert_eq!(parsed.name, "clip");
    }

    #[test]
    fn malformed_requests_are_rejected() {
        assert!(read_request(&mut BufReader::new("PUT clip\n".as_bytes())).is_err());
        assert!(read_request(&mut BufReader::new("GET clip abc\n".as_bytes())).is_err());
        assert!(read_request(&mut BufReader::new("\n".as_bytes())).is_err());
        assert!(read_request(&mut BufReader::new("GET a 1 junk\n".as_bytes())).is_err());
    }

    #[test]
    fn unframeable_names_are_rejected_at_write_time() {
        for name in ["", "two words", "new\nline", "tab\tbed"] {
            let mut buf = Vec::new();
            assert!(
                write_request(
                    &mut buf,
                    &Request {
                        name: name.into(),
                        offset: 0
                    }
                )
                .is_err(),
                "name {name:?} must not frame"
            );
            assert!(buf.is_empty(), "nothing may be written for {name:?}");
        }
        let mut buf = Vec::new();
        assert!(write_request(
            &mut buf,
            &Request {
                name: "x".repeat(MAX_LINE_BYTES),
                offset: 0
            }
        )
        .is_err());
    }

    #[test]
    fn stats_verb_parses_and_tolerates_no_arguments_only() {
        assert_eq!(
            read_command(&mut BufReader::new("STATS\n".as_bytes())).unwrap(),
            Command::Stats
        );
        assert!(read_command(&mut BufReader::new("STATS now\n".as_bytes())).is_err());
        // The origin-side parser treats STATS as malformed.
        assert!(read_request(&mut BufReader::new("STATS\n".as_bytes())).is_err());
    }

    #[test]
    fn oversized_lines_are_rejected_with_a_bounded_read() {
        let long = format!("GET {}\n", "a".repeat(MAX_LINE_BYTES + 10));
        assert!(read_command(&mut BufReader::new(long.as_bytes())).is_err());
        // An endless line without a newline terminates too: the reader
        // gives up after at most MAX_LINE_BYTES buffered bytes.
        let mut endless = BufReader::new(std::io::repeat(b'G'));
        assert!(read_command(&mut endless).is_err());
        let mut endless = BufReader::new(std::io::repeat(b'O'));
        assert!(read_response(&mut endless).is_err());
    }

    #[test]
    fn non_utf8_lines_are_clean_protocol_errors() {
        let junk: &[u8] = b"GET \xff\xfe\xfd\n";
        assert!(matches!(
            read_command(&mut BufReader::new(junk)),
            Err(ProxyError::Protocol(_))
        ));
    }

    #[test]
    fn field_counts_are_bounded() {
        let crowded = format!("GET {}\n", "a b c d e f g h");
        assert!(read_command(&mut BufReader::new(crowded.as_bytes())).is_err());
        assert!(read_response(&mut BufReader::new("OK 1 2 3 4 5 6\n".as_bytes())).is_err());
    }

    #[test]
    fn response_roundtrip() {
        for degraded in [false, true] {
            let mut buf = Vec::new();
            let response = Response::Ok {
                size: 1_000_000,
                bitrate_bps: 48_000.0,
                degraded,
            };
            write_response(&mut buf, &response).unwrap();
            let parsed = read_response(&mut BufReader::new(buf.as_slice())).unwrap();
            assert_eq!(parsed, response);
        }

        let mut buf = Vec::new();
        write_response(&mut buf, &Response::Err("unknown object".into())).unwrap();
        let parsed = read_response(&mut BufReader::new(buf.as_slice())).unwrap();
        assert_eq!(parsed, Response::Err("unknown object".to_string()));

        let mut buf = Vec::new();
        write_response(
            &mut buf,
            &Response::Busy {
                retry_after_ms: 125,
            },
        )
        .unwrap();
        let parsed = read_response(&mut BufReader::new(buf.as_slice())).unwrap();
        assert_eq!(
            parsed,
            Response::Busy {
                retry_after_ms: 125
            }
        );
    }

    #[test]
    fn degraded_flag_is_spelled_out_on_the_wire() {
        let parsed = read_response(&mut BufReader::new("OK 42 9.5 degraded\n".as_bytes())).unwrap();
        assert_eq!(
            parsed,
            Response::Ok {
                size: 42,
                bitrate_bps: 9.5,
                degraded: true
            }
        );
    }

    #[test]
    fn malformed_responses_are_rejected() {
        assert!(read_response(&mut BufReader::new("YES 5\n".as_bytes())).is_err());
        assert!(read_response(&mut BufReader::new("OK abc def\n".as_bytes())).is_err());
        assert!(read_response(&mut BufReader::new("OK 5 9.5 partial\n".as_bytes())).is_err());
        assert!(read_response(&mut BufReader::new("BUSY soon\n".as_bytes())).is_err());
        assert!(read_response(&mut BufReader::new("BUSY\n".as_bytes())).is_err());
    }
}
