//! The minimal line-based streaming protocol used by the prototype.
//!
//! The paper's architecture is transport-agnostic (the authors mention RTSP
//! and RTP); the prototype only needs a way to request an object (or a byte
//! range of it) and receive the payload sequentially, so a tiny text
//! protocol suffices:
//!
//! ```text
//! client → server:  GET <object-name> <start-offset>\n
//! server → client:  OK <total-size> <bitrate-bps>[ degraded]\n   followed by payload bytes
//!                   ERR <message>\n
//! ```
//!
//! The optional trailing `degraded` token marks a response served from a
//! proxy's cached prefix while the origin is unreachable: the header still
//! carries the object's full size, but only the prefix follows.

use crate::error::ProxyError;
use std::io::{BufRead, Write};

/// A parsed request line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Name of the requested object.
    pub name: String,
    /// Byte offset at which the transfer should start.
    pub offset: u64,
}

/// A parsed response header.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// The object exists: total size in bytes and its CBR bit-rate.
    Ok {
        /// Total object size in bytes.
        size: u64,
        /// Encoding bit-rate in bytes per second.
        bitrate_bps: f64,
        /// The server is masking an origin outage: only its cached prefix
        /// follows, not the full `size` bytes.
        degraded: bool,
    },
    /// The request failed.
    Err(String),
}

/// Writes a request line.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_request<W: Write>(writer: &mut W, request: &Request) -> Result<(), ProxyError> {
    writeln!(writer, "GET {} {}", request.name, request.offset)?;
    writer.flush()?;
    Ok(())
}

/// Reads and parses a request line.
///
/// # Errors
///
/// Returns [`ProxyError::Protocol`] for malformed lines and propagates I/O
/// errors.
pub fn read_request<R: BufRead>(reader: &mut R) -> Result<Request, ProxyError> {
    let mut line = String::new();
    reader.read_line(&mut line)?;
    let mut parts = line.split_whitespace();
    match (parts.next(), parts.next(), parts.next()) {
        (Some("GET"), Some(name), offset) => {
            let offset = offset
                .map(|o| {
                    o.parse::<u64>()
                        .map_err(|_| ProxyError::Protocol(format!("bad offset `{o}`")))
                })
                .transpose()?
                .unwrap_or(0);
            Ok(Request {
                name: name.to_string(),
                offset,
            })
        }
        _ => Err(ProxyError::Protocol(format!(
            "expected `GET <name> [offset]`, got {line:?}"
        ))),
    }
}

/// Writes a response header.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_response<W: Write>(writer: &mut W, response: &Response) -> Result<(), ProxyError> {
    match response {
        Response::Ok {
            size,
            bitrate_bps,
            degraded: false,
        } => writeln!(writer, "OK {size} {bitrate_bps}")?,
        Response::Ok {
            size,
            bitrate_bps,
            degraded: true,
        } => writeln!(writer, "OK {size} {bitrate_bps} degraded")?,
        Response::Err(message) => writeln!(writer, "ERR {message}")?,
    }
    writer.flush()?;
    Ok(())
}

/// Reads and parses a response header.
///
/// # Errors
///
/// Returns [`ProxyError::Protocol`] for malformed lines and propagates I/O
/// errors.
pub fn read_response<R: BufRead>(reader: &mut R) -> Result<Response, ProxyError> {
    let mut line = String::new();
    reader.read_line(&mut line)?;
    let trimmed = line.trim_end();
    if let Some(rest) = trimmed.strip_prefix("OK ") {
        let mut parts = rest.split_whitespace();
        let size = parts
            .next()
            .and_then(|s| s.parse::<u64>().ok())
            .ok_or_else(|| ProxyError::Protocol(format!("bad OK header {trimmed:?}")))?;
        let bitrate_bps = parts
            .next()
            .and_then(|s| s.parse::<f64>().ok())
            .ok_or_else(|| ProxyError::Protocol(format!("bad OK header {trimmed:?}")))?;
        let degraded = match parts.next() {
            None => false,
            Some("degraded") => true,
            Some(extra) => {
                return Err(ProxyError::Protocol(format!(
                    "unexpected OK header token `{extra}` in {trimmed:?}"
                )))
            }
        };
        Ok(Response::Ok {
            size,
            bitrate_bps,
            degraded,
        })
    } else if let Some(message) = trimmed.strip_prefix("ERR ") {
        Ok(Response::Err(message.to_string()))
    } else {
        Err(ProxyError::Protocol(format!(
            "expected `OK`/`ERR` header, got {trimmed:?}"
        )))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    #[test]
    fn request_roundtrip() {
        let mut buf = Vec::new();
        let req = Request {
            name: "movie-7".into(),
            offset: 4096,
        };
        write_request(&mut buf, &req).unwrap();
        let parsed = read_request(&mut BufReader::new(buf.as_slice())).unwrap();
        assert_eq!(parsed, req);
    }

    #[test]
    fn request_without_offset_defaults_to_zero() {
        let parsed = read_request(&mut BufReader::new("GET clip\n".as_bytes())).unwrap();
        assert_eq!(parsed.offset, 0);
        assert_eq!(parsed.name, "clip");
    }

    #[test]
    fn malformed_requests_are_rejected() {
        assert!(read_request(&mut BufReader::new("PUT clip\n".as_bytes())).is_err());
        assert!(read_request(&mut BufReader::new("GET clip abc\n".as_bytes())).is_err());
        assert!(read_request(&mut BufReader::new("\n".as_bytes())).is_err());
    }

    #[test]
    fn response_roundtrip() {
        for degraded in [false, true] {
            let mut buf = Vec::new();
            let response = Response::Ok {
                size: 1_000_000,
                bitrate_bps: 48_000.0,
                degraded,
            };
            write_response(&mut buf, &response).unwrap();
            let parsed = read_response(&mut BufReader::new(buf.as_slice())).unwrap();
            assert_eq!(parsed, response);
        }

        let mut buf = Vec::new();
        write_response(&mut buf, &Response::Err("unknown object".into())).unwrap();
        let parsed = read_response(&mut BufReader::new(buf.as_slice())).unwrap();
        assert_eq!(parsed, Response::Err("unknown object".to_string()));
    }

    #[test]
    fn degraded_flag_is_spelled_out_on_the_wire() {
        let parsed = read_response(&mut BufReader::new("OK 42 9.5 degraded\n".as_bytes())).unwrap();
        assert_eq!(
            parsed,
            Response::Ok {
                size: 42,
                bitrate_bps: 9.5,
                degraded: true
            }
        );
    }

    #[test]
    fn malformed_responses_are_rejected() {
        assert!(read_response(&mut BufReader::new("YES 5\n".as_bytes())).is_err());
        assert!(read_response(&mut BufReader::new("OK abc def\n".as_bytes())).is_err());
        assert!(read_response(&mut BufReader::new("OK 5 9.5 partial\n".as_bytes())).is_err());
    }
}
