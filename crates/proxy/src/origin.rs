//! A rate-limited origin streaming server, with optional deterministic
//! fault injection (see [`crate::fault`]).

use crate::content::fill_content;
use crate::error::ProxyError;
use crate::fault::{FaultAction, FaultPlan};
use crate::protocol::{read_request, write_response, Response};
use crate::ratelimit::RateLimiter;
use parking_lot::RwLock;
use std::collections::HashMap;
use std::io::{BufReader, BufWriter, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Static description of an object hosted by an origin server.
#[derive(Debug, Clone, PartialEq)]
pub struct ObjectSpec {
    /// Object name (the key clients request).
    pub name: String,
    /// Total size in bytes.
    pub size_bytes: u64,
    /// CBR encoding rate in bytes per second.
    pub bitrate_bps: f64,
}

impl ObjectSpec {
    /// Creates an object specification.
    pub fn new(name: impl Into<String>, size_bytes: u64, bitrate_bps: f64) -> Self {
        ObjectSpec {
            name: name.into(),
            size_bytes,
            bitrate_bps,
        }
    }

    /// Playback duration implied by size and bit-rate.
    pub fn duration_secs(&self) -> f64 {
        self.size_bytes as f64 / self.bitrate_bps
    }
}

/// Configuration of an origin server.
#[derive(Debug, Clone)]
pub struct OriginConfig {
    /// The objects this origin hosts.
    pub objects: Vec<ObjectSpec>,
    /// Per-connection throughput cap in bytes per second, emulating the
    /// constrained cache↔origin path (0 disables the cap).
    pub rate_limit_bps: f64,
}

/// A running origin server (one thread per connection).
///
/// The server is shut down and joined when dropped.
#[derive(Debug)]
pub struct OriginServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    state: Arc<OriginState>,
}

#[derive(Debug)]
struct OriginState {
    objects: RwLock<HashMap<String, ObjectSpec>>,
    rate_limit_bps: f64,
    faults: FaultPlan,
}

impl OriginServer {
    /// Binds to an ephemeral localhost port and starts accepting
    /// connections.
    ///
    /// # Errors
    ///
    /// Returns [`ProxyError::Io`] if binding fails or
    /// [`ProxyError::InvalidConfig`] if an object has a non-positive size
    /// or bit-rate.
    pub fn start(config: OriginConfig) -> Result<Self, ProxyError> {
        OriginServer::start_with_faults(config, FaultPlan::none())
    }

    /// Like [`start`](Self::start), but every accepted connection consults
    /// `faults` (in accept order) and misbehaves as instructed — the
    /// deterministic failure model the proxy's resilience tests drive.
    pub fn start_with_faults(config: OriginConfig, faults: FaultPlan) -> Result<Self, ProxyError> {
        for o in &config.objects {
            if o.size_bytes == 0 {
                return Err(ProxyError::InvalidConfig(
                    "size_bytes",
                    format!("object `{}` has zero size", o.name),
                ));
            }
            if !o.bitrate_bps.is_finite() || o.bitrate_bps <= 0.0 {
                return Err(ProxyError::InvalidConfig(
                    "bitrate_bps",
                    format!(
                        "object `{}` has a non-finite or non-positive bit-rate",
                        o.name
                    ),
                ));
            }
        }
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let state = Arc::new(OriginState {
            objects: RwLock::new(
                config
                    .objects
                    .into_iter()
                    .map(|o| (o.name.clone(), o))
                    .collect(),
            ),
            rate_limit_bps: config.rate_limit_bps,
            faults,
        });
        let accept_shutdown = Arc::clone(&shutdown);
        let accept_state = Arc::clone(&state);
        let accept_thread = std::thread::spawn(move || {
            for stream in listener.incoming() {
                if accept_shutdown.load(Ordering::SeqCst) {
                    break;
                }
                match stream {
                    Ok(stream) => {
                        let state = Arc::clone(&accept_state);
                        std::thread::spawn(move || {
                            let _ = handle_connection(stream, &state);
                        });
                    }
                    Err(_) => break,
                }
            }
        });
        Ok(OriginServer {
            addr,
            shutdown,
            accept_thread: Some(accept_thread),
            state,
        })
    }

    /// Number of connections that have consulted the fault plan so far
    /// (every handled connection does, healthy or not), useful for
    /// asserting that a fast-failing proxy really did not dial out.
    pub fn fault_connections_seen(&self) -> u64 {
        self.state.faults.connections_seen()
    }

    /// The address clients and proxies should connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Requests shutdown and joins the accept thread.
    pub fn shutdown(&mut self) {
        if self.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        // Unblock the accept loop with a dummy connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for OriginServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn handle_connection(stream: TcpStream, state: &OriginState) -> Result<(), ProxyError> {
    let action = state.faults.next_action();
    if action == FaultAction::Refuse {
        // Drop before reading the request: the peer sees an immediate EOF
        // where the response header should be.
        drop(stream);
        return Ok(());
    }
    stream.set_nodelay(true).ok();
    // A third handle to the socket so a reset can sever it abruptly while
    // the buffered reader/writer own the other two.
    let raw = stream.try_clone()?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    let request = read_request(&mut reader)?;
    let spec = match state.objects.read().get(&request.name).cloned() {
        Some(spec) => spec,
        None => {
            write_response(&mut writer, &Response::Err("unknown object".into()))?;
            return Err(ProxyError::UnknownObject(request.name));
        }
    };
    write_response(
        &mut writer,
        &Response::Ok {
            size: spec.size_bytes,
            bitrate_bps: spec.bitrate_bps,
            degraded: false,
        },
    )?;
    let mut limiter = RateLimiter::new(state.rate_limit_bps);
    let start_offset = request.offset.min(spec.size_bytes);
    let mut offset = start_offset;
    // Fault offsets are relative to this connection's payload stream.
    let end = match action {
        FaultAction::ResetAfter(n) | FaultAction::TruncateAfter(n) => {
            spec.size_bytes.min(start_offset.saturating_add(n))
        }
        _ => spec.size_bytes,
    };
    let stall = match action {
        FaultAction::StallAt {
            offset: rel,
            millis,
        } => Some((start_offset.saturating_add(rel), millis)),
        _ => None,
    };
    let mut stalled = false;
    let mut chunk = vec![0u8; 8 * 1024];
    while offset < end {
        let mut n = chunk.len().min((end - offset) as usize);
        if let Some((at, millis)) = stall {
            if !stalled && offset == at {
                stalled = true;
                writer.flush()?;
                std::thread::sleep(Duration::from_millis(millis));
            }
            if !stalled && offset < at {
                // Stop the chunk exactly at the stall point.
                n = n.min((at - offset) as usize);
            }
        }
        fill_content(&spec.name, offset, &mut chunk[..n]);
        limiter.acquire(n);
        writer.write_all(&chunk[..n])?;
        offset += n as u64;
    }
    if matches!(action, FaultAction::ResetAfter(_)) {
        // Deliver exactly the promised prefix, then sever the socket in
        // both directions instead of completing the stream.
        writer.flush()?;
        let _ = raw.shutdown(Shutdown::Both);
        return Ok(());
    }
    writer.flush()?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::content::verify_content;
    use crate::protocol::{write_request, Request};
    use std::io::Read;

    fn read_header(reader: &mut impl std::io::BufRead) -> Response {
        crate::protocol::read_response(reader).unwrap()
    }

    #[test]
    fn serves_full_objects_with_correct_content() {
        let server = OriginServer::start(OriginConfig {
            objects: vec![ObjectSpec::new("clip", 64 * 1024, 1_000_000.0)],
            rate_limit_bps: 0.0,
        })
        .unwrap();
        let stream = TcpStream::connect(server.addr()).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut writer = BufWriter::new(stream);
        write_request(
            &mut writer,
            &Request {
                name: "clip".into(),
                offset: 0,
            },
        )
        .unwrap();
        match read_header(&mut reader) {
            Response::Ok {
                size,
                bitrate_bps,
                degraded,
            } => {
                assert_eq!(size, 64 * 1024);
                assert_eq!(bitrate_bps, 1_000_000.0);
                assert!(!degraded, "a healthy origin never degrades");
            }
            Response::Err(e) => panic!("unexpected error: {e}"),
            Response::Busy { .. } => panic!("the origin never sheds"),
        }
        let mut payload = Vec::new();
        reader.read_to_end(&mut payload).unwrap();
        assert_eq!(payload.len(), 64 * 1024);
        assert_eq!(verify_content("clip", 0, &payload), None);
    }

    #[test]
    fn serves_ranges_from_an_offset() {
        let server = OriginServer::start(OriginConfig {
            objects: vec![ObjectSpec::new("clip", 10_000, 1_000_000.0)],
            rate_limit_bps: 0.0,
        })
        .unwrap();
        let stream = TcpStream::connect(server.addr()).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut writer = BufWriter::new(stream);
        write_request(
            &mut writer,
            &Request {
                name: "clip".into(),
                offset: 6_000,
            },
        )
        .unwrap();
        let _ = read_header(&mut reader);
        let mut payload = Vec::new();
        reader.read_to_end(&mut payload).unwrap();
        assert_eq!(payload.len(), 4_000);
        assert_eq!(verify_content("clip", 6_000, &payload), None);
    }

    #[test]
    fn unknown_objects_get_an_error() {
        let server = OriginServer::start(OriginConfig {
            objects: vec![],
            rate_limit_bps: 0.0,
        })
        .unwrap();
        let stream = TcpStream::connect(server.addr()).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut writer = BufWriter::new(stream);
        write_request(
            &mut writer,
            &Request {
                name: "missing".into(),
                offset: 0,
            },
        )
        .unwrap();
        assert!(matches!(read_header(&mut reader), Response::Err(_)));
    }

    #[test]
    fn invalid_specs_are_rejected() {
        assert!(OriginServer::start(OriginConfig {
            objects: vec![ObjectSpec::new("z", 0, 1.0)],
            rate_limit_bps: 0.0,
        })
        .is_err());
        assert!(OriginServer::start(OriginConfig {
            objects: vec![ObjectSpec::new("z", 10, 0.0)],
            rate_limit_bps: 0.0,
        })
        .is_err());
    }

    #[test]
    fn rate_limit_slows_transfers() {
        let server = OriginServer::start(OriginConfig {
            objects: vec![ObjectSpec::new("clip", 100_000, 1_000_000.0)],
            rate_limit_bps: 400_000.0,
        })
        .unwrap();
        let start = std::time::Instant::now();
        let stream = TcpStream::connect(server.addr()).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut writer = BufWriter::new(stream);
        write_request(
            &mut writer,
            &Request {
                name: "clip".into(),
                offset: 0,
            },
        )
        .unwrap();
        let _ = read_header(&mut reader);
        let mut payload = Vec::new();
        reader.read_to_end(&mut payload).unwrap();
        let elapsed = start.elapsed().as_secs_f64();
        // 100 KB at 400 KB/s takes about 0.25 s.
        assert!(elapsed >= 0.2, "elapsed {elapsed}");
        assert_eq!(payload.len(), 100_000);
    }

    #[test]
    fn object_spec_duration() {
        let spec = ObjectSpec::new("x", 480_000, 48_000.0);
        assert!((spec.duration_secs() - 10.0).abs() < 1e-12);
    }

    /// One raw fetch against a faulty origin: returns the parsed header (if
    /// any) and however much payload arrived before the connection ended.
    fn raw_fetch(addr: std::net::SocketAddr, name: &str) -> (Option<Response>, Vec<u8>) {
        let stream = TcpStream::connect(addr).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut writer = BufWriter::new(stream);
        write_request(
            &mut writer,
            &Request {
                name: name.into(),
                offset: 0,
            },
        )
        .unwrap();
        let header = crate::protocol::read_response(&mut reader).ok();
        let mut payload = Vec::new();
        let _ = reader.read_to_end(&mut payload);
        (header, payload)
    }

    #[test]
    fn refused_connections_end_before_the_header() {
        let server = OriginServer::start_with_faults(
            OriginConfig {
                objects: vec![ObjectSpec::new("clip", 4_096, 1e6)],
                rate_limit_bps: 0.0,
            },
            FaultPlan::from_actions(vec![FaultAction::Refuse]),
        )
        .unwrap();
        let (header, payload) = raw_fetch(server.addr(), "clip");
        assert!(header.is_none(), "refusal must precede the header");
        assert!(payload.is_empty());
        // The schedule is exhausted: the next connection is healthy.
        let (header, payload) = raw_fetch(server.addr(), "clip");
        assert!(matches!(header, Some(Response::Ok { .. })));
        assert_eq!(payload.len(), 4_096);
        assert_eq!(server.fault_connections_seen(), 2);
    }

    #[test]
    fn resets_and_truncations_deliver_exactly_the_promised_prefix() {
        for make_action in [FaultAction::ResetAfter, FaultAction::TruncateAfter] {
            let server = OriginServer::start_with_faults(
                OriginConfig {
                    objects: vec![ObjectSpec::new("clip", 32 * 1024, 1e6)],
                    rate_limit_bps: 0.0,
                },
                FaultPlan::from_actions(vec![make_action(10_000)]),
            )
            .unwrap();
            let (header, payload) = raw_fetch(server.addr(), "clip");
            // The header still promises the full object ...
            assert!(matches!(header, Some(Response::Ok { size: 32_768, .. })));
            // ... but only the scheduled prefix arrives, byte-correct.
            assert_eq!(payload.len(), 10_000);
            assert_eq!(verify_content("clip", 0, &payload), None);
        }
    }

    #[test]
    fn stalls_pause_mid_payload_then_complete() {
        let server = OriginServer::start_with_faults(
            OriginConfig {
                objects: vec![ObjectSpec::new("clip", 16 * 1024, 1e6)],
                rate_limit_bps: 0.0,
            },
            FaultPlan::from_actions(vec![FaultAction::StallAt {
                offset: 8_192,
                millis: 150,
            }]),
        )
        .unwrap();
        let start = std::time::Instant::now();
        let (header, payload) = raw_fetch(server.addr(), "clip");
        assert!(matches!(header, Some(Response::Ok { .. })));
        assert_eq!(payload.len(), 16 * 1024);
        assert_eq!(verify_content("clip", 0, &payload), None);
        assert!(
            start.elapsed() >= std::time::Duration::from_millis(140),
            "the stall must actually pause the stream"
        );
    }
}
