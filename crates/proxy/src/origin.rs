//! A rate-limited origin streaming server.

use crate::content::fill_content;
use crate::error::ProxyError;
use crate::protocol::{read_request, write_response, Response};
use crate::ratelimit::RateLimiter;
use parking_lot::RwLock;
use std::collections::HashMap;
use std::io::{BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Static description of an object hosted by an origin server.
#[derive(Debug, Clone, PartialEq)]
pub struct ObjectSpec {
    /// Object name (the key clients request).
    pub name: String,
    /// Total size in bytes.
    pub size_bytes: u64,
    /// CBR encoding rate in bytes per second.
    pub bitrate_bps: f64,
}

impl ObjectSpec {
    /// Creates an object specification.
    pub fn new(name: impl Into<String>, size_bytes: u64, bitrate_bps: f64) -> Self {
        ObjectSpec {
            name: name.into(),
            size_bytes,
            bitrate_bps,
        }
    }

    /// Playback duration implied by size and bit-rate.
    pub fn duration_secs(&self) -> f64 {
        self.size_bytes as f64 / self.bitrate_bps
    }
}

/// Configuration of an origin server.
#[derive(Debug, Clone)]
pub struct OriginConfig {
    /// The objects this origin hosts.
    pub objects: Vec<ObjectSpec>,
    /// Per-connection throughput cap in bytes per second, emulating the
    /// constrained cache↔origin path (0 disables the cap).
    pub rate_limit_bps: f64,
}

/// A running origin server (one thread per connection).
///
/// The server is shut down and joined when dropped.
#[derive(Debug)]
pub struct OriginServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

#[derive(Debug)]
struct OriginState {
    objects: RwLock<HashMap<String, ObjectSpec>>,
    rate_limit_bps: f64,
}

impl OriginServer {
    /// Binds to an ephemeral localhost port and starts accepting
    /// connections.
    ///
    /// # Errors
    ///
    /// Returns [`ProxyError::Io`] if binding fails or
    /// [`ProxyError::InvalidConfig`] if an object has a non-positive size
    /// or bit-rate.
    pub fn start(config: OriginConfig) -> Result<Self, ProxyError> {
        for o in &config.objects {
            if o.size_bytes == 0 {
                return Err(ProxyError::InvalidConfig(
                    "size_bytes",
                    format!("object `{}` has zero size", o.name),
                ));
            }
            if !o.bitrate_bps.is_finite() || o.bitrate_bps <= 0.0 {
                return Err(ProxyError::InvalidConfig(
                    "bitrate_bps",
                    format!(
                        "object `{}` has a non-finite or non-positive bit-rate",
                        o.name
                    ),
                ));
            }
        }
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let state = Arc::new(OriginState {
            objects: RwLock::new(
                config
                    .objects
                    .into_iter()
                    .map(|o| (o.name.clone(), o))
                    .collect(),
            ),
            rate_limit_bps: config.rate_limit_bps,
        });
        let accept_shutdown = Arc::clone(&shutdown);
        let accept_thread = std::thread::spawn(move || {
            for stream in listener.incoming() {
                if accept_shutdown.load(Ordering::SeqCst) {
                    break;
                }
                match stream {
                    Ok(stream) => {
                        let state = Arc::clone(&state);
                        std::thread::spawn(move || {
                            let _ = handle_connection(stream, &state);
                        });
                    }
                    Err(_) => break,
                }
            }
        });
        Ok(OriginServer {
            addr,
            shutdown,
            accept_thread: Some(accept_thread),
        })
    }

    /// The address clients and proxies should connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Requests shutdown and joins the accept thread.
    pub fn shutdown(&mut self) {
        if self.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        // Unblock the accept loop with a dummy connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for OriginServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn handle_connection(stream: TcpStream, state: &OriginState) -> Result<(), ProxyError> {
    stream.set_nodelay(true).ok();
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    let request = read_request(&mut reader)?;
    let spec = match state.objects.read().get(&request.name).cloned() {
        Some(spec) => spec,
        None => {
            write_response(&mut writer, &Response::Err("unknown object".into()))?;
            return Err(ProxyError::UnknownObject(request.name));
        }
    };
    write_response(
        &mut writer,
        &Response::Ok {
            size: spec.size_bytes,
            bitrate_bps: spec.bitrate_bps,
        },
    )?;
    let mut limiter = RateLimiter::new(state.rate_limit_bps);
    let mut offset = request.offset.min(spec.size_bytes);
    let mut chunk = vec![0u8; 8 * 1024];
    while offset < spec.size_bytes {
        let n = chunk.len().min((spec.size_bytes - offset) as usize);
        fill_content(&spec.name, offset, &mut chunk[..n]);
        limiter.acquire(n);
        writer.write_all(&chunk[..n])?;
        offset += n as u64;
    }
    writer.flush()?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::content::verify_content;
    use crate::protocol::{write_request, Request};
    use std::io::Read;

    fn read_header(reader: &mut impl std::io::BufRead) -> Response {
        crate::protocol::read_response(reader).unwrap()
    }

    #[test]
    fn serves_full_objects_with_correct_content() {
        let server = OriginServer::start(OriginConfig {
            objects: vec![ObjectSpec::new("clip", 64 * 1024, 1_000_000.0)],
            rate_limit_bps: 0.0,
        })
        .unwrap();
        let stream = TcpStream::connect(server.addr()).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut writer = BufWriter::new(stream);
        write_request(
            &mut writer,
            &Request {
                name: "clip".into(),
                offset: 0,
            },
        )
        .unwrap();
        match read_header(&mut reader) {
            Response::Ok { size, bitrate_bps } => {
                assert_eq!(size, 64 * 1024);
                assert_eq!(bitrate_bps, 1_000_000.0);
            }
            Response::Err(e) => panic!("unexpected error: {e}"),
        }
        let mut payload = Vec::new();
        reader.read_to_end(&mut payload).unwrap();
        assert_eq!(payload.len(), 64 * 1024);
        assert_eq!(verify_content("clip", 0, &payload), None);
    }

    #[test]
    fn serves_ranges_from_an_offset() {
        let server = OriginServer::start(OriginConfig {
            objects: vec![ObjectSpec::new("clip", 10_000, 1_000_000.0)],
            rate_limit_bps: 0.0,
        })
        .unwrap();
        let stream = TcpStream::connect(server.addr()).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut writer = BufWriter::new(stream);
        write_request(
            &mut writer,
            &Request {
                name: "clip".into(),
                offset: 6_000,
            },
        )
        .unwrap();
        let _ = read_header(&mut reader);
        let mut payload = Vec::new();
        reader.read_to_end(&mut payload).unwrap();
        assert_eq!(payload.len(), 4_000);
        assert_eq!(verify_content("clip", 6_000, &payload), None);
    }

    #[test]
    fn unknown_objects_get_an_error() {
        let server = OriginServer::start(OriginConfig {
            objects: vec![],
            rate_limit_bps: 0.0,
        })
        .unwrap();
        let stream = TcpStream::connect(server.addr()).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut writer = BufWriter::new(stream);
        write_request(
            &mut writer,
            &Request {
                name: "missing".into(),
                offset: 0,
            },
        )
        .unwrap();
        assert!(matches!(read_header(&mut reader), Response::Err(_)));
    }

    #[test]
    fn invalid_specs_are_rejected() {
        assert!(OriginServer::start(OriginConfig {
            objects: vec![ObjectSpec::new("z", 0, 1.0)],
            rate_limit_bps: 0.0,
        })
        .is_err());
        assert!(OriginServer::start(OriginConfig {
            objects: vec![ObjectSpec::new("z", 10, 0.0)],
            rate_limit_bps: 0.0,
        })
        .is_err());
    }

    #[test]
    fn rate_limit_slows_transfers() {
        let server = OriginServer::start(OriginConfig {
            objects: vec![ObjectSpec::new("clip", 100_000, 1_000_000.0)],
            rate_limit_bps: 400_000.0,
        })
        .unwrap();
        let start = std::time::Instant::now();
        let stream = TcpStream::connect(server.addr()).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut writer = BufWriter::new(stream);
        write_request(
            &mut writer,
            &Request {
                name: "clip".into(),
                offset: 0,
            },
        )
        .unwrap();
        let _ = read_header(&mut reader);
        let mut payload = Vec::new();
        reader.read_to_end(&mut payload).unwrap();
        let elapsed = start.elapsed().as_secs_f64();
        // 100 KB at 400 KB/s takes about 0.25 s.
        assert!(elapsed >= 0.2, "elapsed {elapsed}");
        assert_eq!(payload.len(), 100_000);
    }

    #[test]
    fn object_spec_duration() {
        let spec = ObjectSpec::new("x", 480_000, 48_000.0);
        assert!((spec.duration_secs() - 10.0).abs() < 1e-12);
    }
}
