//! In-memory prefix store holding the actual cached bytes.

use bytes::Bytes;
use parking_lot::RwLock;
use std::collections::HashMap;

/// A thread-safe store of object prefixes.
///
/// The cache-management decisions (which objects, how many bytes) are made
/// by [`sc_cache::CacheEngine`]; this store holds the corresponding payload
/// bytes so the proxy can serve them to clients. Storing a shorter prefix
/// than before truncates; storing a longer one replaces the entry.
///
/// ```
/// use bytes::Bytes;
/// use sc_proxy::PrefixStore;
///
/// let store = PrefixStore::new();
/// store.put("clip", Bytes::from(vec![1, 2, 3, 4]));
/// assert_eq!(store.prefix_len("clip"), 4);
/// assert_eq!(store.get("clip").unwrap().len(), 4);
/// store.truncate("clip", 2);
/// assert_eq!(store.prefix_len("clip"), 2);
/// store.remove("clip");
/// assert_eq!(store.prefix_len("clip"), 0);
/// ```
#[derive(Debug, Default)]
pub struct PrefixStore {
    prefixes: RwLock<HashMap<String, Bytes>>,
}

impl PrefixStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Stores (replaces) the prefix of `name`.
    pub fn put(&self, name: &str, prefix: Bytes) {
        self.prefixes.write().insert(name.to_string(), prefix);
    }

    /// Returns the cached prefix of `name`, if any.
    pub fn get(&self, name: &str) -> Option<Bytes> {
        self.prefixes.read().get(name).cloned()
    }

    /// Length in bytes of the cached prefix of `name` (0 when absent).
    pub fn prefix_len(&self, name: &str) -> usize {
        self.prefixes.read().get(name).map(Bytes::len).unwrap_or(0)
    }

    /// Truncates the prefix of `name` to at most `len` bytes.
    pub fn truncate(&self, name: &str, len: usize) {
        let mut guard = self.prefixes.write();
        if let Some(prefix) = guard.get_mut(name) {
            if prefix.len() > len {
                *prefix = prefix.slice(0..len);
            }
        }
    }

    /// Removes the prefix of `name`. Returns `true` if it was present.
    pub fn remove(&self, name: &str) -> bool {
        self.prefixes.write().remove(name).is_some()
    }

    /// Total bytes held across all prefixes.
    pub fn total_bytes(&self) -> usize {
        self.prefixes.read().values().map(Bytes::len).sum()
    }

    /// Number of objects with a stored prefix.
    pub fn len(&self) -> usize {
        self.prefixes.read().len()
    }

    /// Returns `true` when the store is empty.
    pub fn is_empty(&self) -> bool {
        self.prefixes.read().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_remove() {
        let store = PrefixStore::new();
        assert!(store.is_empty());
        store.put("a", Bytes::from_static(b"hello"));
        store.put("b", Bytes::from_static(b"world!"));
        assert_eq!(store.len(), 2);
        assert_eq!(store.total_bytes(), 11);
        assert_eq!(store.get("a").unwrap(), Bytes::from_static(b"hello"));
        assert!(store.get("missing").is_none());
        assert!(store.remove("a"));
        assert!(!store.remove("a"));
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn truncate_shrinks_but_never_grows() {
        let store = PrefixStore::new();
        store.put("a", Bytes::from_static(b"0123456789"));
        store.truncate("a", 4);
        assert_eq!(store.prefix_len("a"), 4);
        store.truncate("a", 100);
        assert_eq!(store.prefix_len("a"), 4);
        store.truncate("missing", 2); // no-op
    }

    #[test]
    fn store_is_shareable_across_threads() {
        use std::sync::Arc;
        let store = Arc::new(PrefixStore::new());
        let handles: Vec<_> = (0..4)
            .map(|i| {
                let store = Arc::clone(&store);
                std::thread::spawn(move || {
                    store.put(&format!("obj{i}"), Bytes::from(vec![0u8; 100 * (i + 1)]));
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(store.len(), 4);
        assert_eq!(store.total_bytes(), 100 + 200 + 300 + 400);
    }
}
