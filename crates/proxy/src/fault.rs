//! Deterministic fault injection for the test origin.
//!
//! A [`FaultPlan`] is a per-connection schedule of [`FaultAction`]s: the
//! origin consults the plan once for every accepted connection, in accept
//! order, and misbehaves accordingly. Connections beyond the end of the
//! schedule are served normally, so a plan describes a bounded failure
//! window and the origin recovers by construction. Plans are either spelled
//! out explicitly (tests that need exact failure placement) or generated
//! from a seed via [`FaultPlan::seeded`], which draws actions from a
//! [`FaultProfile`] with the workspace's deterministic RNG — the same plan
//! for the same seed, every run.
//!
//! All failure modes operate on an *accepted* TCP connection, because the
//! origin cannot refuse at the SYN level while its listener is up:
//!
//! * [`FaultAction::Refuse`] drops the connection before reading the
//!   request — the peer sees an immediate EOF where the header should be;
//! * [`FaultAction::ResetAfter`] serves the header plus a bounded payload
//!   prefix, then severs the socket in both directions;
//! * [`FaultAction::TruncateAfter`] serves the same bounded prefix but
//!   closes cleanly, as if the stream were complete;
//! * [`FaultAction::StallAt`] stops sending at a payload offset for a
//!   fixed interval (a "slow-loris" origin), then resumes.
//!
//! Byte offsets are relative to the bytes sent on *this connection* (after
//! any requested range offset), which keeps test assertions independent of
//! how much of the object the proxy already holds.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicU64, Ordering};

/// What the origin does to one accepted connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FaultAction {
    /// Serve the connection normally.
    #[default]
    None,
    /// Drop the connection before reading the request.
    Refuse,
    /// Serve the header and the first `n` payload bytes, then sever the
    /// connection in both directions without completing the stream.
    ResetAfter(u64),
    /// Pause for `millis` immediately before sending the payload byte at
    /// `offset`, then resume and complete the stream.
    StallAt {
        /// Payload offset (bytes into this connection's stream) at which
        /// the origin stops sending.
        offset: u64,
        /// How long the origin stays silent, in milliseconds.
        millis: u64,
    },
    /// Serve the header and the first `n` payload bytes, then close
    /// cleanly as if the stream were complete.
    TruncateAfter(u64),
}

/// Relative weights of each failure mode in a seeded plan, plus the
/// parameter ranges the draws use.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultProfile {
    /// Probability that a connection is refused.
    pub refuse: f64,
    /// Probability that a connection is reset mid-payload.
    pub reset: f64,
    /// Probability that a connection stalls mid-payload.
    pub stall: f64,
    /// Probability that a connection is truncated.
    pub truncate: f64,
    /// Exclusive upper bound on drawn payload offsets (reset, stall and
    /// truncate positions are uniform in `[0, fault_offset_max)`).
    pub fault_offset_max: u64,
    /// Stall length in milliseconds.
    pub stall_millis: u64,
}

impl Default for FaultProfile {
    fn default() -> Self {
        FaultProfile {
            refuse: 0.05,
            reset: 0.05,
            stall: 0.05,
            truncate: 0.05,
            fault_offset_max: 64 * 1024,
            stall_millis: 200,
        }
    }
}

/// A deterministic, per-connection schedule of fault actions.
///
/// The plan hands out one action per accepted connection via an internal
/// atomic cursor; connections past the end of the schedule are healthy.
/// The default plan is empty, i.e. fault injection is strictly off unless
/// a schedule is provided.
#[derive(Debug, Default)]
pub struct FaultPlan {
    actions: Vec<FaultAction>,
    connections: AtomicU64,
}

impl Clone for FaultPlan {
    fn clone(&self) -> Self {
        FaultPlan {
            actions: self.actions.clone(),
            connections: AtomicU64::new(self.connections.load(Ordering::Relaxed)),
        }
    }
}

impl FaultPlan {
    /// An empty plan: every connection is served normally.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// A plan that replays `actions` in accept order, then stays healthy.
    pub fn from_actions(actions: Vec<FaultAction>) -> Self {
        FaultPlan {
            actions,
            connections: AtomicU64::new(0),
        }
    }

    /// A full-outage window by connection index: the first `healthy_before`
    /// connections are served, the next `refused` are dropped, and every
    /// connection after that is served again.
    pub fn refuse_window(healthy_before: u64, refused: u64) -> Self {
        let mut actions = vec![FaultAction::None; healthy_before as usize];
        actions.resize((healthy_before + refused) as usize, FaultAction::Refuse);
        FaultPlan::from_actions(actions)
    }

    /// A seeded random schedule of `connections` actions drawn from
    /// `profile`. The same seed always yields the same plan.
    pub fn seeded(seed: u64, connections: usize, profile: FaultProfile) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let offset_bound = profile.fault_offset_max.max(1);
        let actions = (0..connections)
            .map(|_| {
                let u: f64 = rng.gen();
                // Draw the offset unconditionally so each connection
                // consumes a fixed number of RNG words regardless of the
                // action chosen: plans with different profiles but the same
                // seed stay positionally comparable.
                let offset = rng.gen_range(0..offset_bound);
                if u < profile.refuse {
                    FaultAction::Refuse
                } else if u < profile.refuse + profile.reset {
                    FaultAction::ResetAfter(offset)
                } else if u < profile.refuse + profile.reset + profile.stall {
                    FaultAction::StallAt {
                        offset,
                        millis: profile.stall_millis,
                    }
                } else if u < profile.refuse + profile.reset + profile.stall + profile.truncate {
                    FaultAction::TruncateAfter(offset)
                } else {
                    FaultAction::None
                }
            })
            .collect();
        FaultPlan::from_actions(actions)
    }

    /// Whether the plan contains no fault at all.
    pub fn is_healthy(&self) -> bool {
        self.actions.iter().all(|a| *a == FaultAction::None)
    }

    /// Number of connections that have consulted the plan so far.
    pub fn connections_seen(&self) -> u64 {
        self.connections.load(Ordering::Relaxed)
    }

    /// Advances the cursor and returns the action for the next connection.
    pub(crate) fn next_action(&self) -> FaultAction {
        let index = self.connections.fetch_add(1, Ordering::Relaxed);
        self.actions
            .get(index as usize)
            .copied()
            .unwrap_or(FaultAction::None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_is_healthy_forever() {
        let plan = FaultPlan::none();
        assert!(plan.is_healthy());
        for _ in 0..10 {
            assert_eq!(plan.next_action(), FaultAction::None);
        }
        assert_eq!(plan.connections_seen(), 10);
    }

    #[test]
    fn explicit_schedule_replays_in_order_then_recovers() {
        let plan = FaultPlan::from_actions(vec![
            FaultAction::Refuse,
            FaultAction::ResetAfter(100),
            FaultAction::StallAt {
                offset: 5,
                millis: 10,
            },
        ]);
        assert!(!plan.is_healthy());
        assert_eq!(plan.next_action(), FaultAction::Refuse);
        assert_eq!(plan.next_action(), FaultAction::ResetAfter(100));
        assert_eq!(
            plan.next_action(),
            FaultAction::StallAt {
                offset: 5,
                millis: 10
            }
        );
        // Past the end of the schedule the origin is healthy again.
        assert_eq!(plan.next_action(), FaultAction::None);
    }

    #[test]
    fn refuse_window_brackets_the_outage() {
        let plan = FaultPlan::refuse_window(2, 3);
        let drawn: Vec<_> = (0..6).map(|_| plan.next_action()).collect();
        assert_eq!(
            drawn,
            vec![
                FaultAction::None,
                FaultAction::None,
                FaultAction::Refuse,
                FaultAction::Refuse,
                FaultAction::Refuse,
                FaultAction::None,
            ]
        );
    }

    #[test]
    fn seeded_plans_are_reproducible_and_seed_sensitive() {
        let profile = FaultProfile::default();
        let a = FaultPlan::seeded(7, 64, profile);
        let b = FaultPlan::seeded(7, 64, profile);
        let c = FaultPlan::seeded(8, 64, profile);
        let draw = |p: &FaultPlan| (0..64).map(|_| p.next_action()).collect::<Vec<_>>();
        let da = draw(&a);
        assert_eq!(da, draw(&b));
        assert_ne!(da, draw(&c));
    }

    #[test]
    fn seeded_profile_probabilities_shape_the_mix() {
        let all_refuse = FaultProfile {
            refuse: 1.0,
            reset: 0.0,
            stall: 0.0,
            truncate: 0.0,
            ..FaultProfile::default()
        };
        let plan = FaultPlan::seeded(3, 32, all_refuse);
        for _ in 0..32 {
            assert_eq!(plan.next_action(), FaultAction::Refuse);
        }
        let healthy = FaultPlan::seeded(
            3,
            32,
            FaultProfile {
                refuse: 0.0,
                reset: 0.0,
                stall: 0.0,
                truncate: 0.0,
                ..FaultProfile::default()
            },
        );
        assert!(healthy.is_healthy());
    }
}
