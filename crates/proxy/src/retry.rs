//! Origin-path resilience primitives: bounded retry with seeded
//! exponential backoff, and a per-origin circuit breaker.
//!
//! The proxy wraps every origin dial in a [`RetryPolicy`] (per-attempt
//! timeouts live on the socket; the policy bounds how many attempts are
//! made and how long the whole dance may take) and consults one
//! [`CircuitBreaker`] per origin so that a dead origin costs a fast
//! in-memory check instead of a connect timeout per request.
//!
//! Backoff jitter is *seeded*: the pause for a given `(attempt, nonce)`
//! pair is a pure function of the policy's `jitter_seed`, so tests can pin
//! exact schedules while concurrent requests (distinct nonces) still
//! decorrelate their retry storms.

use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Bounds on the proxy's origin retry loop.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Maximum connection attempts per origin open (≥ 1; 1 disables
    /// retrying).
    pub max_attempts: u32,
    /// Backoff before the first retry; attempt `k` waits roughly
    /// `base_backoff · 2^k`, jittered.
    pub base_backoff: Duration,
    /// Upper bound on any single backoff pause.
    pub max_backoff: Duration,
    /// Total wall-clock budget for one origin open, attempts and pauses
    /// included. Once exceeded, the open fails rather than retry again.
    pub deadline: Duration,
    /// Seed for the deterministic backoff jitter.
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            base_backoff: Duration::from_millis(25),
            max_backoff: Duration::from_millis(400),
            deadline: Duration::from_secs(3),
            jitter_seed: 0x5eed_cafe,
        }
    }
}

impl RetryPolicy {
    /// The pause before retry number `attempt` (0-based) for a request
    /// identified by `nonce`: exponential in the attempt, capped at
    /// [`max_backoff`](Self::max_backoff), with a deterministic jitter
    /// factor in `[0.5, 1.0)` drawn from `jitter_seed ⊕ attempt ⊕ nonce`.
    pub fn backoff(&self, attempt: u32, nonce: u64) -> Duration {
        let base = self.base_backoff.as_secs_f64();
        if base <= 0.0 {
            return Duration::ZERO;
        }
        let exp = base * 2f64.powi(attempt.min(30) as i32);
        let capped = exp.min(self.max_backoff.as_secs_f64()).max(0.0);
        let seed = self.jitter_seed
            ^ u64::from(attempt).wrapping_mul(0x9e37_79b9_7f4a_7c15)
            ^ nonce.wrapping_mul(0xd134_2543_de82_ef95);
        let jitter = 0.5 + 0.5 * StdRng::seed_from_u64(seed).gen::<f64>();
        Duration::from_secs_f64(capped * jitter)
    }
}

/// Circuit-breaker thresholds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakerConfig {
    /// Consecutive origin failures that trip the breaker open
    /// (0 disables the breaker entirely).
    pub failure_threshold: u32,
    /// How long an open breaker rejects requests before letting one
    /// half-open probe through.
    pub open_duration: Duration,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            failure_threshold: 5,
            open_duration: Duration::from_millis(500),
        }
    }
}

/// Observable breaker states (the classic three-state machine).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Requests flow; consecutive failures are being counted.
    Closed,
    /// Requests fail fast without touching the origin.
    Open,
    /// One probe request is allowed through; its outcome decides between
    /// `Closed` (success) and `Open` (failure).
    HalfOpen,
}

#[derive(Debug)]
struct BreakerInner {
    state: BreakerState,
    consecutive_failures: u32,
    opened_at: Option<Instant>,
    /// A half-open probe is in flight; concurrent requests keep failing
    /// fast until its outcome is recorded.
    probing: bool,
}

/// A per-origin circuit breaker: closed → open on consecutive failures,
/// open → half-open after [`BreakerConfig::open_duration`], half-open →
/// closed/open on the probe's outcome.
#[derive(Debug)]
pub struct CircuitBreaker {
    config: BreakerConfig,
    inner: Mutex<BreakerInner>,
    transitions: AtomicU64,
}

impl CircuitBreaker {
    /// Creates a breaker in the closed state.
    pub fn new(config: BreakerConfig) -> Self {
        CircuitBreaker {
            config,
            inner: Mutex::new(BreakerInner {
                state: BreakerState::Closed,
                consecutive_failures: 0,
                opened_at: None,
                probing: false,
            }),
            transitions: AtomicU64::new(0),
        }
    }

    fn disabled(&self) -> bool {
        self.config.failure_threshold == 0
    }

    /// Whether a request may contact the origin right now. An open breaker
    /// that has cooled down transitions to half-open and admits exactly one
    /// probe; callers that get `true` must eventually report the outcome
    /// via [`record_success`](Self::record_success),
    /// [`record_failure`](Self::record_failure) or
    /// [`release_probe`](Self::release_probe).
    pub fn allow(&self) -> bool {
        if self.disabled() {
            return true;
        }
        let mut inner = self.inner.lock();
        match inner.state {
            BreakerState::Closed => true,
            BreakerState::Open => {
                let cooled = inner
                    .opened_at
                    .map(|t| t.elapsed() >= self.config.open_duration)
                    .unwrap_or(true);
                if cooled {
                    inner.state = BreakerState::HalfOpen;
                    inner.probing = true;
                    self.transitions.fetch_add(1, Ordering::Relaxed);
                    true
                } else {
                    false
                }
            }
            BreakerState::HalfOpen => {
                if inner.probing {
                    false
                } else {
                    inner.probing = true;
                    true
                }
            }
        }
    }

    /// Records a successful origin exchange: resets the failure count and
    /// closes the breaker from any state.
    pub fn record_success(&self) {
        if self.disabled() {
            return;
        }
        let mut inner = self.inner.lock();
        inner.consecutive_failures = 0;
        inner.probing = false;
        if inner.state != BreakerState::Closed {
            inner.state = BreakerState::Closed;
            inner.opened_at = None;
            self.transitions.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Records a failed origin exchange; trips the breaker open once the
    /// failure threshold is reached (immediately, from half-open).
    pub fn record_failure(&self) {
        if self.disabled() {
            return;
        }
        let mut inner = self.inner.lock();
        inner.probing = false;
        match inner.state {
            BreakerState::Closed => {
                inner.consecutive_failures += 1;
                if inner.consecutive_failures >= self.config.failure_threshold {
                    inner.state = BreakerState::Open;
                    inner.opened_at = Some(Instant::now());
                    self.transitions.fetch_add(1, Ordering::Relaxed);
                }
            }
            BreakerState::HalfOpen => {
                inner.state = BreakerState::Open;
                inner.opened_at = Some(Instant::now());
                self.transitions.fetch_add(1, Ordering::Relaxed);
            }
            BreakerState::Open => {}
        }
    }

    /// Releases a half-open probe slot without recording an outcome, for
    /// callers that were admitted but aborted before contacting the origin
    /// (e.g. an origin-budget timeout). Without this a dying probe would
    /// wedge the breaker in half-open forever.
    pub fn release_probe(&self) {
        if self.disabled() {
            return;
        }
        self.inner.lock().probing = false;
    }

    /// The breaker's current state.
    pub fn state(&self) -> BreakerState {
        self.inner.lock().state
    }

    /// Number of state transitions since creation (closed→open, open→
    /// half-open and half-open→closed/open each count once).
    pub fn transitions(&self) -> u64 {
        self.transitions.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 4,
            base_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(60),
            deadline: Duration::from_secs(1),
            jitter_seed: 42,
        }
    }

    #[test]
    fn backoff_is_deterministic_exponential_and_capped() {
        let p = policy();
        for attempt in 0..6 {
            for nonce in [0u64, 1, 99] {
                assert_eq!(p.backoff(attempt, nonce), p.backoff(attempt, nonce));
                let exp = 0.010 * 2f64.powi(attempt as i32);
                let capped = exp.min(0.060);
                let got = p.backoff(attempt, nonce).as_secs_f64();
                assert!(
                    got >= 0.5 * capped - 1e-9 && got < capped + 1e-9,
                    "attempt {attempt} nonce {nonce}: {got} outside [{}, {capped}]",
                    0.5 * capped
                );
            }
        }
        // Distinct nonces decorrelate the jitter (not a hard guarantee for
        // every pair, but these particular draws differ).
        assert_ne!(p.backoff(1, 0), p.backoff(1, 1));
        // A zero base disables the pause entirely.
        let free = RetryPolicy {
            base_backoff: Duration::ZERO,
            ..p
        };
        assert_eq!(free.backoff(3, 7), Duration::ZERO);
    }

    #[test]
    fn breaker_trips_after_threshold_and_fails_fast() {
        let breaker = CircuitBreaker::new(BreakerConfig {
            failure_threshold: 3,
            open_duration: Duration::from_secs(60),
        });
        assert_eq!(breaker.state(), BreakerState::Closed);
        for _ in 0..2 {
            assert!(breaker.allow());
            breaker.record_failure();
            assert_eq!(breaker.state(), BreakerState::Closed);
        }
        assert!(breaker.allow());
        breaker.record_failure();
        assert_eq!(breaker.state(), BreakerState::Open);
        assert!(!breaker.allow(), "open breaker must fail fast");
        assert_eq!(breaker.transitions(), 1);
    }

    #[test]
    fn success_resets_the_consecutive_failure_count() {
        let breaker = CircuitBreaker::new(BreakerConfig {
            failure_threshold: 2,
            open_duration: Duration::from_secs(60),
        });
        breaker.record_failure();
        breaker.record_success();
        breaker.record_failure();
        assert_eq!(breaker.state(), BreakerState::Closed);
        breaker.record_failure();
        assert_eq!(breaker.state(), BreakerState::Open);
    }

    #[test]
    fn half_open_admits_one_probe_and_its_outcome_decides() {
        let breaker = CircuitBreaker::new(BreakerConfig {
            failure_threshold: 1,
            open_duration: Duration::from_millis(20),
        });
        assert!(breaker.allow());
        breaker.record_failure();
        assert_eq!(breaker.state(), BreakerState::Open);
        std::thread::sleep(Duration::from_millis(30));
        // Cooled down: exactly one probe goes through.
        assert!(breaker.allow());
        assert_eq!(breaker.state(), BreakerState::HalfOpen);
        assert!(!breaker.allow(), "only one probe at a time");
        // Probe fails: back to open, and the window restarts.
        breaker.record_failure();
        assert_eq!(breaker.state(), BreakerState::Open);
        assert!(!breaker.allow());
        std::thread::sleep(Duration::from_millis(30));
        assert!(breaker.allow());
        breaker.record_success();
        assert_eq!(breaker.state(), BreakerState::Closed);
        assert!(breaker.allow());
        // closed→open, open→half-open, half-open→open, open→half-open,
        // half-open→closed.
        assert_eq!(breaker.transitions(), 5);
    }

    #[test]
    fn released_probe_frees_the_half_open_slot() {
        let breaker = CircuitBreaker::new(BreakerConfig {
            failure_threshold: 1,
            open_duration: Duration::from_millis(10),
        });
        breaker.record_failure();
        std::thread::sleep(Duration::from_millis(20));
        assert!(breaker.allow());
        assert!(!breaker.allow());
        breaker.release_probe();
        assert!(breaker.allow(), "released probe slot must be reusable");
    }

    #[test]
    fn zero_threshold_disables_the_breaker() {
        let breaker = CircuitBreaker::new(BreakerConfig {
            failure_threshold: 0,
            open_duration: Duration::from_millis(1),
        });
        for _ in 0..100 {
            breaker.record_failure();
            assert!(breaker.allow());
        }
        assert_eq!(breaker.state(), BreakerState::Closed);
        assert_eq!(breaker.transitions(), 0);
    }
}
