//! The caching proxy: prefix caching plus joint cache/origin delivery.
//!
//! The request path is built for throughput (see `ARCHITECTURE.md`, "Proxy
//! data path"): a fixed worker pool drains a bounded accept queue, origin
//! connections are bounded by a counting semaphore, the origin tail streams
//! through a fixed-size reusable chunk ring (retaining only the prefix the
//! policy may admit, never the whole object), and the byte store is
//! reconciled against the cache engine via its O(changes) delta log instead
//! of a per-request full-contents scan.
//!
//! On top of that sits the overload layer (see `ARCHITECTURE.md`,
//! "Overload & admission control"): queued connections carry enqueue
//! timestamps and are shed with `BUSY` once their wait blows
//! [`ProxyConfig::queue_deadline`], an optional in-flight cap sheds
//! drop-oldest at admission, client sockets get per-write timeouts and an
//! optional per-client token bucket so a slow reader cannot pin a worker,
//! and the `STATS` verb dumps every counter as one JSON line.

use crate::content::verify_content;
use crate::error::ProxyError;
use crate::pool::{AcceptQueue, InFlightSlot, OriginBudget, OriginPermit, PushOutcome};
use crate::protocol::{
    read_command, read_response, write_request, write_response, Command, Request, Response,
};
use crate::ratelimit::RateLimiter;
use crate::retry::{BreakerConfig, BreakerState, CircuitBreaker, RetryPolicy};
use crate::store::PrefixStore;
use bytes::Bytes;
use parking_lot::Mutex;
use sc_cache::fx::{FxHashMap, FxHasher};
use sc_cache::policy::{PolicyKind, UtilityPolicy};
use sc_cache::{CacheDelta, ObjectKey, ObjectMeta, ShardedEngine};
use sc_netmodel::{BandwidthEstimator, EwmaEstimator};
use std::hash::Hasher as _;
use std::io::{BufReader, BufWriter, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Size of each worker's reusable relay chunk buffer (the "ring"): origin
/// tails stream through this fixed window, so relay memory per request is
/// `RING_BYTES` plus whatever prefix the policy may admit — never the whole
/// object.
const RING_BYTES: usize = 64 * 1024;

/// Safety margin on the conservative bandwidth lower bound used to size the
/// tail-retention buffer: the retention cap is computed as the policy
/// target at 90% of the bound, so estimator movement during the transfer
/// cannot strand the store short of the engine's eventual grant.
const RETAIN_BANDWIDTH_SLACK: f64 = 0.9;

/// Configuration of the caching proxy.
#[derive(Debug, Clone)]
pub struct ProxyConfig {
    /// Address of the origin server to fetch misses from.
    pub origin_addr: SocketAddr,
    /// Cache capacity in bytes.
    pub cache_capacity_bytes: f64,
    /// The cache-management policy (PB by default).
    pub policy: PolicyKind,
    /// Bandwidth assumed towards the origin before any transfer has been
    /// observed (bytes per second). Subsequent transfers feed an EWMA
    /// estimator (passive measurement, Section 2.7 of the paper).
    pub assumed_origin_bps: f64,
    /// Number of request-handler threads in the worker pool (must be ≥ 1).
    pub worker_threads: usize,
    /// Capacity of the bounded accept queue between the accept thread and
    /// the workers (must be ≥ 1). A full queue blocks the accept thread,
    /// pushing backpressure into the OS listen backlog.
    pub accept_queue_len: usize,
    /// Maximum concurrent connections to the origin server (0 = unlimited).
    pub max_origin_connections: usize,
    /// Number of independent cache-engine shards (0 = one per worker
    /// thread). Each shard has its own lock, utility heap and byte budget
    /// (the capacity is split evenly), so workers serving objects that hash
    /// to different shards never contend on the cache. `1` reproduces the
    /// single-engine proxy exactly.
    pub engine_shards: usize,
    /// Per-attempt timeout for dialing the origin (must be non-zero).
    pub connect_timeout: Duration,
    /// Per-read timeout on origin sockets (must be non-zero): a stalled
    /// "slow-loris" origin surfaces as a read error instead of wedging a
    /// worker, and the resilient path reconnects mid-stream.
    pub origin_read_timeout: Duration,
    /// Retry/backoff bounds for origin opens (attempts, pauses and the
    /// total deadline budget; see [`RetryPolicy`]).
    pub retry: RetryPolicy,
    /// Circuit-breaker thresholds for the origin path (see
    /// [`BreakerConfig`]; a zero failure threshold disables the breaker).
    pub breaker: BreakerConfig,
    /// Maximum time a connection may sit in the accept queue before a
    /// worker picks it up. A request whose queue wait exceeded this is
    /// already past its latency budget, so the worker sheds it with a
    /// `BUSY <retry-after-ms>` answer instead of serving a response
    /// nobody is waiting for. `Duration::ZERO` disables the deadline.
    pub queue_deadline: Duration,
    /// Hard cap on admitted requests in flight (queued plus being
    /// handled); 0 = unbounded. At the cap, admission sheds deterministic
    /// drop-oldest: the oldest queued connection is answered `BUSY` to
    /// admit the newcomer (the newest arrival is the one most likely to
    /// still be listening), and with nothing queued the newcomer itself
    /// is shed.
    pub max_in_flight: usize,
    /// Per-write timeout on client sockets. A stalled or wedged reader
    /// turns into a write error after at most this long, counted in
    /// `client_timeouts`, instead of pinning a worker indefinitely.
    /// `Duration::ZERO` disables the timeout.
    pub client_write_timeout: Duration,
    /// Per-client token-bucket rate limit in bytes per second (0 =
    /// unlimited): bounds how fast any single client may drain the proxy,
    /// so one greedy reader cannot starve the pool.
    pub client_rate_limit_bps: f64,
}

impl ProxyConfig {
    /// A PB-policy proxy in front of `origin_addr` with the given capacity.
    pub fn new(origin_addr: SocketAddr, cache_capacity_bytes: f64) -> Self {
        ProxyConfig {
            origin_addr,
            cache_capacity_bytes,
            policy: PolicyKind::PartialBandwidth,
            assumed_origin_bps: 64_000.0,
            worker_threads: 8,
            accept_queue_len: 1024,
            max_origin_connections: 32,
            engine_shards: 0,
            connect_timeout: Duration::from_secs(1),
            origin_read_timeout: Duration::from_secs(5),
            retry: RetryPolicy::default(),
            breaker: BreakerConfig::default(),
            queue_deadline: Duration::from_secs(30),
            max_in_flight: 0,
            client_write_timeout: Duration::from_secs(10),
            client_rate_limit_bps: 0.0,
        }
    }

    /// The retry pause suggested with a `BUSY` answer: half the queue
    /// deadline (clamped to at least 1 ms), so a retrying client lands
    /// when roughly half of today's backlog has drained. With the
    /// deadline disabled (cap-driven sheds only) a flat 100 ms is used.
    fn busy_retry_after_ms(&self) -> u64 {
        if self.queue_deadline.is_zero() {
            return 100;
        }
        (self.queue_deadline.as_millis() as u64 / 2).max(1)
    }
}

/// Per-proxy cache statistics exposed for observability and tests.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ProxyStats {
    /// Requests handled.
    pub requests: u64,
    /// Bytes served to clients straight from the prefix store.
    pub bytes_from_cache: u64,
    /// Bytes relayed from the origin server.
    pub bytes_from_origin: u64,
    /// Current number of objects with a cached prefix.
    pub cached_objects: usize,
    /// Current bytes held in the prefix store.
    pub cached_bytes: u64,
    /// Latest estimate of the origin-path bandwidth in bytes per second.
    pub estimated_origin_bps: f64,
    /// Largest tail-retention buffer any single request has resided in
    /// memory. Together with the fixed per-worker relay ring
    /// (`RING_BYTES`), this bounds per-request memory: it tracks the prefix
    /// the policy could admit, not the object size.
    pub peak_tail_bytes: u64,
    /// Origin connection attempts made after a failed one (retries within
    /// one open, across all requests).
    pub origin_retries: u64,
    /// Mid-stream reconnects that successfully resumed a transfer after a
    /// reset, truncation or stall.
    pub origin_resumes: u64,
    /// Cumulative backoff time slept before origin retries, in
    /// microseconds.
    pub origin_backoff_micros: u64,
    /// Circuit-breaker state transitions since the proxy started.
    pub breaker_transitions: u64,
    /// Requests served *degraded*: the origin was unavailable and the
    /// response carried only the policy-cached prefix, flagged on the wire.
    pub degraded_hits: u64,
    /// Requests shed under overload with a `BUSY` answer: in-flight-cap
    /// evictions at admission plus queue-deadline misses in the workers.
    pub shed_requests: u64,
    /// Cumulative accept-queue wait over all dequeued connections, in
    /// microseconds (shed or served alike).
    pub queue_wait_micros: u64,
    /// High-water mark of the accept-queue depth (connections waiting for
    /// a worker, excluding those already being handled).
    pub peak_queue_depth: u64,
    /// Client connections dropped because a write to them timed out: the
    /// reader was too slow (or gone) and holding on would pin a worker.
    pub client_timeouts: u64,
}

impl ProxyStats {
    /// The stats as one line of hand-rolled JSON — the payload of the
    /// `STATS` protocol verb, so load tests and operators can scrape
    /// counters without process introspection.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"requests\": {}, \"bytes_from_cache\": {}, \"bytes_from_origin\": {}, \
             \"cached_objects\": {}, \"cached_bytes\": {}, \"estimated_origin_bps\": {}, \
             \"peak_tail_bytes\": {}, \"origin_retries\": {}, \"origin_resumes\": {}, \
             \"origin_backoff_micros\": {}, \"breaker_transitions\": {}, \
             \"degraded_hits\": {}, \"shed_requests\": {}, \"queue_wait_micros\": {}, \
             \"peak_queue_depth\": {}, \"client_timeouts\": {}}}",
            self.requests,
            self.bytes_from_cache,
            self.bytes_from_origin,
            self.cached_objects,
            self.cached_bytes,
            self.estimated_origin_bps,
            self.peak_tail_bytes,
            self.origin_retries,
            self.origin_resumes,
            self.origin_backoff_micros,
            self.breaker_transitions,
            self.degraded_hits,
            self.shed_requests,
            self.queue_wait_micros,
            self.peak_queue_depth,
            self.client_timeouts,
        )
    }
}

#[derive(Debug)]
struct ProxyState {
    config: ProxyConfig,
    /// N-way sharded cache engine: requests for objects in different shards
    /// take different locks, so the cache decision is no longer a global
    /// serialization point across the worker pool.
    engine: ShardedEngine<Box<dyn UtilityPolicy + Send + Sync>>,
    store: PrefixStore,
    /// name → (size, bitrate) learned from origin response headers.
    metadata: Mutex<FxHashMap<String, (u64, f64)>>,
    /// Per-shard: engine slot handle → object name, the reverse of each
    /// shard's key→slot interning. Slot handles are dense, stable and
    /// **shard-local**, so this is one flat vector per shard; delta
    /// application resolves names in O(1) under the same shard lock that
    /// produced the deltas.
    slot_names: Vec<Mutex<Vec<Option<String>>>>,
    estimator: Mutex<EwmaEstimator>,
    /// The accept queue, shared with the accept thread and workers: it is
    /// part of the state so both the stats snapshot and the `STATS` verb
    /// can read the shed/wait/depth counters it maintains.
    queue: Arc<AcceptQueue>,
    origin_budget: OriginBudget,
    /// Per-origin circuit breaker guarding every dial-out.
    breaker: CircuitBreaker,
    /// Monotonic nonce decorrelating concurrent requests' backoff jitter.
    open_nonce: AtomicU64,
    /// Hot request counters, updated lock-free with relaxed atomics (the
    /// per-request stats critical section is gone).
    requests: AtomicU64,
    bytes_from_cache: AtomicU64,
    bytes_from_origin: AtomicU64,
    peak_tail_bytes: AtomicU64,
    origin_retries: AtomicU64,
    origin_resumes: AtomicU64,
    origin_backoff_micros: AtomicU64,
    degraded_hits: AtomicU64,
    client_timeouts: AtomicU64,
}

impl ProxyState {
    /// A consistent-enough snapshot of every counter: the hot counters are
    /// read lock-free; only the store summary and the estimator take
    /// locks. Used both by [`CachingProxy::stats`] and the `STATS` verb.
    fn snapshot(&self) -> ProxyStats {
        ProxyStats {
            requests: self.requests.load(Ordering::Relaxed),
            bytes_from_cache: self.bytes_from_cache.load(Ordering::Relaxed),
            bytes_from_origin: self.bytes_from_origin.load(Ordering::Relaxed),
            cached_objects: self.store.len(),
            cached_bytes: self.store.total_bytes() as u64,
            estimated_origin_bps: self
                .estimator
                .lock()
                .estimate_bps()
                .unwrap_or(self.config.assumed_origin_bps),
            peak_tail_bytes: self.peak_tail_bytes.load(Ordering::Relaxed),
            origin_retries: self.origin_retries.load(Ordering::Relaxed),
            origin_resumes: self.origin_resumes.load(Ordering::Relaxed),
            origin_backoff_micros: self.origin_backoff_micros.load(Ordering::Relaxed),
            breaker_transitions: self.breaker.transitions(),
            degraded_hits: self.degraded_hits.load(Ordering::Relaxed),
            shed_requests: self.queue.shed_count(),
            queue_wait_micros: self.queue.total_wait_micros(),
            peak_queue_depth: self.queue.peak_depth(),
            client_timeouts: self.client_timeouts.load(Ordering::Relaxed),
        }
    }
}

/// A running caching proxy backed by a fixed worker pool.
///
/// The proxy serves whatever prefix of the requested object it holds at
/// LAN speed, streams the remainder from the origin over the (rate-limited)
/// WAN path through a fixed-size relay ring, updates its bandwidth estimate
/// from the observed origin throughput, and lets the configured
/// [`PolicyKind`] decide how large a prefix of the object to retain.
/// Shutdown is graceful: queued and in-flight requests are drained before
/// the workers exit.
#[derive(Debug)]
pub struct CachingProxy {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    state: Arc<ProxyState>,
}

impl CachingProxy {
    /// Binds to an ephemeral localhost port, spawns the worker pool and
    /// starts accepting clients.
    ///
    /// # Errors
    ///
    /// Returns [`ProxyError::InvalidConfig`] for a negative capacity, a
    /// zero-sized worker pool or accept queue, and [`ProxyError::Io`] if
    /// binding fails.
    pub fn start(config: ProxyConfig) -> Result<Self, ProxyError> {
        if config.worker_threads == 0 {
            return Err(ProxyError::InvalidConfig(
                "worker_threads",
                "the worker pool needs at least one thread".into(),
            ));
        }
        if config.accept_queue_len == 0 {
            return Err(ProxyError::InvalidConfig(
                "accept_queue_len",
                "the accept queue needs a non-zero capacity".into(),
            ));
        }
        if config.connect_timeout.is_zero() {
            return Err(ProxyError::InvalidConfig(
                "connect_timeout",
                "origin dials need a non-zero timeout".into(),
            ));
        }
        if config.origin_read_timeout.is_zero() {
            return Err(ProxyError::InvalidConfig(
                "origin_read_timeout",
                "origin reads need a non-zero timeout".into(),
            ));
        }
        if config.retry.max_attempts == 0 {
            return Err(ProxyError::InvalidConfig(
                "retry.max_attempts",
                "at least one origin attempt is required".into(),
            ));
        }
        if config.retry.deadline.is_zero() {
            return Err(ProxyError::InvalidConfig(
                "retry.deadline",
                "the retry deadline budget must be non-zero".into(),
            ));
        }
        if config.client_rate_limit_bps.is_nan() {
            return Err(ProxyError::InvalidConfig(
                "client_rate_limit_bps",
                "the client rate limit must be a number (0 disables it)".into(),
            ));
        }
        let shards = if config.engine_shards == 0 {
            config.worker_threads
        } else {
            config.engine_shards
        };
        let engine = ShardedEngine::new(config.cache_capacity_bytes, shards, || {
            config.policy.build()
        })
        .map_err(|e| ProxyError::InvalidConfig("cache_capacity_bytes", e.to_string()))?;
        // The proxy reconciles its byte store from the engine's delta log;
        // the simulator (which shares the engine) leaves tracking off.
        engine.set_delta_tracking(true);
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let queue = Arc::new(AcceptQueue::new(
            config.accept_queue_len,
            config.max_in_flight,
        ));
        let state = Arc::new(ProxyState {
            engine,
            store: PrefixStore::new(),
            metadata: Mutex::new(FxHashMap::default()),
            slot_names: (0..shards).map(|_| Mutex::new(Vec::new())).collect(),
            estimator: Mutex::new(EwmaEstimator::new(0.3)),
            queue: Arc::clone(&queue),
            origin_budget: OriginBudget::new(config.max_origin_connections),
            breaker: CircuitBreaker::new(config.breaker),
            open_nonce: AtomicU64::new(0),
            requests: AtomicU64::new(0),
            bytes_from_cache: AtomicU64::new(0),
            bytes_from_origin: AtomicU64::new(0),
            peak_tail_bytes: AtomicU64::new(0),
            origin_retries: AtomicU64::new(0),
            origin_resumes: AtomicU64::new(0),
            origin_backoff_micros: AtomicU64::new(0),
            degraded_hits: AtomicU64::new(0),
            client_timeouts: AtomicU64::new(0),
            config,
        });

        let workers = (0..state.config.worker_threads)
            .map(|_| {
                let state = Arc::clone(&state);
                std::thread::spawn(move || {
                    let mut scratch = WorkerScratch::new(state.config.policy);
                    while let Some(conn) = state.queue.pop() {
                        let _slot = InFlightSlot::new(&state.queue);
                        let wait = conn.enqueued_at.elapsed();
                        state.queue.record_wait(wait);
                        let deadline = state.config.queue_deadline;
                        if !deadline.is_zero() && wait > deadline {
                            // The client has waited past its latency
                            // budget: shedding now is cheaper for both
                            // sides than serving a stale request.
                            state.queue.record_shed();
                            shed_with_busy(conn.stream, state.config.busy_retry_after_ms());
                            continue;
                        }
                        let _ = handle_client(conn.stream, &state, &mut scratch);
                    }
                })
            })
            .collect();

        let accept_state = Arc::clone(&state);
        let accept_shutdown = Arc::clone(&shutdown);
        let accept_thread = std::thread::spawn(move || {
            for stream in listener.incoming() {
                if accept_shutdown.load(Ordering::SeqCst) {
                    break;
                }
                match stream {
                    Ok(stream) => {
                        let retry_after = accept_state.config.busy_retry_after_ms();
                        match accept_state.queue.push(stream) {
                            PushOutcome::Closed => break,
                            PushOutcome::Queued { shed } => {
                                if let Some(old) = shed {
                                    shed_with_busy(old.stream, retry_after);
                                }
                            }
                            PushOutcome::ShedIncoming(stream) => {
                                shed_with_busy(stream, retry_after);
                            }
                        }
                    }
                    Err(_) => break,
                }
            }
            // If the accept loop dies, let the workers drain and park
            // rather than wait forever on a queue nobody fills.
            accept_state.queue.close();
        });
        Ok(CachingProxy {
            addr,
            shutdown,
            accept_thread: Some(accept_thread),
            workers,
            state,
        })
    }

    /// The address streaming clients should connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// A snapshot of the proxy's statistics. The hot counters are read
    /// lock-free; only the store summary and the estimator take locks.
    pub fn stats(&self) -> ProxyStats {
        self.state.snapshot()
    }

    /// Current state of the origin circuit breaker.
    pub fn breaker_state(&self) -> BreakerState {
        self.state.breaker.state()
    }

    /// Number of cache-engine shards this proxy is running with.
    pub fn engine_shards(&self) -> usize {
        self.state.engine.shard_count()
    }

    /// Bytes of `name` currently cached.
    pub fn cached_prefix_len(&self, name: &str) -> usize {
        self.state.store.prefix_len(name)
    }

    /// Snapshot of the cached objects as `(name, engine_bytes,
    /// store_bytes)` triples, in unspecified order — the engine's granted
    /// allocation next to the bytes the store actually holds, for
    /// observability and byte-accounting tests.
    pub fn contents(&self) -> Vec<(String, f64, usize)> {
        let mut all = Vec::new();
        for shard in 0..self.state.engine.shard_count() {
            let shard_contents = self.state.engine.with_shard_index(shard, |engine| {
                let names = self.state.slot_names[shard].lock();
                engine
                    .contents()
                    .into_iter()
                    .map(|(key, engine_bytes)| {
                        let name = engine
                            .slot_of(key)
                            .and_then(|slot| names.get(slot as usize).cloned().flatten())
                            .unwrap_or_default();
                        (name, engine_bytes)
                    })
                    .collect::<Vec<_>>()
            });
            all.extend(shard_contents.into_iter().map(|(name, engine_bytes)| {
                let store_bytes = self.state.store.prefix_len(&name);
                (name, engine_bytes, store_bytes)
            }));
        }
        all
    }

    /// Requests shutdown, drains queued and in-flight requests, and joins
    /// the accept thread and every worker.
    pub fn shutdown(&mut self) {
        if self.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        // Refuse new connections (this also unblocks an accept thread stuck
        // on a full queue), then nudge the accept loop awake.
        self.state.queue.close();
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
        // Workers drain whatever was queued before the close, then exit.
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for CachingProxy {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Per-worker reusable buffers and a private policy instance: everything a
/// request needs that should not be reallocated per request or fetched
/// under a shared lock.
struct WorkerScratch {
    /// Fixed-size relay ring: every origin chunk passes through here.
    chunk: Vec<u8>,
    /// Tail-retention buffer, capped at the prefix the policy may admit.
    retained: Vec<u8>,
    /// Reusable copy buffer for the engine's drained delta log.
    deltas: Vec<CacheDelta>,
    /// Stateless policy clone used to size the retention cap without
    /// touching the engine lock from the relay loop.
    policy: Box<dyn UtilityPolicy + Send + Sync>,
}

impl WorkerScratch {
    fn new(policy: PolicyKind) -> Self {
        WorkerScratch {
            chunk: vec![0u8; RING_BYTES],
            retained: Vec::new(),
            deltas: Vec::new(),
            policy: policy.build(),
        }
    }
}

/// Stable mapping from object names to cache keys: the same Fx mix the
/// engine's key→slot interning map uses (`sc_cache::fx`), applied to the
/// name bytes. Keys only need to be stable within one proxy process.
fn key_for(name: &str) -> ObjectKey {
    let mut hasher = FxHasher::default();
    hasher.write(name.as_bytes());
    ObjectKey::new(hasher.finish())
}

/// Tail bytes worth retaining for the store, given the conservative
/// bandwidth lower bound `b_lo`: the policy's target allocation at
/// slightly-below `b_lo`, minus the prefix already stored. Policy targets
/// are non-increasing in bandwidth and this request's own observation
/// lands the EWMA between the prior estimate and the observed throughput,
/// so a cap computed from a running minimum of those two quantities covers
/// the engine's eventual grant in the common case. It is best-effort, not
/// a guarantee: an origin stall after retention already stopped, or
/// concurrent transfers dragging the shared estimator lower, can leave the
/// grant larger than what was retained. The grow step then stores only the
/// bytes in hand (store bytes never exceed the grant — the tolerated
/// direction of drift) and the store catches up on the object's next
/// request, which fetches from the shorter stored offset.
fn retain_cap(
    policy: &(dyn UtilityPolicy + Send + Sync),
    meta: &ObjectMeta,
    b_lo: f64,
    prefix_bytes: usize,
) -> usize {
    let size = meta.size_bytes();
    let target = policy
        .target_bytes(meta, (b_lo * RETAIN_BANDWIDTH_SLACK).max(0.0))
        .clamp(0.0, size);
    (target.ceil() as usize).saturating_sub(prefix_bytes)
}

/// Answers a shed connection with `BUSY <retry-after-ms>` and closes it.
/// The write is bounded by a short timeout (and errors are ignored): a
/// peer that is already gone or wedged must not pin the shedding thread.
fn shed_with_busy(stream: TcpStream, retry_after_ms: u64) {
    let _ = stream.set_write_timeout(Some(Duration::from_millis(250)));
    let mut writer = BufWriter::new(stream);
    let _ = write_response(&mut writer, &Response::Busy { retry_after_ms });
}

/// Classifies a failed client-socket write: a timed-out write means the
/// reader is too slow (or gone), which is counted and surfaced as
/// [`ProxyError::ClientTimeout`]; everything else passes through.
fn client_err(state: &ProxyState, err: ProxyError) -> ProxyError {
    if let ProxyError::Io(e) = &err {
        if matches!(
            e.kind(),
            std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
        ) {
            state.client_timeouts.fetch_add(1, Ordering::Relaxed);
            return ProxyError::ClientTimeout;
        }
    }
    err
}

/// Writes payload bytes to the client in ring-sized chunks, paced by the
/// per-client token bucket and with write failures classified through
/// [`client_err`].
fn write_paced(
    state: &ProxyState,
    writer: &mut BufWriter<TcpStream>,
    bytes: &[u8],
    pace: &mut RateLimiter,
) -> Result<(), ProxyError> {
    for chunk in bytes.chunks(RING_BYTES) {
        pace.acquire(chunk.len());
        writer
            .write_all(chunk)
            .map_err(|e| client_err(state, ProxyError::Io(e)))?;
    }
    writer
        .flush()
        .map_err(|e| client_err(state, ProxyError::Io(e)))?;
    Ok(())
}

fn handle_client(
    stream: TcpStream,
    state: &ProxyState,
    scratch: &mut WorkerScratch,
) -> Result<(), ProxyError> {
    stream.set_nodelay(true).ok();
    if !state.config.client_write_timeout.is_zero() {
        stream
            .set_write_timeout(Some(state.config.client_write_timeout))
            .ok();
    }
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    let request = match read_command(&mut reader) {
        Ok(Command::Get(request)) => request,
        Ok(Command::Stats) => {
            let mut json = state.snapshot().to_json();
            json.push('\n');
            writer
                .write_all(json.as_bytes())
                .and_then(|()| writer.flush())
                .map_err(|e| client_err(state, ProxyError::Io(e)))?;
            return Ok(());
        }
        Err(err @ ProxyError::Protocol(_)) => {
            // Malformed or adversarial input: the bounded parser already
            // stopped reading; answer with a clean ERR and drop the
            // connection (best-effort — the peer may be gone).
            let _ = write_response(&mut writer, &Response::Err("malformed request".into()));
            return Err(err);
        }
        Err(err) => return Err(err),
    };
    let name = request.name;
    // Per-client pacing: one token bucket per connection, so a greedy
    // client is bounded without penalizing its neighbours.
    let mut pace = RateLimiter::new(state.config.client_rate_limit_bps);

    let cached = state.store.get(&name).unwrap_or_default();
    let known_meta = state.metadata.lock().get(&name).copied();

    // Open an origin connection when the object is not fully cached or its
    // metadata is still unknown; the connection is opened *before* replying
    // to the client so that the tail can be relayed as it arrives. The
    // permit bounds concurrent origin connections for the whole transfer.
    // Opens go through the resilient path (timeouts, retry/backoff, circuit
    // breaker); when the origin stays unreachable but a prefix is cached,
    // the request degrades to serving that prefix — the paper's partial
    // caching masking the outage — flagged on the wire.
    let mut origin: Option<(BufReader<TcpStream>, OriginPermit<'_>)> = None;
    let mut degraded = false;
    let (size, bitrate) = match known_meta {
        Some((size, bitrate)) => {
            if (cached.len() as u64) < size {
                match open_origin(state, &name, cached.len() as u64) {
                    OriginOutcome::Stream { reader, permit, .. } => {
                        origin = Some((reader, permit));
                    }
                    OriginOutcome::Unknown => {
                        write_response(&mut writer, &Response::Err("unknown object".into()))?;
                        return Err(ProxyError::UnknownObject(name));
                    }
                    OriginOutcome::Unavailable => {
                        if cached.is_empty() {
                            write_response(
                                &mut writer,
                                &Response::Err("origin unavailable".into()),
                            )?;
                            return Err(ProxyError::OriginUnavailable(name));
                        }
                        degraded = true;
                    }
                }
            }
            (size, bitrate)
        }
        None => {
            // First contact: learn the metadata from the origin's header.
            match open_origin(state, &name, cached.len() as u64) {
                OriginOutcome::Stream {
                    reader,
                    size,
                    bitrate_bps,
                    permit,
                } => {
                    state
                        .metadata
                        .lock()
                        .insert(name.clone(), (size, bitrate_bps));
                    origin = Some((reader, permit));
                    (size, bitrate_bps)
                }
                OriginOutcome::Unknown => {
                    write_response(&mut writer, &Response::Err("unknown object".into()))?;
                    return Err(ProxyError::UnknownObject(name));
                }
                OriginOutcome::Unavailable => {
                    // Nothing cached, no metadata: the outage cannot be
                    // masked.
                    write_response(&mut writer, &Response::Err("origin unavailable".into()))?;
                    return Err(ProxyError::OriginUnavailable(name));
                }
            }
        }
    };

    // Serve the client: header and cached prefix immediately (LAN speed),
    // then relay the origin bytes chunk by chunk as they trickle in.
    write_response(
        &mut writer,
        &Response::Ok {
            size,
            bitrate_bps: bitrate,
            degraded,
        },
    )
    .map_err(|e| client_err(state, e))?;
    let prefix_bytes = cached.len().min(size as usize);
    write_paced(state, &mut writer, &cached[..prefix_bytes], &mut pace)?;

    if degraded {
        // Degraded hit: the range-correct prefix is all the client gets.
        // Cache state, metadata and the bandwidth estimator are left
        // untouched — an outage should not perturb what the policy learned
        // from healthy transfers.
        state.requests.fetch_add(1, Ordering::Relaxed);
        state
            .bytes_from_cache
            .fetch_add(prefix_bytes as u64, Ordering::Relaxed);
        state.degraded_hits.fetch_add(1, Ordering::Relaxed);
        return Ok(());
    }

    let key = key_for(&name);
    let duration = size as f64 / bitrate;
    let meta = ObjectMeta::new(key, duration, bitrate, 0.0);

    // Relay the tail through the fixed-size ring, retaining only the
    // leading bytes the policy could plausibly admit. `b_lo` is a running
    // lower bound on this request's contribution to the post-transfer
    // estimate: the minimum of the prior estimate and the observed
    // throughput so far (see `retain_cap` for why this is best-effort
    // rather than exact). Once a byte is dropped the retained prefix can
    // never be extended again (it must stay contiguous), hence the
    // `gapped` latch.
    scratch.retained.clear();
    let mut tail_len: u64 = 0;
    let mut origin_bps: Option<f64> = None;
    if origin.is_some() {
        let expected_tail = size.saturating_sub(prefix_bytes as u64);
        let mut b_lo = state
            .estimator
            .lock()
            .estimate_bps()
            .unwrap_or(state.config.assumed_origin_bps);
        let started = Instant::now();
        let mut gapped = false;
        while tail_len < expected_tail {
            let Some((origin_reader, _)) = origin.as_mut() else {
                break;
            };
            let n = match origin_reader.read(&mut scratch.chunk) {
                Ok(n) if n > 0 => n,
                // Early EOF (mid-stream reset or truncated response) or a
                // read timeout (stalled origin): drop the connection — and
                // its budget permit — then resume from the current offset
                // through the resilient open. If the origin stays down the
                // client gets a short stream, and the store still keeps the
                // contiguous bytes in hand.
                Ok(_) | Err(_) => {
                    origin = None;
                    if let OriginOutcome::Stream { reader, permit, .. } =
                        open_origin(state, &name, prefix_bytes as u64 + tail_len)
                    {
                        origin = Some((reader, permit));
                        state.origin_resumes.fetch_add(1, Ordering::Relaxed);
                    }
                    continue;
                }
            };
            write_paced(state, &mut writer, &scratch.chunk[..n], &mut pace)?;
            tail_len += n as u64;
            let elapsed = started.elapsed().as_secs_f64();
            if elapsed > 0.0 {
                b_lo = b_lo.min(tail_len as f64 / elapsed);
            }
            if !gapped {
                let cap = retain_cap(scratch.policy.as_ref(), &meta, b_lo, prefix_bytes);
                let keep = cap.saturating_sub(scratch.retained.len()).min(n);
                scratch.retained.extend_from_slice(&scratch.chunk[..keep]);
                gapped = keep < n;
            }
        }
        drop(origin);
        let secs = started.elapsed().as_secs_f64();
        if secs > 0.0 && tail_len > 0 {
            origin_bps = Some(tail_len as f64 / secs);
        }
    }

    // Defensive check: the retained tail must continue the cached prefix.
    debug_assert_eq!(
        verify_content(&name, prefix_bytes as u64, &scratch.retained),
        None,
        "origin payload does not match expected content"
    );

    // Update the bandwidth estimate from the observed origin throughput
    // (observe + read under a single estimator acquisition).
    let estimated = {
        let mut estimator = state.estimator.lock();
        if let Some(bps) = origin_bps {
            estimator.observe(bps);
        }
        estimator
            .estimate_bps()
            .unwrap_or(state.config.assumed_origin_bps)
    };

    // Let the policy decide how much of this object to keep, then apply
    // the engine's delta log to the byte store: O(changes) per request,
    // no contents() rescan. Only the shard this object hashes to is
    // locked; store mutations stay inside that shard's critical section so
    // they are serialized in engine-decision order per shard.
    state
        .engine
        .access_with(&meta, estimated, |engine, shard, _| {
            let target_bytes = engine.cached_bytes(key);
            let slot = engine
                .slot_of(key)
                .expect("accessed keys are interned by on_access");
            scratch.deltas.clear();
            scratch.deltas.extend(engine.drain_deltas());

            {
                let mut names = state.slot_names[shard].lock();
                if names.len() <= slot as usize {
                    names.resize(slot as usize + 1, None);
                }
                if names[slot as usize].is_none() {
                    names[slot as usize] = Some(name.clone());
                }
                for delta in &scratch.deltas {
                    // The accessed object's own change is applied below from
                    // the bytes in hand; deltas handle everything else
                    // (evictions of other objects in this shard).
                    if delta.slot == slot {
                        continue;
                    }
                    if let Some(victim) = names.get(delta.slot as usize).and_then(Option::as_ref) {
                        if delta.new_bytes <= 0.0 {
                            state.store.remove(victim);
                        } else {
                            state.store.truncate(victim, delta.new_bytes as usize);
                        }
                    }
                }
            }

            // Grow this object's stored prefix up to the engine's allocation
            // using the bytes in hand (cached prefix + retained tail).
            let desired = (target_bytes as usize).min(size as usize);
            if desired > 0 {
                let have = prefix_bytes + scratch.retained.len();
                let usable = desired.min(have);
                if usable > state.store.prefix_len(&name) {
                    let mut prefix = Vec::with_capacity(usable);
                    prefix.extend_from_slice(&cached[..prefix_bytes.min(usable)]);
                    if usable > prefix_bytes {
                        prefix.extend_from_slice(&scratch.retained[..usable - prefix_bytes]);
                    }
                    state.store.put(&name, Bytes::from(prefix));
                }
            } else {
                state.store.remove(&name);
            }
        });

    // Request counters are lock-free: no stats critical section.
    state.requests.fetch_add(1, Ordering::Relaxed);
    state
        .bytes_from_cache
        .fetch_add(prefix_bytes as u64, Ordering::Relaxed);
    state
        .bytes_from_origin
        .fetch_add(tail_len, Ordering::Relaxed);
    state
        .peak_tail_bytes
        .fetch_max(scratch.retained.len() as u64, Ordering::Relaxed);

    // A request that retained a large prefix must not pin that capacity in
    // the worker for the proxy's lifetime: release it back down to the
    // ring size once the bytes have been handed to the store.
    scratch.retained.clear();
    scratch.retained.shrink_to(RING_BYTES);
    Ok(())
}

/// Outcome of one resilient origin open.
enum OriginOutcome<'a> {
    /// The origin answered: a positioned reader plus the object's size and
    /// bit-rate, with one origin-budget permit held for the connection's
    /// lifetime.
    Stream {
        reader: BufReader<TcpStream>,
        size: u64,
        bitrate_bps: f64,
        permit: OriginPermit<'a>,
    },
    /// The origin answered but does not know the object.
    Unknown,
    /// The origin could not be reached within the retry budget, or the
    /// circuit breaker is open.
    Unavailable,
}

/// Opens an origin connection for `name` starting at `offset` through the
/// resilience stack: the circuit breaker gates every attempt, each attempt
/// dials and reads under per-attempt timeouts, and failures back off
/// exponentially (seeded jitter) until the attempt count or the deadline
/// budget runs out. Transport failures are absorbed into
/// [`OriginOutcome::Unavailable`] rather than propagated.
fn open_origin<'a>(state: &'a ProxyState, name: &str, offset: u64) -> OriginOutcome<'a> {
    let policy = state.config.retry;
    let started = Instant::now();
    let nonce = state.open_nonce.fetch_add(1, Ordering::Relaxed);
    let mut attempt: u32 = 0;
    loop {
        if !state.breaker.allow() {
            return OriginOutcome::Unavailable;
        }
        let remaining = policy.deadline.saturating_sub(started.elapsed());
        let Some(permit) = state.origin_budget.acquire_within(remaining) else {
            // The budget, not the origin, ran out of room: release the
            // half-open probe slot (if we held it) without an outcome.
            state.breaker.release_probe();
            return OriginOutcome::Unavailable;
        };
        match try_open_origin(state, name, offset, permit) {
            Ok(Some((reader, size, bitrate_bps, permit))) => {
                state.breaker.record_success();
                return OriginOutcome::Stream {
                    reader,
                    size,
                    bitrate_bps,
                    permit,
                };
            }
            Ok(None) => {
                // A definite answer from a healthy origin.
                state.breaker.record_success();
                return OriginOutcome::Unknown;
            }
            Err(_) => {
                state.breaker.record_failure();
                attempt += 1;
                if attempt >= policy.max_attempts || started.elapsed() >= policy.deadline {
                    return OriginOutcome::Unavailable;
                }
                let pause = policy
                    .backoff(attempt - 1, nonce)
                    .min(policy.deadline.saturating_sub(started.elapsed()));
                if !pause.is_zero() {
                    state
                        .origin_backoff_micros
                        .fetch_add(pause.as_micros() as u64, Ordering::Relaxed);
                    std::thread::sleep(pause);
                }
                state.origin_retries.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

/// One origin connection attempt under the per-attempt timeouts.
#[allow(clippy::type_complexity)]
fn try_open_origin<'a>(
    state: &ProxyState,
    name: &str,
    offset: u64,
    permit: OriginPermit<'a>,
) -> Result<Option<(BufReader<TcpStream>, u64, f64, OriginPermit<'a>)>, ProxyError> {
    let stream =
        TcpStream::connect_timeout(&state.config.origin_addr, state.config.connect_timeout)?;
    stream.set_read_timeout(Some(state.config.origin_read_timeout))?;
    stream.set_nodelay(true).ok();
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut origin_writer = BufWriter::new(stream);
    write_request(
        &mut origin_writer,
        &Request {
            name: name.to_string(),
            offset,
        },
    )?;
    match read_response(&mut reader)? {
        Response::Ok {
            size, bitrate_bps, ..
        } => Ok(Some((reader, size, bitrate_bps, permit))),
        Response::Err(_) => Ok(None),
        // An overloaded origin counts as a transport failure: the caller
        // backs off and retries within the usual budget.
        Response::Busy { retry_after_ms } => Err(ProxyError::Busy(retry_after_ms)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keys_are_stable_and_distinct() {
        assert_eq!(key_for("movie-1"), key_for("movie-1"));
        assert_ne!(key_for("movie-1"), key_for("movie-2"));
    }

    #[test]
    fn proxy_config_defaults() {
        let cfg = ProxyConfig::new("127.0.0.1:9".parse().unwrap(), 1e6);
        assert_eq!(cfg.policy, PolicyKind::PartialBandwidth);
        assert!(cfg.assumed_origin_bps > 0.0);
        assert!(cfg.worker_threads >= 1);
        assert!(cfg.accept_queue_len >= 1);
        assert_eq!(cfg.engine_shards, 0, "0 = one shard per worker");
        assert!(!cfg.connect_timeout.is_zero());
        assert!(!cfg.origin_read_timeout.is_zero());
        assert!(cfg.retry.max_attempts >= 1);
        assert!(cfg.retry.deadline >= cfg.retry.max_backoff);
        assert!(cfg.breaker.failure_threshold > 0, "breaker on by default");
        // Overload knobs default permissive: a generous queue deadline and
        // write timeout, no in-flight cap, no per-client pacing.
        assert!(!cfg.queue_deadline.is_zero());
        assert_eq!(cfg.max_in_flight, 0);
        assert!(!cfg.client_write_timeout.is_zero());
        assert_eq!(cfg.client_rate_limit_bps, 0.0);
    }

    #[test]
    fn busy_retry_after_tracks_the_queue_deadline() {
        let mut cfg = ProxyConfig::new("127.0.0.1:9".parse().unwrap(), 1e6);
        cfg.queue_deadline = Duration::from_millis(300);
        assert_eq!(cfg.busy_retry_after_ms(), 150);
        cfg.queue_deadline = Duration::from_millis(1);
        assert_eq!(cfg.busy_retry_after_ms(), 1, "clamped to at least 1 ms");
        cfg.queue_deadline = Duration::ZERO;
        assert_eq!(cfg.busy_retry_after_ms(), 100, "flat default when off");
    }

    #[test]
    fn stats_json_is_well_formed_and_complete() {
        let stats = ProxyStats {
            requests: 7,
            shed_requests: 3,
            peak_queue_depth: 11,
            client_timeouts: 2,
            estimated_origin_bps: 64_000.0,
            ..ProxyStats::default()
        };
        let json = stats.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"requests\": 7"));
        assert!(json.contains("\"shed_requests\": 3"));
        assert!(json.contains("\"peak_queue_depth\": 11"));
        assert!(json.contains("\"client_timeouts\": 2"));
        assert!(json.contains("\"queue_wait_micros\": 0"));
        assert!(json.contains("\"estimated_origin_bps\": 64000"));
        // One line, no trailing newline: the verb handler appends it.
        assert!(!json.contains('\n'));
    }

    #[test]
    fn nan_client_rate_limit_is_rejected() {
        let mut cfg = ProxyConfig::new("127.0.0.1:9".parse().unwrap(), 1e6);
        cfg.client_rate_limit_bps = f64::NAN;
        assert!(CachingProxy::start(cfg).is_err());
    }

    #[test]
    fn engine_shards_default_to_worker_count() {
        let addr: SocketAddr = "127.0.0.1:9".parse().unwrap();
        let mut cfg = ProxyConfig::new(addr, 1e6);
        cfg.worker_threads = 3;
        let proxy = CachingProxy::start(cfg).unwrap();
        assert_eq!(proxy.engine_shards(), 3);

        let mut cfg = ProxyConfig::new(addr, 1e6);
        cfg.worker_threads = 3;
        cfg.engine_shards = 1;
        let proxy = CachingProxy::start(cfg).unwrap();
        assert_eq!(proxy.engine_shards(), 1);
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let addr: SocketAddr = "127.0.0.1:9".parse().unwrap();
        assert!(CachingProxy::start(ProxyConfig::new(addr, -1.0)).is_err());
        let mut cfg = ProxyConfig::new(addr, 1e6);
        cfg.worker_threads = 0;
        assert!(CachingProxy::start(cfg).is_err());
        let mut cfg = ProxyConfig::new(addr, 1e6);
        cfg.accept_queue_len = 0;
        assert!(CachingProxy::start(cfg).is_err());
        let mut cfg = ProxyConfig::new(addr, 1e6);
        cfg.connect_timeout = Duration::ZERO;
        assert!(CachingProxy::start(cfg).is_err());
        let mut cfg = ProxyConfig::new(addr, 1e6);
        cfg.origin_read_timeout = Duration::ZERO;
        assert!(CachingProxy::start(cfg).is_err());
        let mut cfg = ProxyConfig::new(addr, 1e6);
        cfg.retry.max_attempts = 0;
        assert!(CachingProxy::start(cfg).is_err());
        let mut cfg = ProxyConfig::new(addr, 1e6);
        cfg.retry.deadline = Duration::ZERO;
        assert!(CachingProxy::start(cfg).is_err());
    }

    #[test]
    fn retention_cap_covers_the_policy_target() {
        let policy = PolicyKind::PartialBandwidth.build();
        let meta = ObjectMeta::new(ObjectKey::new(1), 10.0, 100_000.0, 0.0);
        // PB at 40 KB/s wants (100 - 40) * 10 = 600 KB; the slack makes the
        // cap at least that.
        let cap = retain_cap(policy.as_ref(), &meta, 40_000.0, 0);
        assert!(cap >= 600_000, "cap {cap}");
        assert!(cap <= meta.size_bytes() as usize);
        // A stored prefix reduces what is worth retaining.
        let cap_warm = retain_cap(policy.as_ref(), &meta, 40_000.0, 500_000);
        assert!(cap_warm >= 100_000 && cap_warm < cap, "cap_warm {cap_warm}");
        // Abundant bandwidth: nothing worth retaining.
        assert_eq!(retain_cap(policy.as_ref(), &meta, 1e9, 0), 0);
    }
}
