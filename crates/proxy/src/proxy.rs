//! The caching proxy: prefix caching plus joint cache/origin delivery.

use crate::content::verify_content;
use crate::error::ProxyError;
use crate::protocol::{
    read_request, read_response, write_request, write_response, Request, Response,
};
use crate::store::PrefixStore;
use bytes::Bytes;
use parking_lot::Mutex;
use sc_cache::policy::PolicyKind;
use sc_cache::{CacheEngine, ObjectKey, ObjectMeta};
use sc_netmodel::{BandwidthEstimator, EwmaEstimator};
use std::collections::HashMap;
use std::io::{BufReader, BufWriter, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

/// Configuration of the caching proxy.
#[derive(Debug, Clone)]
pub struct ProxyConfig {
    /// Address of the origin server to fetch misses from.
    pub origin_addr: SocketAddr,
    /// Cache capacity in bytes.
    pub cache_capacity_bytes: f64,
    /// The cache-management policy (PB by default).
    pub policy: PolicyKind,
    /// Bandwidth assumed towards the origin before any transfer has been
    /// observed (bytes per second). Subsequent transfers feed an EWMA
    /// estimator (passive measurement, Section 2.7 of the paper).
    pub assumed_origin_bps: f64,
}

impl ProxyConfig {
    /// A PB-policy proxy in front of `origin_addr` with the given capacity.
    pub fn new(origin_addr: SocketAddr, cache_capacity_bytes: f64) -> Self {
        ProxyConfig {
            origin_addr,
            cache_capacity_bytes,
            policy: PolicyKind::PartialBandwidth,
            assumed_origin_bps: 64_000.0,
        }
    }
}

/// Per-proxy cache statistics exposed for observability and tests.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ProxyStats {
    /// Requests handled.
    pub requests: u64,
    /// Bytes served to clients straight from the prefix store.
    pub bytes_from_cache: u64,
    /// Bytes relayed from the origin server.
    pub bytes_from_origin: u64,
    /// Current number of objects with a cached prefix.
    pub cached_objects: usize,
    /// Current bytes held in the prefix store.
    pub cached_bytes: u64,
    /// Latest estimate of the origin-path bandwidth in bytes per second.
    pub estimated_origin_bps: f64,
}

#[derive(Debug)]
struct ProxyState {
    config: ProxyConfig,
    engine: Mutex<CacheEngine<Box<dyn sc_cache::policy::UtilityPolicy + Send + Sync>>>,
    store: PrefixStore,
    metadata: Mutex<HashMap<String, (u64, f64)>>, // name -> (size, bitrate)
    names: Mutex<HashMap<ObjectKey, String>>,
    estimator: Mutex<EwmaEstimator>,
    stats: Mutex<ProxyStats>,
}

/// A running caching proxy (one thread per client connection).
///
/// The proxy serves whatever prefix of the requested object it holds at
/// LAN speed, fetches the remainder from the origin over the (rate-limited)
/// WAN path, updates its bandwidth estimate from the observed origin
/// throughput, and lets the configured [`PolicyKind`] decide how large a
/// prefix of the object to retain.
#[derive(Debug)]
pub struct CachingProxy {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    state: Arc<ProxyState>,
}

impl CachingProxy {
    /// Binds to an ephemeral localhost port and starts accepting clients.
    ///
    /// # Errors
    ///
    /// Returns [`ProxyError::InvalidConfig`] for a negative capacity and
    /// [`ProxyError::Io`] if binding fails.
    pub fn start(config: ProxyConfig) -> Result<Self, ProxyError> {
        let engine = CacheEngine::new(config.cache_capacity_bytes, config.policy.build())
            .map_err(|e| ProxyError::InvalidConfig("cache_capacity_bytes", e.to_string()))?;
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let state = Arc::new(ProxyState {
            config,
            engine: Mutex::new(engine),
            store: PrefixStore::new(),
            metadata: Mutex::new(HashMap::new()),
            names: Mutex::new(HashMap::new()),
            estimator: Mutex::new(EwmaEstimator::new(0.3)),
            stats: Mutex::new(ProxyStats::default()),
        });
        let accept_state = Arc::clone(&state);
        let accept_shutdown = Arc::clone(&shutdown);
        let accept_thread = std::thread::spawn(move || {
            for stream in listener.incoming() {
                if accept_shutdown.load(Ordering::SeqCst) {
                    break;
                }
                match stream {
                    Ok(stream) => {
                        let state = Arc::clone(&accept_state);
                        std::thread::spawn(move || {
                            let _ = handle_client(stream, &state);
                        });
                    }
                    Err(_) => break,
                }
            }
        });
        Ok(CachingProxy {
            addr,
            shutdown,
            accept_thread: Some(accept_thread),
            state,
        })
    }

    /// The address streaming clients should connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// A snapshot of the proxy's statistics.
    pub fn stats(&self) -> ProxyStats {
        let mut stats = *self.state.stats.lock();
        stats.cached_objects = self.state.store.len();
        stats.cached_bytes = self.state.store.total_bytes() as u64;
        stats.estimated_origin_bps = self
            .state
            .estimator
            .lock()
            .estimate_bps()
            .unwrap_or(self.state.config.assumed_origin_bps);
        stats
    }

    /// Bytes of `name` currently cached.
    pub fn cached_prefix_len(&self, name: &str) -> usize {
        self.state.store.prefix_len(name)
    }

    /// Requests shutdown and joins the accept thread.
    pub fn shutdown(&mut self) {
        if self.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for CachingProxy {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Stable mapping from object names to cache keys (FNV-1a).
fn key_for(name: &str) -> ObjectKey {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    ObjectKey::new(h)
}

fn handle_client(stream: TcpStream, state: &ProxyState) -> Result<(), ProxyError> {
    stream.set_nodelay(true).ok();
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    let request = read_request(&mut reader)?;
    let name = request.name.clone();

    let cached = state.store.get(&name).unwrap_or_default();
    let known_meta = state.metadata.lock().get(&name).copied();

    // Open an origin connection when the object is not fully cached or its
    // metadata is still unknown; the connection is opened *before* replying
    // to the client so that the tail can be relayed as it arrives.
    let mut origin_reader: Option<BufReader<TcpStream>> = None;
    let (size, bitrate) = match known_meta {
        Some((size, bitrate)) => {
            if (cached.len() as u64) < size {
                origin_reader = Some(
                    open_origin(state, &name, cached.len() as u64)?
                        .ok_or_else(|| ProxyError::UnknownObject(name.clone()))?
                        .0,
                );
            }
            (size, bitrate)
        }
        None => {
            // First contact: learn the metadata from the origin's header.
            match open_origin(state, &name, cached.len() as u64)? {
                Some((reader, size, bitrate_bps)) => {
                    state
                        .metadata
                        .lock()
                        .insert(name.clone(), (size, bitrate_bps));
                    origin_reader = Some(reader);
                    (size, bitrate_bps)
                }
                None => {
                    write_response(&mut writer, &Response::Err("unknown object".into()))?;
                    return Err(ProxyError::UnknownObject(name));
                }
            }
        }
    };

    // Serve the client: header and cached prefix immediately (LAN speed),
    // then relay the origin bytes chunk by chunk as they trickle in.
    write_response(
        &mut writer,
        &Response::Ok {
            size,
            bitrate_bps: bitrate,
        },
    )?;
    let prefix_bytes = cached.len().min(size as usize);
    writer.write_all(&cached[..prefix_bytes])?;
    writer.flush()?;

    let mut tail: Vec<u8> = Vec::new();
    let mut origin_bps: Option<f64> = None;
    if let Some(mut reader) = origin_reader.take() {
        let started = Instant::now();
        let mut chunk = vec![0u8; 16 * 1024];
        loop {
            let n = reader.read(&mut chunk)?;
            if n == 0 {
                break;
            }
            writer.write_all(&chunk[..n])?;
            writer.flush()?;
            tail.extend_from_slice(&chunk[..n]);
        }
        let secs = started.elapsed().as_secs_f64();
        if secs > 0.0 && !tail.is_empty() {
            origin_bps = Some(tail.len() as f64 / secs);
        }
    }

    // Defensive check: the relayed tail must continue the cached prefix.
    debug_assert_eq!(
        verify_content(&name, prefix_bytes as u64, &tail),
        None,
        "origin payload does not match expected content"
    );
    let origin_payload = tail;

    // Update the bandwidth estimate from the observed origin throughput.
    if let Some(bps) = origin_bps {
        state.estimator.lock().observe(bps);
    }
    let estimated = state
        .estimator
        .lock()
        .estimate_bps()
        .unwrap_or(state.config.assumed_origin_bps);

    // Let the policy decide how much of this object to keep, then reconcile
    // the byte store with the engine's allocations.
    let key = key_for(&name);
    state.names.lock().insert(key, name.clone());
    let duration = size as f64 / bitrate;
    let meta = ObjectMeta::new(key, duration, bitrate, 0.0);
    let target_bytes;
    {
        let mut engine = state.engine.lock();
        engine.on_access(&meta, estimated);
        target_bytes = engine.cached_bytes(key);
        // Remove stored prefixes of objects the engine evicted.
        let names = state.names.lock();
        let live: std::collections::HashSet<ObjectKey> =
            engine.contents().iter().map(|(k, _)| *k).collect();
        for (k, n) in names.iter() {
            if !live.contains(k) {
                state.store.remove(n);
            }
        }
        // Shrink over-long prefixes (e.g. after the engine reduced another
        // object's allocation).
        for (k, bytes) in engine.contents() {
            if let Some(n) = names.get(&k) {
                state.store.truncate(n, bytes as usize);
            }
        }
    }

    // Grow this object's stored prefix up to the engine's allocation using
    // the bytes we already have in hand (cached prefix + relayed tail).
    let desired = (target_bytes as usize).min(size as usize);
    if desired > 0 {
        let have = prefix_bytes + origin_payload.len();
        let usable = desired.min(have);
        if usable > state.store.prefix_len(&name) {
            let mut prefix = Vec::with_capacity(usable);
            prefix.extend_from_slice(&cached[..prefix_bytes.min(usable)]);
            if usable > prefix_bytes {
                prefix.extend_from_slice(&origin_payload[..usable - prefix_bytes]);
            }
            state.store.put(&name, Bytes::from(prefix));
        }
    } else {
        state.store.remove(&name);
    }

    let mut stats = state.stats.lock();
    stats.requests += 1;
    stats.bytes_from_cache += prefix_bytes as u64;
    stats.bytes_from_origin += origin_payload.len() as u64;
    Ok(())
}

/// Opens an origin connection for `name` starting at `offset` and reads the
/// response header. Returns the positioned reader plus the object's size and
/// bit-rate, or `None` if the origin does not know the object.
fn open_origin(
    state: &ProxyState,
    name: &str,
    offset: u64,
) -> Result<Option<(BufReader<TcpStream>, u64, f64)>, ProxyError> {
    let stream = TcpStream::connect(state.config.origin_addr)?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut origin_writer = BufWriter::new(stream);
    write_request(
        &mut origin_writer,
        &Request {
            name: name.to_string(),
            offset,
        },
    )?;
    match read_response(&mut reader)? {
        Response::Ok { size, bitrate_bps } => Ok(Some((reader, size, bitrate_bps))),
        Response::Err(_) => Ok(None),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keys_are_stable_and_distinct() {
        assert_eq!(key_for("movie-1"), key_for("movie-1"));
        assert_ne!(key_for("movie-1"), key_for("movie-2"));
    }

    #[test]
    fn proxy_config_defaults_to_pb() {
        let cfg = ProxyConfig::new("127.0.0.1:9".parse().unwrap(), 1e6);
        assert_eq!(cfg.policy, PolicyKind::PartialBandwidth);
        assert!(cfg.assumed_origin_bps > 0.0);
    }

    #[test]
    fn invalid_capacity_is_rejected() {
        let cfg = ProxyConfig::new("127.0.0.1:9".parse().unwrap(), -1.0);
        assert!(CachingProxy::start(cfg).is_err());
    }
}
