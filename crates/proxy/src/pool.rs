//! Worker-pool plumbing for the proxy's request path: a bounded accept
//! queue feeding a fixed set of handler threads, and a counting semaphore
//! bounding concurrent origin connections.
//!
//! Both primitives are hand-rolled on `std::sync::{Mutex, Condvar}` because
//! the build environment has no crates.io access (see `shims/`); the
//! `parking_lot` shim deliberately exposes no condition variables, so the
//! blocking coordination lives here on the standard library directly.
//!
//! The accept queue is also where the proxy's admission control lives:
//! entries carry their enqueue timestamp (workers shed requests whose queue
//! wait blew the configured deadline), an optional hard cap bounds requests
//! in flight (queued + being handled) with deterministic drop-oldest
//! shedding, and relaxed atomics count sheds, cumulative queue wait and the
//! peak backlog for `ProxyStats`.

use std::collections::VecDeque;
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// Recovers the guard from a poisoned lock: a panicking handler must not
/// wedge the whole pool (matches the `parking_lot` shim's behaviour).
fn lock_queue<'a, T>(mutex: &'a Mutex<T>) -> MutexGuard<'a, T> {
    match mutex.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// An accepted connection waiting for a worker, stamped with its enqueue
/// time so the worker that picks it up can judge the queue wait against
/// the admission deadline.
#[derive(Debug)]
pub(crate) struct QueuedConn {
    pub(crate) stream: TcpStream,
    pub(crate) enqueued_at: Instant,
}

/// What [`AcceptQueue::push`] did with the connection.
#[derive(Debug)]
pub(crate) enum PushOutcome {
    /// The queue is closed; the connection was dropped.
    Closed,
    /// The connection was enqueued. With the in-flight cap hit, admitting
    /// it evicted the oldest queued connection, returned here so the
    /// caller can answer it with `BUSY` (drop-oldest: the newest arrival
    /// is the one most likely to still be listening).
    Queued { shed: Option<QueuedConn> },
    /// The in-flight cap is hit and nothing is queued to evict (every
    /// admitted request is already being handled), so the newcomer itself
    /// is shed.
    ShedIncoming(TcpStream),
}

#[derive(Debug)]
struct QueueInner {
    connections: VecDeque<QueuedConn>,
    /// Connections popped by workers and still being handled; together
    /// with `connections.len()` this is the in-flight total the admission
    /// cap bounds.
    active: usize,
    closed: bool,
}

/// A bounded MPMC queue of accepted client connections.
///
/// The accept thread pushes, worker threads pop. When the queue is full the
/// accept thread blocks, which stops it pulling connections off the
/// listener: backpressure propagates to the OS listen backlog and from
/// there to connecting clients, so overload slows clients down instead of
/// growing proxy memory without bound. With a nonzero `max_in_flight` the
/// queue never blocks at that cap — it sheds deterministically instead
/// (see [`PushOutcome`]), trading silence for an explicit `BUSY`.
///
/// Closing the queue wakes every waiter; pops keep draining whatever was
/// already accepted (graceful shutdown finishes queued requests) and return
/// `None` only once the queue is empty.
#[derive(Debug)]
pub(crate) struct AcceptQueue {
    inner: Mutex<QueueInner>,
    not_empty: Condvar,
    not_full: Condvar,
    capacity: usize,
    /// Hard cap on queued + active connections; 0 disables the cap.
    max_in_flight: usize,
    shed: AtomicU64,
    queue_wait_micros: AtomicU64,
    peak_depth: AtomicU64,
}

impl AcceptQueue {
    pub(crate) fn new(capacity: usize, max_in_flight: usize) -> Self {
        AcceptQueue {
            inner: Mutex::new(QueueInner {
                connections: VecDeque::with_capacity(capacity.min(1024)),
                active: 0,
                closed: false,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity,
            max_in_flight,
            shed: AtomicU64::new(0),
            queue_wait_micros: AtomicU64::new(0),
            peak_depth: AtomicU64::new(0),
        }
    }

    /// Enqueues a connection, blocking while the queue is at capacity.
    /// At the in-flight cap the push never blocks: it sheds (and counts)
    /// either the oldest queued connection or the newcomer instead.
    pub(crate) fn push(&self, stream: TcpStream) -> PushOutcome {
        let mut inner = lock_queue(&self.inner);
        loop {
            if inner.closed {
                return PushOutcome::Closed;
            }
            if self.max_in_flight > 0
                && inner.connections.len() + inner.active >= self.max_in_flight
            {
                self.shed.fetch_add(1, Ordering::Relaxed);
                return match inner.connections.pop_front() {
                    Some(oldest) => {
                        inner.connections.push_back(QueuedConn {
                            stream,
                            enqueued_at: Instant::now(),
                        });
                        self.not_empty.notify_one();
                        PushOutcome::Queued { shed: Some(oldest) }
                    }
                    None => PushOutcome::ShedIncoming(stream),
                };
            }
            if inner.connections.len() < self.capacity {
                inner.connections.push_back(QueuedConn {
                    stream,
                    enqueued_at: Instant::now(),
                });
                self.peak_depth
                    .fetch_max(inner.connections.len() as u64, Ordering::Relaxed);
                self.not_empty.notify_one();
                return PushOutcome::Queued { shed: None };
            }
            inner = match self.not_full.wait(inner) {
                Ok(guard) => guard,
                Err(poisoned) => poisoned.into_inner(),
            };
        }
    }

    /// Dequeues the next connection, blocking while the queue is empty.
    /// After [`close`](Self::close), keeps returning queued connections
    /// until the backlog is drained, then `None`. The popped connection
    /// occupies an in-flight slot until [`finish`](Self::finish) (use
    /// [`InFlightSlot`] for panic-safe release).
    pub(crate) fn pop(&self) -> Option<QueuedConn> {
        let mut inner = lock_queue(&self.inner);
        loop {
            if let Some(conn) = inner.connections.pop_front() {
                inner.active += 1;
                self.not_full.notify_one();
                return Some(conn);
            }
            if inner.closed {
                return None;
            }
            inner = match self.not_empty.wait(inner) {
                Ok(guard) => guard,
                Err(poisoned) => poisoned.into_inner(),
            };
        }
    }

    /// Releases the in-flight slot of one popped connection.
    pub(crate) fn finish(&self) {
        let mut inner = lock_queue(&self.inner);
        inner.active = inner.active.saturating_sub(1);
    }

    /// Closes the queue and wakes every blocked pusher and popper.
    pub(crate) fn close(&self) {
        let mut inner = lock_queue(&self.inner);
        inner.closed = true;
        drop(inner);
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    /// Counts one shed decided outside the queue (a queue-wait deadline
    /// miss in a worker); cap-driven sheds inside [`push`](Self::push)
    /// count themselves.
    pub(crate) fn record_shed(&self) {
        self.shed.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds one popped connection's queue wait to the cumulative total.
    pub(crate) fn record_wait(&self, wait: Duration) {
        let micros = u64::try_from(wait.as_micros()).unwrap_or(u64::MAX);
        self.queue_wait_micros.fetch_add(micros, Ordering::Relaxed);
    }

    /// Total requests shed (cap evictions plus deadline misses).
    pub(crate) fn shed_count(&self) -> u64 {
        self.shed.load(Ordering::Relaxed)
    }

    /// Cumulative queue wait over all popped connections, in microseconds.
    pub(crate) fn total_wait_micros(&self) -> u64 {
        self.queue_wait_micros.load(Ordering::Relaxed)
    }

    /// Highest queue depth (excluding active handlers) ever observed.
    pub(crate) fn peak_depth(&self) -> u64 {
        self.peak_depth.load(Ordering::Relaxed)
    }
}

/// RAII in-flight slot of a popped connection: releases the slot on drop,
/// so a panicking handler cannot leak admission capacity.
#[derive(Debug)]
pub(crate) struct InFlightSlot<'a> {
    queue: &'a AcceptQueue,
}

impl<'a> InFlightSlot<'a> {
    pub(crate) fn new(queue: &'a AcceptQueue) -> Self {
        InFlightSlot { queue }
    }
}

impl Drop for InFlightSlot<'_> {
    fn drop(&mut self) {
        self.queue.finish();
    }
}

/// A counting semaphore bounding the proxy's concurrent origin connections.
///
/// A permit is held for the lifetime of one origin connection (RAII via
/// [`OriginPermit`]); a zero budget disables the bound entirely. Acquirers
/// hold no other locks while waiting, and every transfer terminates, so the
/// wait is bounded by the in-flight transfers ahead of it.
#[derive(Debug)]
pub(crate) struct OriginBudget {
    permits: Mutex<usize>,
    available: Condvar,
    bounded: bool,
}

impl OriginBudget {
    /// Creates a budget of `max_connections` permits (0 = unlimited).
    pub(crate) fn new(max_connections: usize) -> Self {
        OriginBudget {
            permits: Mutex::new(max_connections),
            available: Condvar::new(),
            bounded: max_connections > 0,
        }
    }

    /// Acquires one permit, blocking until an origin connection slot frees.
    pub(crate) fn acquire(&self) -> OriginPermit<'_> {
        if self.bounded {
            let mut permits = lock_queue(&self.permits);
            while *permits == 0 {
                permits = match self.available.wait(permits) {
                    Ok(guard) => guard,
                    Err(poisoned) => poisoned.into_inner(),
                };
            }
            *permits -= 1;
        }
        OriginPermit { budget: self }
    }

    /// Acquires one permit like [`acquire`](Self::acquire), but gives up
    /// after `timeout`. A zero timeout degenerates to a try-acquire. The
    /// resilient origin path uses this so an outage-congested budget cannot
    /// pin a worker past its retry deadline.
    pub(crate) fn acquire_within(&self, timeout: Duration) -> Option<OriginPermit<'_>> {
        if !self.bounded {
            return Some(OriginPermit { budget: self });
        }
        let Some(deadline) = Instant::now().checked_add(timeout) else {
            // A timeout too large to represent is an unbounded wait.
            return Some(self.acquire());
        };
        let mut permits = lock_queue(&self.permits);
        loop {
            if *permits > 0 {
                *permits -= 1;
                return Some(OriginPermit { budget: self });
            }
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            permits = match self.available.wait_timeout(permits, deadline - now) {
                Ok((guard, _)) => guard,
                Err(poisoned) => poisoned.into_inner().0,
            };
        }
    }
}

/// RAII permit for one origin connection; dropped when the connection ends.
#[derive(Debug)]
pub(crate) struct OriginPermit<'a> {
    budget: &'a OriginBudget,
}

impl Drop for OriginPermit<'_> {
    fn drop(&mut self) {
        if self.budget.bounded {
            let mut permits = lock_queue(&self.budget.permits);
            *permits += 1;
            drop(permits);
            self.budget.available.notify_one();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    fn loopback_pair(listener: &TcpListener) -> TcpStream {
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let _ = listener.accept().unwrap();
        client
    }

    fn assert_queued(outcome: PushOutcome) {
        assert!(
            matches!(outcome, PushOutcome::Queued { shed: None }),
            "expected a plain enqueue, got {outcome:?}"
        );
    }

    #[test]
    fn queue_delivers_in_fifo_order_and_drains_after_close() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let queue = AcceptQueue::new(4, 0);
        let a = loopback_pair(&listener);
        let a_addr = a.local_addr().unwrap();
        let b = loopback_pair(&listener);
        let b_addr = b.local_addr().unwrap();
        assert_queued(queue.push(a));
        assert_queued(queue.push(b));
        queue.close();
        // Queued connections survive the close (graceful drain) ...
        assert_eq!(queue.pop().unwrap().stream.local_addr().unwrap(), a_addr);
        assert_eq!(queue.pop().unwrap().stream.local_addr().unwrap(), b_addr);
        // ... and only then does the queue report exhaustion.
        assert!(queue.pop().is_none());
        // New connections are refused after close.
        let c = loopback_pair(&listener);
        assert!(matches!(queue.push(c), PushOutcome::Closed));
    }

    #[test]
    fn full_queue_blocks_pushers_until_a_pop() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let queue = Arc::new(AcceptQueue::new(1, 0));
        assert_queued(queue.push(loopback_pair(&listener)));
        let pushed = Arc::new(AtomicUsize::new(0));
        let handle = {
            let queue = Arc::clone(&queue);
            let pushed = Arc::clone(&pushed);
            let stream = loopback_pair(&listener);
            std::thread::spawn(move || {
                queue.push(stream);
                pushed.store(1, Ordering::SeqCst);
            })
        };
        std::thread::sleep(std::time::Duration::from_millis(50));
        assert_eq!(
            pushed.load(Ordering::SeqCst),
            0,
            "push must block while full"
        );
        assert!(queue.pop().is_some());
        handle.join().unwrap();
        assert_eq!(pushed.load(Ordering::SeqCst), 1);
        queue.close();
    }

    #[test]
    fn in_flight_cap_sheds_oldest_queued_connection() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let queue = AcceptQueue::new(8, 2);
        let a = loopback_pair(&listener);
        let a_addr = a.local_addr().unwrap();
        let b = loopback_pair(&listener);
        let b_addr = b.local_addr().unwrap();
        assert_queued(queue.push(a));
        assert_queued(queue.push(b));
        // Two in flight (both queued): the cap evicts the oldest (a) to
        // admit the newcomer.
        let c = loopback_pair(&listener);
        let c_addr = c.local_addr().unwrap();
        match queue.push(c) {
            PushOutcome::Queued { shed: Some(old) } => {
                assert_eq!(old.stream.local_addr().unwrap(), a_addr);
            }
            other => panic!("expected drop-oldest shed, got {other:?}"),
        }
        assert_eq!(queue.shed_count(), 1);
        // FIFO order among the survivors holds: b then c.
        assert_eq!(queue.pop().unwrap().stream.local_addr().unwrap(), b_addr);
        assert_eq!(queue.pop().unwrap().stream.local_addr().unwrap(), c_addr);
        queue.close();
    }

    #[test]
    fn in_flight_cap_sheds_incoming_when_nothing_is_queued() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let queue = AcceptQueue::new(8, 2);
        assert_queued(queue.push(loopback_pair(&listener)));
        assert_queued(queue.push(loopback_pair(&listener)));
        // Workers take both: in-flight stays 2 (all active, none queued).
        let _a = queue.pop().unwrap();
        let _b = queue.pop().unwrap();
        let c = loopback_pair(&listener);
        let c_addr = c.local_addr().unwrap();
        match queue.push(c) {
            PushOutcome::ShedIncoming(stream) => {
                assert_eq!(stream.local_addr().unwrap(), c_addr);
            }
            other => panic!("expected the newcomer shed, got {other:?}"),
        }
        assert_eq!(queue.shed_count(), 1);
        // A finished handler frees the slot and admission resumes.
        queue.finish();
        assert_queued(queue.push(loopback_pair(&listener)));
        queue.close();
    }

    #[test]
    fn in_flight_slot_releases_on_drop_even_on_panic() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let queue = Arc::new(AcceptQueue::new(8, 1));
        assert_queued(queue.push(loopback_pair(&listener)));
        let popped = queue.pop().unwrap();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _slot = InFlightSlot::new(&queue);
            let _conn = popped;
            panic!("handler blew up");
        }));
        assert!(result.is_err());
        // The slot was released despite the panic, so the cap admits again.
        assert_queued(queue.push(loopback_pair(&listener)));
        queue.close();
    }

    #[test]
    fn overload_counters_track_waits_and_peak_depth() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let queue = AcceptQueue::new(8, 0);
        assert_queued(queue.push(loopback_pair(&listener)));
        assert_queued(queue.push(loopback_pair(&listener)));
        assert_eq!(queue.peak_depth(), 2);
        std::thread::sleep(Duration::from_millis(10));
        let conn = queue.pop().unwrap();
        queue.record_wait(conn.enqueued_at.elapsed());
        assert!(
            queue.total_wait_micros() >= 5_000,
            "wait {} µs",
            queue.total_wait_micros()
        );
        assert_eq!(queue.shed_count(), 0);
        queue.record_shed();
        assert_eq!(queue.shed_count(), 1);
        // Peak depth is a high-water mark: draining does not lower it.
        let _ = queue.pop();
        assert_eq!(queue.peak_depth(), 2);
        queue.close();
    }

    #[test]
    fn origin_budget_bounds_concurrency() {
        let budget = Arc::new(OriginBudget::new(2));
        let in_flight = Arc::new(AtomicUsize::new(0));
        let peak = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let budget = Arc::clone(&budget);
                let in_flight = Arc::clone(&in_flight);
                let peak = Arc::clone(&peak);
                std::thread::spawn(move || {
                    let _permit = budget.acquire();
                    let now = in_flight.fetch_add(1, Ordering::SeqCst) + 1;
                    peak.fetch_max(now, Ordering::SeqCst);
                    std::thread::sleep(std::time::Duration::from_millis(20));
                    in_flight.fetch_sub(1, Ordering::SeqCst);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert!(peak.load(Ordering::SeqCst) <= 2, "budget exceeded");
    }

    #[test]
    fn zero_budget_is_unlimited() {
        let budget = OriginBudget::new(0);
        let _a = budget.acquire();
        let _b = budget.acquire();
        let _c = budget.acquire();
    }

    #[test]
    fn acquire_within_times_out_and_recovers() {
        let budget = OriginBudget::new(1);
        let held = budget.acquire();
        // Exhausted: both the try-acquire and a short bounded wait fail.
        assert!(budget.acquire_within(Duration::ZERO).is_none());
        let start = std::time::Instant::now();
        assert!(budget.acquire_within(Duration::from_millis(40)).is_none());
        assert!(start.elapsed() >= Duration::from_millis(35));
        // Freed: the bounded wait succeeds without sleeping the timeout out.
        drop(held);
        assert!(budget.acquire_within(Duration::from_secs(5)).is_some());
        // Unlimited budgets never block.
        let unlimited = OriginBudget::new(0);
        assert!(unlimited.acquire_within(Duration::ZERO).is_some());
    }
}
