//! Worker-pool plumbing for the proxy's request path: a bounded accept
//! queue feeding a fixed set of handler threads, and a counting semaphore
//! bounding concurrent origin connections.
//!
//! Both primitives are hand-rolled on `std::sync::{Mutex, Condvar}` because
//! the build environment has no crates.io access (see `shims/`); the
//! `parking_lot` shim deliberately exposes no condition variables, so the
//! blocking coordination lives here on the standard library directly.

use std::collections::VecDeque;
use std::net::TcpStream;
use std::sync::{Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// Recovers the guard from a poisoned lock: a panicking handler must not
/// wedge the whole pool (matches the `parking_lot` shim's behaviour).
fn lock_queue<'a, T>(mutex: &'a Mutex<T>) -> MutexGuard<'a, T> {
    match mutex.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

#[derive(Debug)]
struct QueueInner {
    connections: VecDeque<TcpStream>,
    closed: bool,
}

/// A bounded MPMC queue of accepted client connections.
///
/// The accept thread pushes, worker threads pop. When the queue is full the
/// accept thread blocks, which stops it pulling connections off the
/// listener: backpressure propagates to the OS listen backlog and from
/// there to connecting clients, so overload slows clients down instead of
/// growing proxy memory without bound.
///
/// Closing the queue wakes every waiter; pops keep draining whatever was
/// already accepted (graceful shutdown finishes queued requests) and return
/// `None` only once the queue is empty.
#[derive(Debug)]
pub(crate) struct AcceptQueue {
    inner: Mutex<QueueInner>,
    not_empty: Condvar,
    not_full: Condvar,
    capacity: usize,
}

impl AcceptQueue {
    pub(crate) fn new(capacity: usize) -> Self {
        AcceptQueue {
            inner: Mutex::new(QueueInner {
                connections: VecDeque::with_capacity(capacity.min(1024)),
                closed: false,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity,
        }
    }

    /// Enqueues a connection, blocking while the queue is at capacity.
    /// Returns `false` (dropping the stream) if the queue is closed.
    pub(crate) fn push(&self, stream: TcpStream) -> bool {
        let mut inner = lock_queue(&self.inner);
        loop {
            if inner.closed {
                return false;
            }
            if inner.connections.len() < self.capacity {
                inner.connections.push_back(stream);
                self.not_empty.notify_one();
                return true;
            }
            inner = match self.not_full.wait(inner) {
                Ok(guard) => guard,
                Err(poisoned) => poisoned.into_inner(),
            };
        }
    }

    /// Dequeues the next connection, blocking while the queue is empty.
    /// After [`close`](Self::close), keeps returning queued connections
    /// until the backlog is drained, then `None`.
    pub(crate) fn pop(&self) -> Option<TcpStream> {
        let mut inner = lock_queue(&self.inner);
        loop {
            if let Some(stream) = inner.connections.pop_front() {
                self.not_full.notify_one();
                return Some(stream);
            }
            if inner.closed {
                return None;
            }
            inner = match self.not_empty.wait(inner) {
                Ok(guard) => guard,
                Err(poisoned) => poisoned.into_inner(),
            };
        }
    }

    /// Closes the queue and wakes every blocked pusher and popper.
    pub(crate) fn close(&self) {
        let mut inner = lock_queue(&self.inner);
        inner.closed = true;
        drop(inner);
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }
}

/// A counting semaphore bounding the proxy's concurrent origin connections.
///
/// A permit is held for the lifetime of one origin connection (RAII via
/// [`OriginPermit`]); a zero budget disables the bound entirely. Acquirers
/// hold no other locks while waiting, and every transfer terminates, so the
/// wait is bounded by the in-flight transfers ahead of it.
#[derive(Debug)]
pub(crate) struct OriginBudget {
    permits: Mutex<usize>,
    available: Condvar,
    bounded: bool,
}

impl OriginBudget {
    /// Creates a budget of `max_connections` permits (0 = unlimited).
    pub(crate) fn new(max_connections: usize) -> Self {
        OriginBudget {
            permits: Mutex::new(max_connections),
            available: Condvar::new(),
            bounded: max_connections > 0,
        }
    }

    /// Acquires one permit, blocking until an origin connection slot frees.
    pub(crate) fn acquire(&self) -> OriginPermit<'_> {
        if self.bounded {
            let mut permits = lock_queue(&self.permits);
            while *permits == 0 {
                permits = match self.available.wait(permits) {
                    Ok(guard) => guard,
                    Err(poisoned) => poisoned.into_inner(),
                };
            }
            *permits -= 1;
        }
        OriginPermit { budget: self }
    }

    /// Acquires one permit like [`acquire`](Self::acquire), but gives up
    /// after `timeout`. A zero timeout degenerates to a try-acquire. The
    /// resilient origin path uses this so an outage-congested budget cannot
    /// pin a worker past its retry deadline.
    pub(crate) fn acquire_within(&self, timeout: Duration) -> Option<OriginPermit<'_>> {
        if !self.bounded {
            return Some(OriginPermit { budget: self });
        }
        let Some(deadline) = Instant::now().checked_add(timeout) else {
            // A timeout too large to represent is an unbounded wait.
            return Some(self.acquire());
        };
        let mut permits = lock_queue(&self.permits);
        loop {
            if *permits > 0 {
                *permits -= 1;
                return Some(OriginPermit { budget: self });
            }
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            permits = match self.available.wait_timeout(permits, deadline - now) {
                Ok((guard, _)) => guard,
                Err(poisoned) => poisoned.into_inner().0,
            };
        }
    }
}

/// RAII permit for one origin connection; dropped when the connection ends.
#[derive(Debug)]
pub(crate) struct OriginPermit<'a> {
    budget: &'a OriginBudget,
}

impl Drop for OriginPermit<'_> {
    fn drop(&mut self) {
        if self.budget.bounded {
            let mut permits = lock_queue(&self.budget.permits);
            *permits += 1;
            drop(permits);
            self.budget.available.notify_one();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    fn loopback_pair(listener: &TcpListener) -> TcpStream {
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let _ = listener.accept().unwrap();
        client
    }

    #[test]
    fn queue_delivers_in_fifo_order_and_drains_after_close() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let queue = AcceptQueue::new(4);
        let a = loopback_pair(&listener);
        let a_addr = a.local_addr().unwrap();
        let b = loopback_pair(&listener);
        let b_addr = b.local_addr().unwrap();
        assert!(queue.push(a));
        assert!(queue.push(b));
        queue.close();
        // Queued connections survive the close (graceful drain) ...
        assert_eq!(queue.pop().unwrap().local_addr().unwrap(), a_addr);
        assert_eq!(queue.pop().unwrap().local_addr().unwrap(), b_addr);
        // ... and only then does the queue report exhaustion.
        assert!(queue.pop().is_none());
        // New connections are refused after close.
        let c = loopback_pair(&listener);
        assert!(!queue.push(c));
    }

    #[test]
    fn full_queue_blocks_pushers_until_a_pop() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let queue = Arc::new(AcceptQueue::new(1));
        assert!(queue.push(loopback_pair(&listener)));
        let pushed = Arc::new(AtomicUsize::new(0));
        let handle = {
            let queue = Arc::clone(&queue);
            let pushed = Arc::clone(&pushed);
            let stream = loopback_pair(&listener);
            std::thread::spawn(move || {
                queue.push(stream);
                pushed.store(1, Ordering::SeqCst);
            })
        };
        std::thread::sleep(std::time::Duration::from_millis(50));
        assert_eq!(
            pushed.load(Ordering::SeqCst),
            0,
            "push must block while full"
        );
        assert!(queue.pop().is_some());
        handle.join().unwrap();
        assert_eq!(pushed.load(Ordering::SeqCst), 1);
        queue.close();
    }

    #[test]
    fn origin_budget_bounds_concurrency() {
        let budget = Arc::new(OriginBudget::new(2));
        let in_flight = Arc::new(AtomicUsize::new(0));
        let peak = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let budget = Arc::clone(&budget);
                let in_flight = Arc::clone(&in_flight);
                let peak = Arc::clone(&peak);
                std::thread::spawn(move || {
                    let _permit = budget.acquire();
                    let now = in_flight.fetch_add(1, Ordering::SeqCst) + 1;
                    peak.fetch_max(now, Ordering::SeqCst);
                    std::thread::sleep(std::time::Duration::from_millis(20));
                    in_flight.fetch_sub(1, Ordering::SeqCst);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert!(peak.load(Ordering::SeqCst) <= 2, "budget exceeded");
    }

    #[test]
    fn zero_budget_is_unlimited() {
        let budget = OriginBudget::new(0);
        let _a = budget.acquire();
        let _b = budget.acquire();
        let _c = budget.acquire();
    }

    #[test]
    fn acquire_within_times_out_and_recovers() {
        let budget = OriginBudget::new(1);
        let held = budget.acquire();
        // Exhausted: both the try-acquire and a short bounded wait fail.
        assert!(budget.acquire_within(Duration::ZERO).is_none());
        let start = std::time::Instant::now();
        assert!(budget.acquire_within(Duration::from_millis(40)).is_none());
        assert!(start.elapsed() >= Duration::from_millis(35));
        // Freed: the bounded wait succeeds without sleeping the timeout out.
        drop(held);
        assert!(budget.acquire_within(Duration::from_secs(5)).is_some());
        // Unlimited budgets never block.
        let unlimited = OriginBudget::new(0);
        assert!(unlimited.acquire_within(Duration::ZERO).is_some());
    }
}
