//! Token-bucket pacing used to emulate constrained origin-server paths.

use std::time::{Duration, Instant};

/// A byte-rate limiter that paces a sender to a target throughput.
///
/// The origin server of the prototype wraps every connection in a
/// `RateLimiter` so that the path between the proxy and the origin behaves
/// like the bandwidth-constrained Internet paths of the paper, while the
/// cache→client hop stays unconstrained (the paper's "abundant last-mile
/// bandwidth" assumption).
///
/// ```
/// use sc_proxy::RateLimiter;
/// use std::time::Instant;
///
/// let mut limiter = RateLimiter::new(1_000_000.0); // 1 MB/s
/// let start = Instant::now();
/// limiter.acquire(100_000);                         // 100 KB
/// // Pacing 100 KB at 1 MB/s takes about 0.1 s.
/// assert!(start.elapsed().as_secs_f64() >= 0.08);
/// ```
#[derive(Debug)]
pub struct RateLimiter {
    bytes_per_sec: f64,
    started: Instant,
    consumed_bytes: f64,
}

impl RateLimiter {
    /// Creates a limiter with the given target rate in bytes per second.
    /// Rates of zero or below disable pacing entirely (unlimited).
    pub fn new(bytes_per_sec: f64) -> Self {
        RateLimiter {
            bytes_per_sec,
            started: Instant::now(),
            consumed_bytes: 0.0,
        }
    }

    /// The configured rate in bytes per second (`0.0` means unlimited).
    pub fn bytes_per_sec(&self) -> f64 {
        self.bytes_per_sec.max(0.0)
    }

    /// Returns `true` if the limiter enforces no pacing.
    pub fn is_unlimited(&self) -> bool {
        self.bytes_per_sec <= 0.0
    }

    /// Blocks until sending `bytes` more bytes keeps the cumulative
    /// throughput at or below the target rate.
    pub fn acquire(&mut self, bytes: usize) {
        if self.is_unlimited() {
            return;
        }
        self.consumed_bytes += bytes as f64;
        let due = Duration::from_secs_f64(self.consumed_bytes / self.bytes_per_sec);
        let elapsed = self.started.elapsed();
        if due > elapsed {
            std::thread::sleep(due - elapsed);
        }
    }

    /// The pause [`acquire`](Self::acquire) would impose for `bytes` more
    /// bytes right now, without consuming any budget. Lets callers judge
    /// whether a paced write still fits a latency budget before they
    /// commit to it.
    pub fn would_sleep(&self, bytes: usize) -> Duration {
        if self.is_unlimited() {
            return Duration::ZERO;
        }
        let due =
            Duration::from_secs_f64((self.consumed_bytes + bytes as f64) / self.bytes_per_sec);
        due.saturating_sub(self.started.elapsed())
    }

    /// Observed average throughput so far in bytes per second.
    pub fn observed_bps(&self) -> f64 {
        let secs = self.started.elapsed().as_secs_f64();
        if secs > 0.0 {
            self.consumed_bytes / secs
        } else {
            0.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_never_sleeps() {
        let mut limiter = RateLimiter::new(0.0);
        assert!(limiter.is_unlimited());
        let start = Instant::now();
        limiter.acquire(100_000_000);
        assert!(start.elapsed() < Duration::from_millis(50));
    }

    #[test]
    fn paced_transfer_takes_expected_time() {
        let mut limiter = RateLimiter::new(2_000_000.0);
        let start = Instant::now();
        for _ in 0..10 {
            limiter.acquire(40_000); // 400 KB total at 2 MB/s ≈ 0.2 s
        }
        let elapsed = start.elapsed().as_secs_f64();
        assert!(elapsed >= 0.15, "elapsed {elapsed}");
        assert!(elapsed < 1.0, "elapsed {elapsed}");
        let observed = limiter.observed_bps();
        assert!(
            (observed - 2_000_000.0).abs() / 2_000_000.0 < 0.25,
            "observed {observed}"
        );
    }

    #[test]
    fn would_sleep_previews_the_debt_without_charging_it() {
        let mut limiter = RateLimiter::new(100_000.0);
        // 50 KB at 100 KB/s owes ~0.5 s; the preview sees the debt ...
        let preview = limiter.would_sleep(50_000);
        assert!(preview.as_secs_f64() > 0.4, "preview {preview:?}");
        // ... but charges nothing: an immediate small acquire stays cheap.
        let start = Instant::now();
        limiter.acquire(1_000);
        assert!(start.elapsed() < Duration::from_millis(100));
        // Unlimited limiters never owe anything.
        assert_eq!(
            RateLimiter::new(0.0).would_sleep(usize::MAX),
            Duration::ZERO
        );
    }

    #[test]
    fn rate_accessor() {
        assert_eq!(RateLimiter::new(500.0).bytes_per_sec(), 500.0);
        assert_eq!(RateLimiter::new(-5.0).bytes_per_sec(), 0.0);
    }

    #[test]
    fn negative_and_non_finite_rates_disable_pacing() {
        for rate in [-1.0, f64::NEG_INFINITY] {
            let mut limiter = RateLimiter::new(rate);
            assert!(limiter.is_unlimited(), "rate {rate} must be unlimited");
            let start = Instant::now();
            limiter.acquire(usize::MAX);
            assert!(start.elapsed() < Duration::from_millis(50));
            assert_eq!(limiter.bytes_per_sec(), 0.0);
        }
    }

    #[test]
    fn zero_byte_acquires_are_free_at_any_rate() {
        // A zero-byte acquire consumes no budget, so a sequence of them
        // never sleeps — even at a crawling 1 B/s.
        let mut limiter = RateLimiter::new(1.0);
        let start = Instant::now();
        for _ in 0..1_000 {
            limiter.acquire(0);
        }
        assert!(start.elapsed() < Duration::from_millis(50));
    }

    #[test]
    fn sub_byte_budgets_accumulate_fractionally() {
        // 10 KB/s with 1-byte acquires: each byte owes ~0.1 ms. The float
        // accumulator must charge the *cumulative* debt, not round each
        // acquire down to zero sleep.
        let mut limiter = RateLimiter::new(10_000.0);
        let start = Instant::now();
        for _ in 0..500 {
            limiter.acquire(1);
        }
        let elapsed = start.elapsed().as_secs_f64();
        // 500 bytes at 10 KB/s = 50 ms of debt.
        assert!(elapsed >= 0.04, "elapsed {elapsed}");
        assert!(elapsed < 0.5, "elapsed {elapsed}");
    }

    #[test]
    fn fast_early_bytes_do_not_earn_future_credit_beyond_the_curve() {
        // The limiter paces against the cumulative curve `bytes = rate · t`:
        // an initial burst is owed back on the very next acquire.
        let mut limiter = RateLimiter::new(100_000.0);
        let start = Instant::now();
        limiter.acquire(10_000); // 0.1 s of budget, consumed instantly-ish
        limiter.acquire(10_000); // must wait until t ≈ 0.2 s
        let elapsed = start.elapsed().as_secs_f64();
        assert!(elapsed >= 0.15, "elapsed {elapsed}");
    }
}
