//! # sc-proxy — a runnable streaming-media caching-proxy prototype
//!
//! This crate turns the architecture of *Accelerating Internet Streaming
//! Media Delivery using Network-Aware Partial Caching* (Jin, Bestavros,
//! Iyengar; ICDCS 2002) into an actual system you can run on localhost:
//!
//! * [`OriginServer`] — a streaming origin whose per-connection throughput
//!   is capped by a token-bucket [`RateLimiter`], emulating the constrained
//!   Internet path between the proxy and the content provider;
//! * [`CachingProxy`] — an edge proxy that serves cached object prefixes at
//!   LAN speed, fetches the remainder from the origin (joint delivery), and
//!   uses [`sc_cache`]'s network-aware policies to decide how much of each
//!   object to retain;
//! * [`StreamingClient`] — a client that measures the startup delay a real
//!   player would experience, directly comparable to the paper's
//!   *average service delay* metric.
//!
//! The wire protocol is a deliberately tiny line-based substitute for
//! RTSP/RTP (see [`protocol`]); the algorithms being demonstrated are
//! transport-agnostic.
//!
//! ```no_run
//! use sc_proxy::{CachingProxy, ObjectSpec, OriginConfig, OriginServer, ProxyConfig, StreamingClient};
//!
//! # fn main() -> Result<(), sc_proxy::ProxyError> {
//! // A 480 KB clip encoded at 96 KB/s, served over a 48 KB/s path.
//! let origin = OriginServer::start(OriginConfig {
//!     objects: vec![ObjectSpec::new("clip", 480_000, 96_000.0)],
//!     rate_limit_bps: 48_000.0,
//! })?;
//! let proxy = CachingProxy::start(ProxyConfig::new(origin.addr(), 10_000_000.0))?;
//!
//! let client = StreamingClient::new();
//! let cold = client.fetch(proxy.addr(), "clip")?;   // populates the prefix
//! let warm = client.fetch(proxy.addr(), "clip")?;   // accelerated by the cache
//! assert!(warm.startup_delay_secs <= cold.startup_delay_secs);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod client;
mod content;
mod error;
pub mod fault;
mod origin;
mod pool;
pub mod protocol;
mod proxy;
mod ratelimit;
mod retry;
mod store;

pub use client::{StreamingClient, TransferReport};
pub use content::{content_byte, fill_content, verify_content};
pub use error::ProxyError;
pub use fault::{FaultAction, FaultPlan, FaultProfile};
pub use origin::{ObjectSpec, OriginConfig, OriginServer};
pub use proxy::{CachingProxy, ProxyConfig, ProxyStats};
pub use ratelimit::RateLimiter;
pub use retry::{BreakerConfig, BreakerState, CircuitBreaker, RetryPolicy};
pub use store::PrefixStore;
