//! Error type for the proxy prototype.

use std::error::Error;
use std::fmt;
use std::io;

/// Errors returned by the proxy, origin server and streaming client.
#[derive(Debug)]
pub enum ProxyError {
    /// An I/O error on a socket or listener.
    Io(io::Error),
    /// The peer sent a malformed protocol message.
    Protocol(String),
    /// The requested object is not known to the server.
    UnknownObject(String),
    /// The origin could not be reached within the retry budget (or the
    /// circuit breaker is open) and no cached prefix could mask it.
    OriginUnavailable(String),
    /// A configuration value was invalid (name, description).
    InvalidConfig(&'static str, String),
    /// The server shed the request under overload before doing any work;
    /// the payload is the suggested retry pause in milliseconds.
    Busy(u64),
    /// A write to the client socket timed out: the peer is reading too
    /// slowly (or not at all) and the connection was dropped to protect
    /// the worker pool.
    ClientTimeout,
}

impl fmt::Display for ProxyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProxyError::Io(e) => write!(f, "i/o error: {e}"),
            ProxyError::Protocol(why) => write!(f, "protocol violation: {why}"),
            ProxyError::UnknownObject(name) => write!(f, "unknown object `{name}`"),
            ProxyError::OriginUnavailable(name) => {
                write!(f, "origin unavailable while fetching `{name}`")
            }
            ProxyError::InvalidConfig(name, why) => {
                write!(f, "invalid configuration for `{name}`: {why}")
            }
            ProxyError::Busy(retry_after_ms) => {
                write!(f, "server busy, retry after {retry_after_ms} ms")
            }
            ProxyError::ClientTimeout => {
                write!(f, "client socket write timed out (slow reader)")
            }
        }
    }
}

impl Error for ProxyError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ProxyError::Io(e) => Some(e),
            _ => None,
        }
    }
}

#[doc(hidden)]
impl From<io::Error> for ProxyError {
    fn from(e: io::Error) -> Self {
        ProxyError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let io_err = ProxyError::from(io::Error::other("boom"));
        assert!(io_err.to_string().contains("boom"));
        assert!(io_err.source().is_some());
        assert!(ProxyError::UnknownObject("clip".into())
            .to_string()
            .contains("clip"));
        assert!(ProxyError::Protocol("bad line".into())
            .to_string()
            .contains("bad line"));
        assert!(ProxyError::OriginUnavailable("clip".into())
            .to_string()
            .contains("origin unavailable"));
        assert!(ProxyError::InvalidConfig("rate", "negative".into())
            .to_string()
            .contains("rate"));
        assert!(ProxyError::Busy(125).to_string().contains("125"));
        assert!(ProxyError::ClientTimeout.to_string().contains("timed out"));
    }

    #[test]
    fn error_is_send_sync_static() {
        fn assert_bounds<T: std::error::Error + Send + Sync + 'static>() {}
        assert_bounds::<ProxyError>();
    }
}
