//! Deterministic synthetic object content.
//!
//! The prototype serves synthetic streaming objects whose payload is a
//! deterministic function of the object name and byte offset, so that any
//! component (origin, proxy, client) can independently generate or verify
//! any byte range without shipping real media files.

/// Returns the payload byte of object `name` at `offset`.
///
/// The function is a small multiplicative hash mixing the name hash and the
/// offset; it is stable across processes and platforms.
pub fn content_byte(name: &str, offset: u64) -> u8 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h ^= offset;
    h = h.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    (h >> 32) as u8
}

/// Fills `buf` with the content of object `name` starting at `offset`.
pub fn fill_content(name: &str, offset: u64, buf: &mut [u8]) {
    for (i, b) in buf.iter_mut().enumerate() {
        *b = content_byte(name, offset + i as u64);
    }
}

/// Verifies that `buf` matches the content of `name` starting at `offset`.
/// Returns the index of the first mismatching byte, if any.
pub fn verify_content(name: &str, offset: u64, buf: &[u8]) -> Option<usize> {
    buf.iter()
        .enumerate()
        .find(|(i, b)| **b != content_byte(name, offset + *i as u64))
        .map(|(i, _)| i)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn content_is_deterministic_and_name_dependent() {
        assert_eq!(content_byte("a", 0), content_byte("a", 0));
        assert_ne!(
            (0..64).map(|i| content_byte("a", i)).collect::<Vec<_>>(),
            (0..64).map(|i| content_byte("b", i)).collect::<Vec<_>>()
        );
    }

    #[test]
    fn fill_and_verify_roundtrip() {
        let mut buf = vec![0u8; 256];
        fill_content("movie", 1_000, &mut buf);
        assert_eq!(verify_content("movie", 1_000, &buf), None);
        buf[17] ^= 0xff;
        assert_eq!(verify_content("movie", 1_000, &buf), Some(17));
    }

    #[test]
    fn content_is_not_constant() {
        let distinct: std::collections::HashSet<u8> =
            (0..1024).map(|i| content_byte("clip", i)).collect();
        assert!(distinct.len() > 64);
    }
}
