//! The cache engine: frequency tracking, utility heap, admission and
//! eviction (Section 2.4 of the paper), built around a dense slab object
//! table so the steady-state hot path performs no hashing and no heap
//! allocation.

use crate::error::CacheError;
use crate::fx::FxHashMap;
use crate::heap::UtilityHeap;
use crate::object::{ObjectKey, ObjectMeta};
use crate::policy::UtilityPolicy;
use crate::stats::CacheStats;

/// Result of processing one access through the cache.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AccessOutcome {
    /// Bytes of the object cached *before* this access was processed; this
    /// is what the current request can actually be served from the cache.
    pub cached_bytes_before: f64,
    /// Bytes cached after admission/eviction decisions.
    pub cached_bytes_after: f64,
    /// Bytes of this request served from the cache
    /// (`min(cached_bytes_before, object size)`).
    pub bytes_from_cache: f64,
    /// Bytes of this request that must come from the origin server.
    pub bytes_from_origin: f64,
    /// Number of objects evicted while processing this access.
    pub evictions: usize,
    /// Whether the accessed object's allocation was created or grown.
    pub admitted: bool,
}

/// One allocation change on the slab, recorded in the engine's delta log
/// (see [`CacheEngine::set_delta_tracking`]).
///
/// `new_bytes` is the slot's allocation *after* the change: `0.0` records an
/// eviction, anything else an admission or allocation change. Applying the
/// drained deltas in order to any mirror of the cache contents (for example
/// the proxy's byte store) reproduces [`CacheEngine::contents`] exactly,
/// in O(changes) instead of O(cache size) per access.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CacheDelta {
    /// Slab slot handle of the changed object.
    pub slot: u32,
    /// The object's cache key.
    pub key: ObjectKey,
    /// The object's allocation in bytes after the change (0 = evicted).
    pub new_bytes: f64,
}

/// Per-object state, stored in one contiguous slab indexed by slot handle.
///
/// `cached_bytes > 0` if and only if the slot is in the utility heap: the
/// engine zeroes the field on every eviction, so membership, allocation
/// and frequency are all one indexed load away from a slot handle.
#[derive(Debug, Clone, Copy)]
struct Slot {
    key: ObjectKey,
    frequency: u64,
    cached_bytes: f64,
}

/// A streaming-media cache driven by a [`UtilityPolicy`].
///
/// The engine implements the replacement scheme of Section 2.4: it counts
/// request frequencies, keeps cached objects in a priority queue keyed by
/// utility, and on each access tries to bring the accessed object up to its
/// policy-defined target allocation, evicting strictly-lower-utility objects
/// as needed. Heap operations make each access `O(log n)` in the number of
/// cached objects.
///
/// Internally all per-object state (frequency, cached bytes, heap
/// position) lives in a dense slab addressed by `u32` slot handles. Callers
/// with dense object indices — the simulator, whose catalog ids are already
/// `0..N` — pre-size the slab with [`ensure_slots`](Self::ensure_slots) and
/// access it hash-free through [`on_access_slot`](Self::on_access_slot);
/// other callers use the keyed [`on_access`](Self::on_access), which interns
/// keys through a thin Fx-hashed key→slot map (one fast hash per access).
/// In steady state neither path allocates: eviction scratch space is a
/// reusable buffer and the heap writes positions back into a flat table.
///
/// ```
/// use sc_cache::policy::PartialBandwidth;
/// use sc_cache::{CacheEngine, ObjectKey, ObjectMeta};
///
/// # fn main() -> Result<(), sc_cache::CacheError> {
/// let mut cache = CacheEngine::new(10_000_000.0, PartialBandwidth::new())?;
/// let obj = ObjectMeta::new(ObjectKey::new(1), 100.0, 48_000.0, 0.0);
///
/// // First access: a miss, but the object's bandwidth deficit is admitted.
/// let out = cache.on_access(&obj, 24_000.0);
/// assert_eq!(out.bytes_from_cache, 0.0);
/// assert!(out.admitted);
///
/// // Second access: half the object is now served from the cache.
/// let out = cache.on_access(&obj, 24_000.0);
/// assert_eq!(out.bytes_from_cache, obj.size_bytes() / 2.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct CacheEngine<P> {
    capacity_bytes: f64,
    used_bytes: f64,
    policy: P,
    slots: Vec<Slot>,
    key_to_slot: FxHashMap<ObjectKey, u32>,
    heap: UtilityHeap,
    /// Reusable victim buffer for [`rebalance`](Self::rebalance):
    /// `(slot, cached bytes, utility)` of each popped candidate, kept until
    /// the admission decision commits or rolls the pops back.
    scratch: Vec<(u32, f64, f64)>,
    /// Allocation-change log, appended to only when `track_deltas` is set
    /// (one predicted-not-taken branch on the default path, so callers that
    /// never drain — the simulator — pay nothing).
    deltas: Vec<CacheDelta>,
    track_deltas: bool,
    clock: u64,
    stats: CacheStats,
}

impl<P: UtilityPolicy> CacheEngine<P> {
    /// Creates a cache with the given capacity in bytes.
    ///
    /// # Errors
    ///
    /// Returns [`CacheError::InvalidCapacity`] if `capacity_bytes` is
    /// negative or not finite.
    pub fn new(capacity_bytes: f64, policy: P) -> Result<Self, CacheError> {
        if !capacity_bytes.is_finite() || capacity_bytes < 0.0 {
            return Err(CacheError::InvalidCapacity(capacity_bytes));
        }
        Ok(CacheEngine {
            capacity_bytes,
            used_bytes: 0.0,
            policy,
            slots: Vec::new(),
            key_to_slot: FxHashMap::default(),
            heap: UtilityHeap::new(),
            scratch: Vec::new(),
            deltas: Vec::new(),
            track_deltas: false,
            clock: 0,
            stats: CacheStats::default(),
        })
    }

    /// Total capacity in bytes.
    pub fn capacity_bytes(&self) -> f64 {
        self.capacity_bytes
    }

    /// Bytes currently allocated.
    pub fn used_bytes(&self) -> f64 {
        self.used_bytes
    }

    /// Free space in bytes.
    pub fn free_bytes(&self) -> f64 {
        (self.capacity_bytes - self.used_bytes).max(0.0)
    }

    /// Number of objects with a cached prefix.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Returns `true` if nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// The policy driving this cache.
    pub fn policy(&self) -> &P {
        &self.policy
    }

    /// Running statistics.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Resets the statistics counters without touching cache contents
    /// (used at the warm-up/measurement boundary).
    pub fn reset_stats(&mut self) {
        self.stats.reset();
    }

    /// Enables or disables the allocation-change delta log.
    ///
    /// While enabled, every committed allocation change (admission growth,
    /// eviction, [`clear`](Self::clear)) appends a [`CacheDelta`]; rolled-back
    /// eviction attempts restore the pre-access state exactly and therefore
    /// record nothing. Callers drain the log with
    /// [`drain_deltas`](Self::drain_deltas) after each access and apply the
    /// entries to whatever mirrors the cache contents — O(changes) per
    /// access instead of rescanning [`contents`](Self::contents). Switching
    /// tracking on or off clears any pending entries. Off by default, so the
    /// simulator's hot loop pays only a never-taken branch.
    pub fn set_delta_tracking(&mut self, enabled: bool) {
        self.track_deltas = enabled;
        self.deltas.clear();
    }

    /// Whether the delta log is currently recording.
    pub fn delta_tracking(&self) -> bool {
        self.track_deltas
    }

    /// Drains the pending allocation-change log in commit order.
    ///
    /// The drained buffer's capacity is retained, so a caller that drains
    /// after every access keeps the steady state allocation-free.
    pub fn drain_deltas(&mut self) -> std::vec::Drain<'_, CacheDelta> {
        self.deltas.drain(..)
    }

    /// Pre-sizes the slab so that slot handle `i` denotes
    /// `ObjectKey::new(i)` for every `i < n` — the layout produced by dense
    /// catalogs, whose object ids are already indices `0..N`.
    ///
    /// After this call, [`on_access_slot`](Self::on_access_slot) with the
    /// catalog index is equivalent to the keyed [`on_access`](Self::on_access)
    /// but performs **no hashing at all**. Growing an existing slab is fine;
    /// already-allocated slots are left untouched.
    ///
    /// # Panics
    ///
    /// Panics if the existing slab is not already dense — i.e. the engine
    /// interned a sparse key through [`on_access`](Self::on_access) before
    /// this call, so some slot `i` does not hold `ObjectKey::new(i)`. Call
    /// `ensure_slots` before the first access instead.
    pub fn ensure_slots(&mut self, n: usize) {
        assert!(n <= u32::MAX as usize, "slot handles are u32");
        // The dense guarantee must hold for every slot below n, including
        // ones allocated earlier: a sparse key interned before this call
        // would silently alias a different object onto a dense handle.
        // The scan is setup-time only (ensure_slots runs once per run).
        for (i, slot) in self.slots.iter().enumerate().take(n) {
            assert!(
                slot.key == ObjectKey::new(i as u64),
                "slot {i} holds {}, not the dense key: ensure_slots must \
                 precede sparse keyed accesses",
                slot.key
            );
        }
        self.heap.reserve_handles(n);
        self.key_to_slot.reserve(n.saturating_sub(self.slots.len()));
        for i in self.slots.len()..n {
            let key = ObjectKey::new(i as u64);
            let previous = self.key_to_slot.insert(key, i as u32);
            assert!(
                previous.is_none(),
                "key {key} already interned at a non-dense slot"
            );
            self.slots.push(Slot {
                key,
                frequency: 0,
                cached_bytes: 0.0,
            });
        }
    }

    /// The slot handle a key is interned at, if any.
    pub fn slot_of(&self, key: ObjectKey) -> Option<u32> {
        self.key_to_slot.get(&key).copied()
    }

    /// Interns `key`, allocating a fresh slot on first sight.
    fn slot_for(&mut self, key: ObjectKey) -> u32 {
        if let Some(&slot) = self.key_to_slot.get(&key) {
            return slot;
        }
        let slot = self.slots.len() as u32;
        self.key_to_slot.insert(key, slot);
        self.slots.push(Slot {
            key,
            frequency: 0,
            cached_bytes: 0.0,
        });
        slot
    }

    /// Bytes of `key` currently cached (0 when absent).
    pub fn cached_bytes(&self, key: ObjectKey) -> f64 {
        self.slot_of(key)
            .map_or(0.0, |s| self.slots[s as usize].cached_bytes)
    }

    /// Whether any prefix of `key` is cached.
    pub fn contains(&self, key: ObjectKey) -> bool {
        self.slot_of(key).is_some_and(|s| self.heap.contains(s))
    }

    /// Number of requests observed for `key` so far.
    pub fn frequency(&self, key: ObjectKey) -> u64 {
        self.slot_of(key)
            .map_or(0, |s| self.slots[s as usize].frequency)
    }

    /// Snapshot of the cache contents as `(key, cached_bytes)` pairs in
    /// unspecified order.
    pub fn contents(&self) -> Vec<(ObjectKey, f64)> {
        self.heap
            .iter()
            .map(|(slot, _)| {
                let s = &self.slots[slot as usize];
                (s.key, s.cached_bytes)
            })
            .collect()
    }

    /// Removes every cached object and returns the number of evictions.
    /// Frequencies and statistics are preserved.
    pub fn clear(&mut self) -> usize {
        let n = self.heap.len();
        for (i, slot) in self.slots.iter_mut().enumerate() {
            if slot.cached_bytes > 0.0 {
                self.stats.evictions += 1;
                self.stats.bytes_evicted += slot.cached_bytes;
                slot.cached_bytes = 0.0;
                if self.track_deltas {
                    self.deltas.push(CacheDelta {
                        slot: i as u32,
                        key: slot.key,
                        new_bytes: 0.0,
                    });
                }
            }
        }
        self.heap.clear();
        self.used_bytes = 0.0;
        n
    }

    /// Processes one access to `meta` given the current estimate of the
    /// bandwidth between the cache and the object's origin server.
    ///
    /// This records the request, updates the object's utility, serves
    /// whatever prefix is already cached, and then tries to grow the
    /// object's allocation to the policy's target by evicting
    /// strictly-lower-utility objects.
    ///
    /// Unknown keys are interned on first sight (one Fx-hash lookup per
    /// access); callers whose keys are dense indices should prefer
    /// [`on_access_slot`](Self::on_access_slot), which skips even that.
    pub fn on_access(&mut self, meta: &ObjectMeta, bandwidth_bps: f64) -> AccessOutcome {
        let slot = self.slot_for(meta.key);
        self.access_slot(slot, meta, bandwidth_bps)
    }

    /// [`on_access`](Self::on_access) addressed by slot handle: the
    /// zero-hash, zero-allocation steady-state hot path.
    ///
    /// The slab must cover `slot` (via [`ensure_slots`](Self::ensure_slots)
    /// or earlier keyed accesses), and `meta.key` must be the key the slot
    /// was created with.
    ///
    /// # Panics
    ///
    /// Panics if `slot` was never allocated; debug-asserts the key match.
    pub fn on_access_slot(
        &mut self,
        slot: u32,
        meta: &ObjectMeta,
        bandwidth_bps: f64,
    ) -> AccessOutcome {
        assert!(
            (slot as usize) < self.slots.len(),
            "slot {slot} not allocated; call ensure_slots first"
        );
        debug_assert_eq!(
            self.slots[slot as usize].key, meta.key,
            "slot/key mismatch: slot {slot} holds {}, access says {}",
            self.slots[slot as usize].key, meta.key
        );
        self.access_slot(slot, meta, bandwidth_bps)
    }

    fn access_slot(&mut self, slot: u32, meta: &ObjectMeta, bandwidth_bps: f64) -> AccessOutcome {
        self.clock += 1;
        let s = &mut self.slots[slot as usize];
        s.frequency += 1;
        let freq = s.frequency;
        let size = meta.size_bytes();
        let cached_before = s.cached_bytes;
        let bytes_from_cache = cached_before.min(size);
        let bytes_from_origin = (size - bytes_from_cache).max(0.0);

        self.stats.requests += 1;
        if bytes_from_cache > 0.0 {
            self.stats.hits += 1;
        }
        self.stats.bytes_requested += size;
        self.stats.bytes_from_cache += bytes_from_cache;
        self.stats.bytes_from_origin += bytes_from_origin;

        let utility = self
            .policy
            .utility(meta, freq, bandwidth_bps, self.clock)
            .max(0.0);
        debug_assert!(!utility.is_nan(), "policy produced a NaN utility");
        let target = self
            .policy
            .target_bytes(meta, bandwidth_bps)
            .clamp(0.0, size);

        let (cached_after, evictions, admitted) =
            self.rebalance(slot, cached_before, target, utility);

        AccessOutcome {
            cached_bytes_before: cached_before,
            cached_bytes_after: cached_after,
            bytes_from_cache,
            bytes_from_origin,
            evictions,
            admitted,
        }
    }

    // --- crate-internal hooks for the sharded wrapper (`crate::shard`) ---

    /// The victims committed by the most recent access or regrow, as
    /// `(slot, bytes, utility)` in eviction order.
    ///
    /// Only meaningful when that operation's outcome reported
    /// `evictions > 0` (the scratch buffer also holds rolled-back pops and
    /// stale entries from earlier accesses); the sharded wrapper uses it to
    /// mirror per-victim byte counts into its atomic statistics with the
    /// exact accumulation order of [`CacheStats::bytes_evicted`].
    pub(crate) fn last_evictions(&self) -> &[(u32, f64, f64)] {
        &self.scratch
    }

    /// Rebinds the capacity without touching contents. The caller must keep
    /// `used_bytes <= capacity` (the budget-steal path only shrinks a shard
    /// by bytes it just freed).
    pub(crate) fn set_capacity(&mut self, capacity_bytes: f64) {
        debug_assert!(capacity_bytes.is_finite() && capacity_bytes >= 0.0);
        debug_assert!(self.used_bytes <= capacity_bytes + 1e-6);
        self.capacity_bytes = capacity_bytes;
    }

    /// Evicts minimum-utility entries while their utility is strictly below
    /// `max_utility`, until at least `needed_bytes` have been freed or no
    /// eligible victim remains. Returns `(bytes freed, victims evicted)`.
    ///
    /// Evictions commit immediately (statistics and delta log included):
    /// this is the donor half of a cross-shard budget steal, not an
    /// admission attempt, so there is nothing to roll back.
    pub(crate) fn evict_lowest(&mut self, max_utility: f64, needed_bytes: f64) -> (f64, usize) {
        let mut freed = 0.0;
        let mut count = 0;
        while freed < needed_bytes {
            match self.heap.peek_min() {
                Some((victim, victim_utility)) if victim_utility < max_utility => {
                    self.heap.pop_min();
                    let bytes = self.slots[victim as usize].cached_bytes;
                    self.slots[victim as usize].cached_bytes = 0.0;
                    self.used_bytes -= bytes;
                    freed += bytes;
                    count += 1;
                    self.stats.evictions += 1;
                    self.stats.bytes_evicted += bytes;
                    if self.track_deltas {
                        self.deltas.push(CacheDelta {
                            slot: victim,
                            key: self.slots[victim as usize].key,
                            new_bytes: 0.0,
                        });
                    }
                }
                _ => break,
            }
        }
        (freed, count)
    }

    /// The utility the policy currently assigns to `slot` (present
    /// frequency and clock, no state change) — what a repeat of the last
    /// access would compete with.
    pub(crate) fn current_utility(&self, slot: u32, meta: &ObjectMeta, bandwidth_bps: f64) -> f64 {
        let s = &self.slots[slot as usize];
        self.policy
            .utility(meta, s.frequency, bandwidth_bps, self.clock)
            .max(0.0)
    }

    /// Retries growing `slot` towards the policy target without recording a
    /// new request: frequency, clock and the request/hit/byte-split
    /// statistics are untouched; admissions and evictions count as usual.
    /// Used after a budget steal has raised this engine's capacity.
    ///
    /// The returned outcome's `bytes_from_cache`/`bytes_from_origin` are
    /// zero — no bytes moved on behalf of a client here.
    pub(crate) fn regrow_slot(
        &mut self,
        slot: u32,
        meta: &ObjectMeta,
        bandwidth_bps: f64,
    ) -> AccessOutcome {
        let s = &self.slots[slot as usize];
        debug_assert_eq!(s.key, meta.key, "slot/key mismatch in regrow");
        let cached_before = s.cached_bytes;
        let utility = self.current_utility(slot, meta, bandwidth_bps);
        let target = self
            .policy
            .target_bytes(meta, bandwidth_bps)
            .clamp(0.0, meta.size_bytes());
        let (cached_after, evictions, admitted) =
            self.rebalance(slot, cached_before, target, utility);
        AccessOutcome {
            cached_bytes_before: cached_before,
            cached_bytes_after: cached_after,
            bytes_from_cache: 0.0,
            bytes_from_origin: 0.0,
            evictions,
            admitted,
        }
    }

    /// Grows (never shrinks) the allocation of `slot` towards `target`,
    /// evicting strictly-lower-utility victims when space is needed.
    /// Returns `(cached_after, evictions, admitted)`.
    fn rebalance(
        &mut self,
        slot: u32,
        cached_before: f64,
        target: f64,
        utility: f64,
    ) -> (f64, usize, bool) {
        // Nothing to grow: refresh the heap key and return.
        if target <= cached_before {
            if self.heap.contains(slot) {
                self.heap.update(slot, utility);
            }
            return (cached_before, 0, false);
        }

        // Conceptually take the object's current allocation out, then try to
        // re-admit it at the target size.
        if self.heap.contains(slot) {
            self.heap.remove(slot);
            self.used_bytes -= cached_before;
        }

        // Pop candidate victims (strictly lower utility) until the target
        // fits or no eligible victim remains. Eviction is committed only if
        // admission succeeds; otherwise the pops are rolled back. The
        // scratch buffer is reused across accesses, so the steady state
        // allocates nothing.
        self.scratch.clear();
        while self.capacity_bytes - self.used_bytes < target {
            match self.heap.peek_min() {
                Some((victim, victim_utility)) if victim_utility < utility => {
                    self.heap.pop_min();
                    let bytes = self.slots[victim as usize].cached_bytes;
                    self.used_bytes -= bytes;
                    self.scratch.push((victim, bytes, victim_utility));
                }
                _ => break,
            }
        }

        let available = (self.capacity_bytes - self.used_bytes).max(0.0);
        let grant = if self.policy.allows_partial_admission() {
            target.min(available)
        } else if available >= target {
            target
        } else {
            0.0
        };

        // Admission needs a non-zero grant that at least re-covers the old
        // allocation: a shrink would throw away bytes the object already
        // holds, and a zero grant means the policy (or the capacity) said
        // "do not cache". Equal-size re-admission commits — the evicted
        // victims stay out — but does not count as an admission.
        if grant > 0.0 && grant >= cached_before {
            // Commit: victims are gone for good, the object holds `grant`.
            for &(victim, bytes, _) in &self.scratch {
                self.slots[victim as usize].cached_bytes = 0.0;
                self.stats.evictions += 1;
                self.stats.bytes_evicted += bytes;
                if self.track_deltas {
                    self.deltas.push(CacheDelta {
                        slot: victim,
                        key: self.slots[victim as usize].key,
                        new_bytes: 0.0,
                    });
                }
            }
            let evicted = self.scratch.len();
            self.slots[slot as usize].cached_bytes = grant;
            self.used_bytes += grant;
            self.heap.insert(slot, utility);
            let grew = grant > cached_before;
            if grew {
                self.stats.admissions += 1;
                self.stats.bytes_admitted += grant - cached_before;
            }
            if self.track_deltas && grant != cached_before {
                self.deltas.push(CacheDelta {
                    slot,
                    key: self.slots[slot as usize].key,
                    new_bytes: grant,
                });
            }
            debug_assert!(self.used_bytes <= self.capacity_bytes + 1e-6);
            (grant, evicted, grew)
        } else {
            // Roll back: restore the popped victims and the object itself.
            for &(victim, bytes, victim_utility) in self.scratch.iter().rev() {
                self.used_bytes += bytes;
                self.heap.insert(victim, victim_utility);
            }
            if cached_before > 0.0 {
                self.used_bytes += cached_before;
                self.heap.insert(slot, utility);
            }
            (cached_before, 0, false)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{IntegralBandwidth, IntegralFrequency, Lru, PartialBandwidth, PolicyKind};

    const R: f64 = 48_000.0;

    fn obj(key: u64, duration: f64) -> ObjectMeta {
        ObjectMeta::new(ObjectKey::new(key), duration, R, 1.0)
    }

    #[test]
    fn rejects_invalid_capacity() {
        assert!(CacheEngine::new(-1.0, PartialBandwidth::new()).is_err());
        assert!(CacheEngine::new(f64::NAN, PartialBandwidth::new()).is_err());
        assert!(CacheEngine::new(f64::INFINITY, PartialBandwidth::new()).is_err());
    }

    #[test]
    fn pb_caches_only_the_deficit() {
        let mut cache = CacheEngine::new(1e9, PartialBandwidth::new()).unwrap();
        let o = obj(1, 100.0);
        let out = cache.on_access(&o, R / 2.0);
        assert!(out.admitted);
        assert_eq!(out.cached_bytes_after, o.size_bytes() / 2.0);
        assert_eq!(cache.cached_bytes(o.key), o.size_bytes() / 2.0);
        assert_eq!(cache.len(), 1);
        // Object with abundant bandwidth is never cached by PB.
        let fast = obj(2, 100.0);
        let out = cache.on_access(&fast, 2.0 * R);
        assert!(!out.admitted);
        assert_eq!(cache.cached_bytes(fast.key), 0.0);
    }

    #[test]
    fn if_caches_whole_objects_regardless_of_bandwidth() {
        let mut cache = CacheEngine::new(1e9, IntegralFrequency::new()).unwrap();
        let o = obj(1, 100.0);
        let out = cache.on_access(&o, 10.0 * R);
        assert!(out.admitted);
        assert_eq!(cache.cached_bytes(o.key), o.size_bytes());
    }

    #[test]
    fn second_access_is_served_from_cache() {
        let mut cache = CacheEngine::new(1e9, PartialBandwidth::new()).unwrap();
        let o = obj(1, 100.0);
        let first = cache.on_access(&o, R / 2.0);
        assert_eq!(first.bytes_from_cache, 0.0);
        let second = cache.on_access(&o, R / 2.0);
        assert_eq!(second.bytes_from_cache, o.size_bytes() / 2.0);
        assert_eq!(second.bytes_from_origin, o.size_bytes() / 2.0);
        assert_eq!(cache.stats().hits, 1);
        assert_eq!(cache.stats().requests, 2);
        assert!((cache.stats().traffic_reduction_ratio() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn low_utility_objects_are_evicted_for_high_utility_ones() {
        // Capacity fits exactly one whole object.
        let size = obj(1, 100.0).size_bytes();
        let mut cache = CacheEngine::new(size, IntegralBandwidth::new()).unwrap();
        let slow = obj(1, 100.0);
        let slower = obj(2, 100.0);
        // Access the first object once over a moderately slow path.
        cache.on_access(&slow, R / 2.0);
        assert!(cache.contains(slow.key));
        // Access the second object twice over a much slower path: its
        // utility (2 / (R/10)) exceeds (1 / (R/2)), so it displaces the
        // first object.
        cache.on_access(&slower, R / 10.0);
        cache.on_access(&slower, R / 10.0);
        assert!(cache.contains(slower.key));
        assert!(!cache.contains(slow.key));
        assert_eq!(cache.stats().evictions, 1);
        assert!(cache.used_bytes() <= cache.capacity_bytes() + 1e-6);
    }

    #[test]
    fn high_utility_objects_are_not_evicted_by_low_utility_ones() {
        let size = obj(1, 100.0).size_bytes();
        let mut cache = CacheEngine::new(size, IntegralBandwidth::new()).unwrap();
        let hot = obj(1, 100.0);
        for _ in 0..5 {
            cache.on_access(&hot, R / 4.0);
        }
        // A cold object over a faster path must not displace the hot one.
        let cold = obj(2, 100.0);
        cache.on_access(&cold, R / 2.0);
        assert!(cache.contains(hot.key));
        assert!(!cache.contains(cold.key));
        assert_eq!(cache.stats().evictions, 0);
    }

    #[test]
    fn integral_admission_is_all_or_nothing() {
        // Capacity covers only half an object.
        let o = obj(1, 100.0);
        let mut cache = CacheEngine::new(o.size_bytes() / 2.0, IntegralBandwidth::new()).unwrap();
        let out = cache.on_access(&o, R / 2.0);
        assert!(!out.admitted);
        assert_eq!(cache.cached_bytes(o.key), 0.0);
        assert_eq!(cache.used_bytes(), 0.0);
    }

    #[test]
    fn partial_admission_fills_whatever_fits() {
        let o = obj(1, 100.0);
        // Capacity is a quarter of the object; PB wants half.
        let mut cache = CacheEngine::new(o.size_bytes() / 4.0, PartialBandwidth::new()).unwrap();
        let out = cache.on_access(&o, R / 2.0);
        assert!(out.admitted);
        assert!((cache.cached_bytes(o.key) - o.size_bytes() / 4.0).abs() < 1e-6);
        assert!(cache.used_bytes() <= cache.capacity_bytes() + 1e-6);
    }

    #[test]
    fn partial_allocation_grows_when_bandwidth_drops() {
        let o = obj(1, 100.0);
        let mut cache = CacheEngine::new(1e9, PartialBandwidth::new()).unwrap();
        cache.on_access(&o, R / 2.0);
        assert_eq!(cache.cached_bytes(o.key), o.size_bytes() / 2.0);
        // Bandwidth estimate worsens: the prefix grows.
        cache.on_access(&o, R / 4.0);
        assert_eq!(cache.cached_bytes(o.key), o.size_bytes() * 0.75);
        // Bandwidth improves again: the allocation is not shrunk.
        cache.on_access(&o, R);
        assert_eq!(cache.cached_bytes(o.key), o.size_bytes() * 0.75);
    }

    #[test]
    fn failed_integral_admission_rolls_back_victims() {
        let small = obj(1, 50.0);
        let big = obj(2, 200.0);
        // Capacity fits the small object only.
        let mut cache = CacheEngine::new(small.size_bytes(), IntegralBandwidth::new()).unwrap();
        cache.on_access(&small, R / 2.0);
        assert!(cache.contains(small.key));
        // The big object has higher utility (slower path, after two
        // accesses) but cannot fit even after evicting the small one, so the
        // small object must survive.
        cache.on_access(&big, R / 10.0);
        cache.on_access(&big, R / 10.0);
        assert!(cache.contains(small.key));
        assert!(!cache.contains(big.key));
        assert_eq!(cache.stats().evictions, 0);
        assert!((cache.used_bytes() - small.size_bytes()).abs() < 1e-6);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let size = obj(1, 100.0).size_bytes();
        let mut cache = CacheEngine::new(2.0 * size, Lru::new()).unwrap();
        let a = obj(1, 100.0);
        let b = obj(2, 100.0);
        let c = obj(3, 100.0);
        cache.on_access(&a, R);
        cache.on_access(&b, R);
        cache.on_access(&a, R); // refresh a
        cache.on_access(&c, R); // evicts b
        assert!(cache.contains(a.key));
        assert!(!cache.contains(b.key));
        assert!(cache.contains(c.key));
    }

    #[test]
    fn zero_capacity_cache_never_admits() {
        let mut cache = CacheEngine::new(0.0, PartialBandwidth::new()).unwrap();
        let o = obj(1, 100.0);
        let out = cache.on_access(&o, R / 2.0);
        assert!(!out.admitted);
        assert_eq!(cache.len(), 0);
        assert_eq!(cache.used_bytes(), 0.0);
    }

    #[test]
    fn clear_frees_everything_but_keeps_frequencies() {
        let mut cache = CacheEngine::new(1e9, IntegralFrequency::new()).unwrap();
        let o = obj(1, 100.0);
        cache.on_access(&o, R);
        cache.on_access(&o, R);
        assert_eq!(cache.frequency(o.key), 2);
        let evicted = cache.clear();
        assert_eq!(evicted, 1);
        assert!(cache.is_empty());
        assert_eq!(cache.used_bytes(), 0.0);
        assert_eq!(cache.frequency(o.key), 2);
        // The cache keeps working after a clear: re-admission succeeds.
        let out = cache.on_access(&o, R);
        assert!(out.admitted);
        assert!(cache.contains(o.key));
    }

    #[test]
    fn contents_and_accessors() {
        let mut cache = CacheEngine::new(1e9, PartialBandwidth::new()).unwrap();
        let o = obj(7, 100.0);
        cache.on_access(&o, R / 2.0);
        let contents = cache.contents();
        assert_eq!(contents.len(), 1);
        assert_eq!(contents[0].0, o.key);
        assert!(cache.free_bytes() < cache.capacity_bytes());
        assert_eq!(cache.policy().name(), "PB");
    }

    #[test]
    fn reset_stats_keeps_contents() {
        let mut cache = CacheEngine::new(1e9, PartialBandwidth::new()).unwrap();
        let o = obj(1, 100.0);
        cache.on_access(&o, R / 2.0);
        cache.reset_stats();
        assert_eq!(cache.stats().requests, 0);
        assert!(cache.contains(o.key));
    }

    #[test]
    fn boxed_policy_engine_works() {
        let kind = PolicyKind::HybridPartialBandwidth { e: 0.5 };
        let mut cache = CacheEngine::new(1e9, kind.build()).unwrap();
        let o = obj(1, 100.0);
        let out = cache.on_access(&o, R / 2.0);
        assert!(out.admitted);
        // e = 0.5: prefix = (r - 0.5 b) T = 0.75 size.
        assert!((cache.cached_bytes(o.key) - 0.75 * o.size_bytes()).abs() < 1e-6);
    }

    #[test]
    fn used_bytes_never_exceed_capacity_under_churn() {
        let mut cache =
            CacheEngine::new(5.0 * obj(0, 100.0).size_bytes(), PartialBandwidth::new()).unwrap();
        // Deterministic pseudo-random access pattern over 50 objects.
        let mut state = 0xdeadbeefu64;
        for _ in 0..2_000 {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let key = state % 50;
            let duration = 50.0 + (state % 100) as f64;
            let bandwidth = 1_000.0 + (state % 60_000) as f64;
            let o = obj(key, duration);
            cache.on_access(&o, bandwidth);
            assert!(
                cache.used_bytes() <= cache.capacity_bytes() + 1e-3,
                "capacity violated: used {} capacity {}",
                cache.used_bytes(),
                cache.capacity_bytes()
            );
        }
        // Sum of entries equals used bytes.
        let total: f64 = cache.contents().iter().map(|(_, b)| b).sum();
        assert!((total - cache.used_bytes()).abs() < 1e-3);
    }

    // --- slot-path and slab-specific behaviour ---

    #[test]
    fn slot_path_matches_keyed_path() {
        // The same deterministic access stream produces identical outcomes,
        // stats and contents through on_access and on_access_slot.
        let mut keyed =
            CacheEngine::new(8.0 * obj(0, 100.0).size_bytes(), PartialBandwidth::new()).unwrap();
        let mut slotted =
            CacheEngine::new(8.0 * obj(0, 100.0).size_bytes(), PartialBandwidth::new()).unwrap();
        slotted.ensure_slots(40);
        let mut state = 0x5eed_cafeu64;
        for _ in 0..3_000 {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let key = state % 40;
            let duration = 30.0 + (state % 200) as f64;
            let bandwidth = 1_000.0 + (state % 90_000) as f64;
            let o = obj(key, duration);
            let a = keyed.on_access(&o, bandwidth);
            let b = slotted.on_access_slot(key as u32, &o, bandwidth);
            assert_eq!(a, b);
        }
        assert_eq!(keyed.used_bytes().to_bits(), slotted.used_bytes().to_bits());
        assert_eq!(keyed.len(), slotted.len());
        assert_eq!(keyed.stats().evictions, slotted.stats().evictions);
        assert_eq!(keyed.stats().hits, slotted.stats().hits);
        for key in 0..40 {
            let k = ObjectKey::new(key);
            assert_eq!(
                keyed.cached_bytes(k).to_bits(),
                slotted.cached_bytes(k).to_bits()
            );
            assert_eq!(keyed.frequency(k), slotted.frequency(k));
        }
    }

    #[test]
    fn ensure_slots_is_idempotent_and_growable() {
        let mut cache = CacheEngine::new(1e9, PartialBandwidth::new()).unwrap();
        cache.ensure_slots(10);
        cache.ensure_slots(5); // shrinking request: no-op
        cache.ensure_slots(20); // growth keeps earlier slots intact
        let o = obj(3, 100.0);
        cache.on_access_slot(3, &o, R / 2.0);
        assert!(cache.contains(o.key));
        assert_eq!(cache.slot_of(o.key), Some(3));
        // Keyed access to a dense key resolves to the same slot.
        cache.on_access(&o, R / 2.0);
        assert_eq!(cache.frequency(o.key), 2);
    }

    #[test]
    #[should_panic(expected = "not allocated")]
    fn unallocated_slot_access_panics() {
        let mut cache = CacheEngine::new(1e9, PartialBandwidth::new()).unwrap();
        cache.ensure_slots(2);
        let o = obj(5, 100.0);
        cache.on_access_slot(5, &o, R);
    }

    #[test]
    #[should_panic(expected = "dense")]
    fn ensure_slots_after_sparse_interning_panics() {
        // A sparse key interned first lands at slot 0; a later ensure_slots
        // must refuse rather than alias dense key 0 onto that slot.
        let mut cache = CacheEngine::new(1e9, PartialBandwidth::new()).unwrap();
        cache.on_access(&obj(7, 100.0), R / 2.0);
        cache.ensure_slots(3);
    }

    #[test]
    fn ensure_slots_after_dense_prefix_interning_is_fine() {
        // Keys that happen to be interned densely (0 first, then 1, ...)
        // already satisfy the layout; growing the slab afterwards is legal.
        let mut cache = CacheEngine::new(1e9, PartialBandwidth::new()).unwrap();
        cache.on_access(&obj(0, 100.0), R / 2.0);
        cache.on_access(&obj(1, 100.0), R / 2.0);
        cache.ensure_slots(4);
        assert_eq!(cache.slot_of(ObjectKey::new(3)), Some(3));
        assert_eq!(cache.frequency(ObjectKey::new(0)), 1);
    }

    #[test]
    fn sparse_keys_intern_fresh_slots() {
        let mut cache = CacheEngine::new(1e9, PartialBandwidth::new()).unwrap();
        let a = obj(u64::MAX, 100.0);
        let b = obj(u64::MAX - 7, 100.0);
        cache.on_access(&a, R / 2.0);
        cache.on_access(&b, R / 2.0);
        assert_eq!(cache.slot_of(a.key), Some(0));
        assert_eq!(cache.slot_of(b.key), Some(1));
        assert_eq!(cache.len(), 2);
    }

    // --- admission predicate semantics (pinned) ---

    #[test]
    fn readmission_at_equal_size_commits_evictions() {
        // An integral-policy object re-requested when its target exactly
        // equals the available space after evicting a lower-utility victim:
        // grant == target > cached_before == 0 is a plain admission, but
        // the interesting pinned case is grant == cached_before > 0, which
        // commits without counting as an admission. Construct it with PB:
        // bandwidth drops so target grows beyond capacity, the partial
        // grant equals the old allocation exactly.
        let o = obj(1, 100.0);
        let size = o.size_bytes();
        // Capacity = half the object: PB at R/2 wants and gets size/2.
        let mut cache = CacheEngine::new(size / 2.0, PartialBandwidth::new()).unwrap();
        let first = cache.on_access(&o, R / 2.0);
        assert!(first.admitted);
        assert_eq!(cache.cached_bytes(o.key), size / 2.0);
        let admissions_before = cache.stats().admissions;
        // Bandwidth worsens: target = 0.75 * size, but only size/2 fits.
        // grant == cached_before == size/2: the access commits (allocation
        // is unchanged) and is NOT counted as an admission.
        let second = cache.on_access(&o, R / 4.0);
        assert!(!second.admitted);
        assert_eq!(second.cached_bytes_after, size / 2.0);
        assert_eq!(cache.cached_bytes(o.key), size / 2.0);
        assert_eq!(cache.stats().admissions, admissions_before);
        assert!(cache.contains(o.key));
    }

    #[test]
    fn zero_grant_is_rejected_and_rolls_back() {
        // A non-partial policy whose target cannot fit gets a zero grant:
        // nothing may be admitted and any popped victims must return.
        let small = obj(1, 40.0);
        let big = obj(2, 400.0);
        let mut cache = CacheEngine::new(small.size_bytes(), IntegralBandwidth::new()).unwrap();
        cache.on_access(&small, R / 2.0);
        let used_before = cache.used_bytes();
        // big's utility after three accesses exceeds small's, so small is
        // popped as a victim — but big still cannot fit, grant = 0, and the
        // pop must roll back.
        for _ in 0..3 {
            let out = cache.on_access(&big, R / 16.0);
            assert!(!out.admitted);
            assert_eq!(out.evictions, 0);
            assert_eq!(out.cached_bytes_after, 0.0);
        }
        assert!(cache.contains(small.key));
        assert!(!cache.contains(big.key));
        assert_eq!(cache.used_bytes().to_bits(), used_before.to_bits());
        assert_eq!(cache.stats().evictions, 0);
    }

    // --- delta log ---

    #[test]
    fn delta_log_is_off_by_default_and_empty_when_off() {
        let mut cache = CacheEngine::new(1e9, PartialBandwidth::new()).unwrap();
        assert!(!cache.delta_tracking());
        cache.on_access(&obj(1, 100.0), R / 2.0);
        assert_eq!(cache.drain_deltas().count(), 0);
    }

    #[test]
    fn delta_log_records_admission_and_eviction() {
        let size = obj(1, 100.0).size_bytes();
        let mut cache = CacheEngine::new(size, IntegralBandwidth::new()).unwrap();
        cache.set_delta_tracking(true);

        let a = obj(1, 100.0);
        cache.on_access(&a, R / 2.0);
        let deltas: Vec<CacheDelta> = cache.drain_deltas().collect();
        assert_eq!(deltas.len(), 1);
        assert_eq!(deltas[0].key, a.key);
        assert_eq!(deltas[0].new_bytes, size);

        // A higher-utility object displaces `a`: one eviction delta (to 0)
        // followed by the admission delta, in commit order.
        let b = obj(2, 100.0);
        cache.on_access(&b, R / 10.0);
        cache.on_access(&b, R / 10.0);
        let deltas: Vec<CacheDelta> = cache.drain_deltas().collect();
        assert_eq!(deltas.len(), 2);
        assert_eq!(deltas[0].key, a.key);
        assert_eq!(deltas[0].new_bytes, 0.0);
        assert_eq!(deltas[1].key, b.key);
        assert_eq!(deltas[1].new_bytes, size);
    }

    #[test]
    fn delta_log_is_silent_on_rollback_and_refresh() {
        let small = obj(1, 50.0);
        let big = obj(2, 200.0);
        let mut cache = CacheEngine::new(small.size_bytes(), IntegralBandwidth::new()).unwrap();
        cache.set_delta_tracking(true);
        cache.on_access(&small, R / 2.0);
        cache.drain_deltas().count();
        // Rollback: big pops small as a victim but cannot fit; state is
        // restored exactly, so no delta may be recorded.
        cache.on_access(&big, R / 10.0);
        cache.on_access(&big, R / 10.0);
        assert_eq!(cache.drain_deltas().count(), 0);
        // Refresh (target <= cached): no allocation change, no delta.
        cache.on_access(&small, R / 2.0);
        assert_eq!(cache.drain_deltas().count(), 0);
    }

    #[test]
    fn delta_log_records_clear_and_toggling_clears_pending() {
        let mut cache = CacheEngine::new(1e9, IntegralFrequency::new()).unwrap();
        cache.set_delta_tracking(true);
        cache.on_access(&obj(1, 100.0), R);
        cache.on_access(&obj(2, 100.0), R);
        cache.drain_deltas().count();
        cache.clear();
        let deltas: Vec<CacheDelta> = cache.drain_deltas().collect();
        assert_eq!(deltas.len(), 2);
        assert!(deltas.iter().all(|d| d.new_bytes == 0.0));

        cache.on_access(&obj(3, 100.0), R);
        cache.set_delta_tracking(false);
        assert_eq!(cache.drain_deltas().count(), 0);
    }

    #[test]
    fn zero_grant_with_zero_cached_never_creates_an_entry() {
        // PB with abundant bandwidth wants target 0 for an uncached object:
        // target (0) <= cached_before (0) takes the refresh path, and no
        // entry may appear.
        let mut cache = CacheEngine::new(1e9, PartialBandwidth::new()).unwrap();
        let o = obj(1, 100.0);
        let out = cache.on_access(&o, 2.0 * R);
        assert!(!out.admitted);
        assert!(!cache.contains(o.key));
        assert_eq!(cache.len(), 0);
        assert_eq!(cache.frequency(o.key), 1, "frequency still counted");
    }
}
