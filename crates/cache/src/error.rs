//! Error type for the caching library.

use std::error::Error;
use std::fmt;

/// Errors returned by cache constructors and offline solvers.
#[derive(Debug, Clone, PartialEq)]
pub enum CacheError {
    /// The cache capacity was negative or not finite.
    InvalidCapacity(f64),
    /// A per-object input (bandwidth, arrival rate, …) was invalid
    /// (parameter name, offending value).
    InvalidInput(&'static str, f64),
    /// Two parallel input slices had different lengths (expected, actual).
    LengthMismatch(usize, usize),
    /// A sharded engine was asked for zero shards.
    InvalidShardCount(usize),
}

impl fmt::Display for CacheError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CacheError::InvalidCapacity(c) => {
                write!(f, "cache capacity must be finite and non-negative, got {c}")
            }
            CacheError::InvalidInput(name, v) => {
                write!(f, "invalid value for `{name}`: {v}")
            }
            CacheError::LengthMismatch(expected, actual) => {
                write!(
                    f,
                    "input slices must have equal length: expected {expected}, got {actual}"
                )
            }
            CacheError::InvalidShardCount(n) => {
                write!(f, "a sharded engine needs at least one shard, got {n}")
            }
        }
    }
}

impl Error for CacheError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(CacheError::InvalidCapacity(-1.0)
            .to_string()
            .contains("capacity"));
        assert!(CacheError::InvalidInput("bandwidth", -2.0)
            .to_string()
            .contains("bandwidth"));
        assert!(CacheError::LengthMismatch(3, 4).to_string().contains("3"));
    }

    #[test]
    fn error_is_send_sync_static() {
        fn assert_bounds<T: std::error::Error + Send + Sync + 'static>() {}
        assert_bounds::<CacheError>();
    }
}
