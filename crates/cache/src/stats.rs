//! Running statistics of a cache instance, plus the lock-free atomic
//! counterpart aggregated by the sharded engine.

use crate::engine::AccessOutcome;
use std::sync::atomic::{AtomicU64, Ordering};

/// Counters maintained by the [`CacheEngine`](crate::CacheEngine).
///
/// The byte-level counters directly support the paper's *traffic reduction
/// ratio* metric: the fraction of all requested bytes that were served from
/// the cache rather than the origin servers.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CacheStats {
    /// Number of accesses processed.
    pub requests: u64,
    /// Accesses that found at least one cached byte of the object.
    pub hits: u64,
    /// Number of admissions (new allocations or allocation growth).
    pub admissions: u64,
    /// Number of objects evicted.
    pub evictions: u64,
    /// Total bytes requested (sum of full object sizes over all accesses).
    pub bytes_requested: f64,
    /// Bytes served from the cache (cached prefix available at access time).
    pub bytes_from_cache: f64,
    /// Bytes that had to be fetched from origin servers.
    pub bytes_from_origin: f64,
    /// Total bytes written into the cache by admissions.
    pub bytes_admitted: f64,
    /// Total bytes released by evictions.
    pub bytes_evicted: f64,
}

impl CacheStats {
    /// Fraction of requested bytes served by the cache (the paper's traffic
    /// reduction ratio). Zero when nothing was requested.
    pub fn traffic_reduction_ratio(&self) -> f64 {
        if self.bytes_requested > 0.0 {
            self.bytes_from_cache / self.bytes_requested
        } else {
            0.0
        }
    }

    /// Fraction of accesses that found at least one cached byte.
    pub fn hit_ratio(&self) -> f64 {
        if self.requests > 0 {
            self.hits as f64 / self.requests as f64
        } else {
            0.0
        }
    }

    /// Resets all counters (used when switching from warm-up to measurement).
    pub fn reset(&mut self) {
        *self = CacheStats::default();
    }
}

/// Lock-free mirror of [`CacheStats`], updated with relaxed atomics.
///
/// The [`ShardedEngine`](crate::ShardedEngine) aggregates its per-access
/// statistics here so that [`snapshot`](Self::snapshot) never has to take a
/// shard lock. Integer counters are plain relaxed `fetch_add`s; the `f64`
/// byte counters are stored as IEEE-754 bit patterns in `AtomicU64`s and
/// accumulated with a compare-exchange loop.
///
/// Single-threaded, the accumulation order matches the engine's own
/// [`CacheStats`] updates add for add, so a one-shard engine reproduces the
/// unsharded counters bit for bit. Under concurrency the interleaving of
/// `f64` additions is scheduling-dependent (floating-point addition is not
/// associative), so byte counters are exact sums of the recorded
/// contributions but their low bits depend on thread timing.
#[derive(Debug, Default)]
pub struct AtomicCacheStats {
    requests: AtomicU64,
    hits: AtomicU64,
    admissions: AtomicU64,
    evictions: AtomicU64,
    /// `f64` totals stored as bit patterns.
    bytes_requested: AtomicU64,
    bytes_from_cache: AtomicU64,
    bytes_from_origin: AtomicU64,
    bytes_admitted: AtomicU64,
    bytes_evicted: AtomicU64,
}

/// Adds `v` to the `f64` total stored in `cell` as IEEE-754 bits.
fn add_f64(cell: &AtomicU64, v: f64) {
    if v == 0.0 {
        return;
    }
    let mut current = cell.load(Ordering::Relaxed);
    loop {
        let next = (f64::from_bits(current) + v).to_bits();
        match cell.compare_exchange_weak(current, next, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(observed) => current = observed,
        }
    }
}

impl AtomicCacheStats {
    /// Creates a zeroed counter block.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one completed access from its outcome: request/hit counts,
    /// the byte split of the request, and the admission (if any). Evicted
    /// bytes are recorded separately via
    /// [`record_evicted_bytes`](Self::record_evicted_bytes) so each
    /// victim's contribution lands as its own addition, matching the
    /// engine's accumulation order.
    pub fn record_access(&self, size_bytes: f64, out: &AccessOutcome) {
        self.requests.fetch_add(1, Ordering::Relaxed);
        if out.bytes_from_cache > 0.0 {
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
        add_f64(&self.bytes_requested, size_bytes);
        add_f64(&self.bytes_from_cache, out.bytes_from_cache);
        add_f64(&self.bytes_from_origin, out.bytes_from_origin);
        self.record_rebalance(out);
    }

    /// Records the admission/eviction half of an outcome only (used for
    /// regrow attempts after a budget steal, which are not new requests).
    pub fn record_rebalance(&self, out: &AccessOutcome) {
        if out.admitted {
            self.admissions.fetch_add(1, Ordering::Relaxed);
            add_f64(
                &self.bytes_admitted,
                out.cached_bytes_after - out.cached_bytes_before,
            );
        }
        self.evictions
            .fetch_add(out.evictions as u64, Ordering::Relaxed);
    }

    /// Records one eviction's byte count (admission-driven victims, budget
    /// steals and `clear` all funnel through here).
    pub fn record_evicted_bytes(&self, bytes: f64) {
        add_f64(&self.bytes_evicted, bytes);
    }

    /// Records `count` evictions totalling `bytes` (the steal path, where
    /// victims are already aggregated).
    pub fn record_evictions(&self, count: u64, bytes: f64) {
        self.evictions.fetch_add(count, Ordering::Relaxed);
        add_f64(&self.bytes_evicted, bytes);
    }

    /// A point-in-time [`CacheStats`] view of the counters (relaxed loads;
    /// fields read concurrently with updates may be mutually torn by one
    /// in-flight access).
    pub fn snapshot(&self) -> CacheStats {
        CacheStats {
            requests: self.requests.load(Ordering::Relaxed),
            hits: self.hits.load(Ordering::Relaxed),
            admissions: self.admissions.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            bytes_requested: f64::from_bits(self.bytes_requested.load(Ordering::Relaxed)),
            bytes_from_cache: f64::from_bits(self.bytes_from_cache.load(Ordering::Relaxed)),
            bytes_from_origin: f64::from_bits(self.bytes_from_origin.load(Ordering::Relaxed)),
            bytes_admitted: f64::from_bits(self.bytes_admitted.load(Ordering::Relaxed)),
            bytes_evicted: f64::from_bits(self.bytes_evicted.load(Ordering::Relaxed)),
        }
    }

    /// Resets every counter to zero (warm-up/measurement boundary).
    pub fn reset(&self) {
        self.requests.store(0, Ordering::Relaxed);
        self.hits.store(0, Ordering::Relaxed);
        self.admissions.store(0, Ordering::Relaxed);
        self.evictions.store(0, Ordering::Relaxed);
        self.bytes_requested.store(0, Ordering::Relaxed);
        self.bytes_from_cache.store(0, Ordering::Relaxed);
        self.bytes_from_origin.store(0, Ordering::Relaxed);
        self.bytes_admitted.store(0, Ordering::Relaxed);
        self.bytes_evicted.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratios_handle_empty_stats() {
        let s = CacheStats::default();
        assert_eq!(s.traffic_reduction_ratio(), 0.0);
        assert_eq!(s.hit_ratio(), 0.0);
    }

    #[test]
    fn ratios_compute() {
        let s = CacheStats {
            requests: 10,
            hits: 4,
            bytes_requested: 100.0,
            bytes_from_cache: 25.0,
            bytes_from_origin: 75.0,
            ..Default::default()
        };
        assert!((s.traffic_reduction_ratio() - 0.25).abs() < 1e-12);
        assert!((s.hit_ratio() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn reset_clears_everything() {
        let mut s = CacheStats {
            requests: 5,
            ..Default::default()
        };
        s.reset();
        assert_eq!(s, CacheStats::default());
    }

    fn outcome(
        from_cache: f64,
        from_origin: f64,
        admitted: bool,
        evictions: usize,
    ) -> AccessOutcome {
        AccessOutcome {
            cached_bytes_before: 0.0,
            cached_bytes_after: if admitted { from_origin } else { 0.0 },
            bytes_from_cache: from_cache,
            bytes_from_origin: from_origin,
            evictions,
            admitted,
        }
    }

    #[test]
    fn atomic_stats_record_and_snapshot() {
        let stats = AtomicCacheStats::new();
        stats.record_access(100.0, &outcome(0.0, 100.0, true, 0));
        stats.record_access(100.0, &outcome(40.0, 60.0, false, 1));
        stats.record_evicted_bytes(25.0);
        let snap = stats.snapshot();
        assert_eq!(snap.requests, 2);
        assert_eq!(snap.hits, 1);
        assert_eq!(snap.admissions, 1);
        assert_eq!(snap.evictions, 1);
        assert_eq!(snap.bytes_requested, 200.0);
        assert_eq!(snap.bytes_from_cache, 40.0);
        assert_eq!(snap.bytes_from_origin, 160.0);
        assert_eq!(snap.bytes_admitted, 100.0);
        assert_eq!(snap.bytes_evicted, 25.0);
        stats.reset();
        assert_eq!(stats.snapshot(), CacheStats::default());
    }

    #[test]
    fn atomic_stats_sum_exactly_under_concurrency() {
        // Integer counters and the *sum* of byte contributions must be
        // exact regardless of interleaving (each thread adds integral
        // values, so f64 addition here is lossless in any order).
        let stats = std::sync::Arc::new(AtomicCacheStats::new());
        let threads: u64 = 4;
        let per_thread: u64 = 1_000;
        std::thread::scope(|scope| {
            for _ in 0..threads {
                let stats = std::sync::Arc::clone(&stats);
                scope.spawn(move || {
                    for _ in 0..per_thread {
                        stats.record_access(8.0, &outcome(3.0, 5.0, false, 0));
                        stats.record_evicted_bytes(2.0);
                    }
                });
            }
        });
        let snap = stats.snapshot();
        let n = (threads * per_thread) as f64;
        assert_eq!(snap.requests, threads * per_thread);
        assert_eq!(snap.hits, threads * per_thread);
        assert_eq!(snap.bytes_requested, 8.0 * n);
        assert_eq!(snap.bytes_from_cache, 3.0 * n);
        assert_eq!(snap.bytes_from_origin, 5.0 * n);
        assert_eq!(snap.bytes_evicted, 2.0 * n);
    }
}
