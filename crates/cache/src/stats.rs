//! Running statistics of a cache instance.

/// Counters maintained by the [`CacheEngine`](crate::CacheEngine).
///
/// The byte-level counters directly support the paper's *traffic reduction
/// ratio* metric: the fraction of all requested bytes that were served from
/// the cache rather than the origin servers.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CacheStats {
    /// Number of accesses processed.
    pub requests: u64,
    /// Accesses that found at least one cached byte of the object.
    pub hits: u64,
    /// Number of admissions (new allocations or allocation growth).
    pub admissions: u64,
    /// Number of objects evicted.
    pub evictions: u64,
    /// Total bytes requested (sum of full object sizes over all accesses).
    pub bytes_requested: f64,
    /// Bytes served from the cache (cached prefix available at access time).
    pub bytes_from_cache: f64,
    /// Bytes that had to be fetched from origin servers.
    pub bytes_from_origin: f64,
    /// Total bytes written into the cache by admissions.
    pub bytes_admitted: f64,
    /// Total bytes released by evictions.
    pub bytes_evicted: f64,
}

impl CacheStats {
    /// Fraction of requested bytes served by the cache (the paper's traffic
    /// reduction ratio). Zero when nothing was requested.
    pub fn traffic_reduction_ratio(&self) -> f64 {
        if self.bytes_requested > 0.0 {
            self.bytes_from_cache / self.bytes_requested
        } else {
            0.0
        }
    }

    /// Fraction of accesses that found at least one cached byte.
    pub fn hit_ratio(&self) -> f64 {
        if self.requests > 0 {
            self.hits as f64 / self.requests as f64
        } else {
            0.0
        }
    }

    /// Resets all counters (used when switching from warm-up to measurement).
    pub fn reset(&mut self) {
        *self = CacheStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratios_handle_empty_stats() {
        let s = CacheStats::default();
        assert_eq!(s.traffic_reduction_ratio(), 0.0);
        assert_eq!(s.hit_ratio(), 0.0);
    }

    #[test]
    fn ratios_compute() {
        let s = CacheStats {
            requests: 10,
            hits: 4,
            bytes_requested: 100.0,
            bytes_from_cache: 25.0,
            bytes_from_origin: 75.0,
            ..Default::default()
        };
        assert!((s.traffic_reduction_ratio() - 0.25).abs() < 1e-12);
        assert!((s.hit_ratio() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn reset_clears_everything() {
        let mut s = CacheStats {
            requests: 5,
            ..Default::default()
        };
        s.reset();
        assert_eq!(s, CacheStats::default());
    }
}
