//! # sc-cache — network-aware partial caching for streaming media
//!
//! This crate implements the primary contribution of *Accelerating Internet
//! Streaming Media Delivery using Network-Aware Partial Caching* (Jin,
//! Bestavros, Iyengar; ICDCS 2002): cache-management algorithms that are
//! both **stream-aware** (they know each object's bit-rate and duration) and
//! **network-aware** (they know the available bandwidth to each origin
//! server), and that may cache *partial* objects — prefixes sized exactly to
//! bridge the gap between an object's bit-rate and the bandwidth of the path
//! it streams over.
//!
//! ## Components
//!
//! * [`ObjectMeta`] — object descriptors (duration `T`, bit-rate `r`,
//!   value `V`).
//! * Allocation math — [`prefix_bytes_needed`], [`service_delay_secs`],
//!   [`stream_quality`]: the formulas of Section 2.2.
//! * [`policy`] — every replacement algorithm evaluated in the paper
//!   (IF, IB, PB, PB(e), PB-V, IB-V) plus LRU/LFU baselines, all expressed
//!   as [`policy::UtilityPolicy`] implementations.
//! * [`CacheEngine`] — the online replacement engine of Section 2.4:
//!   frequency estimation, a utility [`UtilityHeap`], admission and
//!   eviction. Per-object state lives in a dense slab addressed by `u32`
//!   slot handles, so the steady-state access path is hash-free and
//!   allocation-free (see `ARCHITECTURE.md`, "Hot path & performance").
//! * [`ShardedEngine`] — N-way sharding of the engine for concurrent
//!   callers: independent slabs routed by key hash, per-shard byte budgets
//!   with optional power-of-two-choices stealing, and lock-free aggregate
//!   statistics ([`AtomicCacheStats`]).
//! * [`fx`] — the hand-rolled Fx-style hasher behind the engine's thin
//!   key→slot interning map.
//! * Offline solvers — [`optimal_partial_allocation`] (the fractional
//!   knapsack optimum of Section 2.3), [`greedy_value_selection`] and
//!   [`exact_value_selection`] (the value-based knapsack of Section 2.6).
//!
//! ## Example: accelerating a bandwidth-starved object
//!
//! ```
//! use sc_cache::policy::PartialBandwidth;
//! use sc_cache::{CacheEngine, ObjectKey, ObjectMeta};
//!
//! # fn main() -> Result<(), sc_cache::CacheError> {
//! // A 10-minute, 48 KB/s clip reachable over a 24 KB/s path.
//! let clip = ObjectMeta::new(ObjectKey::new(42), 600.0, 48_000.0, 0.0);
//! let bandwidth = 24_000.0;
//!
//! // Without a cache the client waits for the whole bandwidth deficit.
//! assert_eq!(clip.service_delay(bandwidth, 0.0), 600.0);
//!
//! // A PB cache stores exactly the deficit prefix ...
//! let mut cache = CacheEngine::new(1e9, PartialBandwidth::new())?;
//! cache.on_access(&clip, bandwidth);
//! let cached = cache.cached_bytes(clip.key);
//! assert_eq!(cached, clip.size_bytes() / 2.0);
//!
//! // ... which hides the startup delay entirely on the next request.
//! assert_eq!(clip.service_delay(bandwidth, cached), 0.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod alloc;
mod engine;
mod error;
pub mod fx;
mod heap;
mod object;
mod optimal;
pub mod policy;
mod shard;
mod stats;

pub use alloc::{
    conservative_prefix_bytes, prefix_bytes_needed, service_delay_secs, stream_quality,
};
pub use engine::{AccessOutcome, CacheDelta, CacheEngine};
pub use error::CacheError;
pub use heap::UtilityHeap;
pub use object::{ObjectKey, ObjectMeta};
pub use optimal::{
    average_service_delay, exact_value_selection, greedy_value_selection,
    optimal_partial_allocation, total_value, OfflineObject,
};
pub use shard::ShardedEngine;
pub use stats::{AtomicCacheStats, CacheStats};
