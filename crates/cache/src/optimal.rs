//! Offline optimal cache-population solvers (Sections 2.3 and 2.6).
//!
//! With prior knowledge of request arrival rates, the delay-minimising
//! allocation is a **fractional knapsack**: rank objects by `λ_i / b_i`,
//! cache each up to `(r_i − b_i)⁺ · T_i`, until the capacity is exhausted.
//! The value-maximising variant of Section 2.6 is a 0/1 knapsack: the paper
//! uses a greedy value-density heuristic; an exact dynamic-programming
//! solver is included for validating the greedy solution on small instances.

use crate::alloc::prefix_bytes_needed;
use crate::error::CacheError;
use crate::object::ObjectMeta;

/// Inputs describing one object for the offline solvers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OfflineObject {
    /// The object's static metadata.
    pub meta: ObjectMeta,
    /// Request arrival rate `λ_i` (requests per unit time).
    pub arrival_rate: f64,
    /// Bandwidth `b_i` between the cache and the object's origin server in
    /// bytes per second.
    pub bandwidth_bps: f64,
}

impl OfflineObject {
    /// Creates an offline-solver input record.
    pub fn new(meta: ObjectMeta, arrival_rate: f64, bandwidth_bps: f64) -> Self {
        OfflineObject {
            meta,
            arrival_rate,
            bandwidth_bps,
        }
    }

    fn validate(&self) -> Result<(), CacheError> {
        if !self.arrival_rate.is_finite() || self.arrival_rate < 0.0 {
            return Err(CacheError::InvalidInput("arrival_rate", self.arrival_rate));
        }
        if !self.bandwidth_bps.is_finite() || self.bandwidth_bps < 0.0 {
            return Err(CacheError::InvalidInput(
                "bandwidth_bps",
                self.bandwidth_bps,
            ));
        }
        Ok(())
    }
}

/// The delay-optimal static allocation of Section 2.3.
///
/// Returns the cached prefix size `x_i` (bytes) for each object, in input
/// order. Objects with `r_i ≤ b_i` receive zero; the remaining objects are
/// considered in decreasing `λ_i / b_i` order and each receives up to
/// `(r_i − b_i)·T_i` bytes until the capacity runs out (the marginal object
/// receives a fractional prefix — this is the fractional knapsack optimum).
///
/// # Errors
///
/// Returns [`CacheError::InvalidCapacity`] for a negative or non-finite
/// capacity and [`CacheError::InvalidInput`] for negative or non-finite
/// arrival rates or bandwidths.
///
/// ```
/// use sc_cache::{optimal_partial_allocation, ObjectKey, ObjectMeta, OfflineObject};
///
/// # fn main() -> Result<(), sc_cache::CacheError> {
/// let slow = OfflineObject::new(
///     ObjectMeta::new(ObjectKey::new(0), 100.0, 48_000.0, 0.0), 1.0, 16_000.0);
/// let fast = OfflineObject::new(
///     ObjectMeta::new(ObjectKey::new(1), 100.0, 48_000.0, 0.0), 1.0, 64_000.0);
/// let alloc = optimal_partial_allocation(&[slow, fast], 10_000_000.0)?;
/// assert_eq!(alloc[0], 100.0 * 32_000.0); // deficit of the slow object
/// assert_eq!(alloc[1], 0.0);              // fast object is never cached
/// # Ok(())
/// # }
/// ```
pub fn optimal_partial_allocation(
    objects: &[OfflineObject],
    capacity_bytes: f64,
) -> Result<Vec<f64>, CacheError> {
    if !capacity_bytes.is_finite() || capacity_bytes < 0.0 {
        return Err(CacheError::InvalidCapacity(capacity_bytes));
    }
    for o in objects {
        o.validate()?;
    }
    let mut allocation = vec![0.0; objects.len()];
    // Candidates: objects whose bit-rate exceeds the path bandwidth.
    let mut order: Vec<usize> = (0..objects.len())
        .filter(|&i| objects[i].meta.bitrate_bps > objects[i].bandwidth_bps)
        .collect();
    // Sort by decreasing λ/b; zero-bandwidth objects sort first.
    order.sort_by(|&a, &b| {
        let ua = ratio(objects[a].arrival_rate, objects[a].bandwidth_bps);
        let ub = ratio(objects[b].arrival_rate, objects[b].bandwidth_bps);
        ub.partial_cmp(&ua).expect("ratios are never NaN")
    });
    let mut remaining = capacity_bytes;
    for i in order {
        if remaining <= 0.0 {
            break;
        }
        let o = &objects[i];
        let want = prefix_bytes_needed(o.meta.duration_secs, o.meta.bitrate_bps, o.bandwidth_bps);
        let grant = want.min(remaining);
        allocation[i] = grant;
        remaining -= grant;
    }
    Ok(allocation)
}

/// Expected average service delay (seconds per request) under a given
/// allocation, weighting each object's startup delay by its arrival rate —
/// the objective the optimal allocation minimises.
///
/// # Errors
///
/// Returns [`CacheError::LengthMismatch`] if `allocation` and `objects`
/// have different lengths.
pub fn average_service_delay(
    objects: &[OfflineObject],
    allocation: &[f64],
) -> Result<f64, CacheError> {
    if objects.len() != allocation.len() {
        return Err(CacheError::LengthMismatch(objects.len(), allocation.len()));
    }
    let total_rate: f64 = objects.iter().map(|o| o.arrival_rate).sum();
    if total_rate <= 0.0 {
        return Ok(0.0);
    }
    let weighted: f64 = objects
        .iter()
        .zip(allocation)
        .map(|(o, &x)| o.arrival_rate * o.meta.service_delay(o.bandwidth_bps, x))
        .sum();
    Ok(weighted / total_rate)
}

/// Greedy solution of the value-maximisation problem of Section 2.6.
///
/// Selects objects in decreasing value-density order
/// `λ_i·V_i / (T_i·r_i − T_i·b_i)` and caches the full immediate-service
/// prefix `[T_i·r_i − T_i·b_i]⁺` of each selected object while it fits.
/// Returns a boolean selection vector in input order.
///
/// # Errors
///
/// Same validation errors as [`optimal_partial_allocation`].
pub fn greedy_value_selection(
    objects: &[OfflineObject],
    capacity_bytes: f64,
) -> Result<Vec<bool>, CacheError> {
    if !capacity_bytes.is_finite() || capacity_bytes < 0.0 {
        return Err(CacheError::InvalidCapacity(capacity_bytes));
    }
    for o in objects {
        o.validate()?;
    }
    let mut selected = vec![false; objects.len()];
    let mut order: Vec<usize> = (0..objects.len())
        .filter(|&i| objects[i].meta.bitrate_bps > objects[i].bandwidth_bps)
        .collect();
    order.sort_by(|&a, &b| {
        let da = value_density(&objects[a]);
        let db = value_density(&objects[b]);
        db.partial_cmp(&da).expect("densities are never NaN")
    });
    let mut remaining = capacity_bytes;
    for i in order {
        let cost = immediate_service_cost(&objects[i]);
        if cost <= remaining {
            selected[i] = true;
            remaining -= cost;
        }
    }
    Ok(selected)
}

/// Exact 0/1 knapsack solution of the value-maximisation problem via dynamic
/// programming over a discretised capacity grid.
///
/// Intended for validating [`greedy_value_selection`] on small instances
/// (the DP runs in `O(n · resolution)` time and memory). `resolution` is the
/// number of capacity buckets; costs are rounded **up** to the next bucket,
/// so the returned selection never exceeds the true capacity.
///
/// # Errors
///
/// Same validation errors as [`greedy_value_selection`], plus
/// [`CacheError::InvalidInput`] when `resolution` is zero.
pub fn exact_value_selection(
    objects: &[OfflineObject],
    capacity_bytes: f64,
    resolution: usize,
) -> Result<Vec<bool>, CacheError> {
    if !capacity_bytes.is_finite() || capacity_bytes < 0.0 {
        return Err(CacheError::InvalidCapacity(capacity_bytes));
    }
    if resolution == 0 {
        return Err(CacheError::InvalidInput("resolution", 0.0));
    }
    for o in objects {
        o.validate()?;
    }
    let bucket = if capacity_bytes > 0.0 {
        capacity_bytes / resolution as f64
    } else {
        1.0
    };
    // Integer costs (rounded up) and gains per candidate object.
    let mut items: Vec<(usize, usize, f64)> = Vec::new(); // (index, cost_buckets, gain)
    for (i, o) in objects.iter().enumerate() {
        if o.meta.bitrate_bps <= o.bandwidth_bps {
            continue;
        }
        let cost = immediate_service_cost(o);
        let cost_buckets = (cost / bucket).ceil() as usize;
        let gain = o.arrival_rate * o.meta.value;
        if cost_buckets <= resolution && gain > 0.0 {
            items.push((i, cost_buckets.max(1), gain));
        }
    }
    // DP over capacity buckets.
    let mut best = vec![0.0f64; resolution + 1];
    let mut take = vec![vec![false; resolution + 1]; items.len()];
    for (item_idx, &(_, cost, gain)) in items.iter().enumerate() {
        for cap in (cost..=resolution).rev() {
            let candidate = best[cap - cost] + gain;
            if candidate > best[cap] {
                best[cap] = candidate;
                take[item_idx][cap] = true;
            }
        }
    }
    // Backtrack.
    let mut selected = vec![false; objects.len()];
    let mut cap = resolution;
    for item_idx in (0..items.len()).rev() {
        if take[item_idx][cap] {
            let (obj_idx, cost, _) = items[item_idx];
            selected[obj_idx] = true;
            cap -= cost;
        }
    }
    Ok(selected)
}

/// Total expected value rate `Σ λ_i·V_i` of the selected objects.
///
/// # Errors
///
/// Returns [`CacheError::LengthMismatch`] if the slices differ in length.
pub fn total_value(objects: &[OfflineObject], selected: &[bool]) -> Result<f64, CacheError> {
    if objects.len() != selected.len() {
        return Err(CacheError::LengthMismatch(objects.len(), selected.len()));
    }
    Ok(objects
        .iter()
        .zip(selected)
        .filter(|(_, &s)| s)
        .map(|(o, _)| o.arrival_rate * o.meta.value)
        .sum())
}

fn ratio(numerator: f64, denominator: f64) -> f64 {
    if denominator <= 0.0 {
        f64::INFINITY
    } else {
        numerator / denominator
    }
}

fn value_density(o: &OfflineObject) -> f64 {
    let cost = immediate_service_cost(o);
    if cost <= 0.0 {
        f64::INFINITY
    } else {
        o.arrival_rate * o.meta.value / cost
    }
}

fn immediate_service_cost(o: &OfflineObject) -> f64 {
    prefix_bytes_needed(o.meta.duration_secs, o.meta.bitrate_bps, o.bandwidth_bps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::object::ObjectKey;

    const R: f64 = 48_000.0;

    fn off(key: u64, duration: f64, rate: f64, bandwidth: f64, value: f64) -> OfflineObject {
        OfflineObject::new(
            ObjectMeta::new(ObjectKey::new(key), duration, R, value),
            rate,
            bandwidth,
        )
    }

    #[test]
    fn validation_errors() {
        let good = off(0, 100.0, 1.0, R / 2.0, 1.0);
        assert!(optimal_partial_allocation(&[good], -1.0).is_err());
        let bad_rate = OfflineObject {
            arrival_rate: -1.0,
            ..good
        };
        assert!(optimal_partial_allocation(&[bad_rate], 10.0).is_err());
        let bad_bw = OfflineObject {
            bandwidth_bps: f64::NAN,
            ..good
        };
        assert!(optimal_partial_allocation(&[bad_bw], 10.0).is_err());
        assert!(exact_value_selection(&[good], 10.0, 0).is_err());
        assert!(average_service_delay(&[good], &[]).is_err());
        assert!(total_value(&[good], &[]).is_err());
    }

    #[test]
    fn fast_objects_are_never_cached() {
        let objects = vec![
            off(0, 100.0, 10.0, 2.0 * R, 1.0),
            off(1, 100.0, 1.0, R, 1.0),
        ];
        let alloc = optimal_partial_allocation(&objects, 1e12).unwrap();
        assert_eq!(alloc, vec![0.0, 0.0]);
    }

    #[test]
    fn allocation_prefers_high_lambda_over_b() {
        // Object 0: λ=1, b=R/2 → λ/b small. Object 1: λ=5, b=R/4 → λ/b large.
        let objects = vec![
            off(0, 100.0, 1.0, R / 2.0, 1.0),
            off(1, 100.0, 5.0, R / 4.0, 1.0),
        ];
        // Capacity only fits one deficit: object 1 needs 0.75*size.
        let capacity = 0.75 * 100.0 * R;
        let alloc = optimal_partial_allocation(&objects, capacity).unwrap();
        assert_eq!(alloc[1], 0.75 * 100.0 * R);
        assert_eq!(alloc[0], 0.0);
    }

    #[test]
    fn marginal_object_gets_fractional_prefix() {
        let objects = vec![
            off(0, 100.0, 5.0, R / 4.0, 1.0),
            off(1, 100.0, 1.0, R / 2.0, 1.0),
        ];
        let deficit0 = 0.75 * 100.0 * R;
        let capacity = deficit0 + 1_000.0; // 1 KB left for object 1
        let alloc = optimal_partial_allocation(&objects, capacity).unwrap();
        assert_eq!(alloc[0], deficit0);
        assert!((alloc[1] - 1_000.0).abs() < 1e-6);
    }

    #[test]
    fn allocation_respects_capacity() {
        let objects: Vec<OfflineObject> = (0..50)
            .map(|i| off(i, 100.0 + i as f64, 1.0 + i as f64, R / 3.0, 1.0))
            .collect();
        let capacity = 5e6;
        let alloc = optimal_partial_allocation(&objects, capacity).unwrap();
        let total: f64 = alloc.iter().sum();
        assert!(total <= capacity + 1e-6);
    }

    #[test]
    fn optimal_allocation_beats_naive_allocations_on_delay() {
        let objects = vec![
            off(0, 100.0, 10.0, R / 4.0, 1.0),
            off(1, 100.0, 1.0, R / 2.0, 1.0),
            off(2, 100.0, 4.0, R / 3.0, 1.0),
            off(3, 200.0, 2.0, R / 5.0, 1.0),
        ];
        let capacity = 8e6;
        let optimal = optimal_partial_allocation(&objects, capacity).unwrap();
        let optimal_delay = average_service_delay(&objects, &optimal).unwrap();
        // Naive: split capacity equally.
        let equal: Vec<f64> = objects
            .iter()
            .map(|o| (capacity / objects.len() as f64).min(o.meta.size_bytes()))
            .collect();
        let equal_delay = average_service_delay(&objects, &equal).unwrap();
        assert!(optimal_delay <= equal_delay + 1e-9);
        // Caching nothing is worst.
        let nothing_delay = average_service_delay(&objects, &[0.0; 4]).unwrap();
        assert!(optimal_delay < nothing_delay);
    }

    #[test]
    fn zero_capacity_allocates_nothing() {
        let objects = vec![off(0, 100.0, 1.0, R / 2.0, 1.0)];
        let alloc = optimal_partial_allocation(&objects, 0.0).unwrap();
        assert_eq!(alloc, vec![0.0]);
    }

    #[test]
    fn greedy_value_selection_prefers_high_density() {
        // Object 0: high value, cheap to cache; object 1: low value, costly.
        let objects = vec![
            off(0, 50.0, 2.0, R / 2.0, 10.0),
            off(1, 500.0, 1.0, R / 2.0, 1.0),
            off(2, 100.0, 1.0, 2.0 * R, 10.0), // abundant bandwidth: never selected
        ];
        let capacity = 50.0 * R / 2.0 + 10.0;
        let selected = greedy_value_selection(&objects, capacity).unwrap();
        assert_eq!(selected, vec![true, false, false]);
        let v = total_value(&objects, &selected).unwrap();
        assert!((v - 20.0).abs() < 1e-12);
    }

    #[test]
    fn exact_dp_matches_or_beats_greedy_on_small_instances() {
        let objects = vec![
            off(0, 60.0, 3.0, R / 2.0, 4.0),
            off(1, 90.0, 1.0, R / 3.0, 9.0),
            off(2, 40.0, 2.0, R / 4.0, 2.0),
            off(3, 120.0, 1.0, R / 2.0, 7.0),
            off(4, 30.0, 5.0, R / 2.0, 1.0),
        ];
        let capacity = 4e6;
        let greedy = greedy_value_selection(&objects, capacity).unwrap();
        let exact = exact_value_selection(&objects, capacity, 4_000).unwrap();
        let greedy_value = total_value(&objects, &greedy).unwrap();
        let exact_value = total_value(&objects, &exact).unwrap();
        assert!(exact_value + 1e-9 >= greedy_value);
        // Exact selection must respect capacity.
        let used: f64 = objects
            .iter()
            .zip(&exact)
            .filter(|(_, &s)| s)
            .map(|(o, _)| {
                prefix_bytes_needed(o.meta.duration_secs, o.meta.bitrate_bps, o.bandwidth_bps)
            })
            .sum();
        assert!(used <= capacity + 1e-6);
    }

    #[test]
    fn exact_dp_on_zero_capacity_selects_nothing() {
        let objects = vec![off(0, 60.0, 3.0, R / 2.0, 4.0)];
        let exact = exact_value_selection(&objects, 0.0, 100).unwrap();
        assert_eq!(exact, vec![false]);
    }

    #[test]
    fn average_delay_zero_rate_is_zero() {
        let objects = vec![off(0, 100.0, 0.0, R / 2.0, 1.0)];
        assert_eq!(average_service_delay(&objects, &[0.0]).unwrap(), 0.0);
    }
}
