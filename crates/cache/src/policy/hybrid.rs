//! The conservative (over-provisioning) hybrid between PB and IB.

use crate::alloc::conservative_prefix_bytes;
use crate::object::ObjectMeta;
use crate::policy::traits::{safe_ratio, UtilityPolicy};

/// Partial bandwidth-based caching with a conservative bandwidth estimator
/// (**PB(e)** in the paper, Sections 2.5 and 4.3, Figure 9).
///
/// The policy under-estimates the measured bandwidth by a factor
/// `e ∈ [0, 1]` and caches a prefix of `(r − e·b)⁺ · T` bytes. This spans a
/// spectrum of algorithms:
///
/// * `e = 1` — exactly [`PartialBandwidth`](crate::policy::PartialBandwidth)
///   (cache the minimum prefix; optimal under constant bandwidth).
/// * `e = 0` — whole-object caching by `F/b`, i.e. the behaviour of
///   [`IntegralBandwidth`](crate::policy::IntegralBandwidth) without the
///   `r > b` admission filter.
/// * intermediate `e` — over-provisioned prefixes that tolerate bandwidth
///   variability (Figure 9 shows a moderate `e` minimises delay under
///   variable bandwidth).
///
/// ```
/// use sc_cache::policy::{HybridPartialBandwidth, UtilityPolicy};
/// use sc_cache::{ObjectKey, ObjectMeta};
///
/// let obj = ObjectMeta::new(ObjectKey::new(0), 100.0, 48_000.0, 0.0);
/// let b = 24_000.0;
/// let aggressive = HybridPartialBandwidth::new(1.0);
/// let conservative = HybridPartialBandwidth::new(0.5);
/// assert!(conservative.target_bytes(&obj, b) > aggressive.target_bytes(&obj, b));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HybridPartialBandwidth {
    estimator_e: f64,
}

impl HybridPartialBandwidth {
    /// Creates the hybrid policy with conservative factor `e`, clamped to
    /// `[0, 1]`.
    pub fn new(estimator_e: f64) -> Self {
        HybridPartialBandwidth {
            estimator_e: estimator_e.clamp(0.0, 1.0),
        }
    }

    /// The conservative factor `e`.
    pub fn estimator_e(&self) -> f64 {
        self.estimator_e
    }
}

impl Default for HybridPartialBandwidth {
    /// Defaults to `e = 1` (pure PB behaviour).
    fn default() -> Self {
        Self::new(1.0)
    }
}

impl UtilityPolicy for HybridPartialBandwidth {
    fn name(&self) -> String {
        format!("PB(e={:.2})", self.estimator_e)
    }

    fn utility(&self, _meta: &ObjectMeta, frequency: u64, bandwidth_bps: f64, _clock: u64) -> f64 {
        safe_ratio(frequency as f64, bandwidth_bps)
    }

    fn target_bytes(&self, meta: &ObjectMeta, bandwidth_bps: f64) -> f64 {
        conservative_prefix_bytes(
            meta.duration_secs,
            meta.bitrate_bps,
            bandwidth_bps,
            self.estimator_e,
        )
    }

    fn allows_partial_admission(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::object::ObjectKey;
    use crate::policy::partial::PartialBandwidth;

    fn obj() -> ObjectMeta {
        ObjectMeta::new(ObjectKey::new(4), 100.0, 48_000.0, 0.0)
    }

    #[test]
    fn e_one_matches_pb() {
        let hybrid = HybridPartialBandwidth::new(1.0);
        let pb = PartialBandwidth::new();
        for b in [0.0, 10_000.0, 24_000.0, 48_000.0, 96_000.0] {
            assert_eq!(hybrid.target_bytes(&obj(), b), pb.target_bytes(&obj(), b));
        }
    }

    #[test]
    fn e_zero_caches_whole_objects() {
        let hybrid = HybridPartialBandwidth::new(0.0);
        for b in [10_000.0, 48_000.0, 1e9] {
            assert_eq!(hybrid.target_bytes(&obj(), b), obj().size_bytes());
        }
    }

    #[test]
    fn target_decreases_with_e() {
        let b = 24_000.0;
        let mut prev = f64::INFINITY;
        for e in [0.0, 0.25, 0.5, 0.75, 1.0] {
            let t = HybridPartialBandwidth::new(e).target_bytes(&obj(), b);
            assert!(t <= prev);
            prev = t;
        }
    }

    #[test]
    fn e_is_clamped_and_named() {
        assert_eq!(HybridPartialBandwidth::new(3.0).estimator_e(), 1.0);
        assert_eq!(HybridPartialBandwidth::new(-1.0).estimator_e(), 0.0);
        assert_eq!(HybridPartialBandwidth::new(0.5).name(), "PB(e=0.50)");
        assert_eq!(HybridPartialBandwidth::default().estimator_e(), 1.0);
    }

    #[test]
    fn utility_is_bandwidth_aware() {
        let h = HybridPartialBandwidth::new(0.5);
        assert!(h.utility(&obj(), 4, 10_000.0, 0) > h.utility(&obj(), 4, 40_000.0, 0));
        assert!(h.allows_partial_admission());
    }
}
