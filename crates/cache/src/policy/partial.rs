//! Partial bandwidth-based caching (PB), the paper's headline policy.

use crate::alloc::prefix_bytes_needed;
use crate::object::ObjectMeta;
use crate::policy::traits::{safe_ratio, UtilityPolicy};

/// Partial Bandwidth-based caching (**PB** in the paper, Sections 2.3–2.4).
///
/// The online approximation of the optimal fractional-knapsack allocation:
/// rank objects by `F_i / b_i` and cache a **prefix** of exactly
/// `(r_i − b_i)⁺ · T_i` bytes — just enough for the cache and the origin
/// server to jointly sustain immediate, continuous playout. Objects whose
/// bit-rate does not exceed the path bandwidth are not cached at all.
///
/// Under the constant-bandwidth assumption PB minimises average service
/// delay and maximises stream quality for a given cache size (Figure 5);
/// under very high bandwidth variability the fixed prefix may prove too
/// small, which is what the conservative
/// [`HybridPartialBandwidth`](crate::policy::HybridPartialBandwidth) variant
/// addresses.
///
/// ```
/// use sc_cache::policy::{PartialBandwidth, UtilityPolicy};
/// use sc_cache::{ObjectKey, ObjectMeta};
///
/// let policy = PartialBandwidth::new();
/// let obj = ObjectMeta::new(ObjectKey::new(0), 100.0, 48_000.0, 0.0);
/// // Path delivers half the bit-rate: cache half the object.
/// assert_eq!(policy.target_bytes(&obj, 24_000.0), obj.size_bytes() / 2.0);
/// assert!(policy.allows_partial_admission());
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PartialBandwidth;

impl PartialBandwidth {
    /// Creates the PB policy.
    pub fn new() -> Self {
        PartialBandwidth
    }
}

impl UtilityPolicy for PartialBandwidth {
    fn name(&self) -> String {
        "PB".to_string()
    }

    fn utility(&self, _meta: &ObjectMeta, frequency: u64, bandwidth_bps: f64, _clock: u64) -> f64 {
        safe_ratio(frequency as f64, bandwidth_bps)
    }

    fn target_bytes(&self, meta: &ObjectMeta, bandwidth_bps: f64) -> f64 {
        prefix_bytes_needed(meta.duration_secs, meta.bitrate_bps, bandwidth_bps)
    }

    fn allows_partial_admission(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::object::ObjectKey;

    fn obj() -> ObjectMeta {
        ObjectMeta::new(ObjectKey::new(3), 100.0, 48_000.0, 0.0)
    }

    #[test]
    fn target_is_the_bandwidth_deficit() {
        let p = PartialBandwidth::new();
        assert_eq!(p.target_bytes(&obj(), 0.0), obj().size_bytes());
        assert_eq!(p.target_bytes(&obj(), 12_000.0), 100.0 * 36_000.0);
        assert_eq!(p.target_bytes(&obj(), 48_000.0), 0.0);
        assert_eq!(p.target_bytes(&obj(), 96_000.0), 0.0);
    }

    #[test]
    fn utility_matches_ib_ranking() {
        let p = PartialBandwidth::new();
        assert_eq!(p.utility(&obj(), 6, 12_000.0, 0), 6.0 / 12_000.0);
        assert_eq!(p.utility(&obj(), 1, 0.0, 0), f64::INFINITY);
    }

    #[test]
    fn partial_admission_allowed() {
        let p = PartialBandwidth::new();
        assert!(p.allows_partial_admission());
        assert_eq!(p.name(), "PB");
    }
}
