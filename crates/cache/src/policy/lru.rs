//! Least-Recently-Used caching over whole objects.

use crate::object::ObjectMeta;
use crate::policy::traits::UtilityPolicy;

/// Least-Recently-Used caching.
///
/// The classic recency-based baseline mentioned in Section 3.3 of the paper:
/// it caches whole objects and ranks them by how recently they were
/// accessed, ignoring both popularity counts and network bandwidth. Included
/// for baseline comparisons and ablations.
///
/// The utility is the logical access clock supplied by the engine, so a
/// larger utility means "accessed more recently".
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Lru;

impl Lru {
    /// Creates the LRU policy.
    pub fn new() -> Self {
        Lru
    }
}

impl UtilityPolicy for Lru {
    fn name(&self) -> String {
        "LRU".to_string()
    }

    fn utility(&self, _meta: &ObjectMeta, _frequency: u64, _bandwidth_bps: f64, clock: u64) -> f64 {
        clock as f64
    }

    fn target_bytes(&self, meta: &ObjectMeta, _bandwidth_bps: f64) -> f64 {
        meta.size_bytes()
    }

    fn allows_partial_admission(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::object::ObjectKey;

    #[test]
    fn recency_drives_utility() {
        let p = Lru::new();
        let obj = ObjectMeta::new(ObjectKey::new(1), 10.0, 1_000.0, 0.0);
        assert!(p.utility(&obj, 100, 1.0, 5) < p.utility(&obj, 1, 1.0, 6));
        assert_eq!(p.target_bytes(&obj, 0.0), obj.size_bytes());
        assert!(!p.allows_partial_admission());
        assert_eq!(p.name(), "LRU");
    }
}
