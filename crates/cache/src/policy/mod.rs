//! Cache-management policies.
//!
//! Every replacement algorithm evaluated in the paper is expressed as a
//! [`UtilityPolicy`]: a utility function (what to keep) plus a target
//! allocation (how much of each object to keep). The
//! [`CacheEngine`](crate::CacheEngine) provides the shared machinery —
//! frequency tracking, the utility heap and the eviction loop.

mod bandwidth;
mod frequency;
mod hybrid;
mod lru;
mod partial;
mod traits;
mod value;

pub use bandwidth::IntegralBandwidth;
pub use frequency::{IntegralFrequency, Lfu};
pub use hybrid::HybridPartialBandwidth;
pub use lru::Lru;
pub use partial::PartialBandwidth;
pub use traits::UtilityPolicy;
pub use value::{IntegralBandwidthValue, PartialBandwidthValue};

/// Enumeration of all built-in policies, convenient for configuration files
/// and experiment sweeps.
///
/// ```
/// use sc_cache::policy::PolicyKind;
///
/// let policy = PolicyKind::PartialBandwidth.build();
/// assert_eq!(policy.name(), "PB");
/// assert_eq!(PolicyKind::all_paper_policies().len(), 6);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PolicyKind {
    /// Integral frequency-based caching (IF).
    IntegralFrequency,
    /// Integral bandwidth-based caching (IB).
    IntegralBandwidth,
    /// Partial bandwidth-based caching (PB).
    PartialBandwidth,
    /// Partial bandwidth-based caching with conservative estimator `e`.
    HybridPartialBandwidth {
        /// The conservative bandwidth scaling factor `e ∈ [0, 1]`.
        e: f64,
    },
    /// Partial bandwidth-value-based caching (PB-V) with estimator `e`
    /// (`e = 1` is the paper's exact PB-V).
    PartialBandwidthValue {
        /// The conservative bandwidth scaling factor `e ∈ [0, 1]`.
        e: f64,
    },
    /// Integral bandwidth-value-based caching (IB-V).
    IntegralBandwidthValue,
    /// Least-recently-used whole-object caching.
    Lru,
    /// Least-frequently-used whole-object caching.
    Lfu,
}

impl PolicyKind {
    /// Instantiates the policy.
    pub fn build(&self) -> Box<dyn UtilityPolicy + Send + Sync> {
        match *self {
            PolicyKind::IntegralFrequency => Box::new(IntegralFrequency::new()),
            PolicyKind::IntegralBandwidth => Box::new(IntegralBandwidth::new()),
            PolicyKind::PartialBandwidth => Box::new(PartialBandwidth::new()),
            PolicyKind::HybridPartialBandwidth { e } => Box::new(HybridPartialBandwidth::new(e)),
            PolicyKind::PartialBandwidthValue { e } => {
                Box::new(PartialBandwidthValue::with_estimator(e))
            }
            PolicyKind::IntegralBandwidthValue => Box::new(IntegralBandwidthValue::new()),
            PolicyKind::Lru => Box::new(Lru::new()),
            PolicyKind::Lfu => Box::new(Lfu::new()),
        }
    }

    /// Short label used in experiment reports ("IF", "PB", "PB(e=0.50)", …).
    pub fn label(&self) -> String {
        self.build().name()
    }

    /// The policies compared across the paper's figures: IF, IB, PB, PB(e),
    /// PB-V and IB-V.
    pub fn all_paper_policies() -> Vec<PolicyKind> {
        vec![
            PolicyKind::IntegralFrequency,
            PolicyKind::IntegralBandwidth,
            PolicyKind::PartialBandwidth,
            PolicyKind::HybridPartialBandwidth { e: 0.5 },
            PolicyKind::PartialBandwidthValue { e: 1.0 },
            PolicyKind::IntegralBandwidthValue,
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_produces_matching_names() {
        assert_eq!(PolicyKind::IntegralFrequency.label(), "IF");
        assert_eq!(PolicyKind::IntegralBandwidth.label(), "IB");
        assert_eq!(PolicyKind::PartialBandwidth.label(), "PB");
        assert_eq!(
            PolicyKind::HybridPartialBandwidth { e: 0.25 }.label(),
            "PB(e=0.25)"
        );
        assert_eq!(PolicyKind::PartialBandwidthValue { e: 1.0 }.label(), "PB-V");
        assert_eq!(PolicyKind::IntegralBandwidthValue.label(), "IB-V");
        assert_eq!(PolicyKind::Lru.label(), "LRU");
        assert_eq!(PolicyKind::Lfu.label(), "LFU");
    }

    #[test]
    fn boxed_policies_are_usable_through_the_trait() {
        use crate::object::{ObjectKey, ObjectMeta};
        let meta = ObjectMeta::new(ObjectKey::new(1), 100.0, 48_000.0, 2.0);
        for kind in PolicyKind::all_paper_policies() {
            let policy = kind.build();
            let u = policy.utility(&meta, 2, 24_000.0, 1);
            assert!(!u.is_nan());
            let t = policy.target_bytes(&meta, 24_000.0);
            assert!(t >= 0.0);
        }
    }
}
