//! Value-based caching policies (Section 2.6, Figures 10–12).

use crate::alloc::conservative_prefix_bytes;
use crate::object::ObjectMeta;
use crate::policy::traits::{safe_ratio, UtilityPolicy};

/// Partial Bandwidth-Value-based caching (**PB-V** in the paper).
///
/// The objective is to maximise the total value `Σ λ_i·V_i` of objects that
/// can be played **immediately** (zero startup delay). Providing immediate
/// service for object `i` requires caching `[T_i·r_i − T_i·b_i]⁺` bytes, so
/// the greedy knapsack ranks objects by value density
/// `λ_i·V_i / (T_i·r_i − T_i·b_i)` and caches exactly that prefix.
///
/// A conservative factor `e` (as in
/// [`HybridPartialBandwidth`](crate::policy::HybridPartialBandwidth))
/// enlarges the prefix to tolerate bandwidth variability; Figure 12 of the
/// paper shows `e ≈ 0.5` maximises total added value under realistic
/// variability.
///
/// Admission is all-or-nothing: a prefix smaller than the requirement does
/// not enable immediate playout and therefore contributes no value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PartialBandwidthValue {
    estimator_e: f64,
}

impl PartialBandwidthValue {
    /// Creates the PB-V policy with the paper's exact prefix size (`e = 1`).
    pub fn new() -> Self {
        Self::with_estimator(1.0)
    }

    /// Creates the PB-V policy with conservative factor `e` (clamped to
    /// `[0, 1]`).
    pub fn with_estimator(estimator_e: f64) -> Self {
        PartialBandwidthValue {
            estimator_e: estimator_e.clamp(0.0, 1.0),
        }
    }

    /// The conservative factor `e`.
    pub fn estimator_e(&self) -> f64 {
        self.estimator_e
    }
}

impl Default for PartialBandwidthValue {
    fn default() -> Self {
        Self::new()
    }
}

impl UtilityPolicy for PartialBandwidthValue {
    fn name(&self) -> String {
        if (self.estimator_e - 1.0).abs() < f64::EPSILON {
            "PB-V".to_string()
        } else {
            format!("PB-V(e={:.2})", self.estimator_e)
        }
    }

    fn utility(&self, meta: &ObjectMeta, frequency: u64, bandwidth_bps: f64, _clock: u64) -> f64 {
        let cost = self.target_bytes(meta, bandwidth_bps);
        if cost <= 0.0 {
            // The object is never cached (abundant bandwidth): its utility
            // is irrelevant, but must not read as "infinitely valuable".
            0.0
        } else {
            safe_ratio(frequency as f64 * meta.value, cost)
        }
    }

    fn target_bytes(&self, meta: &ObjectMeta, bandwidth_bps: f64) -> f64 {
        if meta.bandwidth_sufficient(bandwidth_bps) {
            // The origin alone can serve immediately; caching adds no value.
            0.0
        } else {
            conservative_prefix_bytes(
                meta.duration_secs,
                meta.bitrate_bps,
                bandwidth_bps,
                self.estimator_e,
            )
        }
    }

    fn allows_partial_admission(&self) -> bool {
        false
    }
}

/// Integral Bandwidth-Value-based caching (**IB-V** in the paper).
///
/// Caches whole objects, ranked by `λ_i·V_i / (T_i·r_i·b_i)` — preferring
/// objects with lower bandwidth, higher value and smaller size. Like IB,
/// it needs no joint cache/origin delivery and is robust to bandwidth
/// variability; Figures 10–11 show it strikes a balance between IF and PB-V.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IntegralBandwidthValue;

impl IntegralBandwidthValue {
    /// Creates the IB-V policy.
    pub fn new() -> Self {
        IntegralBandwidthValue
    }
}

impl UtilityPolicy for IntegralBandwidthValue {
    fn name(&self) -> String {
        "IB-V".to_string()
    }

    fn utility(&self, meta: &ObjectMeta, frequency: u64, bandwidth_bps: f64, _clock: u64) -> f64 {
        safe_ratio(
            frequency as f64 * meta.value,
            meta.size_bytes() * bandwidth_bps,
        )
    }

    fn target_bytes(&self, meta: &ObjectMeta, bandwidth_bps: f64) -> f64 {
        if meta.bandwidth_sufficient(bandwidth_bps) {
            0.0
        } else {
            meta.size_bytes()
        }
    }

    fn allows_partial_admission(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::object::ObjectKey;

    fn obj(value: f64) -> ObjectMeta {
        ObjectMeta::new(ObjectKey::new(5), 100.0, 48_000.0, value)
    }

    #[test]
    fn pbv_target_is_immediate_service_prefix() {
        let p = PartialBandwidthValue::new();
        assert_eq!(p.target_bytes(&obj(5.0), 24_000.0), 100.0 * 24_000.0);
        assert_eq!(p.target_bytes(&obj(5.0), 48_000.0), 0.0);
        assert_eq!(p.target_bytes(&obj(5.0), 1e9), 0.0);
    }

    #[test]
    fn pbv_utility_is_value_density() {
        let p = PartialBandwidthValue::new();
        let u = p.utility(&obj(8.0), 3, 24_000.0, 0);
        assert!((u - 3.0 * 8.0 / (100.0 * 24_000.0)).abs() < 1e-15);
        // Higher value, same cost: higher utility.
        assert!(p.utility(&obj(10.0), 3, 24_000.0, 0) > p.utility(&obj(1.0), 3, 24_000.0, 0));
        // No cost (abundant bandwidth): utility zero — never cached anyway.
        assert_eq!(p.utility(&obj(10.0), 3, 48_000.0, 0), 0.0);
    }

    #[test]
    fn pbv_estimator_grows_prefix() {
        let exact = PartialBandwidthValue::new();
        let conservative = PartialBandwidthValue::with_estimator(0.5);
        assert!(
            conservative.target_bytes(&obj(5.0), 24_000.0)
                > exact.target_bytes(&obj(5.0), 24_000.0)
        );
        assert_eq!(conservative.name(), "PB-V(e=0.50)");
        assert_eq!(exact.name(), "PB-V");
        assert_eq!(
            PartialBandwidthValue::with_estimator(9.0).estimator_e(),
            1.0
        );
    }

    #[test]
    fn pbv_is_all_or_nothing() {
        assert!(!PartialBandwidthValue::new().allows_partial_admission());
    }

    #[test]
    fn ibv_prefers_low_bandwidth_high_value_small_objects() {
        let p = IntegralBandwidthValue::new();
        let small = ObjectMeta::new(ObjectKey::new(1), 50.0, 48_000.0, 5.0);
        let large = ObjectMeta::new(ObjectKey::new(2), 500.0, 48_000.0, 5.0);
        assert!(p.utility(&small, 2, 20_000.0, 0) > p.utility(&large, 2, 20_000.0, 0));
        assert!(p.utility(&small, 2, 10_000.0, 0) > p.utility(&small, 2, 20_000.0, 0));
        assert!(p.utility(&obj(9.0), 2, 20_000.0, 0) > p.utility(&obj(1.0), 2, 20_000.0, 0));
        assert_eq!(p.utility(&obj(9.0), 2, 0.0, 0), f64::INFINITY);
    }

    #[test]
    fn ibv_targets_whole_objects_behind_slow_paths() {
        let p = IntegralBandwidthValue::new();
        assert_eq!(p.target_bytes(&obj(5.0), 24_000.0), obj(5.0).size_bytes());
        assert_eq!(p.target_bytes(&obj(5.0), 48_000.0), 0.0);
        assert!(!p.allows_partial_admission());
        assert_eq!(p.name(), "IB-V");
    }
}
