//! Integral bandwidth-based caching (IB).

use crate::object::ObjectMeta;
use crate::policy::traits::{safe_ratio, UtilityPolicy};

/// Integral Bandwidth-based caching (**IB** in the paper, Section 2.5).
///
/// Ranks objects by `F_i / b_i` — frequently requested objects behind slow
/// paths are the most valuable — but caches **whole objects only**. This is
/// the most conservative variant: it needs no coordination between cache and
/// origin, and it is the most robust to bandwidth variability (Figure 7),
/// at the cost of fitting fewer objects in the cache.
///
/// Objects whose bit-rate does not exceed the path bandwidth (`r ≤ b`) are
/// never cached.
///
/// ```
/// use sc_cache::policy::{IntegralBandwidth, UtilityPolicy};
/// use sc_cache::{ObjectKey, ObjectMeta};
///
/// let policy = IntegralBandwidth::new();
/// let obj = ObjectMeta::new(ObjectKey::new(0), 100.0, 48_000.0, 0.0);
/// // Slow path: cache the whole object.
/// assert_eq!(policy.target_bytes(&obj, 10_000.0), obj.size_bytes());
/// // Fast path: do not cache at all.
/// assert_eq!(policy.target_bytes(&obj, 64_000.0), 0.0);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IntegralBandwidth;

impl IntegralBandwidth {
    /// Creates the IB policy.
    pub fn new() -> Self {
        IntegralBandwidth
    }
}

impl UtilityPolicy for IntegralBandwidth {
    fn name(&self) -> String {
        "IB".to_string()
    }

    fn utility(&self, _meta: &ObjectMeta, frequency: u64, bandwidth_bps: f64, _clock: u64) -> f64 {
        safe_ratio(frequency as f64, bandwidth_bps)
    }

    fn target_bytes(&self, meta: &ObjectMeta, bandwidth_bps: f64) -> f64 {
        if meta.bandwidth_sufficient(bandwidth_bps) {
            0.0
        } else {
            meta.size_bytes()
        }
    }

    fn allows_partial_admission(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::object::ObjectKey;

    fn obj() -> ObjectMeta {
        ObjectMeta::new(ObjectKey::new(2), 100.0, 48_000.0, 0.0)
    }

    #[test]
    fn utility_prefers_slow_paths() {
        let p = IntegralBandwidth::new();
        let slow = p.utility(&obj(), 5, 10_000.0, 0);
        let fast = p.utility(&obj(), 5, 100_000.0, 0);
        assert!(slow > fast);
    }

    #[test]
    fn utility_scales_with_frequency() {
        let p = IntegralBandwidth::new();
        assert!(p.utility(&obj(), 10, 10_000.0, 0) > p.utility(&obj(), 1, 10_000.0, 0));
    }

    #[test]
    fn zero_bandwidth_is_infinitely_valuable() {
        let p = IntegralBandwidth::new();
        assert_eq!(p.utility(&obj(), 1, 0.0, 0), f64::INFINITY);
        assert_eq!(p.target_bytes(&obj(), 0.0), obj().size_bytes());
    }

    #[test]
    fn sufficient_bandwidth_means_no_caching() {
        let p = IntegralBandwidth::new();
        assert_eq!(p.target_bytes(&obj(), 48_000.0), 0.0);
        assert_eq!(p.target_bytes(&obj(), 1e9), 0.0);
        assert_eq!(p.target_bytes(&obj(), 47_999.0), obj().size_bytes());
    }

    #[test]
    fn integral_admission() {
        let p = IntegralBandwidth::new();
        assert!(!p.allows_partial_admission());
        assert_eq!(p.name(), "IB");
    }
}
