//! The utility-policy abstraction shared by all replacement algorithms.

use crate::object::ObjectMeta;
use std::fmt;

/// A cache-management policy expressed as a utility function plus a target
/// allocation size.
///
/// Every algorithm evaluated in the paper fits this shape:
///
/// | Policy | Utility (keep the highest)          | Target bytes                  |
/// |--------|-------------------------------------|-------------------------------|
/// | IF     | `F`                                 | whole object                  |
/// | IB     | `F / b`                             | whole object if `r > b`       |
/// | PB     | `F / b`                             | `(r − b)⁺ · T`                |
/// | PB(e)  | `F / b`                             | `(r − e·b)⁺ · T`              |
/// | PB-V   | `F·V / ((r − e·b)⁺ · T)`            | `(r − e·b)⁺ · T`              |
/// | IB-V   | `F·V / (T · r · b)`                 | whole object if `r > b`       |
/// | LRU    | logical access clock                | whole object                  |
/// | LFU    | `F`                                 | whole object                  |
///
/// where `F` is the observed request count, `b` the estimated bandwidth to
/// the origin, `r` the bit-rate, `T` the duration and `V` the value.
///
/// The [`CacheEngine`](crate::CacheEngine) drives the policy: it tracks
/// frequencies, keeps cached objects in a utility heap, and evicts the
/// lowest-utility entries to make room for higher-utility ones.
pub trait UtilityPolicy: fmt::Debug {
    /// Short human-readable name ("PB", "IB", …) used in reports.
    fn name(&self) -> String;

    /// Utility of the object: the replacement algorithm keeps the objects
    /// with the highest utility. Must never return NaN.
    ///
    /// `frequency` is the number of requests observed so far (≥ 1 at call
    /// time), `bandwidth_bps` the current estimate of the bandwidth to the
    /// origin server, and `clock` a logical access counter (used by
    /// recency-based policies).
    fn utility(&self, meta: &ObjectMeta, frequency: u64, bandwidth_bps: f64, clock: u64) -> f64;

    /// How many bytes of the object the policy wants cached, given the
    /// current bandwidth estimate. Returning 0 means "do not cache".
    ///
    /// The engine clamps the result to `[0, size_bytes]`.
    fn target_bytes(&self, meta: &ObjectMeta, bandwidth_bps: f64) -> f64;

    /// Whether the engine may admit fewer bytes than
    /// [`target_bytes`](Self::target_bytes) when space is tight. Partial
    /// policies return `true`; integral (whole-object) policies return
    /// `false` so that admission is all-or-nothing.
    fn allows_partial_admission(&self) -> bool;
}

impl<P: UtilityPolicy + ?Sized> UtilityPolicy for Box<P> {
    fn name(&self) -> String {
        (**self).name()
    }

    fn utility(&self, meta: &ObjectMeta, frequency: u64, bandwidth_bps: f64, clock: u64) -> f64 {
        (**self).utility(meta, frequency, bandwidth_bps, clock)
    }

    fn target_bytes(&self, meta: &ObjectMeta, bandwidth_bps: f64) -> f64 {
        (**self).target_bytes(meta, bandwidth_bps)
    }

    fn allows_partial_admission(&self) -> bool {
        (**self).allows_partial_admission()
    }
}

/// Divides `numerator` by `denominator`, mapping a zero or negative
/// denominator to `f64::INFINITY` (an object behind a zero-bandwidth path is
/// infinitely valuable to cache) and guarding against NaN.
pub(crate) fn safe_ratio(numerator: f64, denominator: f64) -> f64 {
    if numerator <= 0.0 {
        return 0.0;
    }
    if denominator <= 0.0 {
        return f64::INFINITY;
    }
    numerator / denominator
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn safe_ratio_handles_edges() {
        assert_eq!(safe_ratio(1.0, 2.0), 0.5);
        assert_eq!(safe_ratio(1.0, 0.0), f64::INFINITY);
        assert_eq!(safe_ratio(1.0, -1.0), f64::INFINITY);
        assert_eq!(safe_ratio(0.0, 0.0), 0.0);
        assert_eq!(safe_ratio(-1.0, 0.0), 0.0);
        assert!(!safe_ratio(0.0, 0.0).is_nan());
    }
}
