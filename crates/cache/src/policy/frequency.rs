//! Frequency-based integral caching (IF) and LFU.

use crate::object::ObjectMeta;
use crate::policy::traits::UtilityPolicy;

/// Integral Frequency-based caching (**IF** in the paper).
///
/// Caches whole objects, ranked purely by request frequency; it is
/// network-oblivious and serves as the classic baseline in Figures 5, 7, 8,
/// 10 and 11. Functionally this is an LFU policy over whole streaming
/// objects.
///
/// ```
/// use sc_cache::policy::{IntegralFrequency, UtilityPolicy};
/// use sc_cache::{ObjectKey, ObjectMeta};
///
/// let policy = IntegralFrequency::new();
/// let obj = ObjectMeta::new(ObjectKey::new(0), 100.0, 1_000.0, 0.0);
/// // Frequency drives utility; bandwidth is ignored.
/// assert_eq!(policy.utility(&obj, 7, 1e9, 0), 7.0);
/// assert_eq!(policy.target_bytes(&obj, 1e9), obj.size_bytes());
/// assert!(!policy.allows_partial_admission());
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IntegralFrequency;

impl IntegralFrequency {
    /// Creates the IF policy.
    pub fn new() -> Self {
        IntegralFrequency
    }
}

impl UtilityPolicy for IntegralFrequency {
    fn name(&self) -> String {
        "IF".to_string()
    }

    fn utility(&self, _meta: &ObjectMeta, frequency: u64, _bandwidth_bps: f64, _clock: u64) -> f64 {
        frequency as f64
    }

    fn target_bytes(&self, meta: &ObjectMeta, _bandwidth_bps: f64) -> f64 {
        meta.size_bytes()
    }

    fn allows_partial_admission(&self) -> bool {
        false
    }
}

/// Least-Frequently-Used caching over whole objects.
///
/// Identical ranking to [`IntegralFrequency`]; provided under its
/// conventional name for the baseline comparisons of Section 3.3 (the paper
/// groups LFU/LRU as algorithms that "cache objects based on their access
/// frequency only, not on the network bandwidth").
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Lfu;

impl Lfu {
    /// Creates the LFU policy.
    pub fn new() -> Self {
        Lfu
    }
}

impl UtilityPolicy for Lfu {
    fn name(&self) -> String {
        "LFU".to_string()
    }

    fn utility(&self, _meta: &ObjectMeta, frequency: u64, _bandwidth_bps: f64, _clock: u64) -> f64 {
        frequency as f64
    }

    fn target_bytes(&self, meta: &ObjectMeta, _bandwidth_bps: f64) -> f64 {
        meta.size_bytes()
    }

    fn allows_partial_admission(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::object::ObjectKey;

    fn obj() -> ObjectMeta {
        ObjectMeta::new(ObjectKey::new(1), 200.0, 48_000.0, 3.0)
    }

    #[test]
    fn if_ignores_bandwidth() {
        let p = IntegralFrequency::new();
        assert_eq!(p.utility(&obj(), 3, 10.0, 0), p.utility(&obj(), 3, 1e9, 5));
        assert_eq!(p.target_bytes(&obj(), 0.0), obj().size_bytes());
        assert_eq!(p.target_bytes(&obj(), 1e12), obj().size_bytes());
        assert_eq!(p.name(), "IF");
    }

    #[test]
    fn utility_increases_with_frequency() {
        let p = IntegralFrequency::new();
        assert!(p.utility(&obj(), 10, 1.0, 0) > p.utility(&obj(), 2, 1.0, 0));
    }

    #[test]
    fn lfu_matches_if_ranking() {
        let p = Lfu::new();
        let q = IntegralFrequency::new();
        assert_eq!(
            p.utility(&obj(), 4, 100.0, 9),
            q.utility(&obj(), 4, 100.0, 9)
        );
        assert_eq!(p.name(), "LFU");
        assert!(!p.allows_partial_admission());
    }
}
