//! A hand-rolled FxHash-style hasher for the cache's key→slot map.
//!
//! The engine's steady-state hot path is slot-addressed and performs no
//! hashing at all; the only remaining hash is the thin [`ObjectKey`]→slot
//! interning map used by callers without dense indices (the proxy, ad-hoc
//! tests). `std`'s default SipHash is DoS-resistant but costs tens of
//! nanoseconds per `u64`; cache keys are either dense indices or already
//! hashed URL digests, so the rustc-style Fx multiply-rotate mix is the
//! right trade. Implemented locally because the build environment has no
//! crates.io access (see `shims/`).
//!
//! [`ObjectKey`]: crate::ObjectKey

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// The Fx multiplier (the golden-ratio constant used by rustc's FxHasher).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// A fast, non-cryptographic hasher: one rotate, one xor and one multiply
/// per 8-byte word.
///
/// Not DoS-resistant — only use it for keys an attacker does not control,
/// or where collisions are merely a slowdown (as in the cache's key→slot
/// interning map).
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            self.add(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add(n);
    }

    #[inline]
    fn write_u128(&mut self, n: u128) {
        self.add(n as u64);
        self.add((n >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add(n as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// Hashes a single `u64` with the Fx mix — the shard-routing primitive
/// used by [`ShardedEngine`](crate::ShardedEngine) (`hash(key) % shards`),
/// exposed so tests and external routers can reproduce the placement.
///
/// ```
/// use sc_cache::fx::hash_u64;
/// assert_eq!(hash_u64(42), hash_u64(42));
/// assert_ne!(hash_u64(42), hash_u64(43));
/// ```
#[inline]
pub fn hash_u64(value: u64) -> u64 {
    let mut hasher = FxHasher::default();
    hasher.write_u64(value);
    hasher.finish()
}

/// [`BuildHasher`](std::hash::BuildHasher) for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A [`HashMap`] keyed by the Fx mix instead of SipHash.
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A [`HashSet`] keyed by the Fx mix instead of SipHash.
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::Hash;

    fn hash_of<T: Hash>(value: &T) -> u64 {
        let mut hasher = FxHasher::default();
        value.hash(&mut hasher);
        hasher.finish()
    }

    #[test]
    fn deterministic_and_discriminating() {
        assert_eq!(hash_of(&42u64), hash_of(&42u64));
        assert_ne!(hash_of(&42u64), hash_of(&43u64));
        assert_ne!(hash_of(&0u64), hash_of(&1u64));
        // Byte-stream and word writes agree with themselves across calls.
        assert_eq!(hash_of(&"streaming"), hash_of(&"streaming"));
        assert_ne!(hash_of(&"streaming"), hash_of(&"caching"));
    }

    #[test]
    fn zero_is_not_a_fixed_point_for_nonzero_input() {
        // A multiply-only hash maps 0 to 0; the rotate/xor mix must still
        // spread small keys across the space.
        let h0 = hash_of(&0u64);
        let h1 = hash_of(&1u64);
        assert_ne!(h0 >> 56, h1 >> 56, "high bits must differ for 0 vs 1");
    }

    #[test]
    fn map_and_set_work_with_u64_keys() {
        let mut map: FxHashMap<u64, u32> = FxHashMap::default();
        for i in 0..1_000u64 {
            map.insert(i, (i * 2) as u32);
        }
        assert_eq!(map.len(), 1_000);
        for i in 0..1_000u64 {
            assert_eq!(map.get(&i), Some(&((i * 2) as u32)));
        }
        let set: FxHashSet<u64> = (0..100).collect();
        assert!(set.contains(&99) && !set.contains(&100));
    }

    #[test]
    fn odd_length_byte_streams_hash_consistently() {
        let mut a = FxHasher::default();
        a.write(&[1, 2, 3, 4, 5, 6, 7, 8, 9]);
        let mut b = FxHasher::default();
        b.write(&[1, 2, 3, 4, 5, 6, 7, 8, 9]);
        assert_eq!(a.finish(), b.finish());
        let mut c = FxHasher::default();
        c.write(&[1, 2, 3, 4, 5, 6, 7, 8, 10]);
        assert_ne!(a.finish(), c.finish());
    }
}
