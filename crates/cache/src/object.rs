//! Object metadata consumed by the caching algorithms.

use std::fmt;

/// Key identifying a streaming media object at the cache.
///
/// Keys are opaque to the caching algorithms; the simulator uses the dense
/// catalog index, while the proxy prototype derives keys from URLs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ObjectKey(pub u64);

impl ObjectKey {
    /// Creates a key from a raw integer.
    #[inline]
    pub fn new(raw: u64) -> Self {
        ObjectKey(raw)
    }

    /// The raw integer value.
    #[inline]
    pub fn as_u64(self) -> u64 {
        self.0
    }
}

impl fmt::Display for ObjectKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "key#{}", self.0)
    }
}

impl From<u64> for ObjectKey {
    fn from(raw: u64) -> Self {
        ObjectKey(raw)
    }
}

/// Metadata of a CBR streaming media object as seen by the cache.
///
/// All the caching decisions of the paper are functions of the object's
/// duration `T_i`, bit-rate `r_i`, value `V_i`, observed request frequency
/// `F_i` and the measured bandwidth `b_i` to the origin server. The first
/// three are static properties captured here; frequency and bandwidth are
/// supplied per access.
///
/// ```
/// use sc_cache::{ObjectKey, ObjectMeta};
///
/// let meta = ObjectMeta::new(ObjectKey::new(1), 600.0, 48_000.0, 5.0);
/// assert_eq!(meta.size_bytes(), 600.0 * 48_000.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ObjectMeta {
    /// Cache key of the object.
    pub key: ObjectKey,
    /// Playback duration `T_i` in seconds.
    pub duration_secs: f64,
    /// CBR encoding rate `r_i` in bytes per second.
    pub bitrate_bps: f64,
    /// Value `V_i` of an immediate playout (Section 2.6); zero when the
    /// value-based objective is not used.
    pub value: f64,
}

impl ObjectMeta {
    /// Creates object metadata.
    ///
    /// # Panics
    ///
    /// Panics (debug assertions only) if `duration_secs` or `bitrate_bps` is
    /// not strictly positive or `value` is negative.
    pub fn new(key: ObjectKey, duration_secs: f64, bitrate_bps: f64, value: f64) -> Self {
        debug_assert!(duration_secs > 0.0, "duration must be positive");
        debug_assert!(bitrate_bps > 0.0, "bitrate must be positive");
        debug_assert!(value >= 0.0, "value must be non-negative");
        ObjectMeta {
            key,
            duration_secs,
            bitrate_bps,
            value,
        }
    }

    /// Total size `T_i · r_i` in bytes.
    #[inline]
    pub fn size_bytes(&self) -> f64 {
        self.duration_secs * self.bitrate_bps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_roundtrip_and_display() {
        let k = ObjectKey::new(9);
        assert_eq!(k.as_u64(), 9);
        assert_eq!(ObjectKey::from(9u64), k);
        assert_eq!(k.to_string(), "key#9");
    }

    #[test]
    fn meta_size() {
        let m = ObjectMeta::new(ObjectKey::new(0), 100.0, 2_000.0, 0.0);
        assert_eq!(m.size_bytes(), 200_000.0);
    }
}
