//! An updatable min-heap keyed by utility.
//!
//! Section 2.4 of the paper notes that the replacement algorithm "can be
//! implemented with a priority queue (heap) which uses the utility value as
//! the key" with `O(log n)` per operation. This module provides that heap,
//! addressed by **dense `u32` slot handles** rather than hashed object
//! keys: the position of every handle is maintained in a flat `Vec`
//! write-back table, so every operation — insert, update, remove, pop —
//! touches only contiguous memory and performs no hashing. The
//! [`CacheEngine`](crate::CacheEngine) allocates the handles (one per
//! object slot) and owns the handle→key mapping.
//!
//! Determinism note: the heap's structure (and therefore which of several
//! equal-utility entries pops first) is a pure function of the operation
//! sequence — there is no hash-order or address-order dependence — which is
//! what lets the simulator's golden-metrics tests pin results bit-for-bit.

/// Sentinel position meaning "handle not present".
const ABSENT: u32 = u32::MAX;

/// A binary min-heap of `(slot handle, utility)` pairs with `O(log n)`
/// insert / remove / update / pop and `O(1)` minimum lookup and membership
/// tests.
///
/// Handles are expected to be small dense integers (the engine's slot
/// indices): the position table is a `Vec` indexed by handle and grows to
/// the largest handle ever inserted.
///
/// ```
/// use sc_cache::UtilityHeap;
///
/// let mut heap = UtilityHeap::new();
/// heap.insert(1, 5.0);
/// heap.insert(2, 1.0);
/// heap.insert(3, 3.0);
/// assert_eq!(heap.peek_min(), Some((2, 1.0)));
/// heap.update(2, 10.0);
/// assert_eq!(heap.peek_min(), Some((3, 3.0)));
/// ```
#[derive(Debug, Clone, Default)]
pub struct UtilityHeap {
    /// Heap-ordered `(handle, utility)` entries.
    entries: Vec<(u32, f64)>,
    /// Position of every handle inside `entries` (`ABSENT` when missing),
    /// indexed by handle.
    positions: Vec<u32>,
}

impl UtilityHeap {
    /// Creates an empty heap.
    pub fn new() -> Self {
        UtilityHeap {
            entries: Vec::new(),
            positions: Vec::new(),
        }
    }

    /// Creates an empty heap with pre-allocated capacity for `capacity`
    /// entries and handles `0..capacity`.
    pub fn with_capacity(capacity: usize) -> Self {
        UtilityHeap {
            entries: Vec::with_capacity(capacity),
            positions: vec![ABSENT; capacity],
        }
    }

    /// Grows the position table to cover handles `0..n` without inserting
    /// anything, so subsequent operations on those handles never reallocate.
    pub fn reserve_handles(&mut self, n: usize) {
        if self.positions.len() < n {
            self.positions.resize(n, ABSENT);
        }
        if self.entries.capacity() < n {
            self.entries.reserve(n - self.entries.len());
        }
    }

    /// Number of entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if the heap holds no entries.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    #[inline]
    fn position(&self, handle: u32) -> Option<usize> {
        match self.positions.get(handle as usize) {
            Some(&pos) if pos != ABSENT => Some(pos as usize),
            _ => None,
        }
    }

    /// Returns `true` if `handle` is present.
    #[inline]
    pub fn contains(&self, handle: u32) -> bool {
        self.position(handle).is_some()
    }

    /// Returns the utility of `handle`, if present.
    #[inline]
    pub fn utility(&self, handle: u32) -> Option<f64> {
        self.position(handle).map(|i| self.entries[i].1)
    }

    /// The minimum-utility entry without removing it.
    #[inline]
    pub fn peek_min(&self) -> Option<(u32, f64)> {
        self.entries.first().copied()
    }

    /// Inserts a new entry or updates the utility of an existing one.
    ///
    /// # Panics
    ///
    /// Panics if `utility` is NaN.
    pub fn insert(&mut self, handle: u32, utility: f64) {
        assert!(!utility.is_nan(), "utility must not be NaN");
        if self.positions.len() <= handle as usize {
            self.positions.resize(handle as usize + 1, ABSENT);
        }
        if self.positions[handle as usize] != ABSENT {
            self.update(handle, utility);
            return;
        }
        self.entries.push((handle, utility));
        let idx = self.entries.len() - 1;
        self.positions[handle as usize] = idx as u32;
        self.sift_up(idx);
    }

    /// Updates the utility of an existing entry; inserts it if absent.
    ///
    /// # Panics
    ///
    /// Panics if `utility` is NaN.
    pub fn update(&mut self, handle: u32, utility: f64) {
        assert!(!utility.is_nan(), "utility must not be NaN");
        match self.position(handle) {
            None => self.insert(handle, utility),
            Some(idx) => {
                let old = self.entries[idx].1;
                self.entries[idx].1 = utility;
                if utility < old {
                    self.sift_up(idx);
                } else {
                    self.sift_down(idx);
                }
            }
        }
    }

    /// Removes and returns the minimum-utility entry with a single
    /// root-to-leaf sift.
    pub fn pop_min(&mut self) -> Option<(u32, f64)> {
        let min = *self.entries.first()?;
        let last = self.entries.len() - 1;
        self.entries.swap(0, last);
        self.entries.pop();
        self.positions[min.0 as usize] = ABSENT;
        if !self.entries.is_empty() {
            self.positions[self.entries[0].0 as usize] = 0;
            self.sift_down(0);
        }
        Some(min)
    }

    /// Removes an arbitrary entry. Returns its utility if it was present.
    pub fn remove(&mut self, handle: u32) -> Option<f64> {
        let idx = self.position(handle)?;
        let removed_utility = self.entries[idx].1;
        let last = self.entries.len() - 1;
        self.entries.swap(idx, last);
        let moved = self.entries[idx].0;
        self.positions[moved as usize] = idx as u32;
        self.entries.pop();
        self.positions[handle as usize] = ABSENT;
        if idx < self.entries.len() {
            self.sift_down(idx);
            self.sift_up(idx);
        }
        Some(removed_utility)
    }

    /// Removes every entry, keeping the allocated capacity and the size of
    /// the handle table.
    pub fn clear(&mut self) {
        for &(handle, _) in &self.entries {
            self.positions[handle as usize] = ABSENT;
        }
        self.entries.clear();
    }

    /// Iterates over all entries in unspecified (heap) order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, f64)> + '_ {
        self.entries.iter().copied()
    }

    fn sift_up(&mut self, mut idx: usize) {
        while idx > 0 {
            let parent = (idx - 1) / 2;
            if self.entries[idx].1 < self.entries[parent].1 {
                self.swap(idx, parent);
                idx = parent;
            } else {
                break;
            }
        }
    }

    fn sift_down(&mut self, mut idx: usize) {
        loop {
            let left = 2 * idx + 1;
            let right = 2 * idx + 2;
            let mut smallest = idx;
            if left < self.entries.len() && self.entries[left].1 < self.entries[smallest].1 {
                smallest = left;
            }
            if right < self.entries.len() && self.entries[right].1 < self.entries[smallest].1 {
                smallest = right;
            }
            if smallest == idx {
                break;
            }
            self.swap(idx, smallest);
            idx = smallest;
        }
    }

    #[inline]
    fn swap(&mut self, a: usize, b: usize) {
        self.entries.swap(a, b);
        self.positions[self.entries[a].0 as usize] = a as u32;
        self.positions[self.entries[b].0 as usize] = b as u32;
    }

    /// Checks the internal heap invariant (every parent's utility is at most
    /// its children's) and the consistency of the handle→position table.
    ///
    /// Always true for a correctly behaving heap; exposed so invariant and
    /// property tests can verify the structure after arbitrary operation
    /// sequences.
    pub fn validate(&self) -> bool {
        for i in 1..self.entries.len() {
            let parent = (i - 1) / 2;
            if self.entries[parent].1 > self.entries[i].1 {
                return false;
            }
        }
        let present = self.positions.iter().filter(|&&pos| pos != ABSENT).count();
        present == self.entries.len()
            && self
                .entries
                .iter()
                .enumerate()
                .all(|(i, &(handle, _))| self.positions.get(handle as usize) == Some(&(i as u32)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_pop_in_order() {
        let mut h = UtilityHeap::new();
        for (i, u) in [5.0, 1.0, 4.0, 2.0, 3.0].iter().enumerate() {
            h.insert(i as u32, *u);
        }
        assert_eq!(h.len(), 5);
        assert!(h.validate());
        let mut popped = Vec::new();
        while let Some((_, u)) = h.pop_min() {
            popped.push(u);
        }
        assert_eq!(popped, vec![1.0, 2.0, 3.0, 4.0, 5.0]);
        assert!(h.is_empty());
    }

    #[test]
    fn update_moves_entries() {
        let mut h = UtilityHeap::new();
        h.insert(1, 1.0);
        h.insert(2, 2.0);
        h.insert(3, 3.0);
        h.update(1, 10.0);
        assert_eq!(h.peek_min().unwrap().0, 2);
        h.update(3, 0.5);
        assert_eq!(h.peek_min().unwrap().0, 3);
        assert!(h.validate());
        assert_eq!(h.utility(1), Some(10.0));
    }

    #[test]
    fn insert_existing_handle_updates() {
        let mut h = UtilityHeap::new();
        h.insert(1, 5.0);
        h.insert(1, 2.0);
        assert_eq!(h.len(), 1);
        assert_eq!(h.utility(1), Some(2.0));
    }

    #[test]
    fn update_missing_handle_inserts() {
        let mut h = UtilityHeap::new();
        h.update(7, 1.5);
        assert!(h.contains(7));
        assert!(!h.contains(6));
        assert_eq!(h.utility(6), None);
    }

    #[test]
    fn remove_arbitrary_entries() {
        let mut h = UtilityHeap::new();
        for i in 0..20 {
            h.insert(i, (20 - i) as f64);
        }
        assert_eq!(h.remove(5), Some(15.0));
        assert_eq!(h.remove(5), None);
        assert_eq!(h.len(), 19);
        assert!(h.validate());
        assert!(!h.contains(5));
        // Remaining entries still pop in sorted order.
        let mut prev = f64::NEG_INFINITY;
        while let Some((_, u)) = h.pop_min() {
            assert!(u >= prev);
            prev = u;
        }
    }

    #[test]
    fn remove_last_and_empty_pop() {
        let mut h = UtilityHeap::new();
        assert_eq!(h.pop_min(), None);
        h.insert(1, 1.0);
        assert_eq!(h.remove(1), Some(1.0));
        assert!(h.is_empty());
        assert!(h.validate());
    }

    #[test]
    fn clear_keeps_handle_table_consistent() {
        let mut h = UtilityHeap::with_capacity(8);
        for i in 0..8 {
            h.insert(i, i as f64);
        }
        h.clear();
        assert!(h.is_empty());
        assert!(h.validate());
        assert!(!h.contains(3));
        h.insert(3, 1.0);
        assert_eq!(h.peek_min(), Some((3, 1.0)));
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_utility_panics() {
        let mut h = UtilityHeap::new();
        h.insert(1, f64::NAN);
    }

    #[test]
    fn iter_with_capacity_and_sparse_handles() {
        let mut h = UtilityHeap::with_capacity(4);
        h.insert(1, 1.0);
        // A handle far beyond the reserved range grows the table safely.
        h.insert(1_000_000, 2.0);
        let mut items: Vec<_> = h.iter().collect();
        items.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
        assert_eq!(items, vec![(1, 1.0), (1_000_000, 2.0)]);
        assert!(h.validate());
    }

    #[test]
    fn reserve_handles_is_idempotent() {
        let mut h = UtilityHeap::new();
        h.reserve_handles(100);
        h.reserve_handles(10);
        h.insert(99, 1.0);
        assert!(h.contains(99));
        assert!(h.validate());
    }

    #[test]
    fn randomised_operations_keep_invariant() {
        // Deterministic pseudo-random sequence without external crates.
        let mut state = 0x12345678u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut h = UtilityHeap::new();
        for _ in 0..2_000 {
            let handle = (next() % 100) as u32;
            match next() % 3 {
                0 => h.insert(handle, (next() % 1_000) as f64),
                1 => h.update(handle, (next() % 1_000) as f64),
                _ => {
                    h.remove(handle);
                }
            }
            debug_assert!(h.validate());
        }
        assert!(h.validate());
    }
}
