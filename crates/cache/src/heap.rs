//! An updatable min-heap keyed by utility.
//!
//! Section 2.4 of the paper notes that the replacement algorithm "can be
//! implemented with a priority queue (heap) which uses the utility value as
//! the key" with `O(log n)` per operation. This module provides that heap:
//! a binary min-heap (the eviction victim is the minimum-utility object)
//! with support for increasing or decreasing the key of an arbitrary entry.

use crate::object::ObjectKey;
use std::collections::HashMap;

/// A binary min-heap of `(ObjectKey, utility)` pairs with `O(log n)`
/// insert / remove / update and `O(1)` minimum lookup.
///
/// ```
/// use sc_cache::{ObjectKey, UtilityHeap};
///
/// let mut heap = UtilityHeap::new();
/// heap.insert(ObjectKey::new(1), 5.0);
/// heap.insert(ObjectKey::new(2), 1.0);
/// heap.insert(ObjectKey::new(3), 3.0);
/// assert_eq!(heap.peek_min(), Some((ObjectKey::new(2), 1.0)));
/// heap.update(ObjectKey::new(2), 10.0);
/// assert_eq!(heap.peek_min(), Some((ObjectKey::new(3), 3.0)));
/// ```
#[derive(Debug, Clone, Default)]
pub struct UtilityHeap {
    /// Heap-ordered entries.
    entries: Vec<(ObjectKey, f64)>,
    /// Position of every key inside `entries`.
    positions: HashMap<ObjectKey, usize>,
}

impl UtilityHeap {
    /// Creates an empty heap.
    pub fn new() -> Self {
        UtilityHeap {
            entries: Vec::new(),
            positions: HashMap::new(),
        }
    }

    /// Creates an empty heap with pre-allocated capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        UtilityHeap {
            entries: Vec::with_capacity(capacity),
            positions: HashMap::with_capacity(capacity),
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if the heap holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Returns `true` if `key` is present.
    pub fn contains(&self, key: ObjectKey) -> bool {
        self.positions.contains_key(&key)
    }

    /// Returns the utility of `key`, if present.
    pub fn utility(&self, key: ObjectKey) -> Option<f64> {
        self.positions.get(&key).map(|&i| self.entries[i].1)
    }

    /// The minimum-utility entry without removing it.
    pub fn peek_min(&self) -> Option<(ObjectKey, f64)> {
        self.entries.first().copied()
    }

    /// Inserts a new entry or updates the utility of an existing one.
    ///
    /// # Panics
    ///
    /// Panics if `utility` is NaN.
    pub fn insert(&mut self, key: ObjectKey, utility: f64) {
        assert!(!utility.is_nan(), "utility must not be NaN");
        if self.positions.contains_key(&key) {
            self.update(key, utility);
            return;
        }
        self.entries.push((key, utility));
        let idx = self.entries.len() - 1;
        self.positions.insert(key, idx);
        self.sift_up(idx);
    }

    /// Updates the utility of an existing entry; inserts it if absent.
    ///
    /// # Panics
    ///
    /// Panics if `utility` is NaN.
    pub fn update(&mut self, key: ObjectKey, utility: f64) {
        assert!(!utility.is_nan(), "utility must not be NaN");
        match self.positions.get(&key) {
            None => self.insert(key, utility),
            Some(&idx) => {
                let old = self.entries[idx].1;
                self.entries[idx].1 = utility;
                if utility < old {
                    self.sift_up(idx);
                } else {
                    self.sift_down(idx);
                }
            }
        }
    }

    /// Removes and returns the minimum-utility entry.
    pub fn pop_min(&mut self) -> Option<(ObjectKey, f64)> {
        if self.entries.is_empty() {
            return None;
        }
        let min = self.entries[0];
        self.remove(min.0);
        Some(min)
    }

    /// Removes an arbitrary entry. Returns its utility if it was present.
    pub fn remove(&mut self, key: ObjectKey) -> Option<f64> {
        let idx = *self.positions.get(&key)?;
        let removed_utility = self.entries[idx].1;
        let last = self.entries.len() - 1;
        self.entries.swap(idx, last);
        let moved = self.entries[idx].0;
        self.positions.insert(moved, idx);
        self.entries.pop();
        self.positions.remove(&key);
        if idx < self.entries.len() {
            self.sift_down(idx);
            self.sift_up(idx);
        }
        Some(removed_utility)
    }

    /// Iterates over all entries in unspecified (heap) order.
    pub fn iter(&self) -> impl Iterator<Item = (ObjectKey, f64)> + '_ {
        self.entries.iter().copied()
    }

    fn sift_up(&mut self, mut idx: usize) {
        while idx > 0 {
            let parent = (idx - 1) / 2;
            if self.entries[idx].1 < self.entries[parent].1 {
                self.swap(idx, parent);
                idx = parent;
            } else {
                break;
            }
        }
    }

    fn sift_down(&mut self, mut idx: usize) {
        loop {
            let left = 2 * idx + 1;
            let right = 2 * idx + 2;
            let mut smallest = idx;
            if left < self.entries.len() && self.entries[left].1 < self.entries[smallest].1 {
                smallest = left;
            }
            if right < self.entries.len() && self.entries[right].1 < self.entries[smallest].1 {
                smallest = right;
            }
            if smallest == idx {
                break;
            }
            self.swap(idx, smallest);
            idx = smallest;
        }
    }

    fn swap(&mut self, a: usize, b: usize) {
        self.entries.swap(a, b);
        self.positions.insert(self.entries[a].0, a);
        self.positions.insert(self.entries[b].0, b);
    }

    /// Checks the internal heap invariant (every parent's utility is at most
    /// its children's) and the consistency of the key→position index.
    ///
    /// Always true for a correctly behaving heap; exposed so invariant and
    /// property tests can verify the structure after arbitrary operation
    /// sequences.
    pub fn validate(&self) -> bool {
        for i in 1..self.entries.len() {
            let parent = (i - 1) / 2;
            if self.entries[parent].1 > self.entries[i].1 {
                return false;
            }
        }
        self.positions.len() == self.entries.len()
            && self
                .positions
                .iter()
                .all(|(k, &i)| i < self.entries.len() && self.entries[i].0 == *k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(i: u64) -> ObjectKey {
        ObjectKey::new(i)
    }

    #[test]
    fn insert_and_pop_in_order() {
        let mut h = UtilityHeap::new();
        for (i, u) in [5.0, 1.0, 4.0, 2.0, 3.0].iter().enumerate() {
            h.insert(key(i as u64), *u);
        }
        assert_eq!(h.len(), 5);
        assert!(h.validate());
        let mut popped = Vec::new();
        while let Some((_, u)) = h.pop_min() {
            popped.push(u);
        }
        assert_eq!(popped, vec![1.0, 2.0, 3.0, 4.0, 5.0]);
        assert!(h.is_empty());
    }

    #[test]
    fn update_moves_entries() {
        let mut h = UtilityHeap::new();
        h.insert(key(1), 1.0);
        h.insert(key(2), 2.0);
        h.insert(key(3), 3.0);
        h.update(key(1), 10.0);
        assert_eq!(h.peek_min().unwrap().0, key(2));
        h.update(key(3), 0.5);
        assert_eq!(h.peek_min().unwrap().0, key(3));
        assert!(h.validate());
        assert_eq!(h.utility(key(1)), Some(10.0));
    }

    #[test]
    fn insert_existing_key_updates() {
        let mut h = UtilityHeap::new();
        h.insert(key(1), 5.0);
        h.insert(key(1), 2.0);
        assert_eq!(h.len(), 1);
        assert_eq!(h.utility(key(1)), Some(2.0));
    }

    #[test]
    fn update_missing_key_inserts() {
        let mut h = UtilityHeap::new();
        h.update(key(7), 1.5);
        assert!(h.contains(key(7)));
    }

    #[test]
    fn remove_arbitrary_entries() {
        let mut h = UtilityHeap::new();
        for i in 0..20 {
            h.insert(key(i), (20 - i) as f64);
        }
        assert_eq!(h.remove(key(5)), Some(15.0));
        assert_eq!(h.remove(key(5)), None);
        assert_eq!(h.len(), 19);
        assert!(h.validate());
        assert!(!h.contains(key(5)));
        // Remaining entries still pop in sorted order.
        let mut prev = f64::NEG_INFINITY;
        while let Some((_, u)) = h.pop_min() {
            assert!(u >= prev);
            prev = u;
        }
    }

    #[test]
    fn remove_last_and_empty_pop() {
        let mut h = UtilityHeap::new();
        assert_eq!(h.pop_min(), None);
        h.insert(key(1), 1.0);
        assert_eq!(h.remove(key(1)), Some(1.0));
        assert!(h.is_empty());
        assert!(h.validate());
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_utility_panics() {
        let mut h = UtilityHeap::new();
        h.insert(key(1), f64::NAN);
    }

    #[test]
    fn iter_and_with_capacity() {
        let mut h = UtilityHeap::with_capacity(4);
        h.insert(key(1), 1.0);
        h.insert(key(2), 2.0);
        let mut items: Vec<_> = h.iter().collect();
        items.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
        assert_eq!(items, vec![(key(1), 1.0), (key(2), 2.0)]);
    }

    #[test]
    fn randomised_operations_keep_invariant() {
        // Deterministic pseudo-random sequence without external crates.
        let mut state = 0x12345678u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut h = UtilityHeap::new();
        for _ in 0..2_000 {
            let k = key(next() % 100);
            match next() % 3 {
                0 => h.insert(k, (next() % 1_000) as f64),
                1 => h.update(k, (next() % 1_000) as f64),
                _ => {
                    h.remove(k);
                }
            }
            debug_assert!(h.validate());
        }
        assert!(h.validate());
    }
}
