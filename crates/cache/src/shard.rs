//! N-way sharding of the cache engine for concurrent callers.
//!
//! A single [`CacheEngine`] behind one mutex serializes every request that
//! touches the cache — the scalability ceiling of the proxy's worker pool.
//! [`ShardedEngine`] splits the key space across `N` independent engine
//! slabs (key hash → shard via the Fx mix, [`fx::hash_u64`]), each with its
//! own lock, utility heap, key→slot interning and byte budget, so accesses
//! to different shards never contend. Aggregate statistics live in a
//! lock-free [`AtomicCacheStats`] block updated from each access outcome,
//! so observability reads ([`stats`](ShardedEngine::stats)) take no shard
//! lock at all.
//!
//! **Budgets.** The global byte budget is split evenly across shards
//! (floored, with the remainder going to shard 0), and eviction is local to
//! each shard by default: an object competes only with the objects that
//! hash to its shard. Optionally ([`set_steal`](ShardedEngine::set_steal))
//! a shard whose admission falls short of the policy target may steal
//! budget with a power-of-two-choices probe: pick two other shards at
//! random, evict strictly-lower-utility entries from the *richer* one (more
//! used bytes), and migrate exactly the freed bytes of capacity to the
//! requesting shard. The sum of shard capacities always equals the global
//! budget; per-shard capacities drift to follow utility mass.
//!
//! **Determinism.** `shards = 1` routes every key to one engine whose
//! behaviour — outcomes, contents, and statistics, bit for bit — is
//! identical to an unsharded [`CacheEngine`] with the same capacity, which
//! is why the simulator's determinism-pinned paths keep using the plain
//! engine (or one shard) while the proxy shards freely. With several
//! shards, single-threaded runs are still deterministic (routing is a pure
//! hash and the steal probe's RNG is seeded); under concurrency the
//! interleaving of accesses to the *same* shard is scheduling-dependent,
//! like any locked cache.

use crate::engine::CacheEngine;
use crate::error::CacheError;
use crate::fx;
use crate::object::{ObjectKey, ObjectMeta};
use crate::policy::UtilityPolicy;
use crate::stats::{AtomicCacheStats, CacheStats};
use crate::AccessOutcome;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// Seed of the steal probe's xorshift RNG (an arbitrary non-zero odd
/// constant; the probe only needs decorrelated shard picks).
const STEAL_RNG_SEED: u64 = 0x9e37_79b9_7f4a_7c15;

/// An array of independent [`CacheEngine`] shards routed by key hash.
///
/// Concurrency-safe by shard: all methods take `&self`, so the engine can
/// sit directly in an `Arc` shared across worker threads.
///
/// ```
/// use sc_cache::policy::PartialBandwidth;
/// use sc_cache::{ObjectKey, ObjectMeta, ShardedEngine};
///
/// # fn main() -> Result<(), sc_cache::CacheError> {
/// let cache = ShardedEngine::new(10_000_000.0, 4, PartialBandwidth::new)?;
/// let obj = ObjectMeta::new(ObjectKey::new(1), 100.0, 48_000.0, 0.0);
/// cache.on_access(&obj, 24_000.0);
/// assert_eq!(cache.cached_bytes(obj.key), obj.size_bytes() / 2.0);
/// assert_eq!(cache.stats().requests, 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct ShardedEngine<P> {
    shards: Vec<Mutex<CacheEngine<P>>>,
    capacity_bytes: f64,
    stats: AtomicCacheStats,
    steal: AtomicBool,
    steal_rng: AtomicU64,
}

impl<P: UtilityPolicy> ShardedEngine<P> {
    /// Creates `shards` engine slabs sharing `capacity_bytes`: every shard
    /// gets `floor(capacity / shards)` bytes and shard 0 additionally keeps
    /// the remainder, so the budgets sum to the global capacity exactly.
    ///
    /// `make_policy` is called once per shard (policies may carry state, so
    /// each shard owns its own instance).
    ///
    /// # Errors
    ///
    /// [`CacheError::InvalidCapacity`] for a negative or non-finite
    /// capacity, [`CacheError::InvalidShardCount`] for zero shards.
    pub fn new(
        capacity_bytes: f64,
        shards: usize,
        mut make_policy: impl FnMut() -> P,
    ) -> Result<Self, CacheError> {
        if shards == 0 {
            return Err(CacheError::InvalidShardCount(shards));
        }
        if !capacity_bytes.is_finite() || capacity_bytes < 0.0 {
            return Err(CacheError::InvalidCapacity(capacity_bytes));
        }
        let per_shard = (capacity_bytes / shards as f64).floor();
        let shard0 = capacity_bytes - per_shard * (shards - 1) as f64;
        let engines = (0..shards)
            .map(|i| {
                let budget = if i == 0 { shard0 } else { per_shard };
                CacheEngine::new(budget, make_policy()).map(Mutex::new)
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(ShardedEngine {
            shards: engines,
            capacity_bytes,
            stats: AtomicCacheStats::new(),
            steal: AtomicBool::new(false),
            steal_rng: AtomicU64::new(STEAL_RNG_SEED),
        })
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The global byte budget (sum of all shard capacities).
    pub fn capacity_bytes(&self) -> f64 {
        self.capacity_bytes
    }

    /// The shard `key` routes to: `fx::hash_u64(key) % shards`.
    pub fn shard_of(&self, key: ObjectKey) -> usize {
        (fx::hash_u64(key.as_u64()) % self.shards.len() as u64) as usize
    }

    /// Current byte budget of shard `index` (drifts from the initial even
    /// split only when stealing is enabled).
    pub fn shard_capacity(&self, index: usize) -> f64 {
        self.shards[index].lock().capacity_bytes()
    }

    /// Bytes currently allocated in shard `index`.
    pub fn shard_used_bytes(&self, index: usize) -> f64 {
        self.shards[index].lock().used_bytes()
    }

    /// Total bytes allocated across all shards (locks each shard briefly;
    /// a moving target under concurrent writers).
    pub fn used_bytes(&self) -> f64 {
        self.shards.iter().map(|s| s.lock().used_bytes()).sum()
    }

    /// Number of objects with a cached prefix across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum()
    }

    /// Returns `true` if nothing is cached anywhere.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.lock().is_empty())
    }

    /// Enables or disables cross-shard budget stealing (off by default).
    pub fn set_steal(&self, enabled: bool) {
        self.steal.store(enabled, Ordering::Relaxed);
    }

    /// Whether budget stealing is enabled.
    pub fn steal_enabled(&self) -> bool {
        self.steal.load(Ordering::Relaxed)
    }

    /// Lock-free aggregate statistics (see [`AtomicCacheStats`]): no shard
    /// lock is taken. Bit-identical to the unsharded engine's counters at
    /// `shards = 1` single-threaded.
    pub fn stats(&self) -> CacheStats {
        self.stats.snapshot()
    }

    /// Resets the aggregate counters; per-shard engine statistics (used by
    /// nothing externally, but visible via [`with_shard_index`]) are reset
    /// too so the two views stay consistent.
    ///
    /// [`with_shard_index`]: Self::with_shard_index
    pub fn reset_stats(&self) {
        self.stats.reset();
        for shard in &self.shards {
            shard.lock().reset_stats();
        }
    }

    /// Enables or disables the per-shard allocation delta logs (see
    /// [`CacheEngine::set_delta_tracking`]). Slot handles in drained deltas
    /// are **shard-local**; mirror consumers must keep one reverse mapping
    /// per shard and drain inside [`with_shard`](Self::with_shard) /
    /// [`access_with`](Self::access_with) closures.
    pub fn set_delta_tracking(&self, enabled: bool) {
        for shard in &self.shards {
            shard.lock().set_delta_tracking(enabled);
        }
    }

    /// Runs `f` with the engine shard that `key` routes to, under that
    /// shard's lock, along with the shard index. The closure must not call
    /// back into this `ShardedEngine` (the shard lock is held).
    pub fn with_shard<R>(
        &self,
        key: ObjectKey,
        f: impl FnOnce(&mut CacheEngine<P>, usize) -> R,
    ) -> R {
        let index = self.shard_of(key);
        let mut engine = self.shards[index].lock();
        f(&mut engine, index)
    }

    /// Runs `f` with shard `index` under its lock (observability walks).
    pub fn with_shard_index<R>(&self, index: usize, f: impl FnOnce(&mut CacheEngine<P>) -> R) -> R {
        let mut engine = self.shards[index].lock();
        f(&mut engine)
    }

    /// Processes one access on the shard `meta.key` routes to. Semantics
    /// per shard are exactly [`CacheEngine::on_access`]; aggregate counters
    /// are updated from the outcome; if stealing is enabled and the policy
    /// target was not fully admitted, a budget steal is attempted after the
    /// shard lock is released.
    pub fn on_access(&self, meta: &ObjectMeta, bandwidth_bps: f64) -> AccessOutcome {
        self.access_with(meta, bandwidth_bps, |_, _, out| out)
    }

    /// [`on_access`](Self::on_access), then `f` under the same shard lock —
    /// the hook mirror consumers (the proxy's byte store) use to drain the
    /// shard's delta log atomically with the access that produced it.
    /// `f` receives the engine, the shard index and the access outcome; its
    /// return value is passed through.
    pub fn access_with<R>(
        &self,
        meta: &ObjectMeta,
        bandwidth_bps: f64,
        f: impl FnOnce(&mut CacheEngine<P>, usize, AccessOutcome) -> R,
    ) -> R {
        let index = self.shard_of(meta.key);
        let (result, steal_request) = {
            let mut engine = self.shards[index].lock();
            let out = engine.on_access(meta, bandwidth_bps);
            self.stats.record_access(meta.size_bytes(), &out);
            if out.evictions > 0 {
                for &(_, bytes, _) in engine.last_evictions() {
                    self.stats.record_evicted_bytes(bytes);
                }
            }
            let steal_request = if self.steal_enabled() && self.shards.len() > 1 {
                self.shortfall_of(&engine, meta, bandwidth_bps, out.cached_bytes_after)
            } else {
                None
            };
            (f(&mut engine, index, out), steal_request)
        };
        if let Some((shortfall, utility)) = steal_request {
            self.try_steal(index, meta, bandwidth_bps, shortfall, utility);
        }
        result
    }

    /// How far the engine's allocation for `meta` falls short of the policy
    /// target, plus the object's current utility — computed under the shard
    /// lock so the steal attempt competes with the exact utility the access
    /// just used.
    fn shortfall_of(
        &self,
        engine: &CacheEngine<P>,
        meta: &ObjectMeta,
        bandwidth_bps: f64,
        cached_after: f64,
    ) -> Option<(f64, f64)> {
        let target = engine
            .policy()
            .target_bytes(meta, bandwidth_bps)
            .clamp(0.0, meta.size_bytes());
        let shortfall = target - cached_after;
        if shortfall <= 0.0 {
            return None;
        }
        let slot = engine.slot_of(meta.key)?;
        Some((shortfall, engine.current_utility(slot, meta, bandwidth_bps)))
    }

    /// Power-of-two-choices budget steal: probe two other shards, evict
    /// strictly-lower-utility entries from the richer one, migrate the
    /// freed capacity to `index`, and retry the grow. Locks are taken one
    /// at a time (probe, donor, recipient), so no ordering issues arise.
    fn try_steal(
        &self,
        index: usize,
        meta: &ObjectMeta,
        bandwidth_bps: f64,
        shortfall: f64,
        utility: f64,
    ) {
        let Some(donor) = self.pick_donor(index) else {
            return;
        };
        let freed = {
            let mut engine = self.shards[donor].lock();
            let (freed, count) = engine.evict_lowest(utility, shortfall);
            if freed > 0.0 {
                let capacity = engine.capacity_bytes() - freed;
                engine.set_capacity(capacity);
                self.stats.record_evictions(count as u64, freed);
            }
            freed
        };
        if freed <= 0.0 {
            return;
        }
        let mut engine = self.shards[index].lock();
        let capacity = engine.capacity_bytes() + freed;
        engine.set_capacity(capacity);
        if let Some(slot) = engine.slot_of(meta.key) {
            let out = engine.regrow_slot(slot, meta, bandwidth_bps);
            self.stats.record_rebalance(&out);
            if out.evictions > 0 {
                for &(_, bytes, _) in engine.last_evictions() {
                    self.stats.record_evicted_bytes(bytes);
                }
            }
        }
    }

    /// Picks the donor shard: of two distinct random shards other than
    /// `index`, the one with more used bytes (one brief lock each).
    fn pick_donor(&self, index: usize) -> Option<usize> {
        let n = self.shards.len();
        let others = n - 1;
        if others == 0 {
            return None;
        }
        let skip = |i: u64| {
            let i = i as usize;
            if i >= index {
                i + 1
            } else {
                i
            }
        };
        let a = skip(self.next_rand() % others as u64);
        if others == 1 {
            return Some(a);
        }
        let b = skip(self.next_rand() % others as u64);
        if a == b {
            return Some(a);
        }
        let used_a = self.shards[a].lock().used_bytes();
        let used_b = self.shards[b].lock().used_bytes();
        Some(if used_a >= used_b { a } else { b })
    }

    /// A racy-but-adequate xorshift step: concurrent callers may observe the
    /// same draw, which only makes two probes correlated, never unsound.
    fn next_rand(&self) -> u64 {
        let mut x = self.steal_rng.load(Ordering::Relaxed);
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.steal_rng.store(x, Ordering::Relaxed);
        x
    }

    /// Bytes of `key` currently cached (0 when absent).
    pub fn cached_bytes(&self, key: ObjectKey) -> f64 {
        self.with_shard(key, |engine, _| engine.cached_bytes(key))
    }

    /// Whether any prefix of `key` is cached.
    pub fn contains(&self, key: ObjectKey) -> bool {
        self.with_shard(key, |engine, _| engine.contains(key))
    }

    /// Number of requests observed for `key` so far.
    pub fn frequency(&self, key: ObjectKey) -> u64 {
        self.with_shard(key, |engine, _| engine.frequency(key))
    }

    /// Snapshot of the full cache contents as `(key, cached_bytes)` pairs,
    /// shard by shard, in unspecified order within each shard. Not atomic
    /// across shards under concurrent writers.
    pub fn contents(&self) -> Vec<(ObjectKey, f64)> {
        let mut all = Vec::new();
        for shard in &self.shards {
            all.extend(shard.lock().contents());
        }
        all
    }

    /// Removes every cached object from every shard and returns the number
    /// of evictions. Frequencies and statistics are preserved; aggregate
    /// eviction counters are updated per victim in the engine's own
    /// (slot-order) accumulation order, keeping the `shards = 1` counters
    /// bit-identical to [`CacheEngine::clear`].
    pub fn clear(&self) -> usize {
        let mut evicted = 0;
        for shard in &self.shards {
            let mut engine = shard.lock();
            // Victim bytes in slot order — the order `CacheEngine::clear`
            // adds them to its own `bytes_evicted` counter.
            let mut victims: Vec<(u32, f64)> = engine
                .contents()
                .into_iter()
                .map(|(key, bytes)| {
                    let slot = engine.slot_of(key).expect("cached keys are interned");
                    (slot, bytes)
                })
                .collect();
            victims.sort_unstable_by_key(|&(slot, _)| slot);
            evicted += engine.clear();
            for &(_, bytes) in &victims {
                self.stats.record_evicted_bytes(bytes);
            }
            self.stats.record_evictions(victims.len() as u64, 0.0);
        }
        evicted
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{IntegralBandwidth, PartialBandwidth, PolicyKind};

    const R: f64 = 48_000.0;

    fn obj(key: u64, duration: f64) -> ObjectMeta {
        ObjectMeta::new(ObjectKey::new(key), duration, R, 1.0)
    }

    #[test]
    fn rejects_bad_construction() {
        assert!(matches!(
            ShardedEngine::new(1e6, 0, PartialBandwidth::new),
            Err(CacheError::InvalidShardCount(0))
        ));
        assert!(ShardedEngine::new(-1.0, 2, PartialBandwidth::new).is_err());
        assert!(ShardedEngine::new(f64::NAN, 2, PartialBandwidth::new).is_err());
    }

    #[test]
    fn budget_split_sums_to_capacity_with_remainder_on_shard_zero() {
        let capacity = 10_000_000.0 + 7.0;
        let cache = ShardedEngine::new(capacity, 3, PartialBandwidth::new).unwrap();
        let per = (capacity / 3.0).floor();
        assert_eq!(cache.shard_capacity(1), per);
        assert_eq!(cache.shard_capacity(2), per);
        assert_eq!(cache.shard_capacity(0), capacity - 2.0 * per);
        let total: f64 = (0..3).map(|i| cache.shard_capacity(i)).sum();
        assert_eq!(total, capacity);
        // One shard gets everything.
        let one = ShardedEngine::new(capacity, 1, PartialBandwidth::new).unwrap();
        assert_eq!(one.shard_capacity(0), capacity);
    }

    #[test]
    fn routing_is_stable_and_covers_all_shards() {
        let cache = ShardedEngine::new(1e9, 4, PartialBandwidth::new).unwrap();
        let mut seen = [false; 4];
        for k in 0..64 {
            let key = ObjectKey::new(k);
            let s = cache.shard_of(key);
            assert_eq!(s, cache.shard_of(key), "routing must be stable");
            assert_eq!(
                s,
                (fx::hash_u64(k) % 4) as usize,
                "routing must be the documented hash"
            );
            seen[s] = true;
        }
        assert!(seen.iter().all(|&s| s), "64 keys must hit all 4 shards");
    }

    #[test]
    fn accesses_land_on_their_shard_and_aggregate() {
        let cache = ShardedEngine::new(1e9, 4, PartialBandwidth::new).unwrap();
        for k in 0..16 {
            cache.on_access(&obj(k, 100.0), R / 2.0);
        }
        assert_eq!(cache.stats().requests, 16);
        assert_eq!(cache.len(), 16);
        for k in 0..16 {
            let key = ObjectKey::new(k);
            let shard = cache.shard_of(key);
            let in_shard = cache.with_shard_index(shard, |engine| engine.cached_bytes(key));
            assert_eq!(in_shard, cache.cached_bytes(key));
            assert!(in_shard > 0.0);
        }
        let total: f64 = cache.contents().iter().map(|&(_, b)| b).sum();
        assert!((total - cache.used_bytes()).abs() < 1e-6);
    }

    #[test]
    fn clear_empties_every_shard_and_counts_evictions() {
        let cache = ShardedEngine::new(1e9, 4, PartialBandwidth::new).unwrap();
        for k in 0..16 {
            cache.on_access(&obj(k, 100.0), R / 2.0);
        }
        let cached = cache.len();
        assert_eq!(cache.clear(), cached);
        assert!(cache.is_empty());
        assert_eq!(cache.used_bytes(), 0.0);
        assert_eq!(cache.stats().evictions, cached as u64);
        // Frequencies survive, as in the unsharded engine.
        assert_eq!(cache.frequency(ObjectKey::new(0)), 1);
    }

    #[test]
    fn steal_migrates_budget_and_conserves_the_total() {
        // Shard budgets of ~2 objects each; a hot object behind a slow path
        // needs more than its local budget once its shard fills up.
        let unit = obj(0, 100.0).size_bytes();
        let capacity = 4.0 * unit;
        let cache = ShardedEngine::new(capacity, 2, IntegralBandwidth::new).unwrap();
        cache.set_steal(true);
        assert!(cache.steal_enabled());

        // Fill both shards with cold objects (one access each).
        for k in 0..4 {
            cache.on_access(&obj(k, 100.0), R / 2.0);
        }
        // Hammer one big object (two object-units) over a much slower path:
        // its utility dwarfs the cold entries', and its shard's local
        // budget (2 units, partly occupied) cannot hold it.
        let hot = obj(100, 200.0);
        for _ in 0..6 {
            cache.on_access(&hot, R / 16.0);
        }
        assert!(
            cache.contains(hot.key),
            "hot object must be admitted via stolen budget"
        );
        let total_capacity: f64 = (0..2).map(|i| cache.shard_capacity(i)).sum();
        assert!(
            (total_capacity - capacity).abs() < 1e-6,
            "steal must conserve the global budget: {total_capacity} vs {capacity}"
        );
        for i in 0..2 {
            assert!(
                cache.shard_used_bytes(i) <= cache.shard_capacity(i) + 1e-6,
                "shard {i} over budget"
            );
        }
    }

    #[test]
    fn steal_disabled_keeps_budgets_fixed() {
        let unit = obj(0, 100.0).size_bytes();
        let capacity = 4.0 * unit;
        let cache = ShardedEngine::new(capacity, 2, IntegralBandwidth::new).unwrap();
        for k in 0..4 {
            cache.on_access(&obj(k, 100.0), R / 2.0);
        }
        let hot = obj(100, 200.0);
        for _ in 0..6 {
            cache.on_access(&hot, R / 16.0);
        }
        let per = (capacity / 2.0).floor();
        assert_eq!(cache.shard_capacity(1), per);
        assert_eq!(cache.shard_capacity(0), capacity - per);
    }

    #[test]
    fn boxed_policies_shard_too() {
        let kind = PolicyKind::PartialBandwidth;
        let cache = ShardedEngine::new(1e9, 3, || kind.build()).unwrap();
        let o = obj(1, 100.0);
        let out = cache.on_access(&o, R / 2.0);
        assert!(out.admitted);
        assert_eq!(cache.cached_bytes(o.key), o.size_bytes() / 2.0);
    }

    #[test]
    fn delta_tracking_is_per_shard() {
        let cache = ShardedEngine::new(1e9, 2, PartialBandwidth::new).unwrap();
        cache.set_delta_tracking(true);
        let o = obj(1, 100.0);
        let drained = cache.access_with(&o, R / 2.0, |engine, index, out| {
            assert!(out.admitted);
            assert_eq!(index, cache.shard_of(o.key));
            engine.drain_deltas().count()
        });
        assert_eq!(drained, 1);
        // The other shard saw nothing.
        let other = 1 - cache.shard_of(o.key);
        assert_eq!(
            cache.with_shard_index(other, |engine| engine.drain_deltas().count()),
            0
        );
    }
}
