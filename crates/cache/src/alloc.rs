//! Partial-caching allocation math (Section 2.2 of the paper).
//!
//! For a CBR object with duration `T` (seconds), bit-rate `r` (bytes/s) and
//! cache↔origin bandwidth `b` (bytes/s), of which `x` bytes are cached as a
//! prefix at a well-connected proxy:
//!
//! * the **service delay** before playout can start at full quality is
//!   `[T·r − T·b − x]⁺ / b`;
//! * hiding the delay completely requires a prefix of `[(r − b)·T]⁺` bytes;
//! * if the client instead starts immediately and degrades quality (layered
//!   encoding), the achievable **stream quality** is
//!   `min(1, (b·T + x) / (r·T))`.

use crate::object::ObjectMeta;

/// Prefix size in bytes needed to hide the startup delay entirely:
/// `[(r − b)·T]⁺`, additionally clamped to the object size (relevant when
/// `b = 0`).
///
/// ```
/// use sc_cache::prefix_bytes_needed;
/// // 400 Kb/s object over a 200 Kb/s path for 100 s: half must be cached.
/// let x = prefix_bytes_needed(100.0, 50_000.0, 25_000.0);
/// assert_eq!(x, 2_500_000.0);
/// // Abundant bandwidth: nothing needs caching.
/// assert_eq!(prefix_bytes_needed(100.0, 50_000.0, 60_000.0), 0.0);
/// ```
pub fn prefix_bytes_needed(duration_secs: f64, bitrate_bps: f64, bandwidth_bps: f64) -> f64 {
    let deficit = (bitrate_bps - bandwidth_bps.max(0.0)) * duration_secs;
    deficit.clamp(0.0, duration_secs * bitrate_bps)
}

/// Conservative prefix size using an under-estimated bandwidth `e·b`
/// (Section 2.5): `[(r − e·b)·T]⁺` clamped to the object size. `e = 1`
/// reproduces [`prefix_bytes_needed`]; `e = 0` returns the whole object.
pub fn conservative_prefix_bytes(
    duration_secs: f64,
    bitrate_bps: f64,
    bandwidth_bps: f64,
    estimator_e: f64,
) -> f64 {
    prefix_bytes_needed(
        duration_secs,
        bitrate_bps,
        bandwidth_bps * estimator_e.clamp(0.0, 1.0),
    )
}

/// Startup (service) delay in seconds when `cached_bytes` of the object are
/// available at the cache and the remainder streams at `bandwidth_bps`:
/// `[T·r − T·b − x]⁺ / b`.
///
/// When the bandwidth is zero the delay is infinite unless the whole object
/// is cached.
///
/// ```
/// use sc_cache::service_delay_secs;
/// // Nothing cached, half the required bandwidth: wait for half the
/// // duration times (r/b - 1)... concretely 100 s here.
/// let d = service_delay_secs(100.0, 50_000.0, 25_000.0, 0.0);
/// assert_eq!(d, 100.0);
/// // Cache the deficit: no delay.
/// assert_eq!(service_delay_secs(100.0, 50_000.0, 25_000.0, 2_500_000.0), 0.0);
/// ```
pub fn service_delay_secs(
    duration_secs: f64,
    bitrate_bps: f64,
    bandwidth_bps: f64,
    cached_bytes: f64,
) -> f64 {
    let total = duration_secs * bitrate_bps;
    let missing = (total - duration_secs * bandwidth_bps.max(0.0) - cached_bytes.max(0.0)).max(0.0);
    if missing <= 0.0 {
        return 0.0;
    }
    if bandwidth_bps <= 0.0 {
        return f64::INFINITY;
    }
    missing / bandwidth_bps
}

/// Achievable stream quality (fraction of the full encoding rate that can be
/// sustained with immediate playout): `min(1, (b·T + x) / (r·T))`.
///
/// This models a layered encoding where a client that cannot sustain the
/// full rate plays a subset of layers (Section 3.3 of the paper: an object
/// with four layers of which three are sustainable has quality 0.75).
///
/// ```
/// use sc_cache::stream_quality;
/// assert_eq!(stream_quality(100.0, 50_000.0, 25_000.0, 0.0), 0.5);
/// assert_eq!(stream_quality(100.0, 50_000.0, 60_000.0, 0.0), 1.0);
/// assert_eq!(stream_quality(100.0, 50_000.0, 25_000.0, 2_500_000.0), 1.0);
/// ```
pub fn stream_quality(
    duration_secs: f64,
    bitrate_bps: f64,
    bandwidth_bps: f64,
    cached_bytes: f64,
) -> f64 {
    let total = duration_secs * bitrate_bps;
    if total <= 0.0 {
        return 1.0;
    }
    let deliverable = duration_secs * bandwidth_bps.max(0.0) + cached_bytes.max(0.0);
    (deliverable / total).clamp(0.0, 1.0)
}

/// Convenience wrappers over [`ObjectMeta`].
impl ObjectMeta {
    /// Prefix bytes needed to hide the startup delay at bandwidth `b`
    /// (see [`prefix_bytes_needed`]).
    pub fn prefix_needed(&self, bandwidth_bps: f64) -> f64 {
        prefix_bytes_needed(self.duration_secs, self.bitrate_bps, bandwidth_bps)
    }

    /// Startup delay given `cached_bytes` at bandwidth `b`
    /// (see [`service_delay_secs`]).
    pub fn service_delay(&self, bandwidth_bps: f64, cached_bytes: f64) -> f64 {
        service_delay_secs(
            self.duration_secs,
            self.bitrate_bps,
            bandwidth_bps,
            cached_bytes,
        )
    }

    /// Stream quality given `cached_bytes` at bandwidth `b`
    /// (see [`stream_quality`]).
    pub fn quality(&self, bandwidth_bps: f64, cached_bytes: f64) -> f64 {
        stream_quality(
            self.duration_secs,
            self.bitrate_bps,
            bandwidth_bps,
            cached_bytes,
        )
    }

    /// Whether the origin path alone can sustain real-time streaming
    /// (`r_i ≤ b_i`), in which case the paper's bandwidth-aware algorithms
    /// never cache the object.
    pub fn bandwidth_sufficient(&self, bandwidth_bps: f64) -> bool {
        self.bitrate_bps <= bandwidth_bps
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::object::ObjectKey;

    const T: f64 = 1_000.0; // seconds
    const R: f64 = 48_000.0; // bytes per second

    #[test]
    fn prefix_needed_basics() {
        // b = r/2: need half the object.
        assert_eq!(prefix_bytes_needed(T, R, R / 2.0), T * R / 2.0);
        // b >= r: need nothing.
        assert_eq!(prefix_bytes_needed(T, R, R), 0.0);
        assert_eq!(prefix_bytes_needed(T, R, 2.0 * R), 0.0);
        // b = 0: need everything.
        assert_eq!(prefix_bytes_needed(T, R, 0.0), T * R);
        // negative bandwidth treated as zero.
        assert_eq!(prefix_bytes_needed(T, R, -5.0), T * R);
    }

    #[test]
    fn conservative_prefix_interpolates() {
        let b = R / 2.0;
        let full = conservative_prefix_bytes(T, R, b, 1.0);
        let whole = conservative_prefix_bytes(T, R, b, 0.0);
        let half = conservative_prefix_bytes(T, R, b, 0.5);
        assert_eq!(full, T * (R - b));
        assert_eq!(whole, T * R);
        assert_eq!(half, T * (R - 0.5 * b));
        assert!(full < half && half < whole);
        // e outside [0,1] is clamped.
        assert_eq!(conservative_prefix_bytes(T, R, b, 2.0), full);
        assert_eq!(conservative_prefix_bytes(T, R, b, -1.0), whole);
    }

    #[test]
    fn delay_formula_matches_paper() {
        let b = R / 2.0;
        // x = 0: delay = (T r - T b)/b = T (r/b - 1) = T.
        assert_eq!(service_delay_secs(T, R, b, 0.0), T);
        // Cache a quarter of the object: delay halves.
        assert_eq!(service_delay_secs(T, R, b, T * R / 4.0), T / 2.0);
        // Cache the full deficit: no delay.
        assert_eq!(service_delay_secs(T, R, b, T * R / 2.0), 0.0);
        // Caching more than the deficit does not produce negative delay.
        assert_eq!(service_delay_secs(T, R, b, T * R), 0.0);
    }

    #[test]
    fn delay_with_zero_bandwidth() {
        assert_eq!(service_delay_secs(T, R, 0.0, 0.0), f64::INFINITY);
        assert_eq!(service_delay_secs(T, R, 0.0, T * R / 2.0), f64::INFINITY);
        assert_eq!(service_delay_secs(T, R, 0.0, T * R), 0.0);
    }

    #[test]
    fn delay_decreases_monotonically_in_cached_bytes() {
        let b = R / 3.0;
        let mut prev = f64::INFINITY;
        for i in 0..=10 {
            let x = T * R * i as f64 / 10.0;
            let d = service_delay_secs(T, R, b, x);
            assert!(d <= prev);
            prev = d;
        }
    }

    #[test]
    fn quality_formula() {
        let b = R / 2.0;
        assert_eq!(stream_quality(T, R, b, 0.0), 0.5);
        assert_eq!(stream_quality(T, R, b, T * R / 4.0), 0.75);
        assert_eq!(stream_quality(T, R, b, T * R / 2.0), 1.0);
        assert_eq!(stream_quality(T, R, 2.0 * R, 0.0), 1.0);
        assert_eq!(stream_quality(T, R, 0.0, 0.0), 0.0);
    }

    #[test]
    fn meta_wrappers_delegate() {
        let meta = ObjectMeta::new(ObjectKey::new(1), T, R, 0.0);
        let b = R / 2.0;
        assert_eq!(meta.prefix_needed(b), prefix_bytes_needed(T, R, b));
        assert_eq!(meta.service_delay(b, 0.0), T);
        assert_eq!(meta.quality(b, 0.0), 0.5);
        assert!(meta.bandwidth_sufficient(R));
        assert!(!meta.bandwidth_sufficient(R - 1.0));
    }
}
