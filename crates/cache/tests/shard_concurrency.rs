//! Concurrency suite for [`ShardedEngine`]: budget invariants under
//! multi-threaded load, exact aggregate counters, and bit-identity of the
//! one-shard configuration with the plain [`CacheEngine`].
//!
//! Thread count follows `SC_SIM_THREADS` (default 4) so CI can pin it.

use sc_cache::policy::{IntegralBandwidth, PartialBandwidth};
use sc_cache::{CacheEngine, ObjectKey, ObjectMeta, ShardedEngine};
use std::sync::Arc;

const R: f64 = 48_000.0;

fn threads() -> usize {
    std::env::var("SC_SIM_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(4)
}

fn obj(key: u64, duration: f64) -> ObjectMeta {
    ObjectMeta::new(ObjectKey::new(key), duration, R, 1.0)
}

/// A tiny per-thread xorshift so each worker draws its own access pattern
/// without any shared state.
fn xorshift(x: &mut u64) -> u64 {
    *x ^= *x << 13;
    *x ^= *x >> 7;
    *x ^= *x << 17;
    *x
}

/// Budget invariants hold at every observation point under threads hitting
/// disjoint key ranges (mostly distinct shards, zero logical contention).
#[test]
fn disjoint_keys_respect_budgets_under_concurrency() {
    let threads = threads();
    let capacity = 64.0 * obj(0, 100.0).size_bytes();
    let cache = Arc::new(ShardedEngine::new(capacity, 4, IntegralBandwidth::new).unwrap());
    let per_thread = 400u64;

    std::thread::scope(|scope| {
        for t in 0..threads {
            let cache = Arc::clone(&cache);
            scope.spawn(move || {
                let mut rng = 0x1234_5678_9abc_def0u64 ^ ((t as u64 + 1) << 32);
                for _ in 0..per_thread {
                    // Each thread owns keys [t*1000, t*1000+32).
                    let key = (t as u64) * 1_000 + xorshift(&mut rng) % 32;
                    let duration = 50.0 + (xorshift(&mut rng) % 200) as f64;
                    let bandwidth = R * 0.25 + (xorshift(&mut rng) % 32_000) as f64;
                    cache.on_access(&obj(key, duration), bandwidth);
                    // Budget invariants must hold at any instant, not just
                    // at the end.
                    assert!(cache.used_bytes() <= cache.capacity_bytes() + 1e-6);
                }
            });
        }
    });

    let stats = cache.stats();
    assert_eq!(stats.requests, threads as u64 * per_thread);
    for i in 0..cache.shard_count() {
        assert!(
            cache.shard_used_bytes(i) <= cache.shard_capacity(i) + 1e-6,
            "shard {i} exceeded its budget"
        );
    }
    assert!(cache.used_bytes() <= cache.capacity_bytes() + 1e-6);
}

/// The same invariants under full contention: every thread hammers the same
/// small key set, so shard locks and the atomic counters are racing.
#[test]
fn overlapping_keys_respect_budgets_under_concurrency() {
    let threads = threads();
    // Tight budget (8 object-units for ~16 objects) to keep evictions hot.
    let capacity = 8.0 * obj(0, 100.0).size_bytes();
    let cache = Arc::new(ShardedEngine::new(capacity, 4, IntegralBandwidth::new).unwrap());
    let per_thread = 600u64;

    std::thread::scope(|scope| {
        for t in 0..threads {
            let cache = Arc::clone(&cache);
            scope.spawn(move || {
                let mut rng = 0xdead_beef_cafe_f00du64 ^ (t as u64 + 1);
                for _ in 0..per_thread {
                    let key = xorshift(&mut rng) % 16;
                    let duration = 50.0 + (key * 20) as f64;
                    let bandwidth = R * 0.25 + (xorshift(&mut rng) % 32_000) as f64;
                    cache.on_access(&obj(key, duration), bandwidth);
                }
            });
        }
    });

    let stats = cache.stats();
    assert_eq!(stats.requests, threads as u64 * per_thread);
    // Eviction pressure was real.
    assert!(stats.evictions > 0, "tight budget must force evictions");
    for i in 0..cache.shard_count() {
        assert!(
            cache.shard_used_bytes(i) <= cache.shard_capacity(i) + 1e-6,
            "shard {i} exceeded its budget"
        );
    }
    assert!(cache.used_bytes() <= cache.capacity_bytes() + 1e-6);
    // contents() agrees with used_bytes() once writers are done.
    let total: f64 = cache.contents().iter().map(|&(_, b)| b).sum();
    assert!((total - cache.used_bytes()).abs() < 1e-6);
}

/// Budget stealing under concurrency: the sum of shard capacities must stay
/// exactly the global budget while capacities migrate.
#[test]
fn concurrent_steal_conserves_global_budget() {
    let threads = threads();
    let capacity = 12.0 * obj(0, 100.0).size_bytes();
    let cache = Arc::new(ShardedEngine::new(capacity, 4, IntegralBandwidth::new).unwrap());
    cache.set_steal(true);
    let per_thread = 400u64;

    std::thread::scope(|scope| {
        for t in 0..threads {
            let cache = Arc::clone(&cache);
            scope.spawn(move || {
                let mut rng = 0x0bad_5eed_0bad_5eedu64 ^ ((t as u64 + 1) << 17);
                for _ in 0..per_thread {
                    // A skewed pattern: key 0 is hot and large, the rest cold.
                    let draw = xorshift(&mut rng) % 8;
                    let (key, duration) = if draw < 4 {
                        (0, 400.0)
                    } else {
                        (1 + xorshift(&mut rng) % 24, 80.0)
                    };
                    let bandwidth = R * 0.2 + (xorshift(&mut rng) % 16_000) as f64;
                    cache.on_access(&obj(key, duration), bandwidth);
                }
            });
        }
    });

    let total_capacity: f64 = (0..cache.shard_count())
        .map(|i| cache.shard_capacity(i))
        .sum();
    assert!(
        (total_capacity - capacity).abs() < 1e-6,
        "steal must conserve the global budget: {total_capacity} vs {capacity}"
    );
    for i in 0..cache.shard_count() {
        assert!(
            cache.shard_used_bytes(i) <= cache.shard_capacity(i) + 1e-6,
            "shard {i} exceeded its (possibly shifted) budget"
        );
    }
    assert!(cache.used_bytes() <= cache.capacity_bytes() + 1e-6);
}

/// `shards = 1`, single thread: outcomes, contents and every statistics
/// field must be **bit-identical** to the unsharded engine fed the same
/// access sequence.
#[test]
fn one_shard_is_bit_identical_to_plain_engine() {
    let capacity = 10.0 * obj(0, 100.0).size_bytes();
    let sharded = ShardedEngine::new(capacity, 1, PartialBandwidth::new).unwrap();
    let mut plain = CacheEngine::new(capacity, PartialBandwidth::new()).unwrap();

    let mut rng = 0x5eed_5eed_5eed_5eedu64;
    for step in 0..2_000 {
        let key = xorshift(&mut rng) % 24;
        let duration = 40.0 + (xorshift(&mut rng) % 300) as f64;
        let bandwidth = 1_000.0 + (xorshift(&mut rng) % 90_000) as f64;
        let meta = obj(key, duration);

        let a = sharded.on_access(&meta, bandwidth);
        let b = plain.on_access(&meta, bandwidth);
        assert_eq!(a, b, "outcome diverged at step {step}");
        assert_eq!(
            sharded.cached_bytes(meta.key).to_bits(),
            plain.cached_bytes(meta.key).to_bits(),
            "cached bytes diverged at step {step}"
        );

        // Exercise clear() occasionally — its eviction accounting must
        // match the engine's slot-order accumulation exactly.
        if step % 500 == 499 {
            assert_eq!(sharded.clear(), plain.clear());
        }
    }

    assert_eq!(sharded.used_bytes().to_bits(), plain.used_bytes().to_bits());
    assert_eq!(sharded.len(), plain.len());

    let a = sharded.stats();
    let b = plain.stats();
    assert_eq!(a.requests, b.requests);
    assert_eq!(a.hits, b.hits);
    assert_eq!(a.admissions, b.admissions);
    assert_eq!(a.evictions, b.evictions);
    assert_eq!(a.bytes_requested.to_bits(), b.bytes_requested.to_bits());
    assert_eq!(a.bytes_from_cache.to_bits(), b.bytes_from_cache.to_bits());
    assert_eq!(a.bytes_from_origin.to_bits(), b.bytes_from_origin.to_bits());
    assert_eq!(a.bytes_admitted.to_bits(), b.bytes_admitted.to_bits());
    assert_eq!(a.bytes_evicted.to_bits(), b.bytes_evicted.to_bits());

    // Contents agree as multisets of exact bit patterns.
    let mut ca: Vec<(u64, u64)> = sharded
        .contents()
        .into_iter()
        .map(|(k, v)| (k.as_u64(), v.to_bits()))
        .collect();
    let mut cb: Vec<(u64, u64)> = plain
        .contents()
        .into_iter()
        .map(|(k, v)| (k.as_u64(), v.to_bits()))
        .collect();
    ca.sort_unstable();
    cb.sort_unstable();
    assert_eq!(ca, cb);
}

/// Sharded multi-threaded runs must agree with a single-threaded replay on
/// everything order-independent: per-shard placement is a pure function of
/// the key, and integer request counts are exact.
#[test]
fn routing_is_identical_across_thread_counts() {
    let capacity = 1e9;
    let concurrent = Arc::new(ShardedEngine::new(capacity, 4, PartialBandwidth::new).unwrap());
    let sequential = ShardedEngine::new(capacity, 4, PartialBandwidth::new).unwrap();
    let keys: Vec<u64> = (0..64).collect();

    std::thread::scope(|scope| {
        for chunk in keys.chunks(keys.len() / threads().max(1) + 1) {
            let cache = Arc::clone(&concurrent);
            scope.spawn(move || {
                for &k in chunk {
                    cache.on_access(&obj(k, 120.0), R / 2.0);
                }
            });
        }
    });
    for &k in &keys {
        sequential.on_access(&obj(k, 120.0), R / 2.0);
    }

    for &k in &keys {
        let key = ObjectKey::new(k);
        assert_eq!(concurrent.shard_of(key), sequential.shard_of(key));
        // Capacity is effectively unbounded, so allocations are identical
        // regardless of arrival order.
        assert_eq!(
            concurrent.cached_bytes(key).to_bits(),
            sequential.cached_bytes(key).to_bits()
        );
    }
    assert_eq!(concurrent.stats().requests, sequential.stats().requests);
}
