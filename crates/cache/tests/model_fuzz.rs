//! Model-based fuzz test of the slab cache engine.
//!
//! A naive reference model — a `BTreeMap` of cached entries, min-utility
//! victim selection by full scan, no heap, no slab, no scratch buffers —
//! re-implements the replacement semantics of Section 2.4 in the most
//! obviously-correct way. Identical randomized access streams are driven
//! through the real [`CacheEngine`] (via the slot-addressed hot path) and
//! the model, asserting identical outcomes at every step: hits, evictions,
//! admissions, per-object cached bytes (bitwise) and total used bytes
//! (bitwise). Tight capacities keep the streams deep in the
//! admission/eviction/rollback regime of `rebalance`.
//!
//! Utility ties would make the victim choice ambiguous between a heap and
//! a scan, so the streams draw continuous random bandwidths: utilities
//! (`F/b` for the bandwidth-aware policies) are then distinct with
//! probability 1 and the comparison is exact.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sc_cache::policy::{PolicyKind, UtilityPolicy};
use sc_cache::{AccessOutcome, CacheEngine, ObjectKey, ObjectMeta, ShardedEngine};
use std::collections::BTreeMap;

/// The naive reference: entries keyed by raw object id in a `BTreeMap`,
/// victims found by scanning for the strict-minimum utility.
struct ReferenceModel<P> {
    capacity: f64,
    used: f64,
    policy: P,
    clock: u64,
    /// key → (cached bytes, last utility)
    entries: BTreeMap<u64, (f64, f64)>,
    frequencies: BTreeMap<u64, u64>,
    hits: u64,
    evictions: u64,
    admissions: u64,
}

impl<P: UtilityPolicy> ReferenceModel<P> {
    fn new(capacity: f64, policy: P) -> Self {
        ReferenceModel {
            capacity,
            used: 0.0,
            policy,
            clock: 0,
            entries: BTreeMap::new(),
            frequencies: BTreeMap::new(),
            hits: 0,
            evictions: 0,
            admissions: 0,
        }
    }

    fn on_access(&mut self, meta: &ObjectMeta, bandwidth_bps: f64) -> AccessOutcome {
        self.clock += 1;
        let key = meta.key.as_u64();
        let freq = {
            let f = self.frequencies.entry(key).or_insert(0);
            *f += 1;
            *f
        };
        let size = meta.size_bytes();
        let cached_before = self.entries.get(&key).map_or(0.0, |e| e.0);
        let bytes_from_cache = cached_before.min(size);
        let bytes_from_origin = (size - bytes_from_cache).max(0.0);
        if bytes_from_cache > 0.0 {
            self.hits += 1;
        }

        let utility = self
            .policy
            .utility(meta, freq, bandwidth_bps, self.clock)
            .max(0.0);
        let target = self
            .policy
            .target_bytes(meta, bandwidth_bps)
            .clamp(0.0, size);

        let (cached_after, evictions, admitted) =
            self.rebalance(key, cached_before, target, utility);

        AccessOutcome {
            cached_bytes_before: cached_before,
            cached_bytes_after: cached_after,
            bytes_from_cache,
            bytes_from_origin,
            evictions,
            admitted,
        }
    }

    fn rebalance(
        &mut self,
        key: u64,
        cached_before: f64,
        target: f64,
        utility: f64,
    ) -> (f64, usize, bool) {
        if target <= cached_before {
            if let Some(entry) = self.entries.get_mut(&key) {
                entry.1 = utility;
            }
            return (cached_before, 0, false);
        }

        // Conceptually remove the object, then find victims by scanning for
        // the strictly-lower-utility minimum until the target fits.
        let mut used = self.used;
        if self.entries.contains_key(&key) {
            used -= cached_before;
        }
        let mut victims: Vec<u64> = Vec::new();
        while self.capacity - used < target {
            let candidate = self
                .entries
                .iter()
                .filter(|(k, _)| **k != key && !victims.contains(k))
                .min_by(|a, b| (a.1).1.partial_cmp(&(b.1).1).expect("utility is not NaN"));
            match candidate {
                Some((k, (bytes, victim_utility))) if *victim_utility < utility => {
                    used -= *bytes;
                    victims.push(*k);
                }
                _ => break,
            }
        }

        let available = (self.capacity - used).max(0.0);
        let grant = if self.policy.allows_partial_admission() {
            target.min(available)
        } else if available >= target {
            target
        } else {
            0.0
        };

        if grant > 0.0 && grant >= cached_before {
            let evicted = victims.len();
            for v in victims {
                self.entries.remove(&v);
                self.evictions += 1;
            }
            self.entries.insert(key, (grant, utility));
            self.used = used + grant;
            let grew = grant > cached_before;
            if grew {
                self.admissions += 1;
            }
            (grant, evicted, grew)
        } else {
            // Roll back: nothing evicted, the object keeps its old bytes
            // (but its utility is refreshed, as in the engine).
            if let Some(entry) = self.entries.get_mut(&key) {
                entry.1 = utility;
            }
            (cached_before, 0, false)
        }
    }
}

/// Drives `steps` random accesses through the engine (slot path) and the
/// reference model, comparing every outcome and the full cache state.
fn fuzz_policy(kind: PolicyKind, capacity_objects: f64, seed: u64, steps: usize) {
    const OBJECTS: u64 = 30;
    const R: f64 = 48_000.0;
    let unit = ObjectMeta::new(ObjectKey::new(0), 100.0, R, 1.0).size_bytes();
    let capacity = capacity_objects * unit;

    let mut engine = CacheEngine::new(capacity, kind.build()).unwrap();
    engine.ensure_slots(OBJECTS as usize);
    let mut model = ReferenceModel::new(capacity, kind.build());
    let mut rng = StdRng::seed_from_u64(seed);

    // Durations are a fixed function of the key so each object's size is
    // stable across accesses, as in a real catalog.
    let metas: Vec<ObjectMeta> = (0..OBJECTS)
        .map(|k| ObjectMeta::new(ObjectKey::new(k), 20.0 + 13.0 * k as f64, R, 1.0 + k as f64))
        .collect();

    for step in 0..steps {
        let key = rng.gen_range(0..OBJECTS);
        let bandwidth = rng.gen_range(1_000.0..120_000.0);
        let meta = &metas[key as usize];

        // Alternate entry points: both must agree with the model.
        let out = if step % 2 == 0 {
            engine.on_access_slot(key as u32, meta, bandwidth)
        } else {
            engine.on_access(meta, bandwidth)
        };
        let expected = model.on_access(meta, bandwidth);
        assert_eq!(
            out,
            expected,
            "{} diverged from model at step {step} (key {key})",
            kind.label()
        );

        // Full-state comparison: same objects cached with the same bytes.
        assert_eq!(
            engine.len(),
            model.entries.len(),
            "{} entry count diverged at step {step}",
            kind.label()
        );
        for (k, (bytes, _)) in &model.entries {
            assert_eq!(
                engine.cached_bytes(ObjectKey::new(*k)).to_bits(),
                bytes.to_bits(),
                "{} cached bytes of {k} diverged at step {step}",
                kind.label()
            );
        }
        assert_eq!(
            engine.used_bytes().to_bits(),
            model.used.to_bits(),
            "{} used bytes diverged at step {step}",
            kind.label()
        );
        assert_eq!(engine.stats().hits, model.hits);
        assert_eq!(engine.stats().evictions, model.evictions);
        assert_eq!(engine.stats().admissions, model.admissions);
        assert!(engine.used_bytes() <= capacity + 1e-6);
    }

    // The run must actually have exercised the interesting paths.
    assert!(model.evictions > 0, "{}: no evictions", kind.label());
    assert!(model.admissions > 0, "{}: no admissions", kind.label());
}

/// Drives `steps` random accesses through a [`ShardedEngine`] and one
/// reference model **per shard**, each sized by the engine's own budget
/// split (`floor(capacity / shards)`, remainder on shard 0) and fed only
/// the keys the engine's hash routes to it. Outcomes, per-object bytes,
/// per-shard used bytes and the aggregate counters must all match bitwise
/// — for `shards = 1` this is exactly the unsharded comparison.
fn fuzz_sharded(kind: PolicyKind, capacity_objects: f64, shards: usize, seed: u64, steps: usize) {
    const OBJECTS: u64 = 30;
    const R: f64 = 48_000.0;
    let unit = ObjectMeta::new(ObjectKey::new(0), 100.0, R, 1.0).size_bytes();
    let capacity = capacity_objects * unit;

    let engine = ShardedEngine::new(capacity, shards, || kind.build()).unwrap();
    // One model per shard, budgets mirroring the engine's split.
    let per_shard = (capacity / shards as f64).floor();
    let mut models: Vec<ReferenceModel<_>> = (0..shards)
        .map(|i| {
            let budget = if i == 0 {
                capacity - per_shard * (shards - 1) as f64
            } else {
                per_shard
            };
            assert_eq!(budget.to_bits(), engine.shard_capacity(i).to_bits());
            ReferenceModel::new(budget, kind.build())
        })
        .collect();
    let mut rng = StdRng::seed_from_u64(seed);

    let metas: Vec<ObjectMeta> = (0..OBJECTS)
        .map(|k| ObjectMeta::new(ObjectKey::new(k), 20.0 + 13.0 * k as f64, R, 1.0 + k as f64))
        .collect();

    for step in 0..steps {
        let key = rng.gen_range(0..OBJECTS);
        let bandwidth = rng.gen_range(1_000.0..120_000.0);
        let meta = &metas[key as usize];
        let shard = engine.shard_of(meta.key);

        let out = engine.on_access(meta, bandwidth);
        let expected = models[shard].on_access(meta, bandwidth);
        assert_eq!(
            out,
            expected,
            "{} ({shards} shards) diverged from model at step {step} (key {key}, shard {shard})",
            kind.label()
        );
        for (s, model) in models.iter().enumerate() {
            for (k, (bytes, _)) in &model.entries {
                assert_eq!(
                    engine.cached_bytes(ObjectKey::new(*k)).to_bits(),
                    bytes.to_bits(),
                    "{} cached bytes of {k} (shard {s}) diverged at step {step}",
                    kind.label()
                );
            }
            assert_eq!(
                engine.shard_used_bytes(s).to_bits(),
                model.used.to_bits(),
                "{} shard {s} used bytes diverged at step {step}",
                kind.label()
            );
        }
    }

    // Aggregate counters equal the per-shard model sums.
    let stats = engine.stats();
    assert_eq!(stats.requests, steps as u64);
    assert_eq!(stats.hits, models.iter().map(|m| m.hits).sum::<u64>());
    assert_eq!(
        stats.evictions,
        models.iter().map(|m| m.evictions).sum::<u64>()
    );
    assert_eq!(
        stats.admissions,
        models.iter().map(|m| m.admissions).sum::<u64>()
    );
    assert_eq!(
        engine.len(),
        models.iter().map(|m| m.entries.len()).sum::<usize>()
    );
    assert!(
        models.iter().map(|m| m.evictions).sum::<u64>() > 0,
        "{} ({shards} shards): no evictions",
        kind.label()
    );
}

/// PB: partial admission — grants shrink to whatever fits, rollbacks only
/// when nothing fits at all.
#[test]
fn pb_matches_reference_model() {
    fuzz_policy(PolicyKind::PartialBandwidth, 2.5, 0xF00D, 4_000);
    fuzz_policy(PolicyKind::PartialBandwidth, 0.75, 0xBEEF, 2_000);
}

/// IB: integral admission — all-or-nothing grants make the rollback path
/// (pop victims, fail to fit, restore) the common case under tight space.
#[test]
fn ib_matches_reference_model() {
    fuzz_policy(PolicyKind::IntegralBandwidth, 3.0, 0xCAFE, 4_000);
    fuzz_policy(PolicyKind::IntegralBandwidth, 1.25, 0x5EED, 2_000);
}

/// PB(e) hybrid: larger targets than PB, still partial.
#[test]
fn hybrid_matches_reference_model() {
    fuzz_policy(
        PolicyKind::HybridPartialBandwidth { e: 0.5 },
        2.0,
        0xD00D,
        3_000,
    );
}

/// IB-V: value-weighted utilities exercise a different utility surface.
#[test]
fn ibv_matches_reference_model() {
    fuzz_policy(PolicyKind::IntegralBandwidthValue, 2.0, 0xA11CE, 3_000);
}

/// One shard must reproduce the reference model exactly like the plain
/// engine does — same comparison, routed through `ShardedEngine`.
#[test]
fn sharded_pb_one_shard_matches_reference_model() {
    fuzz_sharded(PolicyKind::PartialBandwidth, 2.5, 1, 0xF00D, 3_000);
}

/// Four shards: each shard is an independent engine against its own
/// model, with the hash route deciding membership.
#[test]
fn sharded_pb_four_shards_match_reference_models() {
    fuzz_sharded(PolicyKind::PartialBandwidth, 4.0, 4, 0xF00D, 3_000);
}

/// IB under sharding keeps the all-or-nothing rollback path hot in every
/// shard (per-shard budgets are a quarter of the global one).
#[test]
fn sharded_ib_four_shards_match_reference_models() {
    fuzz_sharded(PolicyKind::IntegralBandwidth, 5.0, 4, 0xCAFE, 3_000);
}
