//! Property-based tests of the caching core: allocation math invariants,
//! heap correctness, engine capacity safety and solver optimality bounds.

use proptest::prelude::*;
use sc_cache::policy::{
    HybridPartialBandwidth, IntegralBandwidth, IntegralFrequency, PartialBandwidth, PolicyKind,
};
use sc_cache::{
    average_service_delay, greedy_value_selection, optimal_partial_allocation,
    prefix_bytes_needed, service_delay_secs, stream_quality, total_value, CacheEngine, ObjectKey,
    ObjectMeta, OfflineObject, UtilityHeap,
};

fn meta(key: u64, duration: f64, bitrate: f64, value: f64) -> ObjectMeta {
    ObjectMeta::new(ObjectKey::new(key), duration, bitrate, value)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The prefix needed never exceeds the object size, and fully caching
    /// that prefix always removes the startup delay.
    #[test]
    fn prefix_hides_delay(duration in 1.0f64..10_000.0, bitrate in 100.0f64..1e6, bandwidth in 0.0f64..2e6) {
        let prefix = prefix_bytes_needed(duration, bitrate, bandwidth);
        prop_assert!(prefix >= 0.0);
        prop_assert!(prefix <= duration * bitrate + 1e-6);
        if bandwidth > 0.0 {
            let delay = service_delay_secs(duration, bitrate, bandwidth, prefix);
            prop_assert!(delay.abs() < 1e-6, "delay {delay}");
        }
    }

    /// Delay decreases monotonically (weakly) as more bytes are cached, and
    /// quality increases monotonically.
    #[test]
    fn delay_and_quality_monotone(duration in 1.0f64..5_000.0, bitrate in 100.0f64..1e6,
                                  bandwidth in 1.0f64..2e6, frac_a in 0.0f64..1.0, frac_b in 0.0f64..1.0) {
        let size = duration * bitrate;
        let (lo, hi) = if frac_a <= frac_b { (frac_a, frac_b) } else { (frac_b, frac_a) };
        let d_lo = service_delay_secs(duration, bitrate, bandwidth, lo * size);
        let d_hi = service_delay_secs(duration, bitrate, bandwidth, hi * size);
        prop_assert!(d_hi <= d_lo + 1e-9);
        let q_lo = stream_quality(duration, bitrate, bandwidth, lo * size);
        let q_hi = stream_quality(duration, bitrate, bandwidth, hi * size);
        prop_assert!(q_hi + 1e-12 >= q_lo);
        prop_assert!((0.0..=1.0).contains(&q_lo) && (0.0..=1.0).contains(&q_hi));
    }

    /// The heap always pops utilities in non-decreasing order.
    #[test]
    fn heap_pops_sorted(utilities in proptest::collection::vec(0.0f64..1e9, 1..200)) {
        let mut heap = UtilityHeap::new();
        for (i, &u) in utilities.iter().enumerate() {
            heap.insert(ObjectKey::new(i as u64), u);
        }
        let mut prev = f64::NEG_INFINITY;
        while let Some((_, u)) = heap.pop_min() {
            prop_assert!(u >= prev);
            prev = u;
        }
    }

    /// Under arbitrary access patterns the engine never exceeds its
    /// capacity, and its bookkeeping (sum of entries == used bytes) stays
    /// consistent. Checked for a partial and an integral policy.
    #[test]
    fn engine_capacity_invariant(
        accesses in proptest::collection::vec((0u64..30, 10.0f64..500.0, 1_000.0f64..100_000.0), 1..300),
        capacity_mb in 1.0f64..200.0,
    ) {
        let capacity = capacity_mb * 1e6;
        let mut pb = CacheEngine::new(capacity, PartialBandwidth::new()).unwrap();
        let mut ib = CacheEngine::new(capacity, IntegralBandwidth::new()).unwrap();
        let mut ifc = CacheEngine::new(capacity, IntegralFrequency::new()).unwrap();
        for &(key, duration, bandwidth) in &accesses {
            let o = meta(key, duration, 48_000.0, 1.0);
            pb.on_access(&o, bandwidth);
            ib.on_access(&o, bandwidth);
            ifc.on_access(&o, bandwidth);
            prop_assert!(pb.used_bytes() <= pb.capacity_bytes() + 1e-3);
            let pb_total: f64 = pb.contents().iter().map(|(_, b)| b).sum();
            prop_assert!((pb_total - pb.used_bytes()).abs() < 1e-3);
            prop_assert!(ib.used_bytes() <= ib.capacity_bytes() + 1e-3);
            let ib_total: f64 = ib.contents().iter().map(|(_, b)| b).sum();
            prop_assert!((ib_total - ib.used_bytes()).abs() < 1e-3);
        }
        // Stats are consistent: cache + origin bytes == requested bytes.
        for s in [*pb.stats(), *ib.stats(), *ifc.stats()] {
            prop_assert!((s.bytes_from_cache + s.bytes_from_origin - s.bytes_requested).abs() < 1.0);
            prop_assert!(s.traffic_reduction_ratio() >= 0.0 && s.traffic_reduction_ratio() <= 1.0);
        }
    }

    /// PB never caches more than the object's own size and never caches
    /// objects whose bandwidth is sufficient.
    #[test]
    fn pb_allocation_bounds(
        accesses in proptest::collection::vec((0u64..20, 1_000.0f64..100_000.0), 1..200),
    ) {
        let mut cache = CacheEngine::new(1e12, PartialBandwidth::new()).unwrap();
        for &(key, bandwidth) in &accesses {
            // Object metadata is a fixed function of the key.
            let duration = 10.0 + 25.0 * key as f64;
            let o = meta(key, duration, 48_000.0, 1.0);
            cache.on_access(&o, bandwidth);
            let cached = cache.cached_bytes(o.key);
            prop_assert!(cached <= o.size_bytes() + 1e-6);
            if bandwidth >= 48_000.0 && cached == 0.0 {
                // Objects first seen with sufficient bandwidth stay uncached
                // (they may have been admitted earlier with a lower estimate).
                prop_assert_eq!(cache.cached_bytes(o.key), 0.0);
            }
        }
    }

    /// The hybrid policy's allocation interpolates between PB (e = 1) and
    /// whole-object caching (e = 0).
    #[test]
    fn hybrid_targets_bracketed(duration in 10.0f64..1_000.0, bandwidth in 1_000.0f64..47_000.0, e in 0.0f64..1.0) {
        use sc_cache::policy::UtilityPolicy;
        let o = meta(1, duration, 48_000.0, 1.0);
        let pb = PartialBandwidth::new().target_bytes(&o, bandwidth);
        let hybrid = HybridPartialBandwidth::new(e).target_bytes(&o, bandwidth);
        prop_assert!(hybrid + 1e-9 >= pb);
        prop_assert!(hybrid <= o.size_bytes() + 1e-6);
    }

    /// The offline optimal allocation respects capacity and is never worse
    /// (in rate-weighted delay) than the "cache nothing" and the
    /// "equal share" baselines.
    #[test]
    fn offline_optimal_dominates_baselines(
        specs in proptest::collection::vec((10.0f64..500.0, 0.1f64..10.0, 1_000.0f64..100_000.0), 1..30),
        capacity_mb in 0.0f64..500.0,
    ) {
        let objects: Vec<OfflineObject> = specs.iter().enumerate()
            .map(|(i, &(duration, rate, bandwidth))| OfflineObject::new(
                meta(i as u64, duration, 48_000.0, 1.0), rate, bandwidth))
            .collect();
        let capacity = capacity_mb * 1e6;
        let alloc = optimal_partial_allocation(&objects, capacity).unwrap();
        let total: f64 = alloc.iter().sum();
        prop_assert!(total <= capacity + 1e-3);
        for (a, o) in alloc.iter().zip(&objects) {
            prop_assert!(*a <= o.meta.size_bytes() + 1e-6);
        }
        let optimal = average_service_delay(&objects, &alloc).unwrap();
        let nothing = average_service_delay(&objects, &vec![0.0; objects.len()]).unwrap();
        prop_assert!(optimal <= nothing + 1e-9);
        let equal: Vec<f64> = objects.iter()
            .map(|o| (capacity / objects.len() as f64)
                 .min(prefix_bytes_needed(o.meta.duration_secs, o.meta.bitrate_bps, o.bandwidth_bps)))
            .collect();
        if equal.iter().sum::<f64>() <= capacity + 1e-3 {
            let equal_delay = average_service_delay(&objects, &equal).unwrap();
            prop_assert!(optimal <= equal_delay + 1e-6,
                "optimal {optimal} vs equal {equal_delay}");
        }
    }

    /// Greedy value selection fits in the capacity and never selects objects
    /// with abundant bandwidth.
    #[test]
    fn greedy_value_selection_feasible(
        specs in proptest::collection::vec((10.0f64..500.0, 0.1f64..10.0, 1_000.0f64..100_000.0, 1.0f64..10.0), 1..30),
        capacity_mb in 0.0f64..500.0,
    ) {
        let objects: Vec<OfflineObject> = specs.iter().enumerate()
            .map(|(i, &(duration, rate, bandwidth, value))| OfflineObject::new(
                meta(i as u64, duration, 48_000.0, value), rate, bandwidth))
            .collect();
        let capacity = capacity_mb * 1e6;
        let selected = greedy_value_selection(&objects, capacity).unwrap();
        let used: f64 = objects.iter().zip(&selected).filter(|(_, &s)| s)
            .map(|(o, _)| prefix_bytes_needed(o.meta.duration_secs, o.meta.bitrate_bps, o.bandwidth_bps))
            .sum();
        prop_assert!(used <= capacity + 1e-3);
        for (o, &s) in objects.iter().zip(&selected) {
            if o.meta.bitrate_bps <= o.bandwidth_bps {
                prop_assert!(!s);
            }
        }
        prop_assert!(total_value(&objects, &selected).unwrap() >= 0.0);
    }

    /// All paper policies process arbitrary access streams without panicking
    /// or breaking capacity, through the boxed (dynamic) interface.
    #[test]
    fn all_policies_are_safe(
        accesses in proptest::collection::vec((0u64..15, 10.0f64..300.0, 1_000.0f64..100_000.0), 1..100),
    ) {
        for kind in PolicyKind::all_paper_policies() {
            let mut cache = CacheEngine::new(50e6, kind.build()).unwrap();
            for &(key, duration, bandwidth) in &accesses {
                let o = meta(key, duration, 48_000.0, 5.0);
                cache.on_access(&o, bandwidth);
                prop_assert!(cache.used_bytes() <= cache.capacity_bytes() + 1e-3);
            }
        }
    }
}
