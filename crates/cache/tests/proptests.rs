//! Property-style tests of the caching core: allocation math invariants,
//! heap correctness, engine capacity safety and solver optimality bounds.
//!
//! The registry-less build environment has no `proptest`, so these are
//! seeded-loop property tests: each property draws a few hundred random
//! cases from a fixed-seed [`StdRng`] and asserts the invariant on every
//! case. Failures print the offending case, and reruns are deterministic.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sc_cache::policy::{
    HybridPartialBandwidth, IntegralBandwidth, IntegralFrequency, PartialBandwidth, PolicyKind,
    UtilityPolicy,
};
use sc_cache::{
    average_service_delay, greedy_value_selection, optimal_partial_allocation, prefix_bytes_needed,
    service_delay_secs, stream_quality, total_value, CacheEngine, ObjectKey, ObjectMeta,
    OfflineObject, UtilityHeap,
};
use std::collections::HashMap;

fn meta(key: u64, duration: f64, bitrate: f64, value: f64) -> ObjectMeta {
    ObjectMeta::new(ObjectKey::new(key), duration, bitrate, value)
}

/// The prefix needed never exceeds the object size, and fully caching that
/// prefix always removes the startup delay.
#[test]
fn prefix_hides_delay() {
    let mut rng = StdRng::seed_from_u64(0xA11CE);
    for _ in 0..300 {
        let duration = rng.gen_range(1.0..10_000.0);
        let bitrate = rng.gen_range(100.0..1e6);
        let bandwidth = rng.gen_range(0.0..2e6);
        let prefix = prefix_bytes_needed(duration, bitrate, bandwidth);
        assert!(prefix >= 0.0);
        assert!(prefix <= duration * bitrate + 1e-6);
        if bandwidth > 0.0 {
            let delay = service_delay_secs(duration, bitrate, bandwidth, prefix);
            assert!(delay.abs() < 1e-6, "delay {delay}");
        }
    }
}

/// The delay is zero **iff** the cached prefix covers the bandwidth deficit
/// `(r − b)⁺·T` (up to float tolerance) — the exactness claim of
/// Section 2.2 that makes PB's allocation minimal.
#[test]
fn delay_zero_iff_prefix_covers_deficit() {
    let mut rng = StdRng::seed_from_u64(0xDEF1C17);
    for _ in 0..500 {
        let duration = rng.gen_range(1.0..5_000.0);
        let bitrate = rng.gen_range(100.0..1e6);
        let bandwidth = rng.gen_range(1.0..2e6);
        let deficit = prefix_bytes_needed(duration, bitrate, bandwidth);
        let cached = rng.gen_range(0.0..=duration * bitrate);
        let delay = service_delay_secs(duration, bitrate, bandwidth, cached);
        // Tolerance band around the deficit: scale-aware epsilon.
        let eps = 1e-9 * duration * bitrate;
        if cached >= deficit + eps {
            assert_eq!(delay, 0.0, "cached {cached} >= deficit {deficit}");
        }
        if delay == 0.0 {
            assert!(
                cached >= deficit - eps,
                "zero delay with cached {cached} < deficit {deficit}"
            );
        } else {
            assert!(delay > 0.0);
            assert!(cached < deficit, "positive delay despite covered deficit");
        }
    }
}

/// Delay decreases monotonically (weakly) as more bytes are cached, and
/// quality increases monotonically.
#[test]
fn delay_and_quality_monotone() {
    let mut rng = StdRng::seed_from_u64(0x5EED);
    for _ in 0..300 {
        let duration = rng.gen_range(1.0..5_000.0);
        let bitrate = rng.gen_range(100.0..1e6);
        let bandwidth = rng.gen_range(1.0..2e6);
        let size = duration * bitrate;
        let frac_a: f64 = rng.gen();
        let frac_b: f64 = rng.gen();
        let (lo, hi) = if frac_a <= frac_b {
            (frac_a, frac_b)
        } else {
            (frac_b, frac_a)
        };
        let d_lo = service_delay_secs(duration, bitrate, bandwidth, lo * size);
        let d_hi = service_delay_secs(duration, bitrate, bandwidth, hi * size);
        assert!(d_hi <= d_lo + 1e-9);
        let q_lo = stream_quality(duration, bitrate, bandwidth, lo * size);
        let q_hi = stream_quality(duration, bitrate, bandwidth, hi * size);
        assert!(q_hi + 1e-12 >= q_lo);
        assert!((0.0..=1.0).contains(&q_lo) && (0.0..=1.0).contains(&q_hi));
    }
}

/// The heap always pops utilities in non-decreasing order.
#[test]
fn heap_pops_sorted() {
    let mut rng = StdRng::seed_from_u64(0x48EA9);
    for _ in 0..100 {
        let n = rng.gen_range(1..200usize);
        let mut heap = UtilityHeap::new();
        for i in 0..n {
            heap.insert(i as u32, rng.gen_range(0.0..1e9));
        }
        assert!(heap.validate());
        let mut prev = f64::NEG_INFINITY;
        while let Some((_, u)) = heap.pop_min() {
            assert!(u >= prev);
            prev = u;
        }
    }
}

/// Heap order and index consistency are preserved under arbitrary mixes of
/// `insert`, `update`, `pop_min` and `remove`, checked against a flat
/// `HashMap` model of the expected contents.
#[test]
fn heap_invariant_under_mixed_operations() {
    let mut rng = StdRng::seed_from_u64(0xB1476);
    let mut heap = UtilityHeap::new();
    let mut model: HashMap<u32, f64> = HashMap::new();
    for step in 0..20_000 {
        let handle = rng.gen_range(0..150u32);
        match rng.gen_range(0..4u32) {
            0 => {
                let u = rng.gen_range(0.0..1e6);
                heap.insert(handle, u);
                model.insert(handle, u);
            }
            1 => {
                let u = rng.gen_range(0.0..1e6);
                heap.update(handle, u);
                model.insert(handle, u);
            }
            2 => {
                let removed = heap.remove(handle);
                assert_eq!(removed, model.remove(&handle), "remove disagreed at {step}");
            }
            _ => match heap.pop_min() {
                None => assert!(model.is_empty()),
                Some((h, u)) => {
                    let model_min = model.values().cloned().fold(f64::INFINITY, f64::min);
                    assert_eq!(u, model_min, "pop_min not minimal at {step}");
                    assert_eq!(model.remove(&h), Some(u));
                }
            },
        }
        assert_eq!(heap.len(), model.len());
        // Cheap order probe every step, full structural check periodically.
        if let Some((_, u)) = heap.peek_min() {
            let model_min = model.values().cloned().fold(f64::INFINITY, f64::min);
            assert_eq!(u, model_min);
        }
        if step % 64 == 0 {
            assert!(heap.validate(), "heap invariant broken at step {step}");
            for (h, u) in model.iter() {
                assert_eq!(heap.utility(*h), Some(*u));
            }
        }
    }
    assert!(heap.validate());
}

/// Under arbitrary access patterns the engine never exceeds its capacity,
/// and its bookkeeping (sum of entries == used bytes) stays consistent.
/// Checked for a partial and two integral policies.
#[test]
fn engine_capacity_invariant() {
    let mut rng = StdRng::seed_from_u64(0xCAFE);
    for _ in 0..25 {
        let capacity = rng.gen_range(1.0..200.0) * 1e6;
        let mut pb = CacheEngine::new(capacity, PartialBandwidth::new()).unwrap();
        let mut ib = CacheEngine::new(capacity, IntegralBandwidth::new()).unwrap();
        let mut ifc = CacheEngine::new(capacity, IntegralFrequency::new()).unwrap();
        let accesses = rng.gen_range(1..300usize);
        for _ in 0..accesses {
            let key = rng.gen_range(0..30u64);
            let duration = rng.gen_range(10.0..500.0);
            let bandwidth = rng.gen_range(1_000.0..100_000.0);
            let o = meta(key, duration, 48_000.0, 1.0);
            pb.on_access(&o, bandwidth);
            ib.on_access(&o, bandwidth);
            ifc.on_access(&o, bandwidth);
            assert!(pb.used_bytes() <= pb.capacity_bytes() + 1e-3);
            let pb_total: f64 = pb.contents().iter().map(|(_, b)| b).sum();
            assert!((pb_total - pb.used_bytes()).abs() < 1e-3);
            assert!(ib.used_bytes() <= ib.capacity_bytes() + 1e-3);
            let ib_total: f64 = ib.contents().iter().map(|(_, b)| b).sum();
            assert!((ib_total - ib.used_bytes()).abs() < 1e-3);
            assert!(ifc.used_bytes() <= ifc.capacity_bytes() + 1e-3);
            let ifc_total: f64 = ifc.contents().iter().map(|(_, b)| b).sum();
            assert!((ifc_total - ifc.used_bytes()).abs() < 1e-3);
        }
        // Stats are consistent: cache + origin bytes == requested bytes.
        for s in [*pb.stats(), *ib.stats(), *ifc.stats()] {
            assert!((s.bytes_from_cache + s.bytes_from_origin - s.bytes_requested).abs() < 1.0);
            assert!(s.traffic_reduction_ratio() >= 0.0 && s.traffic_reduction_ratio() <= 1.0);
        }
    }
}

/// PB never caches more than the object's own size.
#[test]
fn pb_allocation_bounds() {
    let mut rng = StdRng::seed_from_u64(0x9B0B);
    for _ in 0..25 {
        let mut cache = CacheEngine::new(1e12, PartialBandwidth::new()).unwrap();
        let accesses = rng.gen_range(1..200usize);
        for _ in 0..accesses {
            let key = rng.gen_range(0..20u64);
            let bandwidth = rng.gen_range(1_000.0..100_000.0);
            // Object metadata is a fixed function of the key.
            let duration = 10.0 + 25.0 * key as f64;
            let o = meta(key, duration, 48_000.0, 1.0);
            cache.on_access(&o, bandwidth);
            let cached = cache.cached_bytes(o.key);
            assert!(cached <= o.size_bytes() + 1e-6);
        }
    }
}

/// The hybrid policy's allocation interpolates between PB (e = 1) and
/// whole-object caching (e = 0).
#[test]
fn hybrid_targets_bracketed() {
    let mut rng = StdRng::seed_from_u64(0x4B1D);
    for _ in 0..300 {
        let duration = rng.gen_range(10.0..1_000.0);
        let bandwidth = rng.gen_range(1_000.0..47_000.0);
        let e = rng.gen_range(0.0..=1.0);
        let o = meta(1, duration, 48_000.0, 1.0);
        let pb = PartialBandwidth::new().target_bytes(&o, bandwidth);
        let hybrid = HybridPartialBandwidth::new(e).target_bytes(&o, bandwidth);
        assert!(hybrid + 1e-9 >= pb);
        assert!(hybrid <= o.size_bytes() + 1e-6);
    }
}

/// The offline optimal allocation respects capacity and is never worse (in
/// rate-weighted delay) than the "cache nothing" and the "equal share"
/// baselines.
#[test]
fn offline_optimal_dominates_baselines() {
    let mut rng = StdRng::seed_from_u64(0x0FF11E);
    for _ in 0..60 {
        let n = rng.gen_range(1..30usize);
        let objects: Vec<OfflineObject> = (0..n)
            .map(|i| {
                OfflineObject::new(
                    meta(i as u64, rng.gen_range(10.0..500.0), 48_000.0, 1.0),
                    rng.gen_range(0.1..10.0),
                    rng.gen_range(1_000.0..100_000.0),
                )
            })
            .collect();
        let capacity = rng.gen_range(0.0..500.0) * 1e6;
        let alloc = optimal_partial_allocation(&objects, capacity).unwrap();
        let total: f64 = alloc.iter().sum();
        assert!(total <= capacity + 1e-3);
        for (a, o) in alloc.iter().zip(&objects) {
            assert!(*a <= o.meta.size_bytes() + 1e-6);
        }
        let optimal = average_service_delay(&objects, &alloc).unwrap();
        let nothing = average_service_delay(&objects, &vec![0.0; objects.len()]).unwrap();
        assert!(optimal <= nothing + 1e-9);
        let equal: Vec<f64> = objects
            .iter()
            .map(|o| {
                (capacity / objects.len() as f64).min(prefix_bytes_needed(
                    o.meta.duration_secs,
                    o.meta.bitrate_bps,
                    o.bandwidth_bps,
                ))
            })
            .collect();
        if equal.iter().sum::<f64>() <= capacity + 1e-3 {
            let equal_delay = average_service_delay(&objects, &equal).unwrap();
            assert!(
                optimal <= equal_delay + 1e-6,
                "optimal {optimal} vs equal {equal_delay}"
            );
        }
    }
}

/// Greedy value selection fits in the capacity and never selects objects
/// with abundant bandwidth.
#[test]
fn greedy_value_selection_feasible() {
    let mut rng = StdRng::seed_from_u64(0x6EEED);
    for _ in 0..60 {
        let n = rng.gen_range(1..30usize);
        let objects: Vec<OfflineObject> = (0..n)
            .map(|i| {
                OfflineObject::new(
                    meta(
                        i as u64,
                        rng.gen_range(10.0..500.0),
                        48_000.0,
                        rng.gen_range(1.0..10.0),
                    ),
                    rng.gen_range(0.1..10.0),
                    rng.gen_range(1_000.0..100_000.0),
                )
            })
            .collect();
        let capacity = rng.gen_range(0.0..500.0) * 1e6;
        let selected = greedy_value_selection(&objects, capacity).unwrap();
        let used: f64 = objects
            .iter()
            .zip(&selected)
            .filter(|(_, &s)| s)
            .map(|(o, _)| {
                prefix_bytes_needed(o.meta.duration_secs, o.meta.bitrate_bps, o.bandwidth_bps)
            })
            .sum();
        assert!(used <= capacity + 1e-3);
        for (o, &s) in objects.iter().zip(&selected) {
            if o.meta.bitrate_bps <= o.bandwidth_bps {
                assert!(!s);
            }
        }
        assert!(total_value(&objects, &selected).unwrap() >= 0.0);
    }
}

/// All paper policies process arbitrary access streams without panicking or
/// breaking capacity, through the boxed (dynamic) interface.
#[test]
fn all_policies_are_safe() {
    let mut rng = StdRng::seed_from_u64(0xA11);
    for _ in 0..10 {
        let accesses: Vec<(u64, f64, f64)> = (0..rng.gen_range(1..100usize))
            .map(|_| {
                (
                    rng.gen_range(0..15u64),
                    rng.gen_range(10.0..300.0),
                    rng.gen_range(1_000.0..100_000.0),
                )
            })
            .collect();
        for kind in PolicyKind::all_paper_policies() {
            let mut cache = CacheEngine::new(50e6, kind.build()).unwrap();
            for &(key, duration, bandwidth) in &accesses {
                let o = meta(key, duration, 48_000.0, 5.0);
                cache.on_access(&o, bandwidth);
                assert!(cache.used_bytes() <= cache.capacity_bytes() + 1e-3);
            }
        }
    }
}
