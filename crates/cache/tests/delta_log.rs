//! Oracle equivalence for the engine's allocation-change delta log.
//!
//! A shadow map applies only the drained [`CacheDelta`] entries after every
//! access; the oracle rebuilds the same view from a full
//! [`CacheEngine::contents`] scan (the reconciliation strategy the proxy
//! used before the delta log existed). The two must agree bitwise at every
//! step, across policies with partial admission, integral admission and
//! rollback paths, and across `clear()`. This is the contract that lets
//! `handle_client` reconcile its byte store in O(changes) per request.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sc_cache::policy::PolicyKind;
use sc_cache::{CacheEngine, ObjectKey, ObjectMeta};
use std::collections::BTreeMap;

fn meta(key: u64, duration: f64) -> ObjectMeta {
    ObjectMeta::new(ObjectKey::new(key), duration, 48_000.0, 1.0)
}

/// Drives a randomized access stream through an engine with delta tracking
/// enabled, maintaining a shadow `key → bytes` map purely from drained
/// deltas, and asserts it equals the full-`contents()` oracle after every
/// access.
fn check_policy(kind: PolicyKind, seed: u64, capacity_objects: f64, accesses: usize) {
    let size = meta(0, 100.0).size_bytes();
    let mut engine = CacheEngine::new(capacity_objects * size, kind.build()).unwrap();
    engine.set_delta_tracking(true);
    let mut shadow: BTreeMap<u64, f64> = BTreeMap::new();
    let mut rng = StdRng::seed_from_u64(seed);

    for step in 0..accesses {
        let key = rng.gen_range(0..40u64);
        let duration = 30.0 + rng.gen_range(0.0..200.0);
        let bandwidth = rng.gen_range(2_000.0..120_000.0);
        let m = meta(key, duration);
        engine.on_access(&m, bandwidth);

        for delta in engine.drain_deltas() {
            if delta.new_bytes == 0.0 {
                shadow.remove(&delta.key.as_u64());
            } else {
                shadow.insert(delta.key.as_u64(), delta.new_bytes);
            }
        }

        // Occasionally wipe the cache to exercise the clear() deltas too.
        if step % 977 == 976 {
            engine.clear();
            for delta in engine.drain_deltas() {
                assert_eq!(delta.new_bytes, 0.0, "clear must evict, not resize");
                shadow.remove(&delta.key.as_u64());
            }
        }

        let oracle: BTreeMap<u64, f64> = engine
            .contents()
            .into_iter()
            .map(|(k, b)| (k.as_u64(), b))
            .collect();
        assert_eq!(
            shadow.len(),
            oracle.len(),
            "{kind:?} seed {seed} step {step}: entry count diverged"
        );
        for (k, bytes) in &oracle {
            let mirrored = shadow.get(k).unwrap_or_else(|| {
                panic!("{kind:?} seed {seed} step {step}: key {k} missing from delta mirror")
            });
            assert_eq!(
                mirrored.to_bits(),
                bytes.to_bits(),
                "{kind:?} seed {seed} step {step}: key {k} bytes diverged"
            );
        }
    }
}

#[test]
fn delta_mirror_matches_full_scan_oracle_partial_policies() {
    for seed in 0..4 {
        check_policy(PolicyKind::PartialBandwidth, seed, 5.0, 3_000);
        check_policy(
            PolicyKind::HybridPartialBandwidth { e: 0.5 },
            seed,
            4.0,
            2_000,
        );
    }
}

#[test]
fn delta_mirror_matches_full_scan_oracle_integral_policies() {
    // Integral policies take the rollback path often under tight capacity;
    // rollbacks must leave both the log and the mirror untouched.
    for seed in 0..4 {
        check_policy(PolicyKind::IntegralBandwidth, seed, 3.0, 3_000);
        check_policy(PolicyKind::IntegralFrequency, seed, 3.0, 2_000);
        check_policy(PolicyKind::Lru, seed, 3.0, 2_000);
    }
}

#[test]
fn drained_log_is_reusable_without_reallocation_pressure() {
    // Draining after every access keeps the log short; the engine never
    // accumulates unbounded history.
    let mut engine = CacheEngine::new(1e9, PolicyKind::PartialBandwidth.build()).unwrap();
    engine.set_delta_tracking(true);
    let mut rng = StdRng::seed_from_u64(99);
    for _ in 0..1_000 {
        let m = meta(rng.gen_range(0..20u64), 100.0);
        engine.on_access(&m, rng.gen_range(2_000.0..120_000.0));
        let n = engine.drain_deltas().count();
        assert!(n <= 21, "one access touches at most the victims + itself");
    }
}
