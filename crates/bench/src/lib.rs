//! # sc-bench — benchmark and experiment harness
//!
//! This crate hosts two kinds of artefacts:
//!
//! * **Per-figure binaries** (`src/bin/table1.rs`, `fig2.rs` … `fig12.rs`):
//!   each regenerates one table or figure of the paper's evaluation and
//!   prints the corresponding rows; pass `--scale paper` for the full-scale
//!   run (the default `quick` scale finishes in seconds). Results are also
//!   written as JSON under `results/`.
//! * **Criterion micro-benchmarks** (`benches/`): cache-decision throughput
//!   per policy, heap operations, workload generation, offline solvers and
//!   reduced-scale end-to-end simulations.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use sc_sim::exec::ExecConfig;
use sc_sim::experiments::ExperimentScale;
use sc_sim::{BandwidthModel, FigureResult, Metrics, SessionFigureResult, SessionMetrics};
use std::fmt::Write as _;
use std::path::PathBuf;
use std::time::Duration;

/// How an experiment run was executed: wall-clock time and the number of
/// worker threads the execution layer used. Emitted into every figure's
/// JSON so speedups are tracked alongside the results.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunInfo {
    /// End-to-end wall-clock time of the experiment, in seconds.
    pub wall_clock_secs: f64,
    /// Worker threads used by the simulator's execution layer.
    pub threads: usize,
}

impl RunInfo {
    /// An explicit wall-clock time and thread count — use this when the
    /// timed code ran with an explicit `ParallelExecutor` rather than the
    /// environment-configured one.
    pub fn new(elapsed: Duration, threads: usize) -> Self {
        RunInfo {
            wall_clock_secs: elapsed.as_secs_f64(),
            threads,
        }
    }

    /// Captures the elapsed wall-clock time together with the thread count
    /// the environment-configured executor resolves to (`SC_SIM_THREADS`,
    /// default = available parallelism). Only valid for runs that used the
    /// default executors (as the figure bins do); pass the real count via
    /// [`RunInfo::new`] otherwise.
    pub fn from_elapsed(elapsed: Duration) -> Self {
        Self::new(elapsed, ExecConfig::from_env().threads)
    }
}

/// Parses the `--scale <paper|quick|test>` command-line option; defaults to
/// [`ExperimentScale::Quick`].
pub fn scale_from_args() -> ExperimentScale {
    let args: Vec<String> = std::env::args().collect();
    let mut scale = ExperimentScale::Quick;
    for window in args.windows(2) {
        if window[0] == "--scale" {
            scale = match window[1].as_str() {
                "paper" | "full" => ExperimentScale::Paper,
                "test" => ExperimentScale::Test,
                _ => ExperimentScale::Quick,
            };
        }
    }
    scale
}

/// Parses the `--bandwidth <iid|ar1>` command-line option; defaults to
/// [`BandwidthModel::Iid`] (the paper's i.i.d. per-request ratios). `ar1`
/// selects [`BandwidthModel::ar1_default`], the mean-reverting evolution of
/// every path sampled on the simulation clock; the affected figure bins
/// (`fig7`, `fig8`) then emit under a `_ar1`-suffixed id so both variants
/// can sit side by side under `results/`.
pub fn bandwidth_model_from_args() -> BandwidthModel {
    bandwidth_model_from_args_or(BandwidthModel::Iid)
}

/// [`bandwidth_model_from_args`] with an explicit default for when the
/// `--bandwidth` option is absent — `fig13` defaults to AR(1) because
/// drift is its subject, while `fig7`/`fig8` default to the paper's
/// i.i.d. setting.
pub fn bandwidth_model_from_args_or(default: BandwidthModel) -> BandwidthModel {
    let args: Vec<String> = std::env::args().collect();
    let mut model = default;
    for window in args.windows(2) {
        if window[0] == "--bandwidth" {
            model = match window[1].as_str() {
                "ar1" | "timevarying" => BandwidthModel::ar1_default(),
                "iid" => BandwidthModel::Iid,
                // Like scale_from_args, unknown values keep the bin's
                // default instead of silently switching experiments.
                _ => default,
            };
        }
    }
    model
}

/// Prints a figure as a plain-text table and writes it as JSON under
/// `results/<id>.json` (best effort — failures to write are reported but not
/// fatal).
pub fn emit(figure: &FigureResult) {
    emit_inner(figure, None);
}

/// Like [`emit`], but also reports how the experiment ran: the wall-clock
/// time and the environment-configured executor's thread count are printed
/// and embedded in the JSON (`wall_clock_secs` / `threads`). For runs that
/// used an explicit executor, build the [`RunInfo`] yourself and call
/// [`emit_with_info`].
pub fn emit_timed(figure: &FigureResult, elapsed: Duration) {
    emit_inner(figure, Some(RunInfo::from_elapsed(elapsed)));
}

/// Like [`emit`], with explicit execution metadata.
pub fn emit_with_info(figure: &FigureResult, info: RunInfo) {
    emit_inner(figure, Some(info));
}

fn emit_inner(figure: &FigureResult, info: Option<RunInfo>) {
    println!("{}", figure.to_table());
    if let Some(info) = info {
        println!(
            "(wall clock: {:.3} s on {} thread{})",
            info.wall_clock_secs,
            info.threads,
            if info.threads == 1 { "" } else { "s" }
        );
    }
    let dir = PathBuf::from("results");
    if std::fs::create_dir_all(&dir).is_ok() {
        let path = dir.join(format!("{}.json", figure.id));
        if let Err(e) = std::fs::write(&path, figure_to_json_with_info(figure, info)) {
            eprintln!("warning: could not write {}: {e}", path.display());
        } else {
            println!("(wrote {})", path.display());
        }
    }
}

/// Serialises a [`FigureResult`] to pretty-printed JSON.
///
/// Hand-rolled because the build environment has no registry access for
/// `serde`; the schema mirrors the public fields of [`FigureResult`].
/// Non-finite floats (e.g. an infinite average delay at zero bandwidth)
/// are emitted as `null`, matching what `serde_json` does for them.
pub fn figure_to_json(figure: &FigureResult) -> String {
    figure_to_json_with_info(figure, None)
}

/// [`figure_to_json`] plus optional execution metadata: when `info` is
/// given, top-level `wall_clock_secs` and `threads` fields are emitted.
pub fn figure_to_json_with_info(figure: &FigureResult, info: Option<RunInfo>) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"id\": {},", json_string(&figure.id));
    let _ = writeln!(out, "  \"title\": {},", json_string(&figure.title));
    let _ = writeln!(out, "  \"x_label\": {},", json_string(&figure.x_label));
    if let Some(info) = info {
        let _ = writeln!(
            out,
            "  \"wall_clock_secs\": {},",
            json_f64(info.wall_clock_secs)
        );
        let _ = writeln!(out, "  \"threads\": {},", info.threads);
    }
    out.push_str("  \"series\": [\n");
    for (si, series) in figure.series.iter().enumerate() {
        out.push_str("    {\n");
        let _ = writeln!(out, "      \"label\": {},", json_string(&series.label));
        out.push_str("      \"points\": [\n");
        for (pi, point) in series.points.iter().enumerate() {
            let _ = write!(
                out,
                "        {{\"x\": {}, \"metrics\": {}}}",
                json_f64(point.x),
                metrics_to_json(&point.metrics)
            );
            out.push_str(if pi + 1 < series.points.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("      ]\n");
        out.push_str(if si + 1 < figure.series.len() {
            "    },\n"
        } else {
            "    }\n"
        });
    }
    out.push_str("  ]\n}\n");
    out
}

/// Like [`emit_timed`], for session-mode figures: prints the table, the
/// runtime line, and writes `results/<id>.json` with the session-metric
/// schema (including the `egress_bins_bytes` array).
pub fn emit_session_timed(figure: &SessionFigureResult, elapsed: Duration) {
    let info = RunInfo::from_elapsed(elapsed);
    println!("{}", figure.to_table());
    println!(
        "(wall clock: {:.3} s on {} thread{})",
        info.wall_clock_secs,
        info.threads,
        if info.threads == 1 { "" } else { "s" }
    );
    let dir = PathBuf::from("results");
    if std::fs::create_dir_all(&dir).is_ok() {
        let path = dir.join(format!("{}.json", figure.id));
        if let Err(e) = std::fs::write(&path, session_figure_to_json_with_info(figure, Some(info)))
        {
            eprintln!("warning: could not write {}: {e}", path.display());
        } else {
            println!("(wrote {})", path.display());
        }
    }
}

/// Serialises a [`SessionFigureResult`] to pretty-printed JSON; same
/// hand-rolled schema conventions as [`figure_to_json_with_info`].
pub fn session_figure_to_json_with_info(
    figure: &SessionFigureResult,
    info: Option<RunInfo>,
) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"id\": {},", json_string(&figure.id));
    let _ = writeln!(out, "  \"title\": {},", json_string(&figure.title));
    let _ = writeln!(out, "  \"x_label\": {},", json_string(&figure.x_label));
    if let Some(info) = info {
        let _ = writeln!(
            out,
            "  \"wall_clock_secs\": {},",
            json_f64(info.wall_clock_secs)
        );
        let _ = writeln!(out, "  \"threads\": {},", info.threads);
    }
    out.push_str("  \"series\": [\n");
    for (si, series) in figure.series.iter().enumerate() {
        out.push_str("    {\n");
        let _ = writeln!(out, "      \"label\": {},", json_string(&series.label));
        out.push_str("      \"points\": [\n");
        for (pi, point) in series.points.iter().enumerate() {
            let _ = write!(
                out,
                "        {{\"x\": {}, \"metrics\": {}}}",
                json_f64(point.x),
                session_metrics_to_json(&point.metrics)
            );
            out.push_str(if pi + 1 < series.points.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("      ]\n");
        out.push_str(if si + 1 < figure.series.len() {
            "    },\n"
        } else {
            "    }\n"
        });
    }
    out.push_str("  ]\n}\n");
    out
}

fn session_metrics_to_json(m: &SessionMetrics) -> String {
    let bins: Vec<String> = m.egress_bins_bytes.iter().map(|&b| json_f64(b)).collect();
    format!(
        "{{\"sessions\": {}, \"viewer_seconds\": {}, \
         \"avg_concurrent_viewers\": {}, \"peak_concurrent_viewers\": {}, \
         \"rebuffer_probability\": {}, \"avg_rebuffer_secs\": {}, \
         \"traffic_reduction_ratio\": {}, \"origin_bytes_total\": {}, \
         \"horizon_secs\": {}, \"outage_secs\": {}, \"masked_stall_secs\": {}, \
         \"egress_bins_bytes\": [{}]}}",
        m.sessions,
        json_f64(m.viewer_seconds),
        json_f64(m.avg_concurrent_viewers),
        m.peak_concurrent_viewers,
        json_f64(m.rebuffer_probability),
        json_f64(m.avg_rebuffer_secs),
        json_f64(m.traffic_reduction_ratio),
        json_f64(m.origin_bytes_total),
        json_f64(m.horizon_secs),
        json_f64(m.outage_secs),
        json_f64(m.masked_stall_secs),
        bins.join(", "),
    )
}

fn metrics_to_json(m: &Metrics) -> String {
    format!(
        "{{\"requests\": {}, \"traffic_reduction_ratio\": {}, \
         \"avg_service_delay_secs\": {}, \"avg_stream_quality\": {}, \
         \"total_added_value\": {}, \"hit_ratio\": {}, \"immediate_ratio\": {}}}",
        m.requests,
        json_f64(m.traffic_reduction_ratio),
        json_f64(m.avg_service_delay_secs),
        json_f64(m.avg_stream_quality),
        json_f64(m.total_added_value),
        json_f64(m.hit_ratio),
        json_f64(m.immediate_ratio),
    )
}

fn json_f64(v: f64) -> String {
    if v.is_finite() {
        let mut s = format!("{v}");
        if !s.contains(['.', 'e', 'E']) {
            s.push_str(".0");
        }
        s
    } else {
        "null".to_string()
    }
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sc_sim::FigureSeries;

    #[test]
    fn default_scale_is_quick() {
        assert_eq!(scale_from_args(), ExperimentScale::Quick);
    }

    #[test]
    fn default_bandwidth_model_is_iid() {
        assert_eq!(bandwidth_model_from_args(), BandwidthModel::Iid);
    }

    #[test]
    fn emit_writes_results_file() {
        let mut fig = FigureResult::new("selftest", "emit smoke test", "x");
        fig.series.push(FigureSeries::new("s"));
        emit(&fig);
        let path = std::path::Path::new("results/selftest.json");
        assert!(path.exists());
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn json_includes_runtime_info_when_timed() {
        let mut fig = FigureResult::new("selftest_timed", "timed emit", "x");
        fig.series.push(FigureSeries::new("s"));
        let info = RunInfo {
            wall_clock_secs: 1.5,
            threads: 4,
        };
        let json = figure_to_json_with_info(&fig, Some(info));
        assert!(json.contains("\"wall_clock_secs\": 1.5"));
        assert!(json.contains("\"threads\": 4"));
        // The untimed serialisation stays byte-compatible with the old schema.
        assert!(!figure_to_json(&fig).contains("wall_clock_secs"));

        emit_timed(&fig, Duration::from_millis(10));
        let path = std::path::Path::new("results/selftest_timed.json");
        assert!(path.exists());
        let written = std::fs::read_to_string(path).unwrap();
        assert!(written.contains("\"threads\""));
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn session_json_includes_bins_and_info() {
        use sc_sim::SessionFigureSeries;
        let mut fig = SessionFigureResult::new("selftest_sessions", "session emit", "x");
        let mut s = SessionFigureSeries::new("PB");
        s.push(
            0.05,
            SessionMetrics {
                sessions: 10,
                viewer_seconds: 100.0,
                avg_concurrent_viewers: 2.0,
                peak_concurrent_viewers: 4,
                rebuffer_probability: 0.5,
                avg_rebuffer_secs: 1.25,
                traffic_reduction_ratio: 0.3,
                origin_bytes_total: 1_000.0,
                egress_bins_bytes: vec![600.0, 400.0],
                horizon_secs: 50.0,
                outage_secs: 12.5,
                masked_stall_secs: 3.75,
            },
        );
        fig.series.push(s);
        let json = session_figure_to_json_with_info(
            &fig,
            Some(RunInfo {
                wall_clock_secs: 2.0,
                threads: 2,
            }),
        );
        assert!(json.contains("\"egress_bins_bytes\": [600.0, 400.0]"));
        assert!(json.contains("\"rebuffer_probability\": 0.5"));
        assert!(json.contains("\"outage_secs\": 12.5"));
        assert!(json.contains("\"masked_stall_secs\": 3.75"));
        assert!(json.contains("\"wall_clock_secs\": 2.0"));

        emit_session_timed(&fig, Duration::from_millis(5));
        let path = std::path::Path::new("results/selftest_sessions.json");
        assert!(path.exists());
        let written = std::fs::read_to_string(path).unwrap();
        assert!(written.contains("\"sessions\": 10"));
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn run_info_resolves_a_positive_thread_count() {
        let info = RunInfo::from_elapsed(Duration::from_secs(2));
        assert!(info.threads >= 1);
        assert!((info.wall_clock_secs - 2.0).abs() < 1e-9);
    }
}
