//! # sc-bench — benchmark and experiment harness
//!
//! This crate hosts two kinds of artefacts:
//!
//! * **Per-figure binaries** (`src/bin/table1.rs`, `fig2.rs` … `fig12.rs`):
//!   each regenerates one table or figure of the paper's evaluation and
//!   prints the corresponding rows; pass `--scale paper` for the full-scale
//!   run (the default `quick` scale finishes in seconds). Results are also
//!   written as JSON under `results/`.
//! * **Criterion micro-benchmarks** (`benches/`): cache-decision throughput
//!   per policy, heap operations, workload generation, offline solvers and
//!   reduced-scale end-to-end simulations.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use sc_sim::experiments::ExperimentScale;
use sc_sim::FigureResult;
use std::path::PathBuf;

/// Parses the `--scale <paper|quick|test>` command-line option; defaults to
/// [`ExperimentScale::Quick`].
pub fn scale_from_args() -> ExperimentScale {
    let args: Vec<String> = std::env::args().collect();
    let mut scale = ExperimentScale::Quick;
    for window in args.windows(2) {
        if window[0] == "--scale" {
            scale = match window[1].as_str() {
                "paper" | "full" => ExperimentScale::Paper,
                "test" => ExperimentScale::Test,
                _ => ExperimentScale::Quick,
            };
        }
    }
    scale
}

/// Prints a figure as a plain-text table and writes it as JSON under
/// `results/<id>.json` (best effort — failures to write are reported but not
/// fatal).
pub fn emit(figure: &FigureResult) {
    println!("{}", figure.to_table());
    let dir = PathBuf::from("results");
    if std::fs::create_dir_all(&dir).is_ok() {
        let path = dir.join(format!("{}.json", figure.id));
        match serde_json::to_string_pretty(figure) {
            Ok(json) => {
                if let Err(e) = std::fs::write(&path, json) {
                    eprintln!("warning: could not write {}: {e}", path.display());
                } else {
                    println!("(wrote {})", path.display());
                }
            }
            Err(e) => eprintln!("warning: could not serialise {}: {e}", figure.id),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sc_sim::FigureSeries;

    #[test]
    fn default_scale_is_quick() {
        assert_eq!(scale_from_args(), ExperimentScale::Quick);
    }

    #[test]
    fn emit_writes_results_file() {
        let mut fig = FigureResult::new("selftest", "emit smoke test", "x");
        fig.series.push(FigureSeries::new("s"));
        emit(&fig);
        let path = std::path::Path::new("results/selftest.json");
        assert!(path.exists());
        let _ = std::fs::remove_file(path);
    }
}
