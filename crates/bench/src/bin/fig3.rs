//! Regenerates Figure 3: the sample-to-mean bandwidth ratio distribution of
//! the high-variability (NLANR-log-like) model.

use rand::rngs::StdRng;
use rand::SeedableRng;
use sc_netmodel::{Histogram, VariabilityModel};

fn main() {
    let start = std::time::Instant::now();
    let samples = 10_000;
    let model = VariabilityModel::nlanr_like();
    let mut rng = StdRng::seed_from_u64(3);
    let ratios: Vec<f64> = (0..samples).map(|_| model.sample_ratio(&mut rng)).collect();
    let hist = Histogram::from_samples(0.1, 30, &ratios);
    let cdf = hist.cumulative();

    println!("# fig3 — Variation of bandwidth (sample-to-mean ratio, NLANR-like model)");
    println!("{:>10} {:>10} {:>10}", "ratio bin", "samples", "CDF");
    for (i, cum) in cdf.iter().enumerate() {
        println!(
            "{:>10.2} {:>10} {:>10.4}",
            hist.bin_start(i),
            hist.count(i),
            cum
        );
    }
    let in_band = hist.fraction_below(1.5) - hist.fraction_below(0.5);
    println!();
    println!(
        "mass in [0.5, 1.5]x mean: {:.1}% (paper: ~70%); coefficient of variation: {:.2}",
        100.0 * in_band,
        model.coefficient_of_variation()
    );
    println!("(wall clock: {:.3} s)", start.elapsed().as_secs_f64());
}
