//! Regenerates Figure 4: bandwidth evolution of three measured-path models
//! (low / moderate / high variability) and their sample-to-mean ratio
//! histograms. One bandwidth sample every four minutes over ~40 hours, as in
//! the paper's measurements.

use rand::rngs::StdRng;
use rand::SeedableRng;
use sc_netmodel::{Histogram, PathModel, VariabilityModel};

fn main() {
    let start = std::time::Instant::now();
    let paths = [
        (
            "INRIA-like (low)",
            VariabilityModel::measured_path_low(),
            0.9,
        ),
        (
            "Taiwan-like (moderate)",
            VariabilityModel::measured_path_moderate(),
            0.8,
        ),
        (
            "HongKong-like (high)",
            VariabilityModel::measured_path_high(),
            0.7,
        ),
    ];
    println!("# fig4 — Bandwidth variation of synthetic measured paths");
    let mut rng = StdRng::seed_from_u64(4);
    for (name, variability, autocorrelation) in paths {
        let path = PathModel::new(120_000.0, variability);
        // 600 samples × 4 minutes = 40 hours.
        let ts = path.time_series(600, 240.0, autocorrelation, &mut rng);
        let ratios = ts.sample_to_mean_ratios();
        let hist = Histogram::from_samples(0.1, 30, &ratios);
        let summary = sc_netmodel::Summary::of(ts.samples_bps()).unwrap();
        println!();
        println!("## {name}");
        println!(
            "duration {:.0} h, mean {:.1} KB/s, CoV {:.3}, min {:.1}, max {:.1} KB/s",
            ts.duration_hours(),
            summary.mean / 1e3,
            summary.cov,
            summary.min / 1e3,
            summary.max / 1e3
        );
        println!("time series (KB/s, one value per 2 hours):");
        let step = ts.len() / 20;
        let series: Vec<String> = ts
            .samples_bps()
            .iter()
            .step_by(step.max(1))
            .map(|b| format!("{:.0}", b / 1e3))
            .collect();
        println!("  {}", series.join(" "));
        println!("sample-to-mean ratio histogram (bin width 0.1):");
        let bars: Vec<String> = (0..hist.bins())
            .filter(|&i| hist.count(i) > 0)
            .map(|i| format!("{:.1}:{}", hist.bin_start(i), hist.count(i)))
            .collect();
        println!("  {}", bars.join(" "));
    }
    println!();
    println!("paper observation reproduced: all measured paths vary far less than the");
    println!("NLANR-log model of fig3 (compare the CoV values above with fig3's).");
    println!("(wall clock: {:.3} s)", start.elapsed().as_secs_f64());
}
