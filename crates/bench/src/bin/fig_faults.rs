//! Regenerates the resilience figure (beyond the paper): rebuffer
//! probability of PB vs IB vs LRU as origin paths suffer seeded outages,
//! swept over the outage rate at two repair speeds. The session metrics
//! also report the injected down-time (`outage_secs`) and how much stall
//! time the cached prefixes masked (`masked_stall_secs`) — the paper's
//! partial caching doubling as an availability mechanism.
//!
//! Pass `--scale paper` for the full-scale run (default: quick); `--smoke`
//! is a CI shorthand for `--scale test`.

use sc_sim::experiments::fig_faults;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale = if std::env::args().any(|a| a == "--smoke") {
        sc_sim::experiments::ExperimentScale::Test
    } else {
        sc_bench::scale_from_args()
    };
    let start = std::time::Instant::now();
    let figure = fig_faults(scale)?;
    sc_bench::emit_session_timed(&figure, start.elapsed());
    println!("(scale: {scale:?})");
    Ok(())
}
