//! Regenerates Figure 2: the base bandwidth distribution (histogram and CDF)
//! of the NLANR-like model, using 4 KB/s bins as in the paper.

use rand::rngs::StdRng;
use rand::SeedableRng;
use sc_netmodel::{Histogram, NlanrBandwidthModel, BYTES_PER_KB};

fn main() {
    let start = std::time::Instant::now();
    let samples: usize = 10_000;
    let model = NlanrBandwidthModel::paper_default();
    let mut rng = StdRng::seed_from_u64(2);
    let kbps: Vec<f64> = model
        .sample_n_bps(&mut rng, samples)
        .iter()
        .map(|b| b / BYTES_PER_KB)
        .collect();
    let hist = Histogram::from_samples(4.0, 125, &kbps);
    let cdf = hist.cumulative();

    println!("# fig2 — Internet bandwidth distribution (synthetic NLANR-like model)");
    println!("{:>12} {:>10} {:>10}", "KB/s (bin)", "samples", "CDF");
    for (i, cum) in cdf.iter().enumerate() {
        if hist.count(i) > 0 || i % 5 == 0 {
            println!(
                "{:>12.0} {:>10} {:>10.4}",
                hist.bin_start(i),
                hist.count(i),
                cum
            );
        }
    }
    println!();
    println!(
        "landmarks: {:.1}% below 50 KB/s (paper: 37%), {:.1}% below 100 KB/s (paper: 56%)",
        100.0 * hist.fraction_below(50.0),
        100.0 * hist.fraction_below(100.0)
    );
    println!("(wall clock: {:.3} s)", start.elapsed().as_secs_f64());
}
