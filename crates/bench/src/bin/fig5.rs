//! Regenerates Figure 5 of the paper. Pass `--scale paper` for the
//! full-scale run (default: quick).

use sc_sim::experiments::fig5;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale = sc_bench::scale_from_args();
    let start = std::time::Instant::now();
    let figure = fig5(scale)?;
    sc_bench::emit_timed(&figure, start.elapsed());
    println!("(scale: {scale:?})");
    Ok(())
}
