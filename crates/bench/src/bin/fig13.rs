//! Regenerates Figure 13 (beyond the paper): PB under AR(1) bandwidth
//! drift, comparing the oracle-mean, EWMA, windowed and probe bandwidth
//! estimators. Pass `--scale paper` for the full-scale run (default:
//! quick) and `--bandwidth iid` for the no-drift control (emitted as
//! `fig13_iid`).

use sc_sim::experiments::fig13_with;
use sc_sim::BandwidthModel;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale = sc_bench::scale_from_args();
    // Unlike fig7/fig8, drift is this figure's point: AR(1) is the default
    // and `--bandwidth iid` selects the no-drift control.
    let model = sc_bench::bandwidth_model_from_args_or(BandwidthModel::ar1_default());
    let start = std::time::Instant::now();
    let figure = fig13_with(scale, model)?;
    sc_bench::emit_timed(&figure, start.elapsed());
    println!("(scale: {scale:?}, bandwidth model: {})", model.label());
    Ok(())
}
