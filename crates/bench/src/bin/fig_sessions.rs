//! Regenerates the session-contention figure (beyond the paper): PB vs IB
//! vs LRU replayed through the discrete-event session core, where sessions
//! span their playback duration and share each origin path's bottleneck
//! bandwidth by processor sharing. Reports time-weighted metrics —
//! concurrent viewers, rebuffer probability, origin egress over time.
//!
//! Pass `--scale paper` for the full-scale run (default: quick); `--smoke`
//! is a CI shorthand for `--scale test`.

use sc_sim::experiments::fig_sessions;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale = if std::env::args().any(|a| a == "--smoke") {
        sc_sim::experiments::ExperimentScale::Test
    } else {
        sc_bench::scale_from_args()
    };
    let start = std::time::Instant::now();
    let figure = fig_sessions(scale)?;
    sc_bench::emit_session_timed(&figure, start.elapsed());
    println!("(scale: {scale:?})");
    Ok(())
}
