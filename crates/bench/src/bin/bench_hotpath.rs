//! Hot-path benchmark: cache-core access throughput and end-to-end
//! replicated-run throughput, emitted as `BENCH_hotpath.json` so the perf
//! trajectory of `CacheEngine::on_access` is tracked across PRs.
//!
//! Run `cargo run --release -p sc_bench --bin bench_hotpath` for the full
//! measurement, or `-- --smoke` for the reduced CI smoke mode. All
//! benchmarks are single-threaded: the subject is the per-access cost of
//! the cache core, not the executor's scaling (which
//! `tests/exec_parallel_determinism.rs` and the figure bins cover).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sc_cache::policy::PolicyKind;
use sc_cache::{CacheEngine, ObjectKey, ObjectMeta};
use sc_sim::exec::{SharedWorkload, SimWorker};
use sc_sim::experiments::ExperimentScale;
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

/// One measured benchmark: how many cache accesses (or simulated requests)
/// were processed and how long they took.
struct BenchResult {
    name: &'static str,
    requests: u64,
    wall_clock_secs: f64,
}

impl BenchResult {
    fn requests_per_sec(&self) -> f64 {
        if self.wall_clock_secs > 0.0 {
            self.requests as f64 / self.wall_clock_secs
        } else {
            f64::INFINITY
        }
    }
}

/// A deterministic synthetic access stream over a dense catalog:
/// `(object index, bandwidth)` pairs plus one precomputed meta per object.
/// The cache is sized far below the working set so the stream exercises
/// admission, eviction and rollback, not just heap refreshes.
struct Stream {
    metas: Vec<ObjectMeta>,
    accesses: Vec<(u32, f64)>,
}

fn make_stream(objects: u32, accesses: usize, seed: u64) -> Stream {
    let mut rng = StdRng::seed_from_u64(seed);
    let metas = (0..objects)
        .map(|i| {
            let duration = 60.0 + (i % 50) as f64 * 30.0;
            ObjectMeta::new(ObjectKey::new(i as u64), duration, 48_000.0, 5.0)
        })
        .collect();
    let accesses = (0..accesses)
        .map(|_| {
            let index = rng.gen_range(0..objects);
            let bandwidth = rng.gen_range(2_000.0..200_000.0);
            (index, bandwidth)
        })
        .collect();
    Stream { metas, accesses }
}

const CACHE_BYTES: f64 = 2e9;

/// Runs `measure` `reps` times and keeps the fastest wall clock: best-of-N
/// is robust against scheduler and frequency noise on shared machines,
/// which dwarfs the per-access cost differences this bin tracks.
fn best_of(reps: usize, mut measure: impl FnMut() -> f64) -> f64 {
    (0..reps.max(1))
        .map(|_| measure())
        .fold(f64::INFINITY, f64::min)
}

/// Drives the keyed [`CacheEngine::on_access`] entry point (one key→slot
/// map lookup per access — the path callers without dense indices use).
fn bench_keyed(stream: &Stream, reps: usize) -> BenchResult {
    let wall = best_of(reps, || {
        let mut cache =
            CacheEngine::new(CACHE_BYTES, PolicyKind::PartialBandwidth.build()).unwrap();
        let started = Instant::now();
        for &(index, bandwidth) in &stream.accesses {
            cache.on_access(&stream.metas[index as usize], bandwidth);
        }
        let wall = started.elapsed().as_secs_f64();
        assert!(
            cache.stats().evictions > 0,
            "stream must evict to be a hot-path test"
        );
        wall
    });
    BenchResult {
        name: "engine_access_keyed",
        requests: stream.accesses.len() as u64,
        wall_clock_secs: wall,
    }
}

/// Drives the slot-addressed [`CacheEngine::on_access_slot`] entry point —
/// the zero-hash, zero-allocation steady-state path the simulator uses.
fn bench_slot(stream: &Stream, reps: usize) -> BenchResult {
    let wall = best_of(reps, || {
        let mut cache =
            CacheEngine::new(CACHE_BYTES, PolicyKind::PartialBandwidth.build()).unwrap();
        cache.ensure_slots(stream.metas.len());
        let started = Instant::now();
        for &(index, bandwidth) in &stream.accesses {
            cache.on_access_slot(index, &stream.metas[index as usize], bandwidth);
        }
        let wall = started.elapsed().as_secs_f64();
        assert!(
            cache.stats().evictions > 0,
            "stream must evict to be a hot-path test"
        );
        wall
    });
    BenchResult {
        name: "engine_access_slot",
        requests: stream.accesses.len() as u64,
        wall_clock_secs: wall,
    }
}

/// Single-thread replicated simulation runs at the paper's workload scale
/// (5,000 objects, 100,000 requests per run) — the loop ROADMAP flags as
/// the open perf item. Workload generation happens outside the timed
/// region: the subject is the per-request simulation loop
/// (bandwidth lookup → estimator → `on_access` → delivery → metrics), not
/// the trace generator.
fn bench_replicated(runs: usize, reps: usize) -> BenchResult {
    let config = ExperimentScale::Paper
        .base_config()
        .with_cache_fraction(0.05);
    let workers: Vec<SimWorker> = (0..runs as u64)
        .map(|r| {
            let seed = config.seed + r;
            let workload = Arc::new(SharedWorkload::generate(&config.workload, seed).unwrap());
            SimWorker::with_workload(config, seed, workload)
        })
        .collect();
    let requests = (config.workload.trace.requests * runs) as u64;
    let wall = best_of(reps, || {
        let started = Instant::now();
        for worker in &workers {
            let result = worker.run().unwrap();
            assert!(result.metrics.traffic_reduction_ratio > 0.0);
        }
        started.elapsed().as_secs_f64()
    });
    BenchResult {
        name: "sim_loop_paper",
        requests,
        wall_clock_secs: wall,
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (accesses, runs, reps) = if smoke {
        (100_000, 1, 1)
    } else {
        (5_000_000, 5, 7)
    };

    let stream = make_stream(5_000, accesses, 7);
    let results = [
        bench_keyed(&stream, reps),
        bench_slot(&stream, reps),
        bench_replicated(runs, reps),
    ];

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"id\": \"bench_hotpath\",");
    let _ = writeln!(
        json,
        "  \"mode\": \"{}\",",
        if smoke { "smoke" } else { "full" }
    );
    let _ = writeln!(json, "  \"threads\": 1,");
    json.push_str("  \"benchmarks\": [\n");
    for (i, r) in results.iter().enumerate() {
        println!(
            "{:<28} {:>10} req {:>10.3} s {:>14.0} req/s",
            r.name,
            r.requests,
            r.wall_clock_secs,
            r.requests_per_sec()
        );
        let _ = write!(
            json,
            "    {{\"name\": \"{}\", \"requests\": {}, \"wall_clock_secs\": {:.6}, \"requests_per_sec\": {:.1}}}",
            r.name, r.requests, r.wall_clock_secs, r.requests_per_sec()
        );
        json.push_str(if i + 1 < results.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ]\n}\n");

    // Full mode refreshes the checked-in baseline; smoke mode (CI) writes
    // next to the figure JSON so it never clobbers the tracked trajectory.
    let path = if smoke {
        let _ = std::fs::create_dir_all("results");
        "results/BENCH_hotpath_smoke.json"
    } else {
        "BENCH_hotpath.json"
    };
    match std::fs::write(path, &json) {
        Ok(()) => println!("(wrote {path})"),
        Err(e) => eprintln!("warning: could not write {path}: {e}"),
    }
}
