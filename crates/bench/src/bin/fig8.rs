//! Regenerates Figure 8 of the paper. Pass `--scale paper` for the
//! full-scale run (default: quick) and `--bandwidth ar1` to replace the
//! i.i.d. per-request ratios by AR(1) bandwidth evolution (emitted as
//! `fig8_ar1`).

use sc_sim::experiments::fig8_with;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale = sc_bench::scale_from_args();
    let model = sc_bench::bandwidth_model_from_args();
    let start = std::time::Instant::now();
    let figure = fig8_with(scale, model)?;
    sc_bench::emit_timed(&figure, start.elapsed());
    println!("(scale: {scale:?}, bandwidth model: {})", model.label());
    Ok(())
}
