//! Overload benchmark: the proxy driven past its admission capacity, with
//! shed rate and served-request latency recorded as `BENCH_overload.json`.
//!
//! Run `cargo run --release -p sc_bench --bin bench_overload` for the full
//! measurement, or `-- --smoke` for the reduced CI smoke mode. Two phases
//! over an identical fully-warm catalog:
//!
//! * **`warm_baseline`** — N concurrent clients with admission control off.
//!   Every request is admitted; per-client token-bucket pacing on the
//!   proxy side gives each request an identical ~16 ms service time, so
//!   the measured p50/p99 is queueing plus service, not noise.
//! * **`overdrive_4x`** — 4N clients against an in-flight cap sized close
//!   to the baseline's natural concurrency plus a queue-wait deadline.
//!   Excess load is answered `BUSY` (counted in `shed_requests`); clients
//!   honour the suggested retry pause. The point of the phase: while the
//!   offered load is ~4× capacity, the requests that *are* served keep a
//!   p99 within 3× of the uncontended baseline — overload degrades
//!   throughput for the shed, not latency for the admitted.
//!
//! The bin asserts the overdrive phase actually shed (both modes) and, in
//! full mode, that the served-request p99 stayed within the 3× envelope.

use sc_cache::policy::PolicyKind;
use sc_proxy::protocol::{read_response, write_request, Request, Response};
use sc_proxy::{
    CachingProxy, ObjectSpec, OriginConfig, OriginServer, ProxyConfig, StreamingClient,
};
use std::fmt::Write as _;
use std::io::{BufReader, Read};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

const OBJECT_BYTES: u64 = 16 * 1024;
const BITRATE_BPS: f64 = 1e6;
/// Proxy-side per-client pacing: 16 KB at 1 MB/s ≈ 16 ms of service per
/// request, identical in both phases, so latency differences are pure
/// queueing.
const CLIENT_PACE_BPS: f64 = 1e6;

/// Knobs for one phase of the overload benchmark.
struct PhaseSpec {
    name: &'static str,
    clients: usize,
    attempts_per_client: usize,
    objects: u32,
    workers: usize,
    /// In-flight admission cap (0 = off).
    max_in_flight: usize,
    /// Queue-wait shedding deadline (zero = off).
    queue_deadline: Duration,
}

/// What one phase measured.
struct PhaseResult {
    name: &'static str,
    clients: usize,
    attempts: u64,
    served: u64,
    busy_answers: u64,
    other: u64,
    wall_clock_secs: f64,
    p50_delay_secs: f64,
    p99_delay_secs: f64,
    shed_requests: u64,
    peak_queue_depth: u64,
    queue_wait_micros: u64,
    client_timeouts: u64,
}

impl PhaseResult {
    fn served_per_sec(&self) -> f64 {
        if self.wall_clock_secs > 0.0 {
            self.served as f64 / self.wall_clock_secs
        } else {
            f64::INFINITY
        }
    }

    fn shed_rate(&self) -> f64 {
        if self.attempts > 0 {
            self.busy_answers as f64 / self.attempts as f64
        } else {
            0.0
        }
    }
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// One client attempt: served (with the observed delay), shed with a retry
/// pause, or something else (refused connect, mid-stream close).
enum Attempt {
    Served(f64),
    Busy(u64),
    Other,
}

fn attempt_fetch(addr: SocketAddr, name: &str, scratch: &mut [u8]) -> Attempt {
    let t0 = Instant::now();
    let Ok(stream) = TcpStream::connect(addr) else {
        return Attempt::Other;
    };
    stream.set_nodelay(true).ok();
    let Ok(read_half) = stream.try_clone() else {
        return Attempt::Other;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = stream;
    if write_request(
        &mut writer,
        &Request {
            name: name.to_string(),
            offset: 0,
        },
    )
    .is_err()
    {
        return Attempt::Other;
    }
    let size = match read_response(&mut reader) {
        Ok(Response::Ok { size, .. }) => size,
        Ok(Response::Busy { retry_after_ms }) => return Attempt::Busy(retry_after_ms),
        Ok(Response::Err(_)) | Err(_) => return Attempt::Other,
    };
    let mut received: u64 = 0;
    while received < size {
        let want = scratch.len().min((size - received) as usize);
        match reader.read(&mut scratch[..want]) {
            Ok(0) | Err(_) => return Attempt::Other,
            Ok(n) => received += n as u64,
        }
    }
    while reader.read(scratch).map(|n| n > 0).unwrap_or(false) {}
    Attempt::Served(t0.elapsed().as_secs_f64())
}

/// Runs one phase: fresh origin + proxy, sequential warm-up to a fully
/// cached catalog, then the timed concurrent storm.
fn run_phase(spec: &PhaseSpec) -> PhaseResult {
    let origin = OriginServer::start(OriginConfig {
        objects: (0..spec.objects)
            .map(|i| ObjectSpec::new(format!("clip-{i}"), OBJECT_BYTES, BITRATE_BPS))
            .collect(),
        rate_limit_bps: 0.0,
    })
    .expect("origin start");
    let mut config = ProxyConfig::new(origin.addr(), 1e12);
    config.policy = PolicyKind::IntegralFrequency;
    config.worker_threads = spec.workers;
    config.client_rate_limit_bps = CLIENT_PACE_BPS;
    config.max_in_flight = spec.max_in_flight;
    config.queue_deadline = spec.queue_deadline;
    let proxy = CachingProxy::start(config).expect("proxy start");
    let addr = proxy.addr();

    // Warm-up: cache the whole catalog so the timed region never touches
    // the origin and the per-request service time is the pacing alone.
    let client = StreamingClient::new();
    for i in 0..spec.objects {
        let report = client
            .fetch(addr, &format!("clip-{i}"))
            .expect("warm-up fetch");
        assert!(report.content_ok, "warm-up content mismatch");
    }
    assert_eq!(
        proxy.stats().cached_bytes,
        u64::from(spec.objects) * OBJECT_BYTES,
        "cache must be fully warm before the timed phase"
    );

    let objects = spec.objects;
    let attempts_per_client = spec.attempts_per_client;
    let started = Instant::now();
    let per_client: Vec<(Vec<f64>, u64, u64)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..spec.clients)
            .map(|c| {
                scope.spawn(move || {
                    let mut scratch = vec![0u8; 64 * 1024];
                    let mut delays = Vec::with_capacity(attempts_per_client);
                    let mut busy: u64 = 0;
                    let mut other: u64 = 0;
                    for r in 0..attempts_per_client {
                        let name = format!("clip-{}", (c + r * 17) as u32 % objects);
                        match attempt_fetch(addr, &name, &mut scratch) {
                            Attempt::Served(delay) => delays.push(delay),
                            Attempt::Busy(retry_after_ms) => {
                                busy += 1;
                                // Honour the server's pause (bounded so an
                                // over-generous hint cannot stall the bench).
                                std::thread::sleep(Duration::from_millis(retry_after_ms.min(200)));
                            }
                            Attempt::Other => other += 1,
                        }
                    }
                    (delays, busy, other)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let wall = started.elapsed().as_secs_f64();

    let mut delays: Vec<f64> = Vec::new();
    let mut busy_answers: u64 = 0;
    let mut other: u64 = 0;
    for (d, b, o) in per_client {
        delays.extend(d);
        busy_answers += b;
        other += o;
    }
    delays.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let stats = proxy.stats();
    PhaseResult {
        name: spec.name,
        clients: spec.clients,
        attempts: (spec.clients * spec.attempts_per_client) as u64,
        served: delays.len() as u64,
        busy_answers,
        other,
        wall_clock_secs: wall,
        p50_delay_secs: percentile(&delays, 0.50),
        p99_delay_secs: percentile(&delays, 0.99),
        shed_requests: stats.shed_requests,
        peak_queue_depth: stats.peak_queue_depth,
        queue_wait_micros: stats.queue_wait_micros,
        client_timeouts: stats.client_timeouts,
    }
}

fn phase_json(r: &PhaseResult) -> String {
    format!(
        "{{\"name\": \"{}\", \"clients\": {}, \"attempts\": {}, \"served\": {}, \
         \"busy_answers\": {}, \"other\": {}, \"wall_clock_secs\": {:.6}, \
         \"served_per_sec\": {:.1}, \"shed_rate\": {:.4}, \"p50_delay_secs\": {:.6}, \
         \"p99_delay_secs\": {:.6}, \"shed_requests\": {}, \"peak_queue_depth\": {}, \
         \"queue_wait_micros\": {}, \"client_timeouts\": {}}}",
        r.name,
        r.clients,
        r.attempts,
        r.served,
        r.busy_answers,
        r.other,
        r.wall_clock_secs,
        r.served_per_sec(),
        r.shed_rate(),
        r.p50_delay_secs,
        r.p99_delay_secs,
        r.shed_requests,
        r.peak_queue_depth,
        r.queue_wait_micros,
        r.client_timeouts,
    )
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    // Baseline concurrency N, overdrive 4N. The overdrive cap admits about
    // 1.5× the baseline's natural concurrency, so the admitted requests
    // queue a little deeper than baseline but far less than 4×; the queue
    // deadline bounds the worst admitted wait.
    let (clients, attempts, objects, workers) = if smoke {
        (8, 6, 32, 4)
    } else {
        (64, 20, 64, 8)
    };
    let baseline = run_phase(&PhaseSpec {
        name: "warm_baseline",
        clients,
        attempts_per_client: attempts,
        objects,
        workers,
        max_in_flight: 0,
        queue_deadline: Duration::ZERO,
    });
    let overdrive = run_phase(&PhaseSpec {
        name: "overdrive_4x",
        clients: clients * 4,
        attempts_per_client: attempts,
        objects,
        workers,
        max_in_flight: clients + clients / 2,
        queue_deadline: Duration::from_millis(250),
    });

    for r in [&baseline, &overdrive] {
        println!(
            "{:<14} {:>4} clients {:>6} attempts  served {:>6} ({:>7.1}/s)  busy {:>6} \
             (shed rate {:>5.3})  p50 {:>7.4} s  p99 {:>7.4} s  peak queue {:>4}",
            r.name,
            r.clients,
            r.attempts,
            r.served,
            r.served_per_sec(),
            r.busy_answers,
            r.shed_rate(),
            r.p50_delay_secs,
            r.p99_delay_secs,
            r.peak_queue_depth,
        );
    }
    let p99_ratio = if baseline.p99_delay_secs > 0.0 {
        overdrive.p99_delay_secs / baseline.p99_delay_secs
    } else {
        f64::INFINITY
    };
    println!(
        "overdrive p99 / baseline p99 = {p99_ratio:.2}  (shed {} of {} attempts)",
        overdrive.busy_answers, overdrive.attempts
    );

    // The contract this benchmark exists to enforce.
    assert!(
        overdrive.shed_requests > 0 && overdrive.busy_answers > 0,
        "4x overdrive must shed: shed_requests={}, busy_answers={}",
        overdrive.shed_requests,
        overdrive.busy_answers
    );
    assert_eq!(
        baseline.shed_requests, 0,
        "the uncapped baseline must not shed"
    );
    if !smoke {
        assert!(
            p99_ratio <= 3.0,
            "served-request p99 under 4x overdrive degraded {p99_ratio:.2}x over baseline (limit 3x)"
        );
    }

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"id\": \"bench_overload\",");
    let _ = writeln!(
        json,
        "  \"mode\": \"{}\",",
        if smoke { "smoke" } else { "full" }
    );
    let _ = writeln!(json, "  \"object_bytes\": {OBJECT_BYTES},");
    let _ = writeln!(json, "  \"client_pace_bps\": {CLIENT_PACE_BPS},");
    let _ = writeln!(
        json,
        "  \"p99_ratio_overdrive_vs_baseline\": {p99_ratio:.4},"
    );
    json.push_str("  \"phases\": [\n");
    let _ = writeln!(json, "    {},", phase_json(&baseline));
    let _ = writeln!(json, "    {}", phase_json(&overdrive));
    json.push_str("  ]\n}\n");

    // Full mode refreshes the checked-in baseline; smoke mode (CI) writes
    // next to the figure JSON so it never clobbers the tracked trajectory.
    let path = if smoke {
        let _ = std::fs::create_dir_all("results");
        "results/BENCH_overload_smoke.json"
    } else {
        "BENCH_overload.json"
    };
    match std::fs::write(path, &json) {
        Ok(()) => println!("(wrote {path})"),
        Err(e) => eprintln!("warning: could not write {path}: {e}"),
    }
}
