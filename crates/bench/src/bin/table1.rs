//! Regenerates Table 1: characteristics of the synthetic workload.

use sc_sim::experiments::table1;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale = sc_bench::scale_from_args();
    let start = std::time::Instant::now();
    let table = table1(scale)?;
    let info = sc_bench::RunInfo::from_elapsed(start.elapsed());
    println!("{table}");
    println!("(scale: {scale:?}; paper values: 5,000 objects, 100,000 requests, 48 KB/s, ~790 GB)");
    println!(
        "(wall clock: {:.3} s; SC_SIM_THREADS resolves to {} threads)",
        info.wall_clock_secs, info.threads
    );
    Ok(())
}
