//! End-to-end proxy load benchmark: concurrent streaming clients against a
//! synthetic origin through the caching proxy, emitted as `BENCH_proxy.json`
//! so the proxy request-path perf trajectory is tracked across PRs
//! (alongside `BENCH_hotpath.json` for the cache core).
//!
//! Run `cargo run --release -p sc_bench --bin bench_proxy` for the full
//! measurement (64 concurrent clients), or `-- --smoke` for the reduced CI
//! smoke mode. Two phases:
//!
//! * **`warm_64_clients`** — N clients hammer a fully-warm cache (integral
//!   policy, every object entirely cached, no origin traffic in the timed
//!   region). This isolates the proxy's per-request hot path: accept,
//!   protocol parse, store lookup, engine access, store reconciliation.
//!   The timed loop uses a raw protocol client (one content-verified fetch
//!   per client thread, the rest read-and-discard) so client-side
//!   byte-by-byte verification does not mask the proxy's costs.
//!   Reports requests/sec and p50/p99 client-observed delay.
//! * **`large_tail_stream`** — one large object streamed through the proxy
//!   on a fast path the (estimator-warmed) PB policy declines to cache, so
//!   the whole tail is relayed. Reports the proxy's peak resident
//!   tail-retention bytes, which together with the fixed relay ring bounds
//!   per-request memory under large-object workloads.
//!
//! A third output, `BENCH_shard.json`, sweeps the warm phase over worker
//! counts (1→64) at fixed engine shard counts (a single-lock engine versus
//! one sharded wider than any pool), tracking how request throughput
//! responds to pool size with and without cache-lock contention.

use sc_cache::policy::PolicyKind;
use sc_proxy::protocol::{read_response, write_request, Request, Response};
use sc_proxy::{
    CachingProxy, ObjectSpec, OriginConfig, OriginServer, ProxyConfig, StreamingClient,
};
use std::fmt::Write as _;
use std::io::{BufReader, BufWriter, Read};
use std::net::{SocketAddr, TcpStream};
use std::time::Instant;

/// One measured phase of the proxy benchmark.
struct PhaseResult {
    name: String,
    requests: u64,
    wall_clock_secs: f64,
    p50_delay_secs: f64,
    p99_delay_secs: f64,
    peak_tail_bytes: u64,
}

impl PhaseResult {
    fn requests_per_sec(&self) -> f64 {
        if self.wall_clock_secs > 0.0 {
            self.requests as f64 / self.wall_clock_secs
        } else {
            f64::INFINITY
        }
    }
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Minimal fetch: request `name`, read the payload into a reusable scratch
/// buffer without inspecting it, drain to EOF (synchronising with the
/// proxy's post-transfer bookkeeping). Returns bytes received.
fn raw_fetch(addr: SocketAddr, name: &str, scratch: &mut [u8]) -> u64 {
    let stream = TcpStream::connect(addr).expect("connect");
    stream.set_nodelay(true).ok();
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut writer = BufWriter::new(stream);
    write_request(
        &mut writer,
        &Request {
            name: name.to_string(),
            offset: 0,
        },
    )
    .expect("request");
    let size = match read_response(&mut reader).expect("response") {
        Response::Ok { size, .. } => size,
        Response::Err(e) => panic!("unexpected error response: {e}"),
        Response::Busy { .. } => panic!("unexpected shed: this bench never overloads admission"),
    };
    let mut received: u64 = 0;
    while received < size {
        let want = scratch.len().min((size - received) as usize);
        let n = reader.read(&mut scratch[..want]).expect("read");
        if n == 0 {
            break;
        }
        received += n as u64;
    }
    while reader.read(scratch).map(|n| n > 0).unwrap_or(false) {}
    received
}

/// Phase 1: N concurrent clients over a shared catalog with a fully-warm
/// cache. The integral-frequency policy caches whole objects, so after the
/// sequential warm-up pass every request is served entirely from the prefix
/// store and the timed region measures pure proxy request-path overhead.
/// `workers`/`shards` configure the proxy's worker pool and engine shard
/// count (`shards = 0` keeps the default of one shard per worker).
fn bench_warm_clients(
    clients: usize,
    requests_per_client: usize,
    objects: u32,
    workers: usize,
    shards: usize,
) -> PhaseResult {
    const OBJECT_BYTES: u64 = 16 * 1024;
    const BITRATE_BPS: f64 = 1e6;
    let specs: Vec<ObjectSpec> = (0..objects)
        .map(|i| ObjectSpec::new(format!("clip-{i}"), OBJECT_BYTES, BITRATE_BPS))
        .collect();
    let origin = OriginServer::start(OriginConfig {
        objects: specs,
        rate_limit_bps: 0.0,
    })
    .expect("origin start");
    let mut config = ProxyConfig::new(origin.addr(), 1e12);
    config.policy = PolicyKind::IntegralFrequency;
    config.worker_threads = workers;
    config.engine_shards = shards;
    let proxy = CachingProxy::start(config).expect("proxy start");
    let addr = proxy.addr();

    // Warm-up: one sequential (verified) pass caches every object in full.
    let client = StreamingClient::new();
    for i in 0..objects {
        let report = client
            .fetch(addr, &format!("clip-{i}"))
            .expect("warm-up fetch");
        assert!(report.content_ok, "warm-up content mismatch");
    }
    let warm_stats = proxy.stats();
    assert_eq!(
        warm_stats.cached_bytes,
        u64::from(objects) * OBJECT_BYTES,
        "cache must be fully warm before the timed phase"
    );

    // Timed region: each client thread fetches a deterministic slice of the
    // catalog, recording per-request wall-clock delay. One verified fetch
    // per thread guards correctness without paying per-byte hashing on
    // every request.
    let started = Instant::now();
    let delays: Vec<f64> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                scope.spawn(move || {
                    let verified = StreamingClient::new()
                        .fetch(addr, &format!("clip-{}", c as u32 % objects))
                        .expect("verified fetch");
                    assert!(verified.content_ok, "content mismatch under load");
                    let mut scratch = vec![0u8; 64 * 1024];
                    let mut delays = Vec::with_capacity(requests_per_client);
                    for r in 1..requests_per_client {
                        let name = format!("clip-{}", (c + r * 17) as u32 % objects);
                        let t0 = Instant::now();
                        let received = raw_fetch(addr, &name, &mut scratch);
                        delays.push(t0.elapsed().as_secs_f64());
                        assert_eq!(received, OBJECT_BYTES);
                    }
                    delays
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect()
    });
    let wall = started.elapsed().as_secs_f64();

    let mut sorted = delays;
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let peak_tail_bytes = proxy.stats().peak_tail_bytes;
    PhaseResult {
        name: format!("warm_{clients}_clients"),
        requests: (clients * requests_per_client) as u64,
        wall_clock_secs: wall,
        p50_delay_secs: percentile(&sorted, 0.50),
        p99_delay_secs: percentile(&sorted, 0.99),
        peak_tail_bytes,
    }
}

/// Phase 2: a single large object on a fast path, fetched twice through a
/// PB proxy whose estimator was first warmed on a probe object (so the
/// policy correctly sees an abundant path and declines to cache). The whole
/// tail is relayed each time; the subject is the proxy's peak resident
/// tail-retention bytes.
fn bench_large_tail(object_bytes: u64) -> PhaseResult {
    let origin = OriginServer::start(OriginConfig {
        objects: vec![
            ObjectSpec::new("probe", 64 * 1024, 1e6),
            ObjectSpec::new("feature-film", object_bytes, 1e6),
        ],
        rate_limit_bps: 0.0,
    })
    .expect("origin start");
    let proxy = CachingProxy::start(ProxyConfig::new(origin.addr(), 1e12)).expect("proxy start");
    let client = StreamingClient::new();

    // Warm the bandwidth estimator: after these the proxy knows the path is
    // far faster than any bit-rate, so PB's target for the film is zero.
    for _ in 0..3 {
        client.fetch(proxy.addr(), "probe").expect("probe fetch");
    }

    let started = Instant::now();
    let mut delays = Vec::new();
    for _ in 0..2 {
        let t0 = Instant::now();
        let report = client
            .fetch(proxy.addr(), "feature-film")
            .expect("large fetch");
        delays.push(t0.elapsed().as_secs_f64());
        assert!(report.content_ok);
        assert_eq!(report.bytes, object_bytes);
    }
    let wall = started.elapsed().as_secs_f64();
    delays.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let peak_tail_bytes = proxy.stats().peak_tail_bytes;
    PhaseResult {
        name: "large_tail_stream".to_string(),
        requests: 2,
        wall_clock_secs: wall,
        p50_delay_secs: percentile(&delays, 0.50),
        p99_delay_secs: percentile(&delays, 0.99),
        peak_tail_bytes,
    }
}

/// One point of the worker-scaling sweep: the warm phase at a given worker
/// and shard count.
struct SweepPoint {
    workers: usize,
    shards: usize,
    result: PhaseResult,
}

/// Worker-count scaling sweep at fixed shard counts: how proxy throughput
/// responds to pool size when the cache is a single lock (`shards = 1`)
/// versus sharded wider than the pool (`shards ≥ workers`). Each point is
/// an independent proxy+origin pair on a warm cache.
fn sweep_workers(
    worker_counts: &[usize],
    shard_counts: &[usize],
    clients: usize,
    requests_per_client: usize,
    objects: u32,
) -> Vec<SweepPoint> {
    let mut points = Vec::new();
    for &shards in shard_counts {
        for &workers in worker_counts {
            let result = bench_warm_clients(clients, requests_per_client, objects, workers, shards);
            println!(
                "sweep workers={workers:<3} shards={shards:<3} {:>10.0} req/s  p99 {:>8.4} s",
                result.requests_per_sec(),
                result.p99_delay_secs,
            );
            points.push(SweepPoint {
                workers,
                shards,
                result,
            });
        }
    }
    points
}

/// Serialises the sweep as `BENCH_shard.json` (or the smoke variant).
fn write_shard_json(points: &[SweepPoint], smoke: bool, clients: usize) {
    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"id\": \"bench_shard\",");
    let _ = writeln!(
        json,
        "  \"mode\": \"{}\",",
        if smoke { "smoke" } else { "full" }
    );
    let _ = writeln!(json, "  \"clients\": {clients},");
    json.push_str("  \"sweep\": [\n");
    for (i, p) in points.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"workers\": {}, \"shards\": {}, \"requests\": {}, \
             \"wall_clock_secs\": {:.6}, \"requests_per_sec\": {:.1}, \
             \"p50_delay_secs\": {:.6}, \"p99_delay_secs\": {:.6}}}",
            p.workers,
            p.shards,
            p.result.requests,
            p.result.wall_clock_secs,
            p.result.requests_per_sec(),
            p.result.p50_delay_secs,
            p.result.p99_delay_secs,
        );
        json.push_str(if i + 1 < points.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ]\n}\n");

    let path = if smoke {
        let _ = std::fs::create_dir_all("results");
        "results/BENCH_shard_smoke.json"
    } else {
        "BENCH_shard.json"
    };
    match std::fs::write(path, &json) {
        Ok(()) => println!("(wrote {path})"),
        Err(e) => eprintln!("warning: could not write {path}: {e}"),
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (clients, requests_per_client, objects, large_bytes) = if smoke {
        (8, 8, 128, 2 * 1024 * 1024)
    } else {
        (64, 100, 2048, 16 * 1024 * 1024)
    };

    let results = [
        // Default worker pool and sharding (one shard per worker).
        bench_warm_clients(clients, requests_per_client, objects, 8, 0),
        bench_large_tail(large_bytes),
    ];

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"id\": \"bench_proxy\",");
    let _ = writeln!(
        json,
        "  \"mode\": \"{}\",",
        if smoke { "smoke" } else { "full" }
    );
    let _ = writeln!(json, "  \"clients\": {clients},");
    json.push_str("  \"benchmarks\": [\n");
    for (i, r) in results.iter().enumerate() {
        println!(
            "{:<20} {:>7} req {:>8.3} s {:>10.0} req/s  p50 {:>8.4} s  p99 {:>8.4} s  peak tail {:>10} B",
            r.name,
            r.requests,
            r.wall_clock_secs,
            r.requests_per_sec(),
            r.p50_delay_secs,
            r.p99_delay_secs,
            r.peak_tail_bytes,
        );
        let _ = write!(
            json,
            "    {{\"name\": \"{}\", \"requests\": {}, \"wall_clock_secs\": {:.6}, \
             \"requests_per_sec\": {:.1}, \"p50_delay_secs\": {:.6}, \
             \"p99_delay_secs\": {:.6}, \"peak_tail_bytes\": {}}}",
            r.name,
            r.requests,
            r.wall_clock_secs,
            r.requests_per_sec(),
            r.p50_delay_secs,
            r.p99_delay_secs,
            r.peak_tail_bytes,
        );
        json.push_str(if i + 1 < results.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ]\n}\n");

    // Full mode refreshes the checked-in baseline; smoke mode (CI) writes
    // next to the figure JSON so it never clobbers the tracked trajectory.
    let path = if smoke {
        let _ = std::fs::create_dir_all("results");
        "results/BENCH_proxy_smoke.json"
    } else {
        "BENCH_proxy.json"
    };
    match std::fs::write(path, &json) {
        Ok(()) => println!("(wrote {path})"),
        Err(e) => eprintln!("warning: could not write {path}: {e}"),
    }

    // Worker-scaling sweep → BENCH_shard.json. Full mode walks 1→64 workers
    // against a single-lock engine and one sharded wider than any pool;
    // smoke mode pins two small points per shard count as a CI gate.
    let (worker_counts, shard_counts, sweep_requests, sweep_objects): (
        &[usize],
        &[usize],
        usize,
        u32,
    ) = if smoke {
        (&[1, 4], &[1, 4], 6, 64)
    } else {
        (&[1, 2, 4, 8, 16, 32, 64], &[1, 64], 40, 512)
    };
    let points = sweep_workers(
        worker_counts,
        shard_counts,
        clients,
        sweep_requests,
        sweep_objects,
    );
    write_shard_json(&points, smoke, clients);
}
