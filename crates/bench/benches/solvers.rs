//! Criterion micro-benchmarks: offline optimal solvers (fractional knapsack
//! allocation and value-based selection).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sc_cache::{
    exact_value_selection, greedy_value_selection, optimal_partial_allocation, ObjectKey,
    ObjectMeta, OfflineObject,
};

fn offline_objects(n: usize, seed: u64) -> Vec<OfflineObject> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            let duration = rng.gen_range(60.0..7_200.0);
            let bandwidth = rng.gen_range(2_000.0..200_000.0);
            let value = rng.gen_range(1.0..10.0);
            OfflineObject::new(
                ObjectMeta::new(ObjectKey::new(i as u64), duration, 48_000.0, value),
                rng.gen_range(0.1..10.0),
                bandwidth,
            )
        })
        .collect()
}

fn bench_fractional_knapsack(c: &mut Criterion) {
    let mut group = c.benchmark_group("optimal_partial_allocation");
    for n in [1_000usize, 5_000, 20_000] {
        let objects = offline_objects(n, 1);
        let capacity = 0.05 * objects.iter().map(|o| o.meta.size_bytes()).sum::<f64>();
        group.bench_with_input(BenchmarkId::from_parameter(n), &objects, |b, objects| {
            b.iter(|| optimal_partial_allocation(objects, capacity).unwrap().len());
        });
    }
    group.finish();
}

fn bench_value_selection(c: &mut Criterion) {
    let objects = offline_objects(2_000, 2);
    let capacity = 0.05 * objects.iter().map(|o| o.meta.size_bytes()).sum::<f64>();
    let mut group = c.benchmark_group("value_selection");
    group.bench_function("greedy_2000", |b| {
        b.iter(|| greedy_value_selection(&objects, capacity).unwrap().len());
    });
    let small = offline_objects(200, 3);
    let small_capacity = 0.05 * small.iter().map(|o| o.meta.size_bytes()).sum::<f64>();
    group.bench_function("exact_dp_200x2000", |b| {
        b.iter(|| {
            exact_value_selection(&small, small_capacity, 2_000)
                .unwrap()
                .len()
        });
    });
    group.finish();
}

criterion_group!(benches, bench_fractional_knapsack, bench_value_selection);
criterion_main!(benches);
