//! Criterion benchmarks: end-to-end simulation throughput (requests per
//! second of simulated workload) for the main policies and variability
//! models.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sc_cache::policy::PolicyKind;
use sc_sim::exec::{ExecConfig, ParallelExecutor};
use sc_sim::{run_replicated_with, run_simulation, SimulationConfig, VariabilityKind};
use sc_workload::WorkloadConfig;

fn reduced_config(policy: PolicyKind, variability: VariabilityKind) -> SimulationConfig {
    let mut workload = WorkloadConfig::paper_default();
    workload.catalog.objects = 1_000;
    workload.trace.requests = 20_000;
    SimulationConfig {
        workload,
        policy,
        variability,
        ..SimulationConfig::paper_default()
    }
    .with_cache_fraction(0.05)
}

fn bench_simulation_policies(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulate_20k_requests");
    group.sample_size(10);
    group.throughput(Throughput::Elements(20_000));
    for policy in [
        PolicyKind::IntegralFrequency,
        PolicyKind::PartialBandwidth,
        PolicyKind::IntegralBandwidth,
        PolicyKind::PartialBandwidthValue { e: 1.0 },
    ] {
        let config = reduced_config(policy, VariabilityKind::Constant);
        group.bench_with_input(
            BenchmarkId::from_parameter(policy.label()),
            &config,
            |b, config| {
                b.iter(|| run_simulation(config).unwrap().metrics.requests);
            },
        );
    }
    group.finish();
}

fn bench_variability_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("variability_overhead");
    group.sample_size(10);
    for kind in [
        VariabilityKind::Constant,
        VariabilityKind::MeasuredModerate,
        VariabilityKind::NlanrLike,
    ] {
        let config = reduced_config(PolicyKind::PartialBandwidth, kind);
        group.bench_with_input(
            BenchmarkId::from_parameter(kind.label()),
            &config,
            |b, config| {
                b.iter(|| run_simulation(config).unwrap().metrics.requests);
            },
        );
    }
    group.finish();
}

/// Sequential vs parallel `run_replicated` at small scale: the speedup of
/// the execution layer, tracked in the benchmark output going forward.
/// Identical work (8 replicated runs of `SimulationConfig::small`) is
/// executed with 1 thread, with the machine's available parallelism, and
/// with twice that (oversubscribed), so scaling and contention both show.
fn bench_parallel_executor(c: &mut Criterion) {
    let config = SimulationConfig {
        policy: PolicyKind::PartialBandwidth,
        ..SimulationConfig::small()
    }
    .with_cache_fraction(0.05);
    let runs = 8;
    let available = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    let mut group = c.benchmark_group("run_replicated_small_seq_vs_par");
    group.sample_size(10);
    group.throughput(Throughput::Elements(
        (runs * config.workload.trace.requests) as u64,
    ));
    let mut thread_counts = vec![1];
    if available > 1 {
        thread_counts.push(available);
        thread_counts.push(available * 2);
    }
    for threads in thread_counts {
        let executor = ParallelExecutor::new(ExecConfig::with_threads(threads));
        group.bench_with_input(
            BenchmarkId::new("threads", threads),
            &executor,
            |b, executor| {
                b.iter(|| {
                    run_replicated_with(&config, runs, executor)
                        .unwrap()
                        .requests
                });
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_simulation_policies,
    bench_variability_overhead,
    bench_parallel_executor
);
criterion_main!(benches);
