//! Criterion benchmarks: end-to-end simulation throughput (requests per
//! second of simulated workload) for the main policies and variability
//! models.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sc_cache::policy::PolicyKind;
use sc_sim::{run_simulation, SimulationConfig, VariabilityKind};
use sc_workload::WorkloadConfig;

fn reduced_config(policy: PolicyKind, variability: VariabilityKind) -> SimulationConfig {
    let mut workload = WorkloadConfig::paper_default();
    workload.catalog.objects = 1_000;
    workload.trace.requests = 20_000;
    SimulationConfig {
        workload,
        policy,
        variability,
        ..SimulationConfig::paper_default()
    }
    .with_cache_fraction(0.05)
}

fn bench_simulation_policies(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulate_20k_requests");
    group.sample_size(10);
    group.throughput(Throughput::Elements(20_000));
    for policy in [
        PolicyKind::IntegralFrequency,
        PolicyKind::PartialBandwidth,
        PolicyKind::IntegralBandwidth,
        PolicyKind::PartialBandwidthValue { e: 1.0 },
    ] {
        let config = reduced_config(policy, VariabilityKind::Constant);
        group.bench_with_input(
            BenchmarkId::from_parameter(policy.label()),
            &config,
            |b, config| {
                b.iter(|| run_simulation(config).unwrap().metrics.requests);
            },
        );
    }
    group.finish();
}

fn bench_variability_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("variability_overhead");
    group.sample_size(10);
    for kind in [
        VariabilityKind::Constant,
        VariabilityKind::MeasuredModerate,
        VariabilityKind::NlanrLike,
    ] {
        let config = reduced_config(PolicyKind::PartialBandwidth, kind);
        group.bench_with_input(
            BenchmarkId::from_parameter(kind.label()),
            &config,
            |b, config| {
                b.iter(|| run_simulation(config).unwrap().metrics.requests);
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_simulation_policies,
    bench_variability_overhead
);
criterion_main!(benches);
