//! Criterion micro-benchmarks: per-access cost of each replacement policy
//! and of the heap-based replacement machinery.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sc_cache::policy::PolicyKind;
use sc_cache::{CacheEngine, ObjectKey, ObjectMeta, UtilityHeap};

/// A deterministic synthetic access stream: (object key, bandwidth).
fn access_stream(objects: u64, accesses: usize, seed: u64) -> Vec<(ObjectMeta, f64)> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..accesses)
        .map(|_| {
            let key = rng.gen_range(0..objects);
            let duration = 60.0 + (key % 50) as f64 * 30.0;
            let meta = ObjectMeta::new(ObjectKey::new(key), duration, 48_000.0, 5.0);
            let bandwidth = rng.gen_range(2_000.0..200_000.0);
            (meta, bandwidth)
        })
        .collect()
}

fn bench_policy_access(c: &mut Criterion) {
    let stream = access_stream(2_000, 10_000, 7);
    let mut group = c.benchmark_group("policy_on_access");
    group.throughput(Throughput::Elements(stream.len() as u64));
    for kind in [
        PolicyKind::IntegralFrequency,
        PolicyKind::IntegralBandwidth,
        PolicyKind::PartialBandwidth,
        PolicyKind::HybridPartialBandwidth { e: 0.5 },
        PolicyKind::PartialBandwidthValue { e: 1.0 },
        PolicyKind::IntegralBandwidthValue,
        PolicyKind::Lru,
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(kind.label()),
            &kind,
            |b, kind| {
                b.iter(|| {
                    let mut cache = CacheEngine::new(2e9, kind.build()).unwrap();
                    for (meta, bandwidth) in &stream {
                        cache.on_access(meta, *bandwidth);
                    }
                    cache.stats().evictions
                });
            },
        );
    }
    group.finish();
}

fn bench_heap_operations(c: &mut Criterion) {
    let mut group = c.benchmark_group("utility_heap");
    for n in [1_000usize, 10_000, 100_000] {
        group.bench_with_input(BenchmarkId::new("insert_update_pop", n), &n, |b, &n| {
            b.iter(|| {
                let mut heap = UtilityHeap::with_capacity(n);
                for i in 0..n {
                    heap.insert(i as u32, (i % 997) as f64);
                }
                for i in 0..n / 2 {
                    heap.update(i as u32, (i % 313) as f64 + 1_000.0);
                }
                let mut sum = 0.0;
                while let Some((_, u)) = heap.pop_min() {
                    sum += u;
                }
                sum
            });
        });
    }
    group.finish();
}

/// Keyed vs slot-addressed access on the identical stream: the difference
/// is exactly the per-access cost of the key→slot interning map.
fn bench_slot_vs_keyed(c: &mut Criterion) {
    let objects = 2_000u64;
    let stream = access_stream(objects, 10_000, 7);
    let mut group = c.benchmark_group("engine_addressing");
    group.throughput(Throughput::Elements(stream.len() as u64));
    group.bench_function("keyed", |b| {
        b.iter(|| {
            let mut cache = CacheEngine::new(2e9, PolicyKind::PartialBandwidth.build()).unwrap();
            for (meta, bandwidth) in &stream {
                cache.on_access(meta, *bandwidth);
            }
            cache.stats().evictions
        });
    });
    group.bench_function("slot", |b| {
        b.iter(|| {
            let mut cache = CacheEngine::new(2e9, PolicyKind::PartialBandwidth.build()).unwrap();
            cache.ensure_slots(objects as usize);
            for (meta, bandwidth) in &stream {
                cache.on_access_slot(meta.key.as_u64() as u32, meta, *bandwidth);
            }
            cache.stats().evictions
        });
    });
    group.finish();
}

fn bench_eviction_pressure(c: &mut Criterion) {
    // Cache sized at ~1% of the working set: every admission evicts.
    let stream = access_stream(5_000, 10_000, 11);
    let mut group = c.benchmark_group("eviction_pressure");
    group.throughput(Throughput::Elements(stream.len() as u64));
    group.bench_function("pb_tiny_cache", |b| {
        b.iter(|| {
            let mut cache = CacheEngine::new(5e8, PolicyKind::PartialBandwidth.build()).unwrap();
            for (meta, bandwidth) in &stream {
                cache.on_access(meta, *bandwidth);
            }
            cache.stats().evictions
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_policy_access,
    bench_heap_operations,
    bench_slot_vs_keyed,
    bench_eviction_pressure
);
criterion_main!(benches);
