//! Criterion micro-benchmarks: bandwidth-model sampling costs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sc_netmodel::{
    tcp_throughput_bps, BandwidthTimeSeries, NlanrBandwidthModel, PathSet, TcpPathParams,
    TimeSeriesConfig, VariabilityModel,
};

fn bench_base_sampling(c: &mut Criterion) {
    let model = NlanrBandwidthModel::paper_default();
    let mut group = c.benchmark_group("nlanr_sampling");
    group.throughput(Throughput::Elements(10_000));
    group.bench_function("sample_10k", |b| {
        let mut rng = StdRng::seed_from_u64(1);
        b.iter(|| model.sample_n_bps(&mut rng, 10_000).len());
    });
    group.finish();
}

fn bench_variability_models(c: &mut Criterion) {
    let mut group = c.benchmark_group("variability_apply");
    group.throughput(Throughput::Elements(10_000));
    for (name, model) in [
        ("constant", VariabilityModel::constant()),
        ("nlanr", VariabilityModel::nlanr_like()),
        ("measured", VariabilityModel::measured_path_moderate()),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &model, |b, model| {
            let mut rng = StdRng::seed_from_u64(2);
            b.iter(|| {
                let mut acc = 0.0;
                for _ in 0..10_000 {
                    acc += model.apply(&mut rng, 100_000.0);
                }
                acc
            });
        });
    }
    group.finish();
}

fn bench_path_set_generation(c: &mut Criterion) {
    c.bench_function("path_set_5000", |b| {
        let base = NlanrBandwidthModel::paper_default();
        let mut rng = StdRng::seed_from_u64(3);
        b.iter(|| {
            PathSet::generate(
                5_000,
                &base,
                VariabilityModel::measured_path_low(),
                &mut rng,
            )
            .len()
        });
    });
}

fn bench_timeseries_and_tcp(c: &mut Criterion) {
    c.bench_function("timeseries_10k_samples", |b| {
        let cfg = TimeSeriesConfig::default();
        let mut rng = StdRng::seed_from_u64(4);
        b.iter(|| {
            BandwidthTimeSeries::generate(&cfg, 10_000, &mut rng)
                .unwrap()
                .len()
        });
    });
    c.bench_function("tcp_throughput_model", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for loss_ppm in 1..1_000u32 {
                let params = TcpPathParams::wan(0.08, f64::from(loss_ppm) * 1e-4);
                acc += tcp_throughput_bps(&params).unwrap();
            }
            acc
        });
    });
}

criterion_group!(
    benches,
    bench_base_sampling,
    bench_variability_models,
    bench_path_set_generation,
    bench_timeseries_and_tcp
);
criterion_main!(benches);
