//! Criterion benchmarks that run each paper-figure driver at test scale.
//!
//! These keep the experiment code paths exercised by `cargo bench` and give
//! a wall-clock figure for how long each reproduced experiment takes; the
//! full-scale numbers are produced by the `fig*` binaries
//! (`cargo run -p sc-bench --bin fig5 --release -- --scale paper`).

use criterion::{criterion_group, criterion_main, Criterion};
use sc_sim::experiments::{
    fig10, fig11, fig12, fig5, fig6, fig7, fig8, fig9, table1, ExperimentScale,
};

fn bench_figures(c: &mut Criterion) {
    let mut group = c.benchmark_group("figures_test_scale");
    group.sample_size(10);
    group.bench_function("table1", |b| {
        b.iter(|| table1(ExperimentScale::Test).unwrap().objects)
    });
    group.bench_function("fig5", |b| {
        b.iter(|| fig5(ExperimentScale::Test).unwrap().series.len())
    });
    group.bench_function("fig6", |b| {
        b.iter(|| fig6(ExperimentScale::Test).unwrap().series.len())
    });
    group.bench_function("fig7", |b| {
        b.iter(|| fig7(ExperimentScale::Test).unwrap().series.len())
    });
    group.bench_function("fig8", |b| {
        b.iter(|| fig8(ExperimentScale::Test).unwrap().series.len())
    });
    group.bench_function("fig9", |b| {
        b.iter(|| fig9(ExperimentScale::Test).unwrap().series.len())
    });
    group.bench_function("fig10", |b| {
        b.iter(|| fig10(ExperimentScale::Test).unwrap().series.len())
    });
    group.bench_function("fig11", |b| {
        b.iter(|| fig11(ExperimentScale::Test).unwrap().series.len())
    });
    group.bench_function("fig12", |b| {
        b.iter(|| fig12(ExperimentScale::Test).unwrap().series.len())
    });
    group.finish();
}

criterion_group!(benches, bench_figures);
criterion_main!(benches);
