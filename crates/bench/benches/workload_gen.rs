//! Criterion micro-benchmarks: synthetic workload generation throughput.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sc_workload::{Catalog, CatalogConfig, RequestTrace, TraceConfig, WorkloadBuilder, ZipfLike};

fn bench_zipf_sampling(c: &mut Criterion) {
    let mut group = c.benchmark_group("zipf_sampling");
    for n in [1_000usize, 5_000, 50_000] {
        let zipf = ZipfLike::new(n, 0.73).unwrap();
        group.throughput(Throughput::Elements(10_000));
        group.bench_with_input(BenchmarkId::from_parameter(n), &zipf, |b, zipf| {
            let mut rng = StdRng::seed_from_u64(1);
            b.iter(|| {
                let mut acc = 0usize;
                for _ in 0..10_000 {
                    acc += zipf.sample(&mut rng);
                }
                acc
            });
        });
    }
    group.finish();
}

fn bench_catalog_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("catalog_generation");
    for objects in [1_000usize, 5_000] {
        group.bench_with_input(
            BenchmarkId::from_parameter(objects),
            &objects,
            |b, &objects| {
                let config = CatalogConfig {
                    objects,
                    ..CatalogConfig::paper_default()
                };
                let mut rng = StdRng::seed_from_u64(2);
                b.iter(|| Catalog::generate(&config, &mut rng).unwrap().len());
            },
        );
    }
    group.finish();
}

fn bench_trace_generation(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(3);
    let catalog = Catalog::generate(&CatalogConfig::paper_default(), &mut rng).unwrap();
    let mut group = c.benchmark_group("trace_generation");
    for requests in [10_000usize, 100_000] {
        group.throughput(Throughput::Elements(requests as u64));
        group.bench_with_input(
            BenchmarkId::from_parameter(requests),
            &requests,
            |b, &requests| {
                let config = TraceConfig {
                    requests,
                    ..TraceConfig::paper_default()
                };
                let mut rng = StdRng::seed_from_u64(4);
                b.iter(|| {
                    RequestTrace::generate(&catalog, &config, &mut rng)
                        .unwrap()
                        .len()
                });
            },
        );
    }
    group.finish();
}

fn bench_full_workload(c: &mut Criterion) {
    let mut group = c.benchmark_group("full_workload");
    group.sample_size(10);
    group.bench_function("paper_scale_workload", |b| {
        b.iter(|| {
            WorkloadBuilder::new()
                .objects(5_000)
                .requests(100_000)
                .seed(5)
                .build()
                .unwrap()
                .trace
                .len()
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_zipf_sampling,
    bench_catalog_generation,
    bench_trace_generation,
    bench_full_workload
);
criterion_main!(benches);
