//! Property-style tests for the bandwidth models.
//!
//! Seeded-loop property tests (the registry-less build environment has no
//! `proptest`): every property draws random cases from a fixed-seed
//! [`StdRng`], so failures reproduce deterministically.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sc_netmodel::{
    tcp_throughput_bps, BandwidthEstimator, BandwidthTimeSeries, ConservativeEstimator,
    EmpiricalDistribution, EwmaEstimator, Histogram, NlanrBandwidthModel, PathSet, TcpPathParams,
    TimeSeriesConfig, VariabilityModel, WindowedEstimator,
};

/// The empirical CDF and quantile functions are inverse to each other
/// inside the support.
#[test]
fn empirical_cdf_quantile_roundtrip() {
    let d = EmpiricalDistribution::from_cdf(vec![(0.0, 0.0), (5.0, 0.3), (20.0, 0.9), (40.0, 1.0)])
        .unwrap();
    let mut rng = StdRng::seed_from_u64(0xC0F);
    for _ in 0..200 {
        let p: f64 = rng.gen();
        let x = d.quantile(p);
        let q = d.cdf(x);
        assert!((q - p).abs() < 1e-9, "p={p} x={x} q={q}");
    }
}

/// Empirical samples always stay inside the distribution's support.
#[test]
fn empirical_samples_in_support() {
    let d = EmpiricalDistribution::from_cdf(vec![(10.0, 0.0), (90.0, 1.0)]).unwrap();
    let mut rng = StdRng::seed_from_u64(0x5A3);
    for _ in 0..2_000 {
        let x = d.sample(&mut rng);
        assert!((10.0..=90.0).contains(&x));
    }
}

/// NLANR model samples are positive and bounded by the distribution max.
#[test]
fn nlanr_samples_positive() {
    let m = NlanrBandwidthModel::paper_default();
    let mut rng = StdRng::seed_from_u64(0x91A);
    for _ in 0..2_000 {
        let bw = m.sample_bps(&mut rng);
        assert!(bw > 0.0);
        assert!(bw <= 800_000.0 + 1e-6);
    }
}

/// Variability ratios are non-negative and path samples scale with the base
/// bandwidth.
#[test]
fn variability_apply_scales() {
    let m = VariabilityModel::nlanr_like();
    let mut rng = StdRng::seed_from_u64(0xAB5);
    for _ in 0..2_000 {
        let base = rng.gen_range(1_000.0..1_000_000.0);
        let bw = m.apply(&mut rng, base);
        assert!(bw >= 0.0);
        assert!(bw <= base * 3.5);
    }
}

/// Histograms conserve the number of samples.
#[test]
fn histogram_conserves_mass() {
    let mut rng = StdRng::seed_from_u64(0x415);
    for _ in 0..64 {
        let n = rng.gen_range(1..200usize);
        let samples: Vec<f64> = (0..n).map(|_| rng.gen_range(-10.0..500.0)).collect();
        let h = Histogram::from_samples(4.0, 100, &samples);
        let binned: u64 = h.counts().iter().sum();
        assert_eq!(binned + h.overflow() + h.underflow(), samples.len() as u64);
        assert_eq!(h.total(), samples.len() as u64);
    }
}

/// TCP throughput is monotonically non-increasing in loss rate.
#[test]
fn tcp_monotone_in_loss() {
    let mut rng = StdRng::seed_from_u64(0x7C9);
    for _ in 0..200 {
        let rtt = rng.gen_range(0.01..0.5);
        let loss = rng.gen_range(0.0005..0.2);
        let lo = tcp_throughput_bps(&TcpPathParams::wan(rtt, loss)).unwrap();
        let hi = tcp_throughput_bps(&TcpPathParams::wan(rtt, (loss * 2.0).min(1.0))).unwrap();
        assert!(hi <= lo + 1e-6);
    }
}

/// Time series stay positive regardless of mean and coefficient of
/// variation.
#[test]
fn timeseries_positive() {
    let mut rng = StdRng::seed_from_u64(0x715);
    for _ in 0..64 {
        let cfg = TimeSeriesConfig {
            mean_bps: rng.gen_range(10_000.0..500_000.0),
            cov: rng.gen_range(0.0..0.6),
            autocorrelation: 0.5,
            interval_secs: 60.0,
            ..TimeSeriesConfig::default()
        };
        let ts = BandwidthTimeSeries::generate(&cfg, 256, &mut rng).unwrap();
        assert!(ts.samples_bps().iter().all(|&x| x > 0.0));
    }
}

/// Estimators never return a negative estimate and the conservative wrapper
/// never increases the estimate.
#[test]
fn estimators_non_negative() {
    let mut rng = StdRng::seed_from_u64(0xE57);
    for _ in 0..64 {
        let e = rng.gen_range(0.0..1.0);
        let mut ewma = EwmaEstimator::new(0.3);
        let mut window = WindowedEstimator::new(5);
        let mut cons = ConservativeEstimator::new(EwmaEstimator::new(0.3), e);
        let n = rng.gen_range(1..50usize);
        for _ in 0..n {
            let v = rng.gen_range(-10.0..1e6);
            ewma.observe(v);
            window.observe(v);
            cons.observe(v);
        }
        assert!(ewma.estimate_bps().unwrap() >= 0.0);
        assert!(window.estimate_bps().unwrap() >= 0.0);
        assert!(cons.estimate_bps().unwrap() <= ewma.estimate_bps().unwrap() + 1e-9);
    }
}

/// Path sets always produce the requested number of paths with positive
/// mean bandwidth.
#[test]
fn path_sets_well_formed() {
    let mut rng = StdRng::seed_from_u64(0x9A7);
    for _ in 0..32 {
        let n = rng.gen_range(1..200usize);
        let set = PathSet::generate(
            n,
            &NlanrBandwidthModel::paper_default(),
            VariabilityModel::measured_path_low(),
            &mut rng,
        );
        assert_eq!(set.len(), n);
        assert!(set.iter().all(|p| p.mean_bps() > 0.0));
    }
}
