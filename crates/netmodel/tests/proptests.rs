//! Property-based tests for the bandwidth models.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sc_netmodel::{
    BandwidthEstimator, BandwidthTimeSeries, ConservativeEstimator, EmpiricalDistribution,
    EwmaEstimator, Histogram, NlanrBandwidthModel, PathSet, TcpPathParams, TimeSeriesConfig,
    VariabilityModel, WindowedEstimator, tcp_throughput_bps,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The empirical CDF and quantile functions are inverse to each other
    /// inside the support.
    #[test]
    fn empirical_cdf_quantile_roundtrip(p in 0.0f64..1.0) {
        let d = EmpiricalDistribution::from_cdf(vec![
            (0.0, 0.0), (5.0, 0.3), (20.0, 0.9), (40.0, 1.0),
        ]).unwrap();
        let x = d.quantile(p);
        let q = d.cdf(x);
        prop_assert!((q - p).abs() < 1e-9, "p={p} x={x} q={q}");
    }

    /// Empirical samples always stay inside the distribution's support.
    #[test]
    fn empirical_samples_in_support(seed in any::<u64>()) {
        let d = EmpiricalDistribution::from_cdf(vec![(10.0, 0.0), (90.0, 1.0)]).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..64 {
            let x = d.sample(&mut rng);
            prop_assert!((10.0..=90.0).contains(&x));
        }
    }

    /// NLANR model samples are positive and bounded by the distribution max.
    #[test]
    fn nlanr_samples_positive(seed in any::<u64>()) {
        let m = NlanrBandwidthModel::paper_default();
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..64 {
            let bw = m.sample_bps(&mut rng);
            prop_assert!(bw > 0.0);
            prop_assert!(bw <= 800_000.0 + 1e-6);
        }
    }

    /// Variability ratios are non-negative and path samples scale with the
    /// base bandwidth.
    #[test]
    fn variability_apply_scales(base in 1_000.0f64..1_000_000.0, seed in any::<u64>()) {
        let m = VariabilityModel::nlanr_like();
        let mut rng = StdRng::seed_from_u64(seed);
        let bw = m.apply(&mut rng, base);
        prop_assert!(bw >= 0.0);
        prop_assert!(bw <= base * 3.5);
    }

    /// Histograms conserve the number of samples.
    #[test]
    fn histogram_conserves_mass(samples in proptest::collection::vec(-10.0f64..500.0, 1..200)) {
        let h = Histogram::from_samples(4.0, 100, &samples);
        let binned: u64 = h.counts().iter().sum();
        prop_assert_eq!(binned + h.overflow() + h.underflow(), samples.len() as u64);
        prop_assert_eq!(h.total(), samples.len() as u64);
    }

    /// TCP throughput is monotonically non-increasing in loss rate.
    #[test]
    fn tcp_monotone_in_loss(rtt in 0.01f64..0.5, loss in 0.0005f64..0.2) {
        let lo = tcp_throughput_bps(&TcpPathParams::wan(rtt, loss)).unwrap();
        let hi = tcp_throughput_bps(&TcpPathParams::wan(rtt, (loss * 2.0).min(1.0))).unwrap();
        prop_assert!(hi <= lo + 1e-6);
    }

    /// Time series stay positive and have roughly the requested mean.
    #[test]
    fn timeseries_positive(mean in 10_000.0f64..500_000.0, cov in 0.0f64..0.6, seed in any::<u64>()) {
        let cfg = TimeSeriesConfig { mean_bps: mean, cov, autocorrelation: 0.5, interval_secs: 60.0 };
        let mut rng = StdRng::seed_from_u64(seed);
        let ts = BandwidthTimeSeries::generate(&cfg, 256, &mut rng).unwrap();
        prop_assert!(ts.samples_bps().iter().all(|&x| x > 0.0));
    }

    /// Estimators never return a negative estimate and the conservative
    /// wrapper never increases the estimate.
    #[test]
    fn estimators_non_negative(values in proptest::collection::vec(-10.0f64..1e6, 1..50), e in 0.0f64..1.0) {
        let mut ewma = EwmaEstimator::new(0.3);
        let mut window = WindowedEstimator::new(5);
        let mut cons = ConservativeEstimator::new(EwmaEstimator::new(0.3), e);
        for &v in &values {
            ewma.observe(v);
            window.observe(v);
            cons.observe(v);
        }
        prop_assert!(ewma.estimate_bps().unwrap() >= 0.0);
        prop_assert!(window.estimate_bps().unwrap() >= 0.0);
        prop_assert!(cons.estimate_bps().unwrap() <= ewma.estimate_bps().unwrap() + 1e-9);
    }

    /// Path sets always produce the requested number of paths with positive
    /// mean bandwidth.
    #[test]
    fn path_sets_well_formed(n in 1usize..200, seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let set = PathSet::generate(
            n,
            &NlanrBandwidthModel::paper_default(),
            VariabilityModel::measured_path_low(),
            &mut rng,
        );
        prop_assert_eq!(set.len(), n);
        prop_assert!(set.iter().all(|p| p.mean_bps() > 0.0));
    }
}
