//! Per-path bandwidth models combining a base bandwidth with variability.
//!
//! In the paper, every origin server (equivalently, every object, since the
//! paper assumes one path per object) is reached over a path with an average
//! bandwidth drawn from the NLANR-like distribution; instantaneous bandwidth
//! for a given request is the average multiplied by a ratio drawn from a
//! [`VariabilityModel`].

use crate::nlanr::NlanrBandwidthModel;
use crate::timeseries::{BandwidthTimeSeries, TimeSeriesConfig};
use crate::variability::VariabilityModel;
use rand::Rng;

/// Identifier of a network path (one per origin server / object).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PathId(pub u32);

impl PathId {
    /// Dense index of this path.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// The bandwidth model of a single cache↔origin path.
///
/// ```
/// use sc_netmodel::{PathModel, VariabilityModel};
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let path = PathModel::new(80_000.0, VariabilityModel::measured_path_low());
/// let bw = path.bandwidth_sample(&mut rng);
/// assert!(bw > 0.0);
/// assert_eq!(path.mean_bps(), 80_000.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PathModel {
    mean_bps: f64,
    variability: VariabilityModel,
}

impl PathModel {
    /// Creates a path with long-run average `mean_bps` and the given
    /// variability model.
    ///
    /// # Panics
    ///
    /// Panics (debug assertions only) if `mean_bps` is not positive.
    pub fn new(mean_bps: f64, variability: VariabilityModel) -> Self {
        debug_assert!(mean_bps > 0.0, "mean bandwidth must be positive");
        PathModel {
            mean_bps,
            variability,
        }
    }

    /// Long-run average bandwidth of the path in bytes per second.
    pub fn mean_bps(&self) -> f64 {
        self.mean_bps
    }

    /// The variability model of the path.
    pub fn variability(&self) -> &VariabilityModel {
        &self.variability
    }

    /// Draws the instantaneous bandwidth observed by one request.
    pub fn bandwidth_sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.variability.apply(rng, self.mean_bps)
    }

    /// Generates a bandwidth evolution time series for this path (Figure 4
    /// style), with the marginal coefficient of variation taken from the
    /// path's variability model.
    pub fn time_series<R: Rng + ?Sized>(
        &self,
        samples: usize,
        interval_secs: f64,
        autocorrelation: f64,
        rng: &mut R,
    ) -> BandwidthTimeSeries {
        let cfg = TimeSeriesConfig {
            mean_bps: self.mean_bps,
            cov: self.variability.coefficient_of_variation(),
            autocorrelation,
            interval_secs,
            ..TimeSeriesConfig::default()
        };
        BandwidthTimeSeries::generate(&cfg, samples, rng)
            .expect("path-derived time series config is always valid")
    }
}

/// The set of paths between one cache and all origin servers, one path per
/// object in the catalog.
///
/// ```
/// use sc_netmodel::{NlanrBandwidthModel, PathSet, VariabilityModel};
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// let paths = PathSet::generate(
///     100,
///     &NlanrBandwidthModel::paper_default(),
///     VariabilityModel::constant(),
///     &mut rng,
/// );
/// assert_eq!(paths.len(), 100);
/// assert!(paths.mean_bps(0) > 0.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PathSet {
    paths: Vec<PathModel>,
}

impl PathSet {
    /// Generates `n` paths whose average bandwidth is drawn from `base` and
    /// which all share the variability model `variability`.
    pub fn generate<R: Rng + ?Sized>(
        n: usize,
        base: &NlanrBandwidthModel,
        variability: VariabilityModel,
        rng: &mut R,
    ) -> Self {
        let paths = (0..n)
            .map(|_| {
                let mean = base.sample_bps(rng).max(1.0);
                PathModel::new(mean, variability.clone())
            })
            .collect();
        PathSet { paths }
    }

    /// Builds a path set from explicit path models.
    pub fn from_paths(paths: Vec<PathModel>) -> Self {
        PathSet { paths }
    }

    /// Number of paths.
    pub fn len(&self) -> usize {
        self.paths.len()
    }

    /// Returns `true` if the set contains no paths.
    pub fn is_empty(&self) -> bool {
        self.paths.is_empty()
    }

    /// The path for object/server index `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn path(&self, i: usize) -> &PathModel {
        &self.paths[i]
    }

    /// Long-run average bandwidth of path `i` in bytes per second.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn mean_bps(&self, i: usize) -> f64 {
        self.paths[i].mean_bps()
    }

    /// Draws the instantaneous bandwidth seen by a request to object `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn bandwidth_sample<R: Rng + ?Sized>(&self, i: usize, rng: &mut R) -> f64 {
        self.paths[i].bandwidth_sample(rng)
    }

    /// Iterates over all paths.
    pub fn iter(&self) -> std::slice::Iter<'_, PathModel> {
        self.paths.iter()
    }
}

impl<'a> IntoIterator for &'a PathSet {
    type Item = &'a PathModel;
    type IntoIter = std::slice::Iter<'a, PathModel>;

    fn into_iter(self) -> Self::IntoIter {
        self.paths.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn path_sample_respects_constant_model() {
        let mut rng = StdRng::seed_from_u64(1);
        let p = PathModel::new(50_000.0, VariabilityModel::constant());
        for _ in 0..10 {
            assert!((p.bandwidth_sample(&mut rng) - 50_000.0).abs() < 1e-9);
        }
    }

    #[test]
    fn path_set_generation_spans_heterogeneous_bandwidth() {
        let mut rng = StdRng::seed_from_u64(2);
        let set = PathSet::generate(
            2_000,
            &NlanrBandwidthModel::paper_default(),
            VariabilityModel::constant(),
            &mut rng,
        );
        assert_eq!(set.len(), 2_000);
        let slow = set.iter().filter(|p| p.mean_bps() < 50_000.0).count() as f64 / 2_000.0;
        assert!((slow - 0.37).abs() < 0.05, "slow fraction {slow}");
        let fast = set.iter().filter(|p| p.mean_bps() > 200_000.0).count();
        assert!(fast > 0);
    }

    #[test]
    fn variable_paths_average_to_mean() {
        let mut rng = StdRng::seed_from_u64(3);
        let p = PathModel::new(100_000.0, VariabilityModel::nlanr_like());
        let n = 20_000;
        let mean = (0..n).map(|_| p.bandwidth_sample(&mut rng)).sum::<f64>() / n as f64;
        assert!((mean - 100_000.0).abs() / 100_000.0 < 0.03, "mean {mean}");
    }

    #[test]
    fn time_series_from_path() {
        let mut rng = StdRng::seed_from_u64(4);
        let p = PathModel::new(120_000.0, VariabilityModel::measured_path_moderate());
        let ts = p.time_series(600, 240.0, 0.8, &mut rng);
        assert_eq!(ts.len(), 600);
        assert!((ts.duration_hours() - 40.0).abs() < 1e-9);
    }

    #[test]
    fn path_set_accessors() {
        let set = PathSet::from_paths(vec![
            PathModel::new(10.0, VariabilityModel::constant()),
            PathModel::new(20.0, VariabilityModel::constant()),
        ]);
        assert_eq!(set.len(), 2);
        assert!(!set.is_empty());
        assert_eq!(set.mean_bps(1), 20.0);
        assert_eq!(set.path(0).mean_bps(), 10.0);
        let mut rng = StdRng::seed_from_u64(5);
        assert_eq!(set.bandwidth_sample(0, &mut rng), 10.0);
        assert_eq!(PathId(3).index(), 3);
    }
}
