//! Bandwidth variability models (sample-to-mean ratio distributions).
//!
//! The paper models bandwidth variability by the distribution of the ratio
//! of an individual bandwidth sample to the per-path mean:
//!
//! * Figure 3 (NLANR logs): high variability — roughly 70 % of samples fall
//!   within 0.5–1.5× the mean, with a heavy tail beyond 2×.
//! * Figure 4 (live measurements from Boston University to INRIA, Taiwan
//!   and Hong Kong): much lower variability, with path-dependent magnitude.
//!
//! A [`VariabilityModel`] is a distribution over that ratio, normalised so
//! its mean is 1, so multiplying a base bandwidth by a drawn ratio leaves
//! the long-run average unchanged.

use crate::empirical::EmpiricalDistribution;
use crate::error::NetModelError;
use rand::Rng;

/// A distribution of the bandwidth sample-to-mean ratio.
///
/// ```
/// use sc_netmodel::VariabilityModel;
/// use rand::SeedableRng;
///
/// let high = VariabilityModel::nlanr_like();
/// let low = VariabilityModel::measured_path_low();
/// assert!(high.coefficient_of_variation() > low.coefficient_of_variation());
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let ratio = high.sample_ratio(&mut rng);
/// assert!(ratio >= 0.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct VariabilityModel {
    name: String,
    distribution: EmpiricalDistribution,
}

impl VariabilityModel {
    /// A degenerate model with no variability: the ratio is always exactly 1
    /// (the paper's "constant bandwidth assumption", Figures 5, 6, 10).
    pub fn constant() -> Self {
        VariabilityModel {
            name: "constant".into(),
            distribution: EmpiricalDistribution::from_cdf(vec![(1.0, 0.0), (1.0, 1.0)])
                .expect("constant model knots are valid"),
        }
    }

    /// High-variability model calibrated to the NLANR-log ratios of
    /// Figure 3: about 70 % of mass in [0.5, 1.5], a non-trivial fraction of
    /// near-zero samples, and a tail reaching 3× the mean.
    pub fn nlanr_like() -> Self {
        let knots = vec![
            (0.05, 0.0),
            (0.2, 0.06),
            (0.35, 0.14),
            (0.5, 0.22),
            (0.7, 0.39),
            (0.9, 0.58),
            (1.1, 0.72),
            (1.3, 0.82),
            (1.5, 0.885),
            (1.8, 0.932),
            (2.1, 0.96),
            (2.5, 0.98),
            (3.0, 1.0),
        ];
        Self::from_knots("nlanr-like", knots)
    }

    /// Low-variability model (INRIA-like path from Figure 4): bandwidth
    /// stays within roughly ±20 % of the mean almost all of the time.
    pub fn measured_path_low() -> Self {
        let knots = vec![
            (0.75, 0.0),
            (0.85, 0.05),
            (0.92, 0.2),
            (0.97, 0.42),
            (1.0, 0.55),
            (1.03, 0.68),
            (1.08, 0.85),
            (1.15, 0.95),
            (1.25, 1.0),
        ];
        Self::from_knots("measured-low", knots)
    }

    /// Moderate-variability model (Taiwan-like path from Figure 4).
    pub fn measured_path_moderate() -> Self {
        let knots = vec![
            (0.4, 0.0),
            (0.6, 0.08),
            (0.75, 0.2),
            (0.9, 0.4),
            (1.0, 0.55),
            (1.1, 0.7),
            (1.25, 0.85),
            (1.45, 0.95),
            (1.7, 1.0),
        ];
        Self::from_knots("measured-moderate", knots)
    }

    /// Higher-variability measured path (Hong-Kong-like path from Figure 4);
    /// still substantially less bursty than [`nlanr_like`](Self::nlanr_like).
    pub fn measured_path_high() -> Self {
        let knots = vec![
            (0.3, 0.0),
            (0.5, 0.08),
            (0.65, 0.2),
            (0.8, 0.35),
            (0.95, 0.52),
            (1.1, 0.68),
            (1.3, 0.83),
            (1.55, 0.93),
            (1.85, 0.98),
            (2.1, 1.0),
        ];
        Self::from_knots("measured-high", knots)
    }

    /// Builds a model from explicit ratio CDF knots and normalises it so
    /// the mean ratio is exactly 1.
    ///
    /// # Errors
    ///
    /// Returns [`NetModelError`] if the knots are not a valid CDF or the
    /// implied mean is not strictly positive.
    pub fn from_ratio_cdf(
        name: impl Into<String>,
        knots: Vec<(f64, f64)>,
    ) -> Result<Self, NetModelError> {
        let dist = EmpiricalDistribution::from_cdf(knots)?;
        let mean = dist.mean();
        if !(mean.is_finite() && mean > 0.0) {
            return Err(NetModelError::InvalidParameter("mean ratio", mean));
        }
        Ok(VariabilityModel {
            name: name.into(),
            distribution: dist.scaled(1.0 / mean),
        })
    }

    fn from_knots(name: &str, knots: Vec<(f64, f64)>) -> Self {
        Self::from_ratio_cdf(name, knots).expect("built-in variability knots are valid")
    }

    /// Human-readable model name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The normalised ratio distribution.
    pub fn distribution(&self) -> &EmpiricalDistribution {
        &self.distribution
    }

    /// Draws a sample-to-mean ratio (mean ≈ 1).
    pub fn sample_ratio<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.distribution.sample(rng)
    }

    /// Applies the model to a base bandwidth: returns an instantaneous
    /// bandwidth sample in the same unit as `base_bps`.
    pub fn apply<R: Rng + ?Sized>(&self, rng: &mut R, base_bps: f64) -> f64 {
        (base_bps * self.sample_ratio(rng)).max(0.0)
    }

    /// Coefficient of variation of the ratio distribution, estimated
    /// analytically from the piecewise-linear segments.
    pub fn coefficient_of_variation(&self) -> f64 {
        // E[X] = 1 by construction; compute E[X^2] per uniform segment:
        // E[U(a,b)^2] = (a^2 + ab + b^2) / 3.
        let mut ex2 = 0.0;
        for w in self.distribution.knots().windows(2) {
            let (a, p0) = w[0];
            let (b, p1) = w[1];
            ex2 += (p1 - p0) * (a * a + a * b + b * b) / 3.0;
        }
        let mean = self.distribution.mean();
        let var = (ex2 - mean * mean).max(0.0);
        if mean > 0.0 {
            var.sqrt() / mean
        } else {
            0.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::Summary;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn all_presets_have_unit_mean() {
        for m in [
            VariabilityModel::constant(),
            VariabilityModel::nlanr_like(),
            VariabilityModel::measured_path_low(),
            VariabilityModel::measured_path_moderate(),
            VariabilityModel::measured_path_high(),
        ] {
            assert!(
                (m.distribution().mean() - 1.0).abs() < 1e-9,
                "{} mean {}",
                m.name(),
                m.distribution().mean()
            );
        }
    }

    #[test]
    fn cov_ordering_matches_paper() {
        let constant = VariabilityModel::constant();
        let nlanr = VariabilityModel::nlanr_like();
        let low = VariabilityModel::measured_path_low();
        let moderate = VariabilityModel::measured_path_moderate();
        let high = VariabilityModel::measured_path_high();
        assert_eq!(constant.coefficient_of_variation(), 0.0);
        assert!(low.coefficient_of_variation() < moderate.coefficient_of_variation());
        assert!(moderate.coefficient_of_variation() <= high.coefficient_of_variation());
        // Key paper observation: all measured paths have much lower
        // variability than the NLANR-log-derived model.
        assert!(high.coefficient_of_variation() < nlanr.coefficient_of_variation());
        assert!(nlanr.coefficient_of_variation() > 0.4);
        assert!(low.coefficient_of_variation() < 0.15);
    }

    #[test]
    fn nlanr_like_mass_in_half_to_one_and_a_half() {
        let m = VariabilityModel::nlanr_like();
        let mass = m.distribution().cdf(1.5) - m.distribution().cdf(0.5);
        // Paper: "in about 70% of the cases, the sample bandwidth is 0.5–1.5
        // times of the mean".
        assert!((0.6..0.8).contains(&mass), "mass in [0.5,1.5]: {mass}");
    }

    #[test]
    fn constant_model_always_returns_base() {
        let m = VariabilityModel::constant();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            assert!((m.apply(&mut rng, 1234.0) - 1234.0).abs() < 1e-9);
        }
    }

    #[test]
    fn empirical_cov_matches_analytic() {
        let m = VariabilityModel::nlanr_like();
        let mut rng = StdRng::seed_from_u64(5);
        let samples: Vec<f64> = (0..50_000).map(|_| m.sample_ratio(&mut rng)).collect();
        let s = Summary::of(&samples).unwrap();
        assert!((s.mean - 1.0).abs() < 0.01, "mean {}", s.mean);
        assert!(
            (s.cov - m.coefficient_of_variation()).abs() < 0.03,
            "cov {} vs analytic {}",
            s.cov,
            m.coefficient_of_variation()
        );
    }

    #[test]
    fn apply_never_negative() {
        let m = VariabilityModel::nlanr_like();
        let mut rng = StdRng::seed_from_u64(6);
        for _ in 0..1_000 {
            assert!(m.apply(&mut rng, 50_000.0) >= 0.0);
        }
    }

    #[test]
    fn from_ratio_cdf_normalises_mean() {
        let m = VariabilityModel::from_ratio_cdf("custom", vec![(0.0, 0.0), (4.0, 1.0)]).unwrap();
        assert!((m.distribution().mean() - 1.0).abs() < 1e-9);
        assert_eq!(m.name(), "custom");
    }

    #[test]
    fn invalid_ratio_cdf_is_rejected() {
        assert!(VariabilityModel::from_ratio_cdf("bad", vec![(0.0, 0.0)]).is_err());
        assert!(
            VariabilityModel::from_ratio_cdf("zero-mean", vec![(0.0, 0.0), (0.0, 1.0)]).is_err()
        );
    }
}
