//! TCP-friendly throughput model (Padhye et al., SIGCOMM 1998).
//!
//! Section 2.7 of the paper notes that for TCP-friendly streaming
//! transports, the available bandwidth from a server is close to TCP
//! throughput, which is inversely proportional to the round-trip time and to
//! the square root of the packet loss rate. This module implements the
//! well-known Padhye model so that active bandwidth measurement (probing for
//! loss and RTT) can be simulated.

use crate::error::NetModelError;

/// Parameters of a TCP connection for the Padhye throughput formula.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TcpPathParams {
    /// Maximum segment size in bytes.
    pub mss_bytes: f64,
    /// Round-trip time in seconds.
    pub rtt_secs: f64,
    /// Steady-state packet loss probability in `(0, 1]`.
    pub loss_rate: f64,
    /// Retransmission timeout in seconds (commonly approximated as 4×RTT).
    pub rto_secs: f64,
    /// Number of packets acknowledged per ACK (delayed ACKs ⇒ 2).
    pub acked_per_ack: f64,
    /// Maximum congestion window in packets (receiver window limit).
    pub max_window_pkts: f64,
}

impl TcpPathParams {
    /// Typical wide-area defaults: 1460-byte MSS, delayed ACKs, RTO = 4·RTT
    /// and a 64 KB receiver window.
    pub fn wan(rtt_secs: f64, loss_rate: f64) -> Self {
        TcpPathParams {
            mss_bytes: 1460.0,
            rtt_secs,
            loss_rate,
            rto_secs: 4.0 * rtt_secs,
            acked_per_ack: 2.0,
            max_window_pkts: 64_000.0 / 1460.0,
        }
    }

    /// Validates the parameters.
    ///
    /// # Errors
    ///
    /// Returns [`NetModelError::InvalidParameter`] for non-positive MSS,
    /// RTT, RTO or window, or a loss rate outside `(0, 1]`.
    pub fn validate(&self) -> Result<(), NetModelError> {
        if !self.mss_bytes.is_finite() || self.mss_bytes <= 0.0 {
            return Err(NetModelError::InvalidParameter("mss_bytes", self.mss_bytes));
        }
        if !self.rtt_secs.is_finite() || self.rtt_secs <= 0.0 {
            return Err(NetModelError::InvalidParameter("rtt_secs", self.rtt_secs));
        }
        if !self.loss_rate.is_finite() || self.loss_rate <= 0.0 || self.loss_rate > 1.0 {
            return Err(NetModelError::InvalidParameter("loss_rate", self.loss_rate));
        }
        if !self.rto_secs.is_finite() || self.rto_secs <= 0.0 {
            return Err(NetModelError::InvalidParameter("rto_secs", self.rto_secs));
        }
        if !self.acked_per_ack.is_finite() || self.acked_per_ack <= 0.0 {
            return Err(NetModelError::InvalidParameter(
                "acked_per_ack",
                self.acked_per_ack,
            ));
        }
        if !self.max_window_pkts.is_finite() || self.max_window_pkts <= 0.0 {
            return Err(NetModelError::InvalidParameter(
                "max_window_pkts",
                self.max_window_pkts,
            ));
        }
        Ok(())
    }
}

/// Steady-state TCP throughput in **bytes per second** according to the full
/// Padhye/Firoiu/Towsley/Kurose model, including the timeout term and the
/// receiver-window cap.
///
/// # Errors
///
/// Returns [`NetModelError::InvalidParameter`] if the parameters fail
/// validation.
///
/// ```
/// use sc_netmodel::{tcp_throughput_bps, TcpPathParams};
///
/// // 80 ms RTT, 1% loss: throughput is on the order of 100-200 KB/s.
/// let bw = tcp_throughput_bps(&TcpPathParams::wan(0.08, 0.01))?;
/// assert!(bw > 50_000.0 && bw < 400_000.0);
///
/// // Quadrupling the loss rate roughly halves throughput.
/// let bw4 = tcp_throughput_bps(&TcpPathParams::wan(0.08, 0.04))?;
/// assert!(bw4 < bw);
/// # Ok::<(), sc_netmodel::NetModelError>(())
/// ```
pub fn tcp_throughput_bps(params: &TcpPathParams) -> Result<f64, NetModelError> {
    params.validate()?;
    let p = params.loss_rate;
    let b = params.acked_per_ack;
    let rtt = params.rtt_secs;
    let rto = params.rto_secs;
    let wmax = params.max_window_pkts;

    // Padhye et al. (1998), equation (30): packets per second.
    let sqrt_term = (2.0 * b * p / 3.0).sqrt();
    let timeout_term = rto * (3.0 * (3.0 * b * p / 8.0).sqrt()).min(1.0) * p * (1.0 + 32.0 * p * p);
    let congestion_limited = 1.0 / (rtt * sqrt_term + timeout_term);
    let window_limited = wmax / rtt;
    Ok(congestion_limited.min(window_limited) * params.mss_bytes)
}

/// Simplified "inverse square-root" throughput estimate
/// `MSS / (RTT · sqrt(2·b·p/3))`, the form quoted in Section 2.7 of the
/// paper. Useful as a cheap estimator when probing only measures loss and
/// RTT.
///
/// # Errors
///
/// Returns [`NetModelError::InvalidParameter`] if the parameters fail
/// validation.
pub fn tcp_throughput_simplified_bps(params: &TcpPathParams) -> Result<f64, NetModelError> {
    params.validate()?;
    let denom = params.rtt_secs * (2.0 * params.acked_per_ack * params.loss_rate / 3.0).sqrt();
    Ok((params.mss_bytes / denom).min(params.max_window_pkts * params.mss_bytes / params.rtt_secs))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation_rejects_bad_parameters() {
        let mut p = TcpPathParams::wan(0.1, 0.01);
        p.loss_rate = 0.0;
        assert!(tcp_throughput_bps(&p).is_err());
        let mut p = TcpPathParams::wan(0.1, 0.01);
        p.loss_rate = 1.5;
        assert!(tcp_throughput_bps(&p).is_err());
        let mut p = TcpPathParams::wan(0.1, 0.01);
        p.rtt_secs = 0.0;
        assert!(tcp_throughput_bps(&p).is_err());
        let mut p = TcpPathParams::wan(0.1, 0.01);
        p.mss_bytes = -1.0;
        assert!(tcp_throughput_bps(&p).is_err());
    }

    #[test]
    fn throughput_decreases_with_loss() {
        let low = tcp_throughput_bps(&TcpPathParams::wan(0.08, 0.005)).unwrap();
        let mid = tcp_throughput_bps(&TcpPathParams::wan(0.08, 0.02)).unwrap();
        let high = tcp_throughput_bps(&TcpPathParams::wan(0.08, 0.08)).unwrap();
        assert!(low > mid && mid > high);
    }

    #[test]
    fn throughput_decreases_with_rtt() {
        let near = tcp_throughput_bps(&TcpPathParams::wan(0.02, 0.01)).unwrap();
        let far = tcp_throughput_bps(&TcpPathParams::wan(0.3, 0.01)).unwrap();
        assert!(near > far);
    }

    #[test]
    fn inverse_sqrt_scaling_of_simplified_model() {
        let p1 = tcp_throughput_simplified_bps(&TcpPathParams::wan(0.1, 0.01)).unwrap();
        let p4 = tcp_throughput_simplified_bps(&TcpPathParams::wan(0.1, 0.04)).unwrap();
        // Quadrupling loss halves the simplified estimate (when not window
        // limited).
        assert!((p1 / p4 - 2.0).abs() < 0.05, "ratio {}", p1 / p4);
    }

    #[test]
    fn window_limit_caps_throughput() {
        // Minuscule loss at small RTT: the receiver window becomes the cap.
        let params = TcpPathParams::wan(0.05, 1e-6);
        let bw = tcp_throughput_bps(&params).unwrap();
        let cap = params.max_window_pkts * params.mss_bytes / params.rtt_secs;
        assert!((bw - cap).abs() / cap < 1e-9);
    }

    #[test]
    fn full_model_is_below_simplified_model() {
        // The timeout term only reduces throughput.
        let params = TcpPathParams::wan(0.1, 0.03);
        let full = tcp_throughput_bps(&params).unwrap();
        let simplified = tcp_throughput_simplified_bps(&params).unwrap();
        assert!(full <= simplified + 1e-9);
    }
}
