//! # sc-netmodel — Internet bandwidth models for streaming-media caching
//!
//! The caching algorithms of *Accelerating Internet Streaming Media Delivery
//! using Network-Aware Partial Caching* (Jin, Bestavros, Iyengar; ICDCS 2002)
//! are **network-aware**: they rank objects by how bandwidth-poor the path to
//! the origin server is. This crate provides the bandwidth models the paper
//! uses in its evaluation:
//!
//! * [`NlanrBandwidthModel`] — the base (per-path average) bandwidth
//!   distribution, calibrated to the NLANR proxy-log statistics reported in
//!   Figure 2 of the paper (37 % of paths below 50 KB/s, 56 % below
//!   100 KB/s).
//! * [`VariabilityModel`] — sample-to-mean ratio distributions: the
//!   high-variability NLANR-log model of Figure 3 and the lower-variability
//!   measured-path models of Figure 4.
//! * [`BandwidthTimeSeries`] — mean-reverting bandwidth evolution processes
//!   for Figure 4 style time-series plots.
//! * [`PathModel`] / [`PathSet`] — the per-object cache↔origin paths used by
//!   the simulator.
//! * [`tcp_throughput_bps`] — the Padhye TCP throughput model, used to turn
//!   probed loss/RTT into bandwidth estimates (Section 2.7).
//! * [`BandwidthEstimator`] implementations — passive (EWMA, windowed) and
//!   active (probe) estimation, plus the conservative under-estimation
//!   wrapper of Section 2.5.
//!
//! ```
//! use sc_netmodel::{NlanrBandwidthModel, PathSet, VariabilityModel};
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! // One path per origin server, averages drawn from the NLANR-like model,
//! // per-request variation following the measured-path model.
//! let paths = PathSet::generate(
//!     1_000,
//!     &NlanrBandwidthModel::paper_default(),
//!     VariabilityModel::measured_path_moderate(),
//!     &mut rng,
//! );
//! let bw = paths.bandwidth_sample(0, &mut rng);
//! assert!(bw > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod empirical;
mod error;
mod estimator;
mod hist;
mod nlanr;
mod paths;
pub mod stats;
mod tcp;
mod timeseries;
mod variability;

pub use empirical::EmpiricalDistribution;
pub use error::NetModelError;
pub use estimator::{
    BandwidthEstimator, ConservativeEstimator, EwmaEstimator, ProbeEstimator, WindowedEstimator,
};
pub use hist::Histogram;
pub use nlanr::{NlanrBandwidthModel, BYTES_PER_KB};
pub use paths::{PathId, PathModel, PathSet};
pub use stats::Summary;
pub use tcp::{tcp_throughput_bps, tcp_throughput_simplified_bps, TcpPathParams};
pub use timeseries::{BandwidthTimeSeries, MarginalDistribution, TimeSeriesConfig};
pub use variability::VariabilityModel;
