//! Synthetic stand-in for the NLANR proxy-log bandwidth distribution.
//!
//! The paper derives its base bandwidth distribution from a nine-day NLANR
//! UC-site proxy log (April 12–20, 2001): a bandwidth sample is the size of
//! a missed >200 KB object divided by its connection duration. The log
//! itself is no longer distributable, so this module provides a synthetic
//! distribution matched to the shape statistics the paper reports for
//! Figure 2:
//!
//! * 37 % of requests observe less than 50 KB/s,
//! * 56 % observe less than 100 KB/s,
//! * a long right tail reaching past 450 KB/s,
//! * histogram plotted with 4 KB/s bins.

use crate::empirical::EmpiricalDistribution;
use crate::error::NetModelError;
use rand::Rng;

/// Number of bytes per kilobyte used throughout the crate (the paper uses
/// decimal KB/s on its axes).
pub const BYTES_PER_KB: f64 = 1_000.0;

/// Synthetic model of the base (per-path average) bandwidth between a cache
/// and origin servers, calibrated to the NLANR statistics reported in the
/// paper (Figure 2).
///
/// Bandwidth values are expressed in **bytes per second**.
///
/// ```
/// use sc_netmodel::NlanrBandwidthModel;
/// use rand::SeedableRng;
///
/// let model = NlanrBandwidthModel::paper_default();
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let bw = model.sample_bps(&mut rng);
/// assert!(bw > 0.0);
/// // The paper's landmark: 37% of paths are below 50 KB/s.
/// assert!((model.fraction_below_kbps(50.0) - 0.37).abs() < 0.02);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct NlanrBandwidthModel {
    distribution: EmpiricalDistribution,
}

impl NlanrBandwidthModel {
    /// The default model calibrated to the paper's reported CDF landmarks.
    ///
    /// CDF knots are specified in KB/s and converted to bytes/s:
    /// `P(bw < 50 KB/s) = 0.37`, `P(bw < 100 KB/s) = 0.56`, with a right
    /// tail extending to 800 KB/s.
    pub fn paper_default() -> Self {
        // (KB/s, cumulative probability)
        let knots_kbps: &[(f64, f64)] = &[
            (2.0, 0.0),
            (10.0, 0.06),
            (20.0, 0.15),
            (30.0, 0.24),
            (40.0, 0.31),
            (50.0, 0.37),
            (65.0, 0.44),
            (80.0, 0.50),
            (100.0, 0.56),
            (125.0, 0.63),
            (150.0, 0.69),
            (175.0, 0.74),
            (200.0, 0.78),
            (250.0, 0.84),
            (300.0, 0.89),
            (350.0, 0.92),
            (400.0, 0.95),
            (450.0, 0.97),
            (600.0, 0.99),
            (800.0, 1.0),
        ];
        let knots = knots_kbps
            .iter()
            .map(|&(kbps, p)| (kbps * BYTES_PER_KB, p))
            .collect();
        NlanrBandwidthModel {
            distribution: EmpiricalDistribution::from_cdf(knots)
                .expect("paper_default knots are valid by construction"),
        }
    }

    /// Builds a model from an arbitrary empirical distribution over
    /// bandwidth in bytes per second.
    pub fn from_distribution(distribution: EmpiricalDistribution) -> Self {
        NlanrBandwidthModel { distribution }
    }

    /// Builds a model from observed bandwidth samples in bytes per second
    /// (the "analyse your own proxy log" path).
    ///
    /// # Errors
    ///
    /// Returns [`NetModelError::InvalidCdf`] if `samples` is empty or
    /// contains non-finite values.
    pub fn from_samples(samples: &[f64]) -> Result<Self, NetModelError> {
        Ok(NlanrBandwidthModel {
            distribution: EmpiricalDistribution::from_samples(samples)?,
        })
    }

    /// The underlying empirical distribution (bytes per second).
    pub fn distribution(&self) -> &EmpiricalDistribution {
        &self.distribution
    }

    /// Draws one base-bandwidth sample in bytes per second.
    pub fn sample_bps<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.distribution.sample(rng)
    }

    /// Draws one base-bandwidth sample in KB/s.
    pub fn sample_kbps<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.sample_bps(rng) / BYTES_PER_KB
    }

    /// Draws `n` samples in bytes per second.
    pub fn sample_n_bps<R: Rng + ?Sized>(&self, rng: &mut R, n: usize) -> Vec<f64> {
        self.distribution.sample_n(rng, n)
    }

    /// Fraction of paths with bandwidth below `kbps` KB/s.
    pub fn fraction_below_kbps(&self, kbps: f64) -> f64 {
        self.distribution.cdf(kbps * BYTES_PER_KB)
    }

    /// Mean bandwidth in bytes per second.
    pub fn mean_bps(&self) -> f64 {
        self.distribution.mean()
    }
}

impl Default for NlanrBandwidthModel {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hist::Histogram;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn paper_landmarks_hold() {
        let m = NlanrBandwidthModel::paper_default();
        assert!((m.fraction_below_kbps(50.0) - 0.37).abs() < 1e-9);
        assert!((m.fraction_below_kbps(100.0) - 0.56).abs() < 1e-9);
        assert!(m.fraction_below_kbps(450.0) >= 0.96);
        assert_eq!(m.fraction_below_kbps(2000.0), 1.0);
    }

    #[test]
    fn samples_span_a_heterogeneous_range() {
        let m = NlanrBandwidthModel::paper_default();
        let mut rng = StdRng::seed_from_u64(9);
        let samples = m.sample_n_bps(&mut rng, 10_000);
        let below_50k = samples.iter().filter(|&&s| s < 50.0 * BYTES_PER_KB).count() as f64
            / samples.len() as f64;
        assert!(
            (below_50k - 0.37).abs() < 0.02,
            "below 50 KB/s: {below_50k}"
        );
        let above_200k = samples
            .iter()
            .filter(|&&s| s > 200.0 * BYTES_PER_KB)
            .count() as f64
            / samples.len() as f64;
        assert!(above_200k > 0.15, "above 200 KB/s: {above_200k}");
    }

    #[test]
    fn histogram_of_samples_resembles_figure_2() {
        // Reproduce the Figure 2 machinery: 4 KB/s bins, CDF derived from
        // the histogram.
        let m = NlanrBandwidthModel::paper_default();
        let mut rng = StdRng::seed_from_u64(2);
        let samples: Vec<f64> = m
            .sample_n_bps(&mut rng, 5_000)
            .iter()
            .map(|b| b / BYTES_PER_KB)
            .collect();
        let hist = Histogram::from_samples(4.0, 200, &samples);
        assert_eq!(hist.total(), 5_000);
        let cdf = hist.cumulative();
        // CDF at 100 KB/s (bin index 25) should be near 0.56.
        assert!(
            (cdf[24] - 0.56).abs() < 0.03,
            "cdf at 100 KB/s: {}",
            cdf[24]
        );
    }

    #[test]
    fn mean_and_kbps_helpers() {
        let m = NlanrBandwidthModel::paper_default();
        let mean_kbps = m.mean_bps() / BYTES_PER_KB;
        assert!(
            (80.0..200.0).contains(&mean_kbps),
            "mean bandwidth {mean_kbps} KB/s"
        );
        let mut rng = StdRng::seed_from_u64(1);
        let kbps = m.sample_kbps(&mut rng);
        assert!(kbps > 0.0 && kbps <= 800.0);
    }

    #[test]
    fn from_samples_roundtrip() {
        let m = NlanrBandwidthModel::from_samples(&[10_000.0, 20_000.0, 30_000.0]).unwrap();
        assert!((m.mean_bps() - 20_000.0).abs() < 1e-9);
        assert!(NlanrBandwidthModel::from_samples(&[]).is_err());
    }
}
