//! Piecewise-linear empirical distributions.
//!
//! The paper parameterises its simulations with *empirical* bandwidth
//! distributions (derived from NLANR proxy logs and from live path
//! measurements) rather than closed-form ones. [`EmpiricalDistribution`]
//! represents such a distribution as a piecewise-linear CDF over a set of
//! knot points and supports inverse-transform sampling, quantile queries and
//! moment estimation.

use crate::error::NetModelError;
use rand::Rng;

/// A continuous distribution described by a piecewise-linear CDF.
///
/// The CDF is given as a list of `(value, cumulative_probability)` knots.
/// The first knot must have probability 0 and the last probability 1;
/// both coordinates must be non-decreasing.
///
/// ```
/// use sc_netmodel::EmpiricalDistribution;
/// use rand::SeedableRng;
///
/// // A triangular-ish distribution between 0 and 100.
/// let dist = EmpiricalDistribution::from_cdf(vec![
///     (0.0, 0.0),
///     (50.0, 0.8),
///     (100.0, 1.0),
/// ])?;
/// assert!((dist.quantile(0.8) - 50.0).abs() < 1e-9);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let x = dist.sample(&mut rng);
/// assert!((0.0..=100.0).contains(&x));
/// # Ok::<(), sc_netmodel::NetModelError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct EmpiricalDistribution {
    /// CDF knots as (value, cumulative probability), strictly validated.
    knots: Vec<(f64, f64)>,
}

impl EmpiricalDistribution {
    /// Builds a distribution from CDF knots.
    ///
    /// # Errors
    ///
    /// Returns [`NetModelError::InvalidCdf`] if fewer than two knots are
    /// given, if values or probabilities are not non-decreasing, if any
    /// coordinate is not finite, or if the probabilities do not start at 0
    /// and end at 1.
    pub fn from_cdf(knots: Vec<(f64, f64)>) -> Result<Self, NetModelError> {
        if knots.len() < 2 {
            return Err(NetModelError::InvalidCdf(
                "at least two knots are required".into(),
            ));
        }
        for w in knots.windows(2) {
            let (v0, p0) = w[0];
            let (v1, p1) = w[1];
            if !v0.is_finite() || !p0.is_finite() || !v1.is_finite() || !p1.is_finite() {
                return Err(NetModelError::InvalidCdf("non-finite knot".into()));
            }
            if v1 < v0 {
                return Err(NetModelError::InvalidCdf(
                    "values must be non-decreasing".into(),
                ));
            }
            if p1 < p0 {
                return Err(NetModelError::InvalidCdf(
                    "probabilities must be non-decreasing".into(),
                ));
            }
        }
        let first_p = knots.first().expect("len checked").1;
        let last_p = knots.last().expect("len checked").1;
        if first_p != 0.0 {
            return Err(NetModelError::InvalidCdf(
                "first knot probability must be 0".into(),
            ));
        }
        if (last_p - 1.0).abs() > 1e-9 {
            return Err(NetModelError::InvalidCdf(
                "last knot probability must be 1".into(),
            ));
        }
        Ok(EmpiricalDistribution { knots })
    }

    /// Builds the empirical distribution of observed `samples` (each sample
    /// receives equal probability mass; the CDF interpolates between sorted
    /// samples).
    ///
    /// # Errors
    ///
    /// Returns [`NetModelError::InvalidCdf`] if `samples` is empty or any
    /// sample is not finite.
    pub fn from_samples(samples: &[f64]) -> Result<Self, NetModelError> {
        if samples.is_empty() {
            return Err(NetModelError::InvalidCdf("no samples".into()));
        }
        if samples.iter().any(|s| !s.is_finite()) {
            return Err(NetModelError::InvalidCdf("non-finite sample".into()));
        }
        let mut sorted: Vec<f64> = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let n = sorted.len();
        if n == 1 {
            // Degenerate: a point mass represented by a tiny ramp.
            let v = sorted[0];
            return EmpiricalDistribution::from_cdf(vec![(v, 0.0), (v, 1.0)]);
        }
        let mut knots = Vec::with_capacity(n);
        for (i, v) in sorted.iter().enumerate() {
            knots.push((*v, i as f64 / (n - 1) as f64));
        }
        EmpiricalDistribution::from_cdf(knots)
    }

    /// The CDF knots.
    pub fn knots(&self) -> &[(f64, f64)] {
        &self.knots
    }

    /// Smallest representable value.
    pub fn min(&self) -> f64 {
        self.knots.first().expect("validated").0
    }

    /// Largest representable value.
    pub fn max(&self) -> f64 {
        self.knots.last().expect("validated").0
    }

    /// Cumulative probability `P(X <= x)`.
    ///
    /// Locates the containing segment by binary search: this (with
    /// [`quantile`](Self::quantile)) sits inside every per-request bandwidth
    /// draw of the simulator, so the lookup is `O(log knots)` rather than a
    /// linear scan.
    pub fn cdf(&self, x: f64) -> f64 {
        if x <= self.min() {
            return if x < self.min() { 0.0 } else { self.knots[0].1 };
        }
        if x >= self.max() {
            return 1.0;
        }
        // First segment whose upper knot value reaches x. Its lower knot is
        // below x: for the first such segment the preceding upper knot (its
        // lower knot) was still below x, and min < x covers segment 0.
        let i = self.knots[1..].partition_point(|&(v, _)| v < x);
        let (v0, p0) = self.knots[i];
        let (v1, p1) = self.knots[i + 1];
        if v1 == v0 {
            p1
        } else {
            let t = (x - v0) / (v1 - v0);
            p0 + t * (p1 - p0)
        }
    }

    /// Quantile (inverse CDF) for probability `p`, clamped to `[0, 1]`.
    ///
    /// Binary-searches the CDF knots; equivalent to scanning for the first
    /// segment whose probability range contains `p` (vertical segments —
    /// duplicate probabilities — resolve to the segment's upper value, as
    /// the scan did).
    pub fn quantile(&self, p: f64) -> f64 {
        let p = p.clamp(0.0, 1.0);
        // First segment whose upper knot probability reaches p; its lower
        // knot probability is <= p by the same first-crossing argument as in
        // `cdf` (segment 0 starts at probability 0). No segment reaches p
        // only when p == 1 and the last knot sits at 1 - epsilon (within
        // `from_cdf` tolerance): return the largest value, as before.
        let i = self.knots[1..].partition_point(|&(_, q)| q < p);
        if i + 1 >= self.knots.len() {
            return self.max();
        }
        let (v0, p0) = self.knots[i];
        let (v1, p1) = self.knots[i + 1];
        if p1 == p0 {
            v1
        } else {
            let t = (p - p0) / (p1 - p0);
            v0 + t * (v1 - v0)
        }
    }

    /// Draws one sample by inverse-transform sampling.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.quantile(rng.gen())
    }

    /// Draws `n` samples.
    pub fn sample_n<R: Rng + ?Sized>(&self, rng: &mut R, n: usize) -> Vec<f64> {
        (0..n).map(|_| self.sample(rng)).collect()
    }

    /// Analytic mean of the piecewise-linear distribution.
    ///
    /// Each linear CDF segment contributes a uniform component over its
    /// value range, weighted by the segment's probability mass.
    pub fn mean(&self) -> f64 {
        let mut m = 0.0;
        for w in self.knots.windows(2) {
            let (v0, p0) = w[0];
            let (v1, p1) = w[1];
            m += (p1 - p0) * (v0 + v1) / 2.0;
        }
        m
    }

    /// Returns a copy of the distribution with all values multiplied by
    /// `factor` (used, e.g., to convert units or to scale a base bandwidth).
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative or not finite.
    pub fn scaled(&self, factor: f64) -> Self {
        assert!(
            factor.is_finite() && factor >= 0.0,
            "scale factor must be finite and non-negative"
        );
        EmpiricalDistribution {
            knots: self.knots.iter().map(|&(v, p)| (v * factor, p)).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn simple() -> EmpiricalDistribution {
        EmpiricalDistribution::from_cdf(vec![(0.0, 0.0), (10.0, 0.5), (20.0, 1.0)]).unwrap()
    }

    #[test]
    fn rejects_invalid_cdfs() {
        assert!(EmpiricalDistribution::from_cdf(vec![(0.0, 0.0)]).is_err());
        assert!(EmpiricalDistribution::from_cdf(vec![(0.0, 0.1), (1.0, 1.0)]).is_err());
        assert!(EmpiricalDistribution::from_cdf(vec![(0.0, 0.0), (1.0, 0.9)]).is_err());
        assert!(EmpiricalDistribution::from_cdf(vec![(1.0, 0.0), (0.0, 1.0)]).is_err());
        assert!(EmpiricalDistribution::from_cdf(vec![(0.0, 0.0), (1.0, f64::NAN)]).is_err());
        assert!(EmpiricalDistribution::from_cdf(vec![
            (0.0, 0.0),
            (1.0, 0.6),
            (2.0, 0.5),
            (3.0, 1.0)
        ])
        .is_err());
    }

    #[test]
    fn cdf_and_quantile_are_inverses_on_knots() {
        let d = simple();
        assert_eq!(d.cdf(0.0), 0.0);
        assert!((d.cdf(10.0) - 0.5).abs() < 1e-12);
        assert_eq!(d.cdf(20.0), 1.0);
        assert_eq!(d.cdf(-5.0), 0.0);
        assert_eq!(d.cdf(25.0), 1.0);
        assert!((d.quantile(0.5) - 10.0).abs() < 1e-12);
        assert!((d.quantile(0.25) - 5.0).abs() < 1e-12);
        assert!((d.quantile(0.75) - 15.0).abs() < 1e-12);
        assert_eq!(d.quantile(-0.5), 0.0);
        assert_eq!(d.quantile(2.0), 20.0);
    }

    #[test]
    fn mean_of_uniform_segments() {
        let d = simple();
        // 0.5 * mean(U(0,10)) + 0.5 * mean(U(10,20)) = 0.5*5 + 0.5*15 = 10.
        assert!((d.mean() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn samples_in_support_and_mean_converges() {
        let d = simple();
        let mut rng = StdRng::seed_from_u64(3);
        let samples = d.sample_n(&mut rng, 20_000);
        assert!(samples.iter().all(|&x| (0.0..=20.0).contains(&x)));
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        assert!((mean - 10.0).abs() < 0.2, "mean {mean}");
    }

    #[test]
    fn from_samples_interpolates() {
        let d = EmpiricalDistribution::from_samples(&[1.0, 2.0, 3.0, 4.0, 5.0]).unwrap();
        assert_eq!(d.min(), 1.0);
        assert_eq!(d.max(), 5.0);
        assert!((d.quantile(0.5) - 3.0).abs() < 1e-12);
        assert!((d.mean() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn from_samples_rejects_bad_input() {
        assert!(EmpiricalDistribution::from_samples(&[]).is_err());
        assert!(EmpiricalDistribution::from_samples(&[1.0, f64::NAN]).is_err());
    }

    #[test]
    fn single_sample_is_point_mass() {
        let d = EmpiricalDistribution::from_samples(&[7.0]).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        assert_eq!(d.sample(&mut rng), 7.0);
        assert_eq!(d.mean(), 7.0);
    }

    #[test]
    fn scaling_scales_values_only() {
        let d = simple().scaled(2.0);
        assert_eq!(d.max(), 40.0);
        assert!((d.mean() - 20.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "scale factor")]
    fn negative_scale_panics() {
        let _ = simple().scaled(-1.0);
    }

    /// The linear knot scan the binary search replaced, kept verbatim as
    /// the reference implementation for the property tests below.
    fn quantile_linear(d: &EmpiricalDistribution, p: f64) -> f64 {
        let p = p.clamp(0.0, 1.0);
        for w in d.knots().windows(2) {
            let (v0, p0) = w[0];
            let (v1, p1) = w[1];
            if p >= p0 && p <= p1 {
                if p1 == p0 {
                    return v1;
                }
                let t = (p - p0) / (p1 - p0);
                return v0 + t * (v1 - v0);
            }
        }
        d.max()
    }

    fn cdf_linear(d: &EmpiricalDistribution, x: f64) -> f64 {
        if x <= d.min() {
            return if x < d.min() { 0.0 } else { d.knots()[0].1 };
        }
        if x >= d.max() {
            return 1.0;
        }
        for w in d.knots().windows(2) {
            let (v0, p0) = w[0];
            let (v1, p1) = w[1];
            if x >= v0 && x <= v1 {
                if v1 == v0 {
                    return p1;
                }
                let t = (x - v0) / (v1 - v0);
                return p0 + t * (p1 - p0);
            }
        }
        1.0
    }

    /// A random valid CDF: non-decreasing values (possibly duplicated) and
    /// non-decreasing probabilities pinned to 0 and 1 at the ends, with
    /// flat (duplicate-probability) and vertical (duplicate-value) segments
    /// mixed in.
    fn random_cdf(rng: &mut StdRng) -> EmpiricalDistribution {
        let n = rng.gen_range(2..=16usize);
        let mut value = rng.gen_range(-50.0..50.0);
        let mut knots = Vec::with_capacity(n);
        let mut cum = vec![0.0f64];
        for _ in 1..n {
            // One in four increments is zero, exercising duplicates.
            let dp = if rng.gen_bool(0.25) {
                0.0
            } else {
                rng.gen_range(0.0..1.0)
            };
            cum.push(cum.last().unwrap() + dp);
        }
        let total = *cum.last().unwrap();
        for (i, c) in cum.iter().enumerate() {
            let p = if total == 0.0 {
                // All increments were zero: a valid CDF still needs to end
                // at 1, so make it a single vertical jump at the last knot.
                if i + 1 == n {
                    1.0
                } else {
                    0.0
                }
            } else if i + 1 == n {
                1.0
            } else {
                c / total
            };
            knots.push((value, p));
            if !rng.gen_bool(0.25) {
                value += rng.gen_range(0.0..20.0);
            }
        }
        EmpiricalDistribution::from_cdf(knots).unwrap()
    }

    #[test]
    fn binary_search_quantile_matches_linear_scan() {
        let mut rng = StdRng::seed_from_u64(0xe3_14);
        for _ in 0..500 {
            let d = random_cdf(&mut rng);
            // Edge probabilities, every knot probability, and random draws.
            let mut probes = vec![0.0, 1.0, -0.5, 1.5, 0.5];
            probes.extend(d.knots().iter().map(|&(_, p)| p));
            probes.extend((0..20).map(|_| rng.gen::<f64>()));
            for p in probes {
                let fast = d.quantile(p);
                let slow = quantile_linear(&d, p);
                assert_eq!(
                    fast.to_bits(),
                    slow.to_bits(),
                    "quantile({p}) diverged on {:?}: fast {fast} vs linear {slow}",
                    d.knots()
                );
            }
        }
    }

    #[test]
    fn binary_search_cdf_matches_linear_scan() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..500 {
            let d = random_cdf(&mut rng);
            let span = (d.max() - d.min()).max(1.0);
            let mut probes = vec![d.min(), d.max(), d.min() - 1.0, d.max() + 1.0];
            probes.extend(d.knots().iter().map(|&(v, _)| v));
            probes.extend((0..20).map(|_| d.min() + rng.gen::<f64>() * span));
            for x in probes {
                let fast = d.cdf(x);
                let slow = cdf_linear(&d, x);
                assert_eq!(
                    fast.to_bits(),
                    slow.to_bits(),
                    "cdf({x}) diverged on {:?}: fast {fast} vs linear {slow}",
                    d.knots()
                );
            }
        }
    }

    #[test]
    fn sampling_matches_linear_scan_stream() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            let d = random_cdf(&mut rng);
            let mut fast_rng = StdRng::seed_from_u64(11);
            let mut slow_rng = StdRng::seed_from_u64(11);
            for _ in 0..50 {
                let fast = d.sample(&mut fast_rng);
                let slow = quantile_linear(&d, slow_rng.gen());
                assert_eq!(fast.to_bits(), slow.to_bits());
            }
        }
    }

    #[test]
    fn quantile_edge_cases() {
        // p = 0 resolves to the smallest value; p = 1 to the largest.
        let d = simple();
        assert_eq!(d.quantile(0.0), 0.0);
        assert_eq!(d.quantile(1.0), 20.0);

        // Duplicate-probability knots: a flat CDF stretch resolves to its
        // first crossing (the stretch's lower value), as the linear scan
        // did; probabilities just past the stretch land on its far side.
        let flat =
            EmpiricalDistribution::from_cdf(vec![(0.0, 0.0), (5.0, 0.5), (9.0, 0.5), (10.0, 1.0)])
                .unwrap();
        assert_eq!(flat.quantile(0.5), 5.0);
        assert!(flat.quantile(0.5 + 1e-12) > 9.0);

        // A point mass (duplicate values) keeps returning that value.
        let point = EmpiricalDistribution::from_cdf(vec![(3.0, 0.0), (3.0, 1.0)]).unwrap();
        assert_eq!(point.quantile(0.0), 3.0);
        assert_eq!(point.quantile(0.7), 3.0);
        assert_eq!(point.quantile(1.0), 3.0);

        // A last probability of 1 - epsilon (within from_cdf tolerance)
        // still resolves p = 1 to the maximum value.
        let eps = EmpiricalDistribution::from_cdf(vec![(0.0, 0.0), (8.0, 1.0 - 5e-10)]).unwrap();
        assert_eq!(eps.quantile(1.0), 8.0);
    }
}
