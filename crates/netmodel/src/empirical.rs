//! Piecewise-linear empirical distributions.
//!
//! The paper parameterises its simulations with *empirical* bandwidth
//! distributions (derived from NLANR proxy logs and from live path
//! measurements) rather than closed-form ones. [`EmpiricalDistribution`]
//! represents such a distribution as a piecewise-linear CDF over a set of
//! knot points and supports inverse-transform sampling, quantile queries and
//! moment estimation.

use crate::error::NetModelError;
use rand::Rng;

/// A continuous distribution described by a piecewise-linear CDF.
///
/// The CDF is given as a list of `(value, cumulative_probability)` knots.
/// The first knot must have probability 0 and the last probability 1;
/// both coordinates must be non-decreasing.
///
/// ```
/// use sc_netmodel::EmpiricalDistribution;
/// use rand::SeedableRng;
///
/// // A triangular-ish distribution between 0 and 100.
/// let dist = EmpiricalDistribution::from_cdf(vec![
///     (0.0, 0.0),
///     (50.0, 0.8),
///     (100.0, 1.0),
/// ])?;
/// assert!((dist.quantile(0.8) - 50.0).abs() < 1e-9);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let x = dist.sample(&mut rng);
/// assert!((0.0..=100.0).contains(&x));
/// # Ok::<(), sc_netmodel::NetModelError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct EmpiricalDistribution {
    /// CDF knots as (value, cumulative probability), strictly validated.
    knots: Vec<(f64, f64)>,
}

impl EmpiricalDistribution {
    /// Builds a distribution from CDF knots.
    ///
    /// # Errors
    ///
    /// Returns [`NetModelError::InvalidCdf`] if fewer than two knots are
    /// given, if values or probabilities are not non-decreasing, if any
    /// coordinate is not finite, or if the probabilities do not start at 0
    /// and end at 1.
    pub fn from_cdf(knots: Vec<(f64, f64)>) -> Result<Self, NetModelError> {
        if knots.len() < 2 {
            return Err(NetModelError::InvalidCdf(
                "at least two knots are required".into(),
            ));
        }
        for w in knots.windows(2) {
            let (v0, p0) = w[0];
            let (v1, p1) = w[1];
            if !v0.is_finite() || !p0.is_finite() || !v1.is_finite() || !p1.is_finite() {
                return Err(NetModelError::InvalidCdf("non-finite knot".into()));
            }
            if v1 < v0 {
                return Err(NetModelError::InvalidCdf(
                    "values must be non-decreasing".into(),
                ));
            }
            if p1 < p0 {
                return Err(NetModelError::InvalidCdf(
                    "probabilities must be non-decreasing".into(),
                ));
            }
        }
        let first_p = knots.first().expect("len checked").1;
        let last_p = knots.last().expect("len checked").1;
        if first_p != 0.0 {
            return Err(NetModelError::InvalidCdf(
                "first knot probability must be 0".into(),
            ));
        }
        if (last_p - 1.0).abs() > 1e-9 {
            return Err(NetModelError::InvalidCdf(
                "last knot probability must be 1".into(),
            ));
        }
        Ok(EmpiricalDistribution { knots })
    }

    /// Builds the empirical distribution of observed `samples` (each sample
    /// receives equal probability mass; the CDF interpolates between sorted
    /// samples).
    ///
    /// # Errors
    ///
    /// Returns [`NetModelError::InvalidCdf`] if `samples` is empty or any
    /// sample is not finite.
    pub fn from_samples(samples: &[f64]) -> Result<Self, NetModelError> {
        if samples.is_empty() {
            return Err(NetModelError::InvalidCdf("no samples".into()));
        }
        if samples.iter().any(|s| !s.is_finite()) {
            return Err(NetModelError::InvalidCdf("non-finite sample".into()));
        }
        let mut sorted: Vec<f64> = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let n = sorted.len();
        if n == 1 {
            // Degenerate: a point mass represented by a tiny ramp.
            let v = sorted[0];
            return EmpiricalDistribution::from_cdf(vec![(v, 0.0), (v, 1.0)]);
        }
        let mut knots = Vec::with_capacity(n);
        for (i, v) in sorted.iter().enumerate() {
            knots.push((*v, i as f64 / (n - 1) as f64));
        }
        EmpiricalDistribution::from_cdf(knots)
    }

    /// The CDF knots.
    pub fn knots(&self) -> &[(f64, f64)] {
        &self.knots
    }

    /// Smallest representable value.
    pub fn min(&self) -> f64 {
        self.knots.first().expect("validated").0
    }

    /// Largest representable value.
    pub fn max(&self) -> f64 {
        self.knots.last().expect("validated").0
    }

    /// Cumulative probability `P(X <= x)`.
    pub fn cdf(&self, x: f64) -> f64 {
        if x <= self.min() {
            return if x < self.min() { 0.0 } else { self.knots[0].1 };
        }
        if x >= self.max() {
            return 1.0;
        }
        // Find the segment containing x and interpolate.
        for w in self.knots.windows(2) {
            let (v0, p0) = w[0];
            let (v1, p1) = w[1];
            if x >= v0 && x <= v1 {
                if v1 == v0 {
                    return p1;
                }
                let t = (x - v0) / (v1 - v0);
                return p0 + t * (p1 - p0);
            }
        }
        1.0
    }

    /// Quantile (inverse CDF) for probability `p`, clamped to `[0, 1]`.
    pub fn quantile(&self, p: f64) -> f64 {
        let p = p.clamp(0.0, 1.0);
        for w in self.knots.windows(2) {
            let (v0, p0) = w[0];
            let (v1, p1) = w[1];
            if p >= p0 && p <= p1 {
                if p1 == p0 {
                    return v1;
                }
                let t = (p - p0) / (p1 - p0);
                return v0 + t * (v1 - v0);
            }
        }
        self.max()
    }

    /// Draws one sample by inverse-transform sampling.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.quantile(rng.gen())
    }

    /// Draws `n` samples.
    pub fn sample_n<R: Rng + ?Sized>(&self, rng: &mut R, n: usize) -> Vec<f64> {
        (0..n).map(|_| self.sample(rng)).collect()
    }

    /// Analytic mean of the piecewise-linear distribution.
    ///
    /// Each linear CDF segment contributes a uniform component over its
    /// value range, weighted by the segment's probability mass.
    pub fn mean(&self) -> f64 {
        let mut m = 0.0;
        for w in self.knots.windows(2) {
            let (v0, p0) = w[0];
            let (v1, p1) = w[1];
            m += (p1 - p0) * (v0 + v1) / 2.0;
        }
        m
    }

    /// Returns a copy of the distribution with all values multiplied by
    /// `factor` (used, e.g., to convert units or to scale a base bandwidth).
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative or not finite.
    pub fn scaled(&self, factor: f64) -> Self {
        assert!(
            factor.is_finite() && factor >= 0.0,
            "scale factor must be finite and non-negative"
        );
        EmpiricalDistribution {
            knots: self.knots.iter().map(|&(v, p)| (v * factor, p)).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn simple() -> EmpiricalDistribution {
        EmpiricalDistribution::from_cdf(vec![(0.0, 0.0), (10.0, 0.5), (20.0, 1.0)]).unwrap()
    }

    #[test]
    fn rejects_invalid_cdfs() {
        assert!(EmpiricalDistribution::from_cdf(vec![(0.0, 0.0)]).is_err());
        assert!(EmpiricalDistribution::from_cdf(vec![(0.0, 0.1), (1.0, 1.0)]).is_err());
        assert!(EmpiricalDistribution::from_cdf(vec![(0.0, 0.0), (1.0, 0.9)]).is_err());
        assert!(EmpiricalDistribution::from_cdf(vec![(1.0, 0.0), (0.0, 1.0)]).is_err());
        assert!(EmpiricalDistribution::from_cdf(vec![(0.0, 0.0), (1.0, f64::NAN)]).is_err());
        assert!(EmpiricalDistribution::from_cdf(vec![
            (0.0, 0.0),
            (1.0, 0.6),
            (2.0, 0.5),
            (3.0, 1.0)
        ])
        .is_err());
    }

    #[test]
    fn cdf_and_quantile_are_inverses_on_knots() {
        let d = simple();
        assert_eq!(d.cdf(0.0), 0.0);
        assert!((d.cdf(10.0) - 0.5).abs() < 1e-12);
        assert_eq!(d.cdf(20.0), 1.0);
        assert_eq!(d.cdf(-5.0), 0.0);
        assert_eq!(d.cdf(25.0), 1.0);
        assert!((d.quantile(0.5) - 10.0).abs() < 1e-12);
        assert!((d.quantile(0.25) - 5.0).abs() < 1e-12);
        assert!((d.quantile(0.75) - 15.0).abs() < 1e-12);
        assert_eq!(d.quantile(-0.5), 0.0);
        assert_eq!(d.quantile(2.0), 20.0);
    }

    #[test]
    fn mean_of_uniform_segments() {
        let d = simple();
        // 0.5 * mean(U(0,10)) + 0.5 * mean(U(10,20)) = 0.5*5 + 0.5*15 = 10.
        assert!((d.mean() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn samples_in_support_and_mean_converges() {
        let d = simple();
        let mut rng = StdRng::seed_from_u64(3);
        let samples = d.sample_n(&mut rng, 20_000);
        assert!(samples.iter().all(|&x| (0.0..=20.0).contains(&x)));
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        assert!((mean - 10.0).abs() < 0.2, "mean {mean}");
    }

    #[test]
    fn from_samples_interpolates() {
        let d = EmpiricalDistribution::from_samples(&[1.0, 2.0, 3.0, 4.0, 5.0]).unwrap();
        assert_eq!(d.min(), 1.0);
        assert_eq!(d.max(), 5.0);
        assert!((d.quantile(0.5) - 3.0).abs() < 1e-12);
        assert!((d.mean() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn from_samples_rejects_bad_input() {
        assert!(EmpiricalDistribution::from_samples(&[]).is_err());
        assert!(EmpiricalDistribution::from_samples(&[1.0, f64::NAN]).is_err());
    }

    #[test]
    fn single_sample_is_point_mass() {
        let d = EmpiricalDistribution::from_samples(&[7.0]).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        assert_eq!(d.sample(&mut rng), 7.0);
        assert_eq!(d.mean(), 7.0);
    }

    #[test]
    fn scaling_scales_values_only() {
        let d = simple().scaled(2.0);
        assert_eq!(d.max(), 40.0);
        assert!((d.mean() - 20.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "scale factor")]
    fn negative_scale_panics() {
        let _ = simple().scaled(-1.0);
    }
}
