//! Error type for the bandwidth models.

use std::error::Error;
use std::fmt;

/// Errors returned by the bandwidth-model constructors.
#[derive(Debug, Clone, PartialEq)]
pub enum NetModelError {
    /// The supplied CDF knots do not describe a valid distribution.
    InvalidCdf(String),
    /// A model parameter was out of range (name, offending value).
    InvalidParameter(&'static str, f64),
}

impl fmt::Display for NetModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetModelError::InvalidCdf(why) => write!(f, "invalid empirical cdf: {why}"),
            NetModelError::InvalidParameter(name, v) => {
                write!(f, "invalid value for parameter `{name}`: {v}")
            }
        }
    }
}

impl Error for NetModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(NetModelError::InvalidCdf("x".into())
            .to_string()
            .contains("invalid empirical cdf"));
        assert!(NetModelError::InvalidParameter("rtt", -1.0)
            .to_string()
            .contains("rtt"));
    }

    #[test]
    fn error_is_send_sync_static() {
        fn assert_bounds<T: std::error::Error + Send + Sync + 'static>() {}
        assert_bounds::<NetModelError>();
    }
}
