//! Bandwidth estimation at the proxy (Section 2.7 of the paper).
//!
//! The caching algorithms need an estimate of the bandwidth between the
//! cache and each origin server. The paper describes two families of
//! approaches:
//!
//! * **Passive measurement** — observe the throughput of past connections
//!   to the same server (no extra traffic, but stale under variability).
//!   Implemented by [`EwmaEstimator`] and [`WindowedEstimator`].
//! * **Active measurement** — probe the path (packet-pair / loss-rate
//!   probes) and convert to an estimate via the TCP model. Simulated by
//!   [`ProbeEstimator`].
//!
//! [`ConservativeEstimator`] implements the over-provisioning heuristic of
//! Section 2.5: multiply any underlying estimate by a factor `e ∈ [0, 1]`.

use std::collections::VecDeque;

/// An online estimator of the available bandwidth of one path.
///
/// Implementations consume throughput observations (bytes per second) and
/// produce a current estimate. An estimator with no observations returns
/// `None` so callers can fall back to a default (the paper's proxies fall
/// back to a conservative default until the first transfer completes).
pub trait BandwidthEstimator {
    /// Records one observed throughput sample in bytes per second.
    fn observe(&mut self, throughput_bps: f64);

    /// Current estimate in bytes per second, or `None` before any
    /// observation.
    fn estimate_bps(&self) -> Option<f64>;

    /// Number of samples observed so far.
    fn samples(&self) -> usize;
}

/// Exponentially-weighted moving average estimator (passive measurement).
///
/// ```
/// use sc_netmodel::{BandwidthEstimator, EwmaEstimator};
///
/// let mut est = EwmaEstimator::new(0.25);
/// assert!(est.estimate_bps().is_none());
/// est.observe(100_000.0);
/// est.observe(50_000.0);
/// let e = est.estimate_bps().unwrap();
/// assert!(e < 100_000.0 && e > 50_000.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct EwmaEstimator {
    alpha: f64,
    current: Option<f64>,
    samples: usize,
}

impl EwmaEstimator {
    /// Creates an EWMA estimator with smoothing factor `alpha` (the weight
    /// of the newest sample), clamped to `[0, 1]`.
    pub fn new(alpha: f64) -> Self {
        EwmaEstimator {
            alpha: alpha.clamp(0.0, 1.0),
            current: None,
            samples: 0,
        }
    }

    /// The smoothing factor.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }
}

impl BandwidthEstimator for EwmaEstimator {
    fn observe(&mut self, throughput_bps: f64) {
        let x = throughput_bps.max(0.0);
        self.current = Some(match self.current {
            None => x,
            Some(prev) => self.alpha * x + (1.0 - self.alpha) * prev,
        });
        self.samples += 1;
    }

    fn estimate_bps(&self) -> Option<f64> {
        self.current
    }

    fn samples(&self) -> usize {
        self.samples
    }
}

/// Sliding-window mean estimator (passive measurement over the last `k`
/// transfers).
#[derive(Debug, Clone, PartialEq)]
pub struct WindowedEstimator {
    window: usize,
    values: VecDeque<f64>,
    samples: usize,
}

impl WindowedEstimator {
    /// Creates an estimator that averages the `window` most recent samples.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn new(window: usize) -> Self {
        assert!(window > 0, "window must be at least 1");
        WindowedEstimator {
            window,
            values: VecDeque::with_capacity(window),
            samples: 0,
        }
    }

    /// The window length.
    pub fn window(&self) -> usize {
        self.window
    }
}

impl BandwidthEstimator for WindowedEstimator {
    fn observe(&mut self, throughput_bps: f64) {
        if self.values.len() == self.window {
            self.values.pop_front();
        }
        self.values.push_back(throughput_bps.max(0.0));
        self.samples += 1;
    }

    fn estimate_bps(&self) -> Option<f64> {
        if self.values.is_empty() {
            None
        } else {
            Some(self.values.iter().sum::<f64>() / self.values.len() as f64)
        }
    }

    fn samples(&self) -> usize {
        self.samples
    }
}

/// Simulated active-probing estimator: every probe observes the true
/// current bandwidth perturbed by a bounded relative error, modelling
/// packet-pair / loss-probe inaccuracy. Probes are fed in through
/// [`BandwidthEstimator::observe`]; the most recent probe wins (active
/// measurements reflect *current* conditions rather than history).
#[derive(Debug, Clone, PartialEq)]
pub struct ProbeEstimator {
    last: Option<f64>,
    samples: usize,
}

impl ProbeEstimator {
    /// Creates an empty probe estimator.
    pub fn new() -> Self {
        ProbeEstimator {
            last: None,
            samples: 0,
        }
    }
}

impl Default for ProbeEstimator {
    fn default() -> Self {
        Self::new()
    }
}

impl BandwidthEstimator for ProbeEstimator {
    fn observe(&mut self, throughput_bps: f64) {
        self.last = Some(throughput_bps.max(0.0));
        self.samples += 1;
    }

    fn estimate_bps(&self) -> Option<f64> {
        self.last
    }

    fn samples(&self) -> usize {
        self.samples
    }
}

/// Wraps another estimator and scales its estimate by a conservative factor
/// `e ∈ [0, 1]` (Section 2.5 of the paper: under-estimating bandwidth makes
/// the partial-caching decision cache *more* of each object).
///
/// `e = 1` reproduces the inner estimate (pure PB behaviour); `e = 0` forces
/// the estimate to zero, i.e. whole-object (IB) caching decisions.
#[derive(Debug, Clone, PartialEq)]
pub struct ConservativeEstimator<E> {
    inner: E,
    factor: f64,
}

impl<E: BandwidthEstimator> ConservativeEstimator<E> {
    /// Wraps `inner`, scaling its estimates by `factor` (clamped to [0, 1]).
    pub fn new(inner: E, factor: f64) -> Self {
        ConservativeEstimator {
            inner,
            factor: factor.clamp(0.0, 1.0),
        }
    }

    /// The conservative scaling factor `e`.
    pub fn factor(&self) -> f64 {
        self.factor
    }

    /// Returns the wrapped estimator.
    pub fn into_inner(self) -> E {
        self.inner
    }
}

impl<E: BandwidthEstimator> BandwidthEstimator for ConservativeEstimator<E> {
    fn observe(&mut self, throughput_bps: f64) {
        self.inner.observe(throughput_bps);
    }

    fn estimate_bps(&self) -> Option<f64> {
        self.inner.estimate_bps().map(|e| e * self.factor)
    }

    fn samples(&self) -> usize {
        self.inner.samples()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ewma_converges_to_constant_input() {
        let mut est = EwmaEstimator::new(0.5);
        for _ in 0..32 {
            est.observe(80_000.0);
        }
        assert!((est.estimate_bps().unwrap() - 80_000.0).abs() < 1e-6);
        assert_eq!(est.samples(), 32);
        assert_eq!(est.alpha(), 0.5);
    }

    #[test]
    fn ewma_first_sample_is_estimate() {
        let mut est = EwmaEstimator::new(0.1);
        est.observe(42.0);
        assert_eq!(est.estimate_bps(), Some(42.0));
    }

    #[test]
    fn ewma_clamps_alpha_and_negative_samples() {
        let mut est = EwmaEstimator::new(7.0);
        assert_eq!(est.alpha(), 1.0);
        est.observe(-5.0);
        assert_eq!(est.estimate_bps(), Some(0.0));
    }

    #[test]
    fn windowed_only_remembers_recent_samples() {
        let mut est = WindowedEstimator::new(2);
        est.observe(10.0);
        est.observe(20.0);
        est.observe(30.0);
        assert_eq!(est.estimate_bps(), Some(25.0));
        assert_eq!(est.samples(), 3);
        assert_eq!(est.window(), 2);
    }

    #[test]
    #[should_panic(expected = "window")]
    fn windowed_rejects_zero_window() {
        let _ = WindowedEstimator::new(0);
    }

    #[test]
    fn probe_uses_latest_value() {
        let mut est = ProbeEstimator::new();
        assert!(est.estimate_bps().is_none());
        est.observe(100.0);
        est.observe(50.0);
        assert_eq!(est.estimate_bps(), Some(50.0));
        assert_eq!(est.samples(), 2);
    }

    #[test]
    fn conservative_scales_estimate() {
        let mut inner = EwmaEstimator::new(1.0);
        inner.observe(100_000.0);
        let cons = ConservativeEstimator::new(inner, 0.5);
        assert_eq!(cons.estimate_bps(), Some(50_000.0));
        assert_eq!(cons.factor(), 0.5);
        assert_eq!(cons.samples(), 1);
    }

    #[test]
    fn conservative_clamps_factor() {
        let inner = ProbeEstimator::new();
        assert_eq!(ConservativeEstimator::new(inner.clone(), 2.0).factor(), 1.0);
        assert_eq!(ConservativeEstimator::new(inner, -1.0).factor(), 0.0);
    }

    #[test]
    fn conservative_zero_factor_is_integral_caching_signal() {
        let mut est = ConservativeEstimator::new(EwmaEstimator::new(0.5), 0.0);
        est.observe(500_000.0);
        assert_eq!(est.estimate_bps(), Some(0.0));
    }

    #[test]
    fn estimators_propagate_through_trait_objects() {
        let mut estimators: Vec<Box<dyn BandwidthEstimator>> = vec![
            Box::new(EwmaEstimator::new(0.3)),
            Box::new(WindowedEstimator::new(4)),
            Box::new(ProbeEstimator::new()),
        ];
        for est in &mut estimators {
            est.observe(10_000.0);
            assert_eq!(est.estimate_bps(), Some(10_000.0));
        }
    }
}
