//! Bandwidth time-series generation (Figure 4 style evolution plots).
//!
//! The paper measures real Internet paths by repeatedly downloading large
//! files every four minutes over 30–45 hours and plotting the observed
//! bandwidth as a time series. To reproduce those plots without the original
//! vantage points, this module generates mean-reverting (AR(1)-style)
//! bandwidth processes whose marginal variability matches a target
//! [`VariabilityModel`]-like coefficient of variation.

use crate::error::NetModelError;
use rand::Rng;

/// Marginal distribution of the AR(1) bandwidth process.
///
/// The normal marginal matches the historical behaviour, but for
/// high-variability paths (CoV near 1, like the NLANR-derived models) a
/// normal with `σ ≈ μ` puts substantial mass below zero; clamping that mass
/// at the floor both biases the mean upward and produces long stretches
/// pinned at the floor, inflating simulated delay tails. The lognormal
/// marginal is strictly positive by construction, so high-CoV paths keep
/// their target mean and CoV without clamp artefacts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MarginalDistribution {
    /// AR(1) in the bandwidth domain with normal innovations (the default,
    /// matching the paper-era behaviour).
    #[default]
    Normal,
    /// AR(1) in the log-bandwidth domain: the marginal is lognormal with
    /// the configured mean and CoV, and samples are strictly positive
    /// before any clamping.
    LogNormal,
}

/// Configuration of an AR(1) mean-reverting bandwidth process.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimeSeriesConfig {
    /// Long-run mean bandwidth in bytes per second.
    pub mean_bps: f64,
    /// Target coefficient of variation of the marginal distribution.
    pub cov: f64,
    /// Autocorrelation of consecutive samples, in `[0, 1)`. Higher values
    /// produce smoother series (the INRIA path is smoother than Hong Kong).
    pub autocorrelation: f64,
    /// Sampling interval in seconds (the paper samples every 4 minutes).
    pub interval_secs: f64,
    /// Lower bound on every sample, as a fraction of `mean_bps`. A path
    /// never loses *all* bandwidth; the default keeps samples above
    /// `mean_bps / 1000`.
    pub floor_ratio: f64,
    /// Upper bound on every sample, as a fraction of `mean_bps` — the
    /// path's physical capacity. Defaults to [`f64::INFINITY`] (no ceiling).
    pub ceiling_ratio: f64,
    /// Marginal distribution of the process
    /// ([`MarginalDistribution::Normal`] by default; use
    /// [`MarginalDistribution::LogNormal`] for high-CoV paths).
    pub marginal: MarginalDistribution,
}

impl Default for TimeSeriesConfig {
    fn default() -> Self {
        TimeSeriesConfig {
            mean_bps: 100_000.0,
            cov: 0.2,
            autocorrelation: 0.8,
            interval_secs: 240.0,
            floor_ratio: 1e-3,
            ceiling_ratio: f64::INFINITY,
            marginal: MarginalDistribution::default(),
        }
    }
}

impl TimeSeriesConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`NetModelError::InvalidParameter`] for non-positive mean or
    /// interval, negative CoV, or autocorrelation outside `[0, 1)`.
    pub fn validate(&self) -> Result<(), NetModelError> {
        if !self.mean_bps.is_finite() || self.mean_bps <= 0.0 {
            return Err(NetModelError::InvalidParameter("mean_bps", self.mean_bps));
        }
        if !self.cov.is_finite() || self.cov < 0.0 {
            return Err(NetModelError::InvalidParameter("cov", self.cov));
        }
        if !self.autocorrelation.is_finite() || !(0.0..1.0).contains(&self.autocorrelation) {
            return Err(NetModelError::InvalidParameter(
                "autocorrelation",
                self.autocorrelation,
            ));
        }
        if !self.interval_secs.is_finite() || self.interval_secs <= 0.0 {
            return Err(NetModelError::InvalidParameter(
                "interval_secs",
                self.interval_secs,
            ));
        }
        if self.floor_ratio.is_nan() || self.floor_ratio < 0.0 {
            return Err(NetModelError::InvalidParameter(
                "floor_ratio",
                self.floor_ratio,
            ));
        }
        if self.ceiling_ratio.is_nan() || self.ceiling_ratio <= self.floor_ratio {
            return Err(NetModelError::InvalidParameter(
                "ceiling_ratio",
                self.ceiling_ratio,
            ));
        }
        Ok(())
    }
}

/// A generated bandwidth time series.
#[derive(Debug, Clone, PartialEq)]
pub struct BandwidthTimeSeries {
    interval_secs: f64,
    samples_bps: Vec<f64>,
}

impl BandwidthTimeSeries {
    /// Generates `n` samples of a mean-reverting bandwidth process.
    ///
    /// With the default [`MarginalDistribution::Normal`] the process is an
    /// AR(1) in the bandwidth domain,
    /// `x_{t+1} = mean + rho (x_t - mean) + eps`, with innovations scaled so
    /// the marginal standard deviation equals `cov * mean`; every sample
    /// (and the process state itself) is clamped into
    /// `[mean * floor_ratio, mean * ceiling_ratio]`.
    ///
    /// With [`MarginalDistribution::LogNormal`] the AR(1) runs in the
    /// log-bandwidth domain, `y_{t+1} = mu + rho (y_t - mu) + eps`, with
    /// `mu` and the marginal log-variance chosen so `exp(y)` has exactly
    /// the configured mean and CoV. Samples are strictly positive before
    /// clamping, so high-CoV paths do not pile up on the floor (the clamp
    /// artefact the normal marginal suffers when `cov` approaches 1). The
    /// sample autocorrelation is `(e^{rho s²} − 1)/(e^{s²} − 1) ≈ rho` for
    /// moderate log-variance `s²`.
    ///
    /// ```
    /// use sc_netmodel::{BandwidthTimeSeries, TimeSeriesConfig};
    /// use rand::SeedableRng;
    ///
    /// // A 30-hour trace of a 100 KB/s path sampled every 4 minutes, the
    /// // measurement methodology behind Figure 4 of the paper.
    /// let config = TimeSeriesConfig {
    ///     mean_bps: 100_000.0,
    ///     cov: 0.2,
    ///     ..TimeSeriesConfig::default()
    /// };
    /// let mut rng = rand::rngs::StdRng::seed_from_u64(42);
    /// let series = BandwidthTimeSeries::generate(&config, 450, &mut rng)?;
    /// assert_eq!(series.len(), 450);
    /// assert!((series.duration_hours() - 30.0).abs() < 1e-9);
    /// assert!(series.samples_bps().iter().all(|&bw| bw > 0.0));
    /// # Ok::<(), sc_netmodel::NetModelError>(())
    /// ```
    ///
    /// # Errors
    ///
    /// Propagates configuration validation errors.
    pub fn generate<R: Rng + ?Sized>(
        config: &TimeSeriesConfig,
        n: usize,
        rng: &mut R,
    ) -> Result<Self, NetModelError> {
        config.validate()?;
        let rho = config.autocorrelation;
        let floor = config.mean_bps * config.floor_ratio;
        let ceiling = config.mean_bps * config.ceiling_ratio;
        let mut samples = Vec::with_capacity(n);
        match config.marginal {
            MarginalDistribution::Normal => {
                let sigma_marginal = config.cov * config.mean_bps;
                let sigma_innov = sigma_marginal * (1.0 - rho * rho).sqrt();
                let mut x = config.mean_bps.clamp(floor, ceiling);
                for _ in 0..n {
                    let eps = sigma_innov * standard_normal(rng);
                    x = (config.mean_bps + rho * (x - config.mean_bps) + eps).clamp(floor, ceiling);
                    samples.push(x);
                }
            }
            MarginalDistribution::LogNormal => {
                // exp(N(mu, s²)) has mean `exp(mu + s²/2)` and
                // CoV `sqrt(e^{s²} − 1)`; invert both to hit the targets.
                let log_var = (1.0 + config.cov * config.cov).ln();
                let mu = config.mean_bps.ln() - log_var / 2.0;
                let sigma_innov = (log_var * (1.0 - rho * rho)).sqrt();
                // The AR(1) state stays unclamped in the log domain (the
                // clamp is an output bound, not part of the dynamics).
                let mut y = mu;
                for _ in 0..n {
                    let eps = sigma_innov * standard_normal(rng);
                    y = mu + rho * (y - mu) + eps;
                    samples.push(y.exp().clamp(floor, ceiling));
                }
            }
        }
        Ok(BandwidthTimeSeries {
            interval_secs: config.interval_secs,
            samples_bps: samples,
        })
    }

    /// Sampling interval in seconds.
    pub fn interval_secs(&self) -> f64 {
        self.interval_secs
    }

    /// The bandwidth samples in bytes per second.
    pub fn samples_bps(&self) -> &[f64] {
        &self.samples_bps
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples_bps.len()
    }

    /// Returns `true` when the series holds no samples.
    pub fn is_empty(&self) -> bool {
        self.samples_bps.is_empty()
    }

    /// Total covered duration in hours.
    pub fn duration_hours(&self) -> f64 {
        self.samples_bps.len() as f64 * self.interval_secs / 3600.0
    }

    /// Bandwidth at an arbitrary time (piecewise-constant interpolation,
    /// clamped to the series range). Times before zero map to the first
    /// sample and times past the end map to the last sample.
    pub fn bandwidth_at(&self, time_secs: f64) -> f64 {
        if self.samples_bps.is_empty() {
            return 0.0;
        }
        let idx = if time_secs <= 0.0 {
            0
        } else {
            ((time_secs / self.interval_secs) as usize).min(self.samples_bps.len() - 1)
        };
        self.samples_bps[idx]
    }

    /// Mean of the samples.
    pub fn mean_bps(&self) -> f64 {
        crate::stats::mean(&self.samples_bps)
    }

    /// Sample-to-mean ratios (the quantity histogrammed in Figure 4).
    pub fn sample_to_mean_ratios(&self) -> Vec<f64> {
        let mean = self.mean_bps();
        if mean <= 0.0 {
            return vec![0.0; self.samples_bps.len()];
        }
        self.samples_bps.iter().map(|s| s / mean).collect()
    }
}

/// Box–Muller standard normal (kept private to avoid a dependency on
/// `rand_distr`).
fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = loop {
        let v: f64 = rng.gen();
        if v > f64::MIN_POSITIVE {
            break v;
        }
    };
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::Summary;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn validation_rejects_bad_parameters() {
        let bad = [
            TimeSeriesConfig {
                mean_bps: 0.0,
                ..Default::default()
            },
            TimeSeriesConfig {
                cov: -0.1,
                ..Default::default()
            },
            TimeSeriesConfig {
                autocorrelation: 1.0,
                ..Default::default()
            },
            TimeSeriesConfig {
                interval_secs: 0.0,
                ..Default::default()
            },
            TimeSeriesConfig {
                floor_ratio: -0.1,
                ..Default::default()
            },
            TimeSeriesConfig {
                floor_ratio: 0.8,
                ceiling_ratio: 0.5,
                ..Default::default()
            },
            TimeSeriesConfig {
                ceiling_ratio: f64::NAN,
                ..Default::default()
            },
        ];
        let mut rng = StdRng::seed_from_u64(1);
        for cfg in bad {
            assert!(BandwidthTimeSeries::generate(&cfg, 10, &mut rng).is_err());
        }
    }

    #[test]
    fn generated_series_matches_target_moments() {
        let cfg = TimeSeriesConfig {
            mean_bps: 100_000.0,
            cov: 0.3,
            autocorrelation: 0.7,
            interval_secs: 240.0,
            ..Default::default()
        };
        let mut rng = StdRng::seed_from_u64(2);
        let ts = BandwidthTimeSeries::generate(&cfg, 20_000, &mut rng).unwrap();
        let s = Summary::of(ts.samples_bps()).unwrap();
        assert!(
            (s.mean - 100_000.0).abs() / 100_000.0 < 0.05,
            "mean {}",
            s.mean
        );
        assert!((s.cov - 0.3).abs() < 0.05, "cov {}", s.cov);
        assert!(ts.samples_bps().iter().all(|&x| x > 0.0));
    }

    #[test]
    fn duration_and_lookup() {
        let cfg = TimeSeriesConfig::default();
        let mut rng = StdRng::seed_from_u64(3);
        let ts = BandwidthTimeSeries::generate(&cfg, 15, &mut rng).unwrap();
        assert_eq!(ts.len(), 15);
        assert!(!ts.is_empty());
        assert!((ts.duration_hours() - 1.0).abs() < 1e-9);
        assert_eq!(ts.bandwidth_at(-5.0), ts.samples_bps()[0]);
        assert_eq!(ts.bandwidth_at(0.0), ts.samples_bps()[0]);
        assert_eq!(ts.bandwidth_at(241.0), ts.samples_bps()[1]);
        assert_eq!(ts.bandwidth_at(1e9), *ts.samples_bps().last().unwrap());
    }

    #[test]
    fn ratios_have_unit_mean() {
        let cfg = TimeSeriesConfig::default();
        let mut rng = StdRng::seed_from_u64(4);
        let ts = BandwidthTimeSeries::generate(&cfg, 1_000, &mut rng).unwrap();
        let ratios = ts.sample_to_mean_ratios();
        let mean = crate::stats::mean(&ratios);
        assert!((mean - 1.0).abs() < 1e-9);
    }

    #[test]
    fn zero_cov_is_constant_series() {
        let cfg = TimeSeriesConfig {
            cov: 0.0,
            ..Default::default()
        };
        let mut rng = StdRng::seed_from_u64(5);
        let ts = BandwidthTimeSeries::generate(&cfg, 50, &mut rng).unwrap();
        assert!(ts
            .samples_bps()
            .iter()
            .all(|&x| (x - cfg.mean_bps).abs() < 1e-6));
    }

    #[test]
    fn samples_respect_floor_and_ceiling_across_long_runs() {
        // Seeded-loop property test: for a spread of seeds and shapes, every
        // sample of a long run stays inside the configured bounds.
        for seed in 0..24u64 {
            let cfg = TimeSeriesConfig {
                mean_bps: 50_000.0 + 10_000.0 * (seed % 5) as f64,
                cov: 0.1 + 0.15 * (seed % 4) as f64,
                autocorrelation: 0.05 + 0.9 * ((seed % 3) as f64 / 2.0).min(0.99),
                floor_ratio: 0.5,
                ceiling_ratio: 1.5,
                ..Default::default()
            };
            let mut rng = StdRng::seed_from_u64(seed);
            let ts = BandwidthTimeSeries::generate(&cfg, 20_000, &mut rng).unwrap();
            let lo = cfg.mean_bps * cfg.floor_ratio;
            let hi = cfg.mean_bps * cfg.ceiling_ratio;
            assert!(
                ts.samples_bps().iter().all(|&x| (lo..=hi).contains(&x)),
                "seed {seed}: sample escaped [{lo}, {hi}]"
            );
        }
    }

    // --- lognormal marginal ---

    #[test]
    fn lognormal_marginal_matches_target_moments() {
        // Seeded-loop property test: across seeds and shapes (including
        // high CoV), the lognormal marginal hits the target mean and CoV.
        for seed in 0..12u64 {
            let cfg = TimeSeriesConfig {
                mean_bps: 40_000.0 + 20_000.0 * (seed % 4) as f64,
                cov: 0.2 + 0.4 * (seed % 3) as f64, // up to 1.0
                autocorrelation: 0.1 + 0.28 * (seed % 3) as f64,
                marginal: MarginalDistribution::LogNormal,
                ..Default::default()
            };
            let mut rng = StdRng::seed_from_u64(1_000 + seed);
            let ts = BandwidthTimeSeries::generate(&cfg, 60_000, &mut rng).unwrap();
            let s = Summary::of(ts.samples_bps()).unwrap();
            assert!(
                (s.mean - cfg.mean_bps).abs() / cfg.mean_bps < 0.06,
                "seed {seed}: mean {} target {}",
                s.mean,
                cfg.mean_bps
            );
            assert!(
                (s.cov - cfg.cov).abs() < 0.08,
                "seed {seed}: cov {} target {}",
                s.cov,
                cfg.cov
            );
            assert!(ts.samples_bps().iter().all(|&x| x > 0.0));
        }
    }

    #[test]
    fn lognormal_marginal_respects_floor_and_ceiling() {
        for seed in 0..12u64 {
            let cfg = TimeSeriesConfig {
                cov: 0.3 + 0.35 * (seed % 3) as f64,
                autocorrelation: 0.05 + 0.45 * (seed % 2) as f64,
                floor_ratio: 0.4,
                ceiling_ratio: 2.0,
                marginal: MarginalDistribution::LogNormal,
                ..Default::default()
            };
            let mut rng = StdRng::seed_from_u64(2_000 + seed);
            let ts = BandwidthTimeSeries::generate(&cfg, 20_000, &mut rng).unwrap();
            let lo = cfg.mean_bps * cfg.floor_ratio;
            let hi = cfg.mean_bps * cfg.ceiling_ratio;
            assert!(
                ts.samples_bps().iter().all(|&x| (lo..=hi).contains(&x)),
                "seed {seed}: sample escaped [{lo}, {hi}]"
            );
        }
    }

    #[test]
    fn lognormal_zero_cov_is_constant_at_the_mean() {
        let cfg = TimeSeriesConfig {
            cov: 0.0,
            marginal: MarginalDistribution::LogNormal,
            ..Default::default()
        };
        let mut rng = StdRng::seed_from_u64(7);
        let ts = BandwidthTimeSeries::generate(&cfg, 50, &mut rng).unwrap();
        assert!(ts
            .samples_bps()
            .iter()
            .all(|&x| (x - cfg.mean_bps).abs() < 1e-6));
    }

    #[test]
    fn lognormal_avoids_the_normal_high_cov_clamp_bias() {
        // At CoV 1 a normal marginal puts ~16% of its mass below zero;
        // clamping at the floor inflates the realised mean. The lognormal
        // marginal is positive by construction, so its mean error must be
        // well inside the normal's clamp bias on the same configuration.
        let base = TimeSeriesConfig {
            cov: 1.0,
            autocorrelation: 0.6,
            ..Default::default()
        };
        let mut rng = StdRng::seed_from_u64(8);
        let normal = BandwidthTimeSeries::generate(&base, 60_000, &mut rng).unwrap();
        let lognormal = BandwidthTimeSeries::generate(
            &TimeSeriesConfig {
                marginal: MarginalDistribution::LogNormal,
                ..base
            },
            60_000,
            &mut rng,
        )
        .unwrap();
        let mean_err = |ts: &BandwidthTimeSeries| (ts.mean_bps() - base.mean_bps).abs();
        assert!(
            mean_err(&normal) > 3.0 * mean_err(&lognormal),
            "normal clamp bias {} vs lognormal error {}",
            mean_err(&normal),
            mean_err(&lognormal)
        );
    }

    #[test]
    fn higher_autocorrelation_is_smoother() {
        let mut rng = StdRng::seed_from_u64(6);
        let smooth = BandwidthTimeSeries::generate(
            &TimeSeriesConfig {
                autocorrelation: 0.95,
                ..Default::default()
            },
            5_000,
            &mut rng,
        )
        .unwrap();
        let rough = BandwidthTimeSeries::generate(
            &TimeSeriesConfig {
                autocorrelation: 0.1,
                ..Default::default()
            },
            5_000,
            &mut rng,
        )
        .unwrap();
        let mean_abs_step = |ts: &BandwidthTimeSeries| {
            ts.samples_bps()
                .windows(2)
                .map(|w| (w[1] - w[0]).abs())
                .sum::<f64>()
                / (ts.len() - 1) as f64
        };
        assert!(mean_abs_step(&smooth) < mean_abs_step(&rough));
    }
}
