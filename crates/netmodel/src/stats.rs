//! Small statistics helpers shared by the bandwidth models.

/// Summary statistics of a sample set.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of samples.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Population variance.
    pub variance: f64,
    /// Population standard deviation.
    pub std_dev: f64,
    /// Coefficient of variation (`std_dev / mean`), 0 when the mean is 0.
    pub cov: f64,
    /// Minimum sample.
    pub min: f64,
    /// Maximum sample.
    pub max: f64,
}

impl Summary {
    /// Computes summary statistics over `samples`.
    ///
    /// Returns `None` when `samples` is empty.
    pub fn of(samples: &[f64]) -> Option<Self> {
        if samples.is_empty() {
            return None;
        }
        let n = samples.len() as f64;
        let mean = samples.iter().sum::<f64>() / n;
        let variance = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n;
        let std_dev = variance.sqrt();
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        for &x in samples {
            min = min.min(x);
            max = max.max(x);
        }
        Some(Summary {
            count: samples.len(),
            mean,
            variance,
            std_dev,
            cov: if mean != 0.0 { std_dev / mean } else { 0.0 },
            min,
            max,
        })
    }
}

/// Arithmetic mean of `samples`; 0 for an empty slice.
pub fn mean(samples: &[f64]) -> f64 {
    if samples.is_empty() {
        0.0
    } else {
        samples.iter().sum::<f64>() / samples.len() as f64
    }
}

/// Coefficient of variation of `samples`; 0 for an empty slice or zero mean.
pub fn coefficient_of_variation(samples: &[f64]) -> f64 {
    Summary::of(samples).map(|s| s.cov).unwrap_or(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_slice_yields_none() {
        assert!(Summary::of(&[]).is_none());
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(coefficient_of_variation(&[]), 0.0);
    }

    #[test]
    fn summary_of_constant_samples() {
        let s = Summary::of(&[2.0, 2.0, 2.0]).unwrap();
        assert_eq!(s.count, 3);
        assert_eq!(s.mean, 2.0);
        assert_eq!(s.variance, 0.0);
        assert_eq!(s.cov, 0.0);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 2.0);
    }

    #[test]
    fn summary_known_values() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0]).unwrap();
        assert!((s.mean - 2.5).abs() < 1e-12);
        assert!((s.variance - 1.25).abs() < 1e-12);
        assert!((s.std_dev - 1.25f64.sqrt()).abs() < 1e-12);
        assert!((s.cov - 1.25f64.sqrt() / 2.5).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
    }

    #[test]
    fn zero_mean_cov_is_zero() {
        let s = Summary::of(&[-1.0, 1.0]).unwrap();
        assert_eq!(s.cov, 0.0);
    }
}
