//! Fixed-width histograms, as used in Figures 2, 3 and 4 of the paper.

/// A fixed-bin-width histogram over `[0, bin_width * bins)`.
///
/// The paper's Figure 2 histogram uses 4 KB/s bins over the observed NLANR
/// bandwidth samples; Figures 3 and 4 use ratio histograms with a bin width
/// of roughly 0.05.
///
/// ```
/// use sc_netmodel::Histogram;
///
/// let mut hist = Histogram::new(4_000.0, 120); // 4 KB/s bins up to 480 KB/s
/// hist.add(10_000.0);
/// hist.add(11_000.0);
/// hist.add(250_000.0);
/// assert_eq!(hist.total(), 3);
/// assert_eq!(hist.count(2), 2); // both 10 and 11 KB/s fall in bin [8, 12) KB/s
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    bin_width: f64,
    counts: Vec<u64>,
    overflow: u64,
    underflow: u64,
    total: u64,
}

impl Histogram {
    /// Creates a histogram with `bins` bins of width `bin_width`.
    ///
    /// # Panics
    ///
    /// Panics if `bin_width` is not strictly positive or `bins` is zero.
    pub fn new(bin_width: f64, bins: usize) -> Self {
        assert!(bin_width > 0.0, "bin width must be positive");
        assert!(bins > 0, "histogram needs at least one bin");
        Histogram {
            bin_width,
            counts: vec![0; bins],
            overflow: 0,
            underflow: 0,
            total: 0,
        }
    }

    /// Builds a histogram directly from samples.
    pub fn from_samples(bin_width: f64, bins: usize, samples: &[f64]) -> Self {
        let mut h = Histogram::new(bin_width, bins);
        for &s in samples {
            h.add(s);
        }
        h
    }

    /// Adds a sample. Samples below zero count as underflow, samples beyond
    /// the last bin as overflow; both are included in [`total`](Self::total).
    pub fn add(&mut self, sample: f64) {
        self.total += 1;
        if sample < 0.0 {
            self.underflow += 1;
            return;
        }
        let idx = (sample / self.bin_width) as usize;
        if idx >= self.counts.len() {
            self.overflow += 1;
        } else {
            self.counts[idx] += 1;
        }
    }

    /// Number of bins.
    pub fn bins(&self) -> usize {
        self.counts.len()
    }

    /// Width of each bin.
    pub fn bin_width(&self) -> f64 {
        self.bin_width
    }

    /// Count in bin `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= bins()`.
    pub fn count(&self, i: usize) -> u64 {
        self.counts[i]
    }

    /// All in-range bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Number of samples larger than the histogram range.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Number of negative samples.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Total number of samples added (including under/overflow).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Lower edge of bin `i`.
    pub fn bin_start(&self, i: usize) -> f64 {
        i as f64 * self.bin_width
    }

    /// Midpoint of bin `i`.
    pub fn bin_mid(&self, i: usize) -> f64 {
        (i as f64 + 0.5) * self.bin_width
    }

    /// Fraction of all samples that fell in bin `i`.
    pub fn fraction(&self, i: usize) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.counts[i] as f64 / self.total as f64
        }
    }

    /// Empirical cumulative distribution evaluated at the upper edge of each
    /// bin. The final value approaches 1 (exactly 1 when there is no
    /// overflow).
    pub fn cumulative(&self) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.counts.len());
        let mut acc = self.underflow as f64;
        for &c in &self.counts {
            acc += c as f64;
            out.push(if self.total == 0 {
                0.0
            } else {
                acc / self.total as f64
            });
        }
        out
    }

    /// Fraction of samples strictly below `x` (approximated at bin
    /// granularity: the bin containing `x` is excluded).
    pub fn fraction_below(&self, x: f64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let idx = ((x / self.bin_width) as usize).min(self.counts.len());
        let below: u64 = self.counts[..idx].iter().sum::<u64>() + self.underflow;
        below as f64 / self.total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[should_panic(expected = "bin width")]
    fn zero_bin_width_panics() {
        let _ = Histogram::new(0.0, 10);
    }

    #[test]
    #[should_panic(expected = "at least one bin")]
    fn zero_bins_panics() {
        let _ = Histogram::new(1.0, 0);
    }

    #[test]
    fn binning_is_correct() {
        let mut h = Histogram::new(10.0, 5);
        h.add(0.0);
        h.add(9.999);
        h.add(10.0);
        h.add(49.9);
        h.add(50.0); // overflow
        h.add(-1.0); // underflow
        assert_eq!(h.count(0), 2);
        assert_eq!(h.count(1), 1);
        assert_eq!(h.count(4), 1);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.total(), 6);
    }

    #[test]
    fn cumulative_reaches_one_without_overflow() {
        let h = Histogram::from_samples(1.0, 10, &[0.5, 1.5, 2.5, 9.5]);
        let cdf = h.cumulative();
        assert_eq!(cdf.len(), 10);
        assert!((cdf[9] - 1.0).abs() < 1e-12);
        assert!(cdf.windows(2).all(|w| w[1] >= w[0]));
    }

    #[test]
    fn fraction_below_and_edges() {
        let h = Histogram::from_samples(10.0, 10, &[5.0, 15.0, 25.0, 95.0]);
        assert!((h.fraction_below(10.0) - 0.25).abs() < 1e-12);
        assert!((h.fraction_below(30.0) - 0.75).abs() < 1e-12);
        assert!((h.fraction_below(1_000.0) - 1.0).abs() < 1e-12);
        assert_eq!(h.bin_start(3), 30.0);
        assert_eq!(h.bin_mid(0), 5.0);
        assert!((h.fraction(0) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = Histogram::new(1.0, 4);
        assert_eq!(h.total(), 0);
        assert_eq!(h.fraction(0), 0.0);
        assert_eq!(h.fraction_below(10.0), 0.0);
        assert!(h.cumulative().iter().all(|&c| c == 0.0));
    }
}
