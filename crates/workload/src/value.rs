//! Assignment of monetary values to streaming objects.

use crate::WorkloadError;
use rand::Rng;

/// Model describing how per-object values `V_i` are drawn.
///
/// Section 4.4 of the paper assumes values uniformly distributed between
/// $1 and $10. Additional models are provided for sensitivity studies.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ValueModel {
    /// Every object has the same value.
    Constant(f64),
    /// Values drawn uniformly from `[low, high]` (the paper's model with
    /// `low = 1.0`, `high = 10.0`).
    Uniform {
        /// Lower bound of the value range (inclusive).
        low: f64,
        /// Upper bound of the value range (inclusive).
        high: f64,
    },
    /// Value proportional to popularity rank: the most popular object gets
    /// `max`, the least popular gets `min`, linear in between. Useful for
    /// ablations where value correlates with popularity.
    PopularityLinear {
        /// Value of the least popular object.
        min: f64,
        /// Value of the most popular object.
        max: f64,
    },
}

impl Default for ValueModel {
    /// The paper's model: `Uniform { low: 1.0, high: 10.0 }`.
    fn default() -> Self {
        ValueModel::Uniform {
            low: 1.0,
            high: 10.0,
        }
    }
}

impl ValueModel {
    /// Validates the model parameters.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::InvalidParameter`] when a bound is negative,
    /// non-finite, or when `low > high` / `min > max`.
    pub fn validate(&self) -> Result<(), WorkloadError> {
        match *self {
            ValueModel::Constant(v) => {
                if !v.is_finite() || v < 0.0 {
                    return Err(WorkloadError::InvalidParameter("value", v));
                }
            }
            ValueModel::Uniform { low, high } => {
                if !low.is_finite() || low < 0.0 {
                    return Err(WorkloadError::InvalidParameter("low", low));
                }
                if !high.is_finite() || high < low {
                    return Err(WorkloadError::InvalidParameter("high", high));
                }
            }
            ValueModel::PopularityLinear { min, max } => {
                if !min.is_finite() || min < 0.0 {
                    return Err(WorkloadError::InvalidParameter("min", min));
                }
                if !max.is_finite() || max < min {
                    return Err(WorkloadError::InvalidParameter("max", max));
                }
            }
        }
        Ok(())
    }
}

/// Draws per-object values according to a [`ValueModel`].
///
/// ```
/// use sc_workload::{ValueAssigner, ValueModel};
/// use rand::SeedableRng;
///
/// let assigner = ValueAssigner::new(ValueModel::default())?;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(2);
/// let values = assigner.assign(&mut rng, 100);
/// assert_eq!(values.len(), 100);
/// assert!(values.iter().all(|v| (1.0..=10.0).contains(v)));
/// # Ok::<(), sc_workload::WorkloadError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ValueAssigner {
    model: ValueModel,
}

impl ValueAssigner {
    /// Creates an assigner after validating the model.
    ///
    /// # Errors
    ///
    /// Propagates [`ValueModel::validate`] errors.
    pub fn new(model: ValueModel) -> Result<Self, WorkloadError> {
        model.validate()?;
        Ok(ValueAssigner { model })
    }

    /// The underlying value model.
    pub fn model(&self) -> ValueModel {
        self.model
    }

    /// Draws the value of the object with popularity rank `rank` (1-based)
    /// out of `n` objects.
    pub fn value_for_rank<R: Rng + ?Sized>(&self, rng: &mut R, rank: usize, n: usize) -> f64 {
        match self.model {
            ValueModel::Constant(v) => v,
            ValueModel::Uniform { low, high } => {
                if high > low {
                    rng.gen_range(low..=high)
                } else {
                    low
                }
            }
            ValueModel::PopularityLinear { min, max } => {
                if n <= 1 {
                    max
                } else {
                    let frac = (rank - 1) as f64 / (n - 1) as f64;
                    max - frac * (max - min)
                }
            }
        }
    }

    /// Assigns values to `n` objects in popularity-rank order (index 0 is
    /// the most popular object).
    pub fn assign<R: Rng + ?Sized>(&self, rng: &mut R, n: usize) -> Vec<f64> {
        (1..=n).map(|r| self.value_for_rank(rng, r, n)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn default_model_is_paper_uniform() {
        assert_eq!(
            ValueModel::default(),
            ValueModel::Uniform {
                low: 1.0,
                high: 10.0
            }
        );
    }

    #[test]
    fn validation_rejects_bad_bounds() {
        assert!(ValueModel::Uniform {
            low: 5.0,
            high: 1.0
        }
        .validate()
        .is_err());
        assert!(ValueModel::Constant(-1.0).validate().is_err());
        assert!(ValueModel::PopularityLinear { min: 3.0, max: 1.0 }
            .validate()
            .is_err());
        assert!(ValueModel::Uniform {
            low: f64::NAN,
            high: 1.0
        }
        .validate()
        .is_err());
    }

    #[test]
    fn uniform_values_within_bounds_and_spread() {
        let a = ValueAssigner::new(ValueModel::default()).unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        let values = a.assign(&mut rng, 10_000);
        assert!(values.iter().all(|v| (1.0..=10.0).contains(v)));
        let mean = values.iter().sum::<f64>() / values.len() as f64;
        assert!((mean - 5.5).abs() < 0.2, "mean {mean}");
    }

    #[test]
    fn constant_model() {
        let a = ValueAssigner::new(ValueModel::Constant(3.0)).unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        assert!(a.assign(&mut rng, 5).iter().all(|v| *v == 3.0));
    }

    #[test]
    fn popularity_linear_is_monotone() {
        let a = ValueAssigner::new(ValueModel::PopularityLinear { min: 1.0, max: 9.0 }).unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        let values = a.assign(&mut rng, 9);
        assert_eq!(values[0], 9.0);
        assert_eq!(values[8], 1.0);
        assert!(values.windows(2).all(|w| w[0] >= w[1]));
    }

    #[test]
    fn degenerate_uniform_returns_single_point() {
        let a = ValueAssigner::new(ValueModel::Uniform {
            low: 2.0,
            high: 2.0,
        })
        .unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        assert_eq!(a.value_for_rank(&mut rng, 1, 10), 2.0);
    }
}
