//! # sc-workload — synthetic streaming-media workload generation
//!
//! This crate re-implements the parts of the GISMO toolset (Jin & Bestavros,
//! *GISMO: Generator of Streaming Media Objects and Workloads*, PER 2001)
//! that are needed to reproduce the evaluation of *Accelerating Internet
//! Streaming Media Delivery using Network-Aware Partial Caching*
//! (Jin, Bestavros, Iyengar; ICDCS 2002).
//!
//! The generated workload follows Table 1 of the paper:
//!
//! | Characteristic        | Value                                   |
//! |-----------------------|-----------------------------------------|
//! | Number of objects     | 5,000                                   |
//! | Object popularity     | Zipf-like, α = 0.73                     |
//! | Number of requests    | 100,000                                 |
//! | Request arrivals      | Poisson                                 |
//! | Object duration       | Lognormal (µ = 3.85, σ = 0.56) minutes  |
//! | Object bit-rate       | 2 KB/frame × 24 frame/s = 48 KB/s       |
//! | Total unique bytes    | ≈ 790 GB                                |
//! | Object value          | Uniform($1, $10) (Section 4.4)          |
//!
//! # Quick start
//!
//! ```
//! use sc_workload::WorkloadBuilder;
//!
//! # fn main() -> Result<(), sc_workload::WorkloadError> {
//! // A small workload (500 objects, 5,000 requests) for tests/examples.
//! let workload = WorkloadBuilder::new()
//!     .objects(500)
//!     .requests(5_000)
//!     .zipf_alpha(0.73)
//!     .seed(42)
//!     .build()?;
//!
//! assert_eq!(workload.catalog.len(), 500);
//! assert_eq!(workload.trace.len(), 5_000);
//! # Ok(())
//! # }
//! ```
//!
//! The full paper-scale workload is available through
//! [`WorkloadConfig::paper_default`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod builder;
mod catalog;
mod error;
mod lognormal;
mod object;
mod poisson;
mod stats;
mod trace;
mod value;
mod zipf;

pub use builder::{Workload, WorkloadBuilder, WorkloadConfig};
pub use catalog::{Catalog, CatalogConfig};
pub use error::WorkloadError;
pub use lognormal::LogNormal;
pub use object::{MediaObject, ObjectId};
pub use poisson::PoissonProcess;
pub use stats::{CatalogStats, TraceStats};
pub use trace::{Request, RequestTrace, SessionArrival, TraceConfig};
pub use value::{ValueAssigner, ValueModel};
pub use zipf::ZipfLike;
