//! Zipf-like popularity distribution.

use crate::WorkloadError;
use rand::Rng;

/// A Zipf-like discrete distribution over ranks `1..=n`.
///
/// With skew parameter `alpha`, the probability of drawing the object with
/// popularity rank `r` is proportional to `r^{-alpha}`. The paper uses
/// `alpha = 0.73` by default and sweeps `alpha ∈ [0.5, 1.2]` in Section 4.2.
///
/// Sampling uses inverse-transform over the precomputed cumulative
/// distribution (binary search), so drawing a sample costs `O(log n)`.
///
/// ```
/// use sc_workload::ZipfLike;
/// use rand::SeedableRng;
///
/// let zipf = ZipfLike::new(1000, 0.73)?;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let rank = zipf.sample(&mut rng);
/// assert!((1..=1000).contains(&rank));
/// // Rank 1 is the most likely outcome.
/// assert!(zipf.probability(1) > zipf.probability(1000));
/// # Ok::<(), sc_workload::WorkloadError>(())
/// ```
#[derive(Debug, Clone)]
pub struct ZipfLike {
    n: usize,
    alpha: f64,
    /// `cdf[r-1]` = P(rank <= r); last entry is exactly 1.0.
    cdf: Vec<f64>,
}

impl ZipfLike {
    /// Creates a Zipf-like distribution over `n` ranks with skew `alpha`.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::EmptyCatalog`] if `n == 0` and
    /// [`WorkloadError::InvalidZipfAlpha`] if `alpha` is negative, NaN or
    /// infinite.
    pub fn new(n: usize, alpha: f64) -> Result<Self, WorkloadError> {
        if n == 0 {
            return Err(WorkloadError::EmptyCatalog);
        }
        if !alpha.is_finite() || alpha < 0.0 {
            return Err(WorkloadError::InvalidZipfAlpha(alpha));
        }
        let mut weights = Vec::with_capacity(n);
        let mut total = 0.0;
        for r in 1..=n {
            let w = (r as f64).powf(-alpha);
            total += w;
            weights.push(w);
        }
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for w in &weights {
            acc += w / total;
            cdf.push(acc);
        }
        // Guard against floating-point drift.
        if let Some(last) = cdf.last_mut() {
            *last = 1.0;
        }
        Ok(ZipfLike { n, alpha, cdf })
    }

    /// Number of ranks in the distribution.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Returns `true` if the distribution has no ranks (never happens for a
    /// successfully constructed value; provided for API completeness).
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// The skew parameter `alpha`.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Probability of drawing popularity rank `rank` (1-based).
    ///
    /// # Panics
    ///
    /// Panics if `rank` is zero or greater than [`len`](Self::len).
    pub fn probability(&self, rank: usize) -> f64 {
        assert!(rank >= 1 && rank <= self.n, "rank out of range");
        let prev = if rank == 1 { 0.0 } else { self.cdf[rank - 2] };
        self.cdf[rank - 1] - prev
    }

    /// Draws a popularity rank in `1..=n`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        self.rank_for_quantile(u)
    }

    /// Returns the smallest rank `r` such that `P(rank <= r) >= q`.
    ///
    /// `q` is clamped to `[0, 1]`.
    pub fn rank_for_quantile(&self, q: f64) -> usize {
        let q = q.clamp(0.0, 1.0);
        match self
            .cdf
            .binary_search_by(|p| p.partial_cmp(&q).expect("cdf is never NaN"))
        {
            Ok(i) => i + 1,
            Err(i) => (i + 1).min(self.n),
        }
    }

    /// Expected request share of the `k` most popular ranks.
    pub fn head_mass(&self, k: usize) -> f64 {
        if k == 0 {
            0.0
        } else {
            self.cdf[k.min(self.n) - 1]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rejects_empty_and_bad_alpha() {
        assert!(matches!(
            ZipfLike::new(0, 0.73),
            Err(WorkloadError::EmptyCatalog)
        ));
        assert!(matches!(
            ZipfLike::new(10, -0.5),
            Err(WorkloadError::InvalidZipfAlpha(_))
        ));
        assert!(matches!(
            ZipfLike::new(10, f64::NAN),
            Err(WorkloadError::InvalidZipfAlpha(_))
        ));
    }

    #[test]
    fn probabilities_sum_to_one() {
        let z = ZipfLike::new(100, 0.73).unwrap();
        let total: f64 = (1..=100).map(|r| z.probability(r)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn probabilities_decrease_with_rank() {
        let z = ZipfLike::new(50, 1.0).unwrap();
        for r in 1..50 {
            assert!(z.probability(r) >= z.probability(r + 1));
        }
    }

    #[test]
    fn alpha_zero_is_uniform() {
        let z = ZipfLike::new(10, 0.0).unwrap();
        for r in 1..=10 {
            assert!((z.probability(r) - 0.1).abs() < 1e-9);
        }
    }

    #[test]
    fn higher_alpha_concentrates_head_mass() {
        let low = ZipfLike::new(1000, 0.5).unwrap();
        let high = ZipfLike::new(1000, 1.2).unwrap();
        assert!(high.head_mass(10) > low.head_mass(10));
    }

    #[test]
    fn sampling_matches_head_mass_roughly() {
        let z = ZipfLike::new(200, 0.73).unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        let draws = 20_000;
        let mut head = 0usize;
        for _ in 0..draws {
            if z.sample(&mut rng) <= 20 {
                head += 1;
            }
        }
        let empirical = head as f64 / draws as f64;
        let expected = z.head_mass(20);
        assert!(
            (empirical - expected).abs() < 0.02,
            "empirical {empirical} vs expected {expected}"
        );
    }

    #[test]
    fn quantile_edges() {
        let z = ZipfLike::new(10, 0.73).unwrap();
        assert_eq!(z.rank_for_quantile(0.0), 1);
        assert_eq!(z.rank_for_quantile(1.0), 10);
        assert_eq!(z.rank_for_quantile(2.0), 10);
        assert_eq!(z.rank_for_quantile(-1.0), 1);
    }
}
