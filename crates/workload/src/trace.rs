//! Request traces: who asks for what, and when.

use crate::catalog::Catalog;
use crate::object::ObjectId;
use crate::poisson::PoissonProcess;
use crate::zipf::ZipfLike;
use crate::WorkloadError;
use rand::Rng;

/// A single client request for a streaming media object.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Request {
    /// Arrival time in seconds since the start of the trace.
    pub time_secs: f64,
    /// The requested object.
    pub object: ObjectId,
}

/// Configuration of the request-trace generator.
///
/// Defaults match Table 1 of the paper: 100,000 Poisson-arriving requests
/// whose target objects follow a Zipf-like distribution with α = 0.73.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceConfig {
    /// Number of requests to generate.
    pub requests: usize,
    /// Zipf-like popularity skew.
    pub zipf_alpha: f64,
    /// Mean request arrival rate (requests per second).
    pub arrival_rate: f64,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            requests: 100_000,
            zipf_alpha: 0.73,
            // 100,000 requests at 1 request/second spans a bit over a day,
            // matching the multi-hour horizon of the paper's experiments.
            arrival_rate: 1.0,
        }
    }
}

impl TraceConfig {
    /// The paper's Table 1 configuration.
    pub fn paper_default() -> Self {
        Self::default()
    }

    /// A reduced configuration for tests and examples (5,000 requests).
    pub fn small() -> Self {
        TraceConfig {
            requests: 5_000,
            ..Self::default()
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a [`WorkloadError`] when the request count is zero or a
    /// distribution parameter is out of range.
    pub fn validate(&self) -> Result<(), WorkloadError> {
        if self.requests == 0 {
            return Err(WorkloadError::EmptyTrace);
        }
        if !self.zipf_alpha.is_finite() || self.zipf_alpha < 0.0 {
            return Err(WorkloadError::InvalidZipfAlpha(self.zipf_alpha));
        }
        PoissonProcess::new(self.arrival_rate)?;
        Ok(())
    }
}

/// One streaming *session* implied by a request: the arrival instant plus
/// the playback characteristics of the requested object.
///
/// A [`Request`] is a point event; a session spans the object's playback
/// duration and consumes bandwidth for its whole lifetime. Session-level
/// simulators (the `sc_sim` event core) consume these instead of raw
/// requests so overlapping sessions can contend for shared bottleneck
/// links.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SessionArrival {
    /// Arrival time in seconds since the start of the trace.
    pub time_secs: f64,
    /// The requested object.
    pub object: ObjectId,
    /// Playback duration of the object in seconds.
    pub duration_secs: f64,
    /// CBR encoding rate in bytes per second.
    pub bitrate_bps: f64,
    /// Total object size in bytes (`duration_secs × bitrate_bps`).
    pub size_bytes: f64,
}

/// A time-ordered sequence of requests over a catalog.
///
/// ```
/// use sc_workload::{Catalog, CatalogConfig, RequestTrace, TraceConfig};
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let catalog = Catalog::generate(&CatalogConfig::small(), &mut rng)?;
/// let trace = RequestTrace::generate(&catalog, &TraceConfig::small(), &mut rng)?;
/// assert_eq!(trace.len(), 5_000);
/// // Requests are sorted by arrival time.
/// assert!(trace.requests().windows(2).all(|w| w[0].time_secs <= w[1].time_secs));
/// # Ok::<(), sc_workload::WorkloadError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct RequestTrace {
    requests: Vec<Request>,
}

impl RequestTrace {
    /// Builds a trace from an explicit request list.
    ///
    /// The requests are sorted by arrival time.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::EmptyTrace`] if `requests` is empty.
    pub fn from_requests(mut requests: Vec<Request>) -> Result<Self, WorkloadError> {
        if requests.is_empty() {
            return Err(WorkloadError::EmptyTrace);
        }
        requests.sort_by(|a, b| {
            a.time_secs
                .partial_cmp(&b.time_secs)
                .expect("request times are never NaN")
        });
        Ok(RequestTrace { requests })
    }

    /// Generates a synthetic trace over `catalog` according to `config`.
    ///
    /// Popularity rank `r` (1-based, drawn from the Zipf-like distribution)
    /// maps to the object with id `r - 1`, so object ids are ordered by
    /// decreasing expected popularity.
    ///
    /// # Errors
    ///
    /// Returns a [`WorkloadError`] if the configuration fails validation.
    pub fn generate<R: Rng + ?Sized>(
        catalog: &Catalog,
        config: &TraceConfig,
        rng: &mut R,
    ) -> Result<Self, WorkloadError> {
        config.validate()?;
        let zipf = ZipfLike::new(catalog.len(), config.zipf_alpha)?;
        let arrivals = PoissonProcess::new(config.arrival_rate)?;
        let times = arrivals.arrival_times(rng, config.requests);
        let mut requests = Vec::with_capacity(config.requests);
        for t in times {
            let rank = zipf.sample(rng);
            requests.push(Request {
                time_secs: t,
                object: ObjectId::new((rank - 1) as u32),
            });
        }
        Ok(RequestTrace { requests })
    }

    /// Number of requests in the trace.
    pub fn len(&self) -> usize {
        self.requests.len()
    }

    /// Returns `true` if the trace contains no requests (never the case for
    /// a successfully constructed trace).
    pub fn is_empty(&self) -> bool {
        self.requests.is_empty()
    }

    /// The requests, sorted by arrival time.
    pub fn requests(&self) -> &[Request] {
        &self.requests
    }

    /// Iterates over the requests in arrival order.
    pub fn iter(&self) -> std::slice::Iter<'_, Request> {
        self.requests.iter()
    }

    /// Duration in seconds between the first and last request.
    pub fn span_secs(&self) -> f64 {
        let first = self.requests.first().map(|r| r.time_secs).unwrap_or(0.0);
        let last = self.requests.last().map(|r| r.time_secs).unwrap_or(0.0);
        last - first
    }

    /// Per-object request counts, indexed by object id.
    pub fn request_counts(&self, catalog_len: usize) -> Vec<u64> {
        let mut counts = vec![0u64; catalog_len];
        for req in &self.requests {
            if let Some(c) = counts.get_mut(req.object.index()) {
                *c += 1;
            }
        }
        counts
    }

    /// Expands every request into a [`SessionArrival`] carrying the
    /// requested object's playback duration, encoding rate and size, in
    /// arrival order.
    ///
    /// # Panics
    ///
    /// Panics if a request references an object outside `catalog`.
    pub fn session_arrivals(&self, catalog: &Catalog) -> Vec<SessionArrival> {
        self.requests
            .iter()
            .map(|req| {
                let obj = catalog.object(req.object);
                SessionArrival {
                    time_secs: req.time_secs,
                    object: req.object,
                    duration_secs: obj.duration_secs,
                    bitrate_bps: obj.bitrate_bps,
                    size_bytes: obj.size_bytes(),
                }
            })
            .collect()
    }

    /// Splits the trace into a warm-up prefix and a measurement suffix.
    ///
    /// The paper warms the cache with the first half of the workload and
    /// computes metrics over the second half (`fraction = 0.5`).
    ///
    /// # Panics
    ///
    /// Panics if `fraction` is not within `[0, 1]`.
    pub fn split_at_fraction(&self, fraction: f64) -> (&[Request], &[Request]) {
        assert!(
            (0.0..=1.0).contains(&fraction),
            "fraction must be in [0, 1]"
        );
        let idx = ((self.requests.len() as f64) * fraction).round() as usize;
        self.requests.split_at(idx.min(self.requests.len()))
    }
}

impl<'a> IntoIterator for &'a RequestTrace {
    type Item = &'a Request;
    type IntoIter = std::slice::Iter<'a, Request>;

    fn into_iter(self) -> Self::IntoIter {
        self.requests.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::CatalogConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn small_setup() -> (Catalog, RequestTrace) {
        let mut rng = StdRng::seed_from_u64(5);
        let catalog = Catalog::generate(&CatalogConfig::small(), &mut rng).unwrap();
        let trace = RequestTrace::generate(&catalog, &TraceConfig::small(), &mut rng).unwrap();
        (catalog, trace)
    }

    #[test]
    fn default_config_matches_table1() {
        let c = TraceConfig::default();
        assert_eq!(c.requests, 100_000);
        assert_eq!(c.zipf_alpha, 0.73);
    }

    #[test]
    fn validation_catches_errors() {
        let mut c = TraceConfig::small();
        c.requests = 0;
        assert!(matches!(c.validate(), Err(WorkloadError::EmptyTrace)));
        let mut c = TraceConfig::small();
        c.zipf_alpha = -1.0;
        assert!(c.validate().is_err());
        let mut c = TraceConfig::small();
        c.arrival_rate = 0.0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn generated_trace_is_sorted_and_in_range() {
        let (catalog, trace) = small_setup();
        assert_eq!(trace.len(), 5_000);
        assert!(trace
            .requests()
            .windows(2)
            .all(|w| w[0].time_secs <= w[1].time_secs));
        assert!(trace.iter().all(|r| r.object.index() < catalog.len()));
    }

    #[test]
    fn popular_objects_receive_more_requests() {
        let (catalog, trace) = small_setup();
        let counts = trace.request_counts(catalog.len());
        let head: u64 = counts[..10].iter().sum();
        let tail: u64 = counts[catalog.len() - 10..].iter().sum();
        assert!(
            head > tail * 3,
            "expected strong popularity skew, head {head} tail {tail}"
        );
    }

    #[test]
    fn split_at_fraction_halves() {
        let (_, trace) = small_setup();
        let (warm, measure) = trace.split_at_fraction(0.5);
        assert_eq!(warm.len(), 2_500);
        assert_eq!(measure.len(), 2_500);
        let (all, none) = trace.split_at_fraction(1.0);
        assert_eq!(all.len(), 5_000);
        assert!(none.is_empty());
    }

    #[test]
    #[should_panic(expected = "fraction")]
    fn split_at_fraction_rejects_out_of_range() {
        let (_, trace) = small_setup();
        let _ = trace.split_at_fraction(1.5);
    }

    #[test]
    fn from_requests_sorts_by_time() {
        let reqs = vec![
            Request {
                time_secs: 5.0,
                object: ObjectId::new(1),
            },
            Request {
                time_secs: 1.0,
                object: ObjectId::new(0),
            },
        ];
        let trace = RequestTrace::from_requests(reqs).unwrap();
        assert_eq!(trace.requests()[0].object, ObjectId::new(0));
        assert!((trace.span_secs() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn session_arrivals_carry_object_playback_characteristics() {
        let (catalog, trace) = small_setup();
        let sessions = trace.session_arrivals(&catalog);
        assert_eq!(sessions.len(), trace.len());
        for (req, session) in trace.iter().zip(&sessions) {
            let obj = catalog.object(req.object);
            assert_eq!(session.time_secs, req.time_secs);
            assert_eq!(session.object, req.object);
            assert_eq!(session.duration_secs, obj.duration_secs);
            assert_eq!(session.bitrate_bps, obj.bitrate_bps);
            assert_eq!(session.size_bytes, obj.size_bytes());
            assert!(session.duration_secs > 0.0);
            assert!(session.size_bytes > 0.0);
        }
        // Arrival order is preserved.
        assert!(sessions
            .windows(2)
            .all(|w| w[0].time_secs <= w[1].time_secs));
    }

    #[test]
    fn from_requests_rejects_empty() {
        assert!(matches!(
            RequestTrace::from_requests(vec![]),
            Err(WorkloadError::EmptyTrace)
        ));
    }
}
