//! One-stop workload builder combining catalog and trace generation.

use crate::catalog::{Catalog, CatalogConfig};
use crate::stats::{CatalogStats, TraceStats};
use crate::trace::{RequestTrace, TraceConfig};
use crate::value::ValueModel;
use crate::WorkloadError;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Complete configuration of a synthetic workload (catalog + trace).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct WorkloadConfig {
    /// Catalog (object population) configuration.
    pub catalog: CatalogConfig,
    /// Trace (request stream) configuration.
    pub trace: TraceConfig,
    /// Seed for the deterministic random number generator.
    pub seed: u64,
}

impl WorkloadConfig {
    /// The paper's Table 1 configuration (5,000 objects, 100,000 requests).
    pub fn paper_default() -> Self {
        Self::default()
    }

    /// A reduced configuration (500 objects, 5,000 requests) suitable for
    /// tests, examples, and fast benchmarks.
    pub fn small() -> Self {
        WorkloadConfig {
            catalog: CatalogConfig::small(),
            trace: TraceConfig::small(),
            seed: 0,
        }
    }

    /// Validates both halves of the configuration.
    ///
    /// # Errors
    ///
    /// Propagates validation errors from [`CatalogConfig`] and
    /// [`TraceConfig`].
    pub fn validate(&self) -> Result<(), WorkloadError> {
        self.catalog.validate()?;
        self.trace.validate()?;
        Ok(())
    }

    /// Generates the workload described by this configuration.
    ///
    /// # Errors
    ///
    /// Returns a [`WorkloadError`] if validation fails.
    pub fn generate(&self) -> Result<Workload, WorkloadError> {
        self.validate()?;
        let mut rng = StdRng::seed_from_u64(self.seed);
        let catalog = Catalog::generate(&self.catalog, &mut rng)?;
        let trace = RequestTrace::generate(&catalog, &self.trace, &mut rng)?;
        Ok(Workload {
            config: *self,
            catalog,
            trace,
        })
    }
}

/// A generated workload: the object catalog plus the request trace.
#[derive(Debug, Clone, PartialEq)]
pub struct Workload {
    /// The configuration the workload was generated from.
    pub config: WorkloadConfig,
    /// The object catalog.
    pub catalog: Catalog,
    /// The request trace.
    pub trace: RequestTrace,
}

impl Workload {
    /// Catalog statistics (Table 1 style).
    pub fn catalog_stats(&self) -> CatalogStats {
        CatalogStats::compute(&self.catalog)
    }

    /// Trace statistics (Table 1 style).
    pub fn trace_stats(&self) -> TraceStats {
        TraceStats::compute(&self.catalog, &self.trace)
    }
}

/// Fluent builder over [`WorkloadConfig`].
///
/// ```
/// use sc_workload::WorkloadBuilder;
///
/// let workload = WorkloadBuilder::new()
///     .objects(200)
///     .requests(1_000)
///     .zipf_alpha(1.0)
///     .bitrate_bps(48_000.0)
///     .seed(7)
///     .build()?;
/// assert_eq!(workload.catalog.len(), 200);
/// # Ok::<(), sc_workload::WorkloadError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadBuilder {
    config: WorkloadConfig,
}

impl Default for WorkloadBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl WorkloadBuilder {
    /// Starts from the paper's default configuration.
    pub fn new() -> Self {
        WorkloadBuilder {
            config: WorkloadConfig::default(),
        }
    }

    /// Starts from an explicit configuration.
    pub fn from_config(config: WorkloadConfig) -> Self {
        WorkloadBuilder { config }
    }

    /// Sets the number of unique objects.
    pub fn objects(mut self, n: usize) -> Self {
        self.config.catalog.objects = n;
        self
    }

    /// Sets the number of requests.
    pub fn requests(mut self, n: usize) -> Self {
        self.config.trace.requests = n;
        self
    }

    /// Sets the Zipf-like popularity skew `alpha`.
    pub fn zipf_alpha(mut self, alpha: f64) -> Self {
        self.config.trace.zipf_alpha = alpha;
        self
    }

    /// Sets the mean request arrival rate (requests per second).
    pub fn arrival_rate(mut self, rate: f64) -> Self {
        self.config.trace.arrival_rate = rate;
        self
    }

    /// Sets the CBR bit-rate in bytes per second.
    pub fn bitrate_bps(mut self, bps: f64) -> Self {
        self.config.catalog.bitrate_bps = bps;
        self
    }

    /// Sets the lognormal duration parameters (minutes).
    pub fn duration_lognormal(mut self, mu: f64, sigma: f64) -> Self {
        self.config.catalog.duration_mu = mu;
        self.config.catalog.duration_sigma = sigma;
        self
    }

    /// Sets the per-object value model.
    pub fn value_model(mut self, model: ValueModel) -> Self {
        self.config.catalog.value_model = model;
        self
    }

    /// Sets the RNG seed (workload generation is fully deterministic for a
    /// given seed and configuration).
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// Returns the configuration built so far without generating.
    pub fn config(&self) -> WorkloadConfig {
        self.config
    }

    /// Generates the workload.
    ///
    /// # Errors
    ///
    /// Returns a [`WorkloadError`] if the assembled configuration is invalid.
    pub fn build(self) -> Result<Workload, WorkloadError> {
        self.config.generate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_sets_all_fields() {
        let cfg = WorkloadBuilder::new()
            .objects(10)
            .requests(20)
            .zipf_alpha(0.9)
            .arrival_rate(2.0)
            .bitrate_bps(1_000.0)
            .duration_lognormal(1.0, 0.1)
            .value_model(ValueModel::Constant(2.0))
            .seed(99)
            .config();
        assert_eq!(cfg.catalog.objects, 10);
        assert_eq!(cfg.trace.requests, 20);
        assert_eq!(cfg.trace.zipf_alpha, 0.9);
        assert_eq!(cfg.trace.arrival_rate, 2.0);
        assert_eq!(cfg.catalog.bitrate_bps, 1_000.0);
        assert_eq!(cfg.catalog.duration_mu, 1.0);
        assert_eq!(cfg.catalog.duration_sigma, 0.1);
        assert_eq!(cfg.catalog.value_model, ValueModel::Constant(2.0));
        assert_eq!(cfg.seed, 99);
    }

    #[test]
    fn same_seed_is_deterministic() {
        let a = WorkloadBuilder::new()
            .objects(50)
            .requests(200)
            .seed(5)
            .build()
            .unwrap();
        let b = WorkloadBuilder::new()
            .objects(50)
            .requests(200)
            .seed(5)
            .build()
            .unwrap();
        assert_eq!(a.catalog, b.catalog);
        assert_eq!(a.trace, b.trace);
    }

    #[test]
    fn different_seeds_differ() {
        let a = WorkloadBuilder::new()
            .objects(50)
            .requests(200)
            .seed(5)
            .build()
            .unwrap();
        let b = WorkloadBuilder::new()
            .objects(50)
            .requests(200)
            .seed(6)
            .build()
            .unwrap();
        assert_ne!(a.trace, b.trace);
    }

    #[test]
    fn invalid_configuration_is_rejected() {
        assert!(WorkloadBuilder::new().objects(0).build().is_err());
        assert!(WorkloadBuilder::new().requests(0).build().is_err());
        assert!(WorkloadBuilder::new().zipf_alpha(-1.0).build().is_err());
    }

    #[test]
    fn workload_stats_accessors() {
        let w = WorkloadBuilder::new()
            .objects(100)
            .requests(500)
            .seed(1)
            .build()
            .unwrap();
        assert_eq!(w.catalog_stats().objects, 100);
        assert_eq!(w.trace_stats().requests, 500);
    }
}
