//! Summary statistics of catalogs and traces (used to validate Table 1).

use crate::catalog::Catalog;
use crate::trace::RequestTrace;

/// Summary statistics of an object catalog.
///
/// ```
/// use sc_workload::{Catalog, CatalogConfig, CatalogStats};
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let catalog = Catalog::generate(&CatalogConfig::small(), &mut rng)?;
/// let stats = CatalogStats::compute(&catalog);
/// assert_eq!(stats.objects, 500);
/// assert!(stats.mean_duration_minutes > 40.0);
/// # Ok::<(), sc_workload::WorkloadError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CatalogStats {
    /// Number of unique objects.
    pub objects: usize,
    /// Total unique bytes across all objects.
    pub total_bytes: f64,
    /// Mean object duration in minutes.
    pub mean_duration_minutes: f64,
    /// Mean object size in bytes.
    pub mean_size_bytes: f64,
    /// Mean number of frames per object at 24 frames/s.
    pub mean_frames: f64,
    /// Minimum object duration in minutes.
    pub min_duration_minutes: f64,
    /// Maximum object duration in minutes.
    pub max_duration_minutes: f64,
    /// Mean object value (dollars).
    pub mean_value: f64,
}

impl CatalogStats {
    /// Computes statistics over a catalog.
    pub fn compute(catalog: &Catalog) -> Self {
        let n = catalog.len() as f64;
        let total_bytes = catalog.total_bytes();
        let mean_duration_secs = catalog.mean_duration_secs();
        let mut min_d = f64::INFINITY;
        let mut max_d = f64::NEG_INFINITY;
        let mut value_sum = 0.0;
        for obj in catalog {
            min_d = min_d.min(obj.duration_secs);
            max_d = max_d.max(obj.duration_secs);
            value_sum += obj.value;
        }
        CatalogStats {
            objects: catalog.len(),
            total_bytes,
            mean_duration_minutes: mean_duration_secs / 60.0,
            mean_size_bytes: total_bytes / n,
            mean_frames: mean_duration_secs * 24.0,
            min_duration_minutes: min_d / 60.0,
            max_duration_minutes: max_d / 60.0,
            mean_value: value_sum / n,
        }
    }

    /// Total unique bytes expressed in gigabytes (10^9 bytes).
    pub fn total_gigabytes(&self) -> f64 {
        self.total_bytes / 1e9
    }
}

/// Summary statistics of a request trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceStats {
    /// Number of requests.
    pub requests: usize,
    /// Number of distinct objects referenced at least once.
    pub distinct_objects: usize,
    /// Time span between first and last request, in seconds.
    pub span_secs: f64,
    /// Mean request inter-arrival time in seconds.
    pub mean_interarrival_secs: f64,
    /// Fraction of requests that target the 10% most popular object ids.
    pub top_decile_share: f64,
    /// Total bytes requested (sum of the size of every requested object).
    pub total_requested_bytes: f64,
}

impl TraceStats {
    /// Computes statistics of `trace` over `catalog`.
    pub fn compute(catalog: &Catalog, trace: &RequestTrace) -> Self {
        let counts = trace.request_counts(catalog.len());
        let distinct = counts.iter().filter(|c| **c > 0).count();
        let decile = (catalog.len() / 10).max(1);
        let head: u64 = counts[..decile].iter().sum();
        let total: u64 = counts.iter().sum();
        let total_requested_bytes: f64 = trace
            .iter()
            .map(|r| catalog.object(r.object).size_bytes())
            .sum();
        let n = trace.len();
        TraceStats {
            requests: n,
            distinct_objects: distinct,
            span_secs: trace.span_secs(),
            mean_interarrival_secs: if n > 1 {
                trace.span_secs() / (n as f64 - 1.0)
            } else {
                0.0
            },
            top_decile_share: if total > 0 {
                head as f64 / total as f64
            } else {
                0.0
            },
            total_requested_bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::CatalogConfig;
    use crate::trace::TraceConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (Catalog, RequestTrace) {
        let mut rng = StdRng::seed_from_u64(8);
        let catalog = Catalog::generate(&CatalogConfig::small(), &mut rng).unwrap();
        let trace = RequestTrace::generate(&catalog, &TraceConfig::small(), &mut rng).unwrap();
        (catalog, trace)
    }

    #[test]
    fn catalog_stats_match_paper_shape() {
        let (catalog, _) = setup();
        let stats = CatalogStats::compute(&catalog);
        assert_eq!(stats.objects, 500);
        // Mean duration ~55 minutes, mean frames ~79K (paper Section 3.2).
        assert!(
            (45.0..65.0).contains(&stats.mean_duration_minutes),
            "mean duration {}",
            stats.mean_duration_minutes
        );
        assert!(
            (65_000.0..95_000.0).contains(&stats.mean_frames),
            "mean frames {}",
            stats.mean_frames
        );
        assert!(stats.min_duration_minutes > 0.0);
        assert!(stats.max_duration_minutes > stats.min_duration_minutes);
        assert!((1.0..=10.0).contains(&stats.mean_value));
        assert!(stats.total_gigabytes() > 10.0);
    }

    #[test]
    fn trace_stats_counts_and_skew() {
        let (catalog, trace) = setup();
        let stats = TraceStats::compute(&catalog, &trace);
        assert_eq!(stats.requests, 5_000);
        assert!(stats.distinct_objects <= 500);
        assert!(stats.distinct_objects > 100);
        assert!(stats.span_secs > 0.0);
        assert!(stats.mean_interarrival_secs > 0.0);
        // Zipf 0.73 over 500 objects: the top decile draws well over 10% of
        // requests.
        assert!(
            stats.top_decile_share > 0.2,
            "top decile share {}",
            stats.top_decile_share
        );
        assert!(stats.total_requested_bytes > 0.0);
    }
}
