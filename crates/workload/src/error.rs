//! Error type for workload generation.

use std::error::Error;
use std::fmt;

/// Errors returned when a workload configuration is invalid.
#[derive(Debug, Clone, PartialEq)]
pub enum WorkloadError {
    /// The requested number of objects was zero.
    EmptyCatalog,
    /// The requested number of requests was zero.
    EmptyTrace,
    /// The Zipf-like skew parameter was not finite or was negative.
    InvalidZipfAlpha(f64),
    /// A distribution parameter was out of range (name, offending value).
    InvalidParameter(&'static str, f64),
}

impl fmt::Display for WorkloadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkloadError::EmptyCatalog => write!(f, "catalog must contain at least one object"),
            WorkloadError::EmptyTrace => write!(f, "trace must contain at least one request"),
            WorkloadError::InvalidZipfAlpha(a) => {
                write!(f, "zipf alpha must be finite and non-negative, got {a}")
            }
            WorkloadError::InvalidParameter(name, v) => {
                write!(f, "invalid value for parameter `{name}`: {v}")
            }
        }
    }
}

impl Error for WorkloadError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let cases = [
            WorkloadError::EmptyCatalog,
            WorkloadError::EmptyTrace,
            WorkloadError::InvalidZipfAlpha(-1.0),
            WorkloadError::InvalidParameter("sigma", f64::NAN),
        ];
        for err in cases {
            let msg = err.to_string();
            assert!(!msg.is_empty());
            assert!(msg.chars().next().unwrap().is_lowercase());
        }
    }

    #[test]
    fn error_is_send_sync_static() {
        fn assert_bounds<T: std::error::Error + Send + Sync + 'static>() {}
        assert_bounds::<WorkloadError>();
    }
}
