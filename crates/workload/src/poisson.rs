//! Poisson request-arrival process.

use crate::WorkloadError;
use rand::Rng;

/// A homogeneous Poisson arrival process with a given mean rate.
///
/// Inter-arrival times are i.i.d. exponential with mean `1 / rate`. The
/// paper generates 100,000 request arrivals from a Poisson process
/// (Section 3.2, Table 1); the absolute rate only sets the time axis and
/// does not change any of the caching metrics, so callers typically pick a
/// rate that makes the trace span a convenient number of simulated hours.
///
/// ```
/// use sc_workload::PoissonProcess;
/// use rand::SeedableRng;
///
/// let process = PoissonProcess::new(2.0)?; // 2 requests per second
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let times = process.arrival_times(&mut rng, 100);
/// assert_eq!(times.len(), 100);
/// assert!(times.windows(2).all(|w| w[0] <= w[1]));
/// # Ok::<(), sc_workload::WorkloadError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PoissonProcess {
    rate: f64,
}

impl PoissonProcess {
    /// Creates a Poisson process with `rate` arrivals per unit time.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::InvalidParameter`] if `rate` is not finite
    /// or not strictly positive.
    pub fn new(rate: f64) -> Result<Self, WorkloadError> {
        if !rate.is_finite() || rate <= 0.0 {
            return Err(WorkloadError::InvalidParameter("rate", rate));
        }
        Ok(PoissonProcess { rate })
    }

    /// The arrival rate (arrivals per unit time).
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// Mean inter-arrival time `1 / rate`.
    pub fn mean_interarrival(&self) -> f64 {
        1.0 / self.rate
    }

    /// Draws a single exponential inter-arrival time.
    pub fn interarrival<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // Inverse-transform sampling of Exp(rate); guard against ln(0).
        let u: f64 = loop {
            let v: f64 = rng.gen();
            if v > f64::MIN_POSITIVE {
                break v;
            }
        };
        -u.ln() / self.rate
    }

    /// Generates `n` cumulative arrival times starting at time zero.
    ///
    /// The returned vector is non-decreasing and has length `n`.
    pub fn arrival_times<R: Rng + ?Sized>(&self, rng: &mut R, n: usize) -> Vec<f64> {
        let mut times = Vec::with_capacity(n);
        let mut t = 0.0;
        for _ in 0..n {
            t += self.interarrival(rng);
            times.push(t);
        }
        times
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rejects_non_positive_rate() {
        assert!(matches!(
            PoissonProcess::new(0.0),
            Err(WorkloadError::InvalidParameter("rate", _))
        ));
        assert!(matches!(
            PoissonProcess::new(-3.0),
            Err(WorkloadError::InvalidParameter("rate", _))
        ));
        assert!(matches!(
            PoissonProcess::new(f64::NAN),
            Err(WorkloadError::InvalidParameter("rate", _))
        ));
    }

    #[test]
    fn mean_interarrival_is_inverse_rate() {
        let p = PoissonProcess::new(4.0).unwrap();
        assert!((p.mean_interarrival() - 0.25).abs() < 1e-12);
        assert_eq!(p.rate(), 4.0);
    }

    #[test]
    fn arrival_times_are_sorted_and_positive() {
        let p = PoissonProcess::new(10.0).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let times = p.arrival_times(&mut rng, 1000);
        assert_eq!(times.len(), 1000);
        assert!(times[0] > 0.0);
        assert!(times.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn empirical_rate_matches() {
        let p = PoissonProcess::new(5.0).unwrap();
        let mut rng = StdRng::seed_from_u64(17);
        let n = 50_000;
        let times = p.arrival_times(&mut rng, n);
        let span = *times.last().unwrap();
        let empirical_rate = n as f64 / span;
        assert!(
            (empirical_rate - 5.0).abs() < 0.1,
            "empirical rate {empirical_rate}"
        );
    }

    #[test]
    fn interarrival_mean_matches() {
        let p = PoissonProcess::new(2.0).unwrap();
        let mut rng = StdRng::seed_from_u64(23);
        let n = 50_000;
        let mean: f64 = (0..n).map(|_| p.interarrival(&mut rng)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean interarrival {mean}");
    }
}
