//! Lognormal distribution used for object durations.

use crate::WorkloadError;
use rand::Rng;

/// A lognormal distribution `exp(N(mu, sigma^2))`.
///
/// The paper draws object durations (in minutes) from a lognormal with
/// `mu = 3.85` and `sigma = 0.56`, giving a mean duration of about 55
/// minutes (≈ 79 K frames at 24 frames/s).
///
/// Normal variates are generated with the Box–Muller transform so the crate
/// does not depend on `rand_distr`.
///
/// ```
/// use sc_workload::LogNormal;
/// use rand::SeedableRng;
///
/// let durations = LogNormal::new(3.85, 0.56)?;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(3);
/// let minutes = durations.sample(&mut rng);
/// assert!(minutes > 0.0);
/// // The analytic mean is exp(mu + sigma^2 / 2) ≈ 55 minutes.
/// assert!((durations.mean() - 55.0).abs() < 1.0);
/// # Ok::<(), sc_workload::WorkloadError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormal {
    mu: f64,
    sigma: f64,
}

impl LogNormal {
    /// Creates a lognormal distribution with location `mu` and scale `sigma`.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::InvalidParameter`] if `mu` is not finite or
    /// `sigma` is not finite or is negative.
    pub fn new(mu: f64, sigma: f64) -> Result<Self, WorkloadError> {
        if !mu.is_finite() {
            return Err(WorkloadError::InvalidParameter("mu", mu));
        }
        if !sigma.is_finite() || sigma < 0.0 {
            return Err(WorkloadError::InvalidParameter("sigma", sigma));
        }
        Ok(LogNormal { mu, sigma })
    }

    /// The location parameter `mu` of the underlying normal.
    pub fn mu(&self) -> f64 {
        self.mu
    }

    /// The scale parameter `sigma` of the underlying normal.
    pub fn sigma(&self) -> f64 {
        self.sigma
    }

    /// Analytic mean `exp(mu + sigma^2/2)`.
    pub fn mean(&self) -> f64 {
        (self.mu + self.sigma * self.sigma / 2.0).exp()
    }

    /// Analytic median `exp(mu)`.
    pub fn median(&self) -> f64 {
        self.mu.exp()
    }

    /// Analytic variance `(exp(sigma^2) - 1) * exp(2 mu + sigma^2)`.
    pub fn variance(&self) -> f64 {
        let s2 = self.sigma * self.sigma;
        (s2.exp() - 1.0) * (2.0 * self.mu + s2).exp()
    }

    /// Draws one lognormal sample.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        (self.mu + self.sigma * standard_normal(rng)).exp()
    }

    /// Draws `n` lognormal samples.
    pub fn sample_n<R: Rng + ?Sized>(&self, rng: &mut R, n: usize) -> Vec<f64> {
        (0..n).map(|_| self.sample(rng)).collect()
    }
}

/// Draws a standard-normal variate using the Box–Muller transform.
///
/// Exposed at crate level so other generators (e.g. the bandwidth
/// time-series models) can reuse it without pulling in `rand_distr`.
pub(crate) fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Avoid u1 == 0 which would produce ln(0).
    let u1: f64 = loop {
        let v: f64 = rng.gen();
        if v > f64::MIN_POSITIVE {
            break v;
        }
    };
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rejects_bad_parameters() {
        assert!(matches!(
            LogNormal::new(f64::NAN, 0.5),
            Err(WorkloadError::InvalidParameter("mu", _))
        ));
        assert!(matches!(
            LogNormal::new(1.0, -0.1),
            Err(WorkloadError::InvalidParameter("sigma", _))
        ));
        assert!(matches!(
            LogNormal::new(1.0, f64::INFINITY),
            Err(WorkloadError::InvalidParameter("sigma", _))
        ));
    }

    #[test]
    fn paper_parameters_mean_is_about_55_minutes() {
        let ln = LogNormal::new(3.85, 0.56).unwrap();
        assert!((ln.mean() - 55.0).abs() < 1.0, "mean = {}", ln.mean());
        assert!((ln.median() - 46.99).abs() < 0.1);
    }

    #[test]
    fn samples_are_positive() {
        let ln = LogNormal::new(3.85, 0.56).unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..1000 {
            assert!(ln.sample(&mut rng) > 0.0);
        }
    }

    #[test]
    fn empirical_mean_close_to_analytic() {
        let ln = LogNormal::new(3.85, 0.56).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let n = 50_000;
        let mean = ln.sample_n(&mut rng, n).iter().sum::<f64>() / n as f64;
        assert!(
            (mean - ln.mean()).abs() / ln.mean() < 0.03,
            "empirical {mean} vs analytic {}",
            ln.mean()
        );
    }

    #[test]
    fn zero_sigma_is_deterministic() {
        let ln = LogNormal::new(2.0, 0.0).unwrap();
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..10 {
            assert!((ln.sample(&mut rng) - 2.0f64.exp()).abs() < 1e-12);
        }
    }

    #[test]
    fn standard_normal_moments() {
        let mut rng = StdRng::seed_from_u64(21);
        let n = 100_000;
        let samples: Vec<f64> = (0..n).map(|_| standard_normal(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "var {var}");
    }
}
