//! Streaming-media object descriptors.

use std::fmt;

/// Identifier of a streaming media object within a catalog.
///
/// Object ids are dense indices `0..N` assigned in popularity-rank order:
/// object `0` is the most popular object under the catalog's Zipf-like
/// popularity profile.
///
/// ```
/// use sc_workload::ObjectId;
/// let id = ObjectId::new(7);
/// assert_eq!(id.index(), 7);
/// assert_eq!(format!("{id}"), "obj#7");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ObjectId(u32);

impl ObjectId {
    /// Creates an object id from a dense catalog index.
    #[inline]
    pub fn new(index: u32) -> Self {
        ObjectId(index)
    }

    /// Returns the dense catalog index of this object.
    ///
    /// Ids are dense by construction, so this doubles as the object's slot
    /// handle in slot-addressed consumers (`sc_cache`'s slab engine).
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Returns the raw `u32` value.
    #[inline]
    pub fn as_u32(self) -> u32 {
        self.0
    }
}

impl fmt::Display for ObjectId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "obj#{}", self.0)
    }
}

impl From<u32> for ObjectId {
    fn from(v: u32) -> Self {
        ObjectId(v)
    }
}

/// Static description of a constant-bit-rate (CBR) streaming media object.
///
/// The paper assumes CBR encodings (VBR objects are assumed to be smoothed
/// with the optimal-smoothing technique of Salehi et al.), so an object is
/// fully described by its duration, bit-rate, and an optional monetary value
/// used by the value-based caching objective of Section 2.6.
///
/// ```
/// use sc_workload::{MediaObject, ObjectId};
///
/// // A 10-minute clip encoded at 48 KB/s, worth $4.
/// let obj = MediaObject::new(ObjectId::new(0), 600.0, 48_000.0, 4.0);
/// assert_eq!(obj.size_bytes(), 600.0 * 48_000.0);
/// assert!((obj.duration_minutes() - 10.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MediaObject {
    /// Identifier of the object (dense, popularity-rank ordered).
    pub id: ObjectId,
    /// Playback duration in seconds (`T_i` in the paper).
    pub duration_secs: f64,
    /// CBR encoding rate in bytes per second (`r_i` in the paper).
    pub bitrate_bps: f64,
    /// Monetary value of a successful immediate playout (`V_i`, Section 2.6).
    pub value: f64,
}

impl MediaObject {
    /// Creates a new media object description.
    ///
    /// # Panics
    ///
    /// Panics (debug assertions only) if `duration_secs` or `bitrate_bps`
    /// is not strictly positive, or if `value` is negative.
    pub fn new(id: ObjectId, duration_secs: f64, bitrate_bps: f64, value: f64) -> Self {
        debug_assert!(duration_secs > 0.0, "duration must be positive");
        debug_assert!(bitrate_bps > 0.0, "bitrate must be positive");
        debug_assert!(value >= 0.0, "value must be non-negative");
        MediaObject {
            id,
            duration_secs,
            bitrate_bps,
            value,
        }
    }

    /// Total object size in bytes (`T_i · r_i`).
    #[inline]
    pub fn size_bytes(&self) -> f64 {
        self.duration_secs * self.bitrate_bps
    }

    /// Playback duration expressed in minutes.
    pub fn duration_minutes(&self) -> f64 {
        self.duration_secs / 60.0
    }

    /// Number of video frames assuming the given frame rate.
    ///
    /// The paper's workload assumes 24 frames per second and reports an
    /// average object length of roughly 79 K frames.
    pub fn frames(&self, frames_per_sec: f64) -> f64 {
        self.duration_secs * frames_per_sec
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn object_id_roundtrip() {
        let id = ObjectId::new(42);
        assert_eq!(id.index(), 42);
        assert_eq!(id.as_u32(), 42);
        assert_eq!(ObjectId::from(42u32), id);
    }

    #[test]
    fn object_id_ordering_follows_index() {
        assert!(ObjectId::new(1) < ObjectId::new(2));
        assert_eq!(ObjectId::new(3), ObjectId::new(3));
    }

    #[test]
    fn media_object_size_is_duration_times_rate() {
        let obj = MediaObject::new(ObjectId::new(0), 120.0, 48_000.0, 1.0);
        assert_eq!(obj.size_bytes(), 120.0 * 48_000.0);
        assert!((obj.duration_minutes() - 2.0).abs() < 1e-12);
        assert!((obj.frames(24.0) - 2880.0).abs() < 1e-9);
    }

    #[test]
    fn display_format() {
        assert_eq!(ObjectId::new(5).to_string(), "obj#5");
    }
}
