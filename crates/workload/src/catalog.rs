//! Catalogs of streaming media objects.

use crate::lognormal::LogNormal;
use crate::object::{MediaObject, ObjectId};
use crate::value::{ValueAssigner, ValueModel};
use crate::WorkloadError;
use rand::Rng;

/// Configuration of a synthetic object catalog.
///
/// Defaults match Table 1 of the paper (5,000 objects, 48 KB/s CBR encoding,
/// lognormal durations in minutes with µ = 3.85 and σ = 0.56, uniform
/// $1–$10 values).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CatalogConfig {
    /// Number of unique objects (`N`).
    pub objects: usize,
    /// Location parameter of the lognormal duration distribution (minutes).
    pub duration_mu: f64,
    /// Scale parameter of the lognormal duration distribution (minutes).
    pub duration_sigma: f64,
    /// CBR bit-rate of every object in bytes per second.
    pub bitrate_bps: f64,
    /// Value model used for the value-based caching objective.
    pub value_model: ValueModel,
}

impl Default for CatalogConfig {
    fn default() -> Self {
        CatalogConfig {
            objects: 5_000,
            duration_mu: 3.85,
            duration_sigma: 0.56,
            bitrate_bps: 48_000.0,
            value_model: ValueModel::default(),
        }
    }
}

impl CatalogConfig {
    /// The paper's Table 1 configuration.
    pub fn paper_default() -> Self {
        Self::default()
    }

    /// A reduced configuration (500 objects) convenient for unit tests and
    /// doc examples; all distributional parameters match the paper.
    pub fn small() -> Self {
        CatalogConfig {
            objects: 500,
            ..Self::default()
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a [`WorkloadError`] when the object count is zero or any
    /// distribution parameter is out of range.
    pub fn validate(&self) -> Result<(), WorkloadError> {
        if self.objects == 0 {
            return Err(WorkloadError::EmptyCatalog);
        }
        if !self.bitrate_bps.is_finite() || self.bitrate_bps <= 0.0 {
            return Err(WorkloadError::InvalidParameter(
                "bitrate_bps",
                self.bitrate_bps,
            ));
        }
        LogNormal::new(self.duration_mu, self.duration_sigma)?;
        self.value_model.validate()?;
        Ok(())
    }
}

/// An immutable collection of [`MediaObject`]s indexed by [`ObjectId`].
///
/// Objects are stored in popularity-rank order: `catalog.get(ObjectId::new(0))`
/// is the most popular object of the workload.
///
/// ```
/// use sc_workload::{Catalog, CatalogConfig};
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let catalog = Catalog::generate(&CatalogConfig::small(), &mut rng)?;
/// assert_eq!(catalog.len(), 500);
/// let total_gb = catalog.total_bytes() / 1e9;
/// assert!(total_gb > 10.0, "total unique bytes should be tens of GB");
/// # Ok::<(), sc_workload::WorkloadError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Catalog {
    objects: Vec<MediaObject>,
}

impl Catalog {
    /// Builds a catalog from an explicit list of objects.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::EmptyCatalog`] if `objects` is empty.
    pub fn from_objects(objects: Vec<MediaObject>) -> Result<Self, WorkloadError> {
        if objects.is_empty() {
            return Err(WorkloadError::EmptyCatalog);
        }
        Ok(Catalog { objects })
    }

    /// Generates a synthetic catalog according to `config`.
    ///
    /// # Errors
    ///
    /// Returns a [`WorkloadError`] if the configuration fails validation.
    pub fn generate<R: Rng + ?Sized>(
        config: &CatalogConfig,
        rng: &mut R,
    ) -> Result<Self, WorkloadError> {
        config.validate()?;
        let durations = LogNormal::new(config.duration_mu, config.duration_sigma)?;
        let values = ValueAssigner::new(config.value_model)?;
        let n = config.objects;
        let mut objects = Vec::with_capacity(n);
        for i in 0..n {
            let minutes = durations.sample(rng);
            let value = values.value_for_rank(rng, i + 1, n);
            objects.push(MediaObject::new(
                ObjectId::new(i as u32),
                minutes * 60.0,
                config.bitrate_bps,
                value,
            ));
        }
        Ok(Catalog { objects })
    }

    /// Number of objects in the catalog.
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// Returns `true` if the catalog contains no objects (never the case for
    /// a successfully constructed catalog).
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }

    /// Looks up an object by id.
    pub fn get(&self, id: ObjectId) -> Option<&MediaObject> {
        self.objects.get(id.index())
    }

    /// Returns the object with the given id.
    ///
    /// # Panics
    ///
    /// Panics if the id is not part of this catalog.
    #[inline]
    pub fn object(&self, id: ObjectId) -> &MediaObject {
        &self.objects[id.index()]
    }

    /// Iterates over all objects in popularity-rank order.
    pub fn iter(&self) -> std::slice::Iter<'_, MediaObject> {
        self.objects.iter()
    }

    /// All objects as a slice, in popularity-rank order.
    pub fn as_slice(&self) -> &[MediaObject] {
        &self.objects
    }

    /// Total unique bytes across all objects (`Σ T_i · r_i`).
    pub fn total_bytes(&self) -> f64 {
        self.objects.iter().map(MediaObject::size_bytes).sum()
    }

    /// Mean object duration in seconds.
    pub fn mean_duration_secs(&self) -> f64 {
        self.objects.iter().map(|o| o.duration_secs).sum::<f64>() / self.objects.len() as f64
    }

    /// Mean object size in bytes.
    pub fn mean_size_bytes(&self) -> f64 {
        self.total_bytes() / self.objects.len() as f64
    }
}

impl<'a> IntoIterator for &'a Catalog {
    type Item = &'a MediaObject;
    type IntoIter = std::slice::Iter<'a, MediaObject>;

    fn into_iter(self) -> Self::IntoIter {
        self.objects.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn default_config_matches_table1() {
        let c = CatalogConfig::default();
        assert_eq!(c.objects, 5_000);
        assert_eq!(c.bitrate_bps, 48_000.0);
        assert_eq!(c.duration_mu, 3.85);
        assert_eq!(c.duration_sigma, 0.56);
    }

    #[test]
    fn validation_catches_errors() {
        let mut c = CatalogConfig::small();
        c.objects = 0;
        assert!(matches!(c.validate(), Err(WorkloadError::EmptyCatalog)));
        let mut c = CatalogConfig::small();
        c.bitrate_bps = -48.0;
        assert!(c.validate().is_err());
        let mut c = CatalogConfig::small();
        c.duration_sigma = -1.0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn generate_produces_requested_count_with_positive_sizes() {
        let mut rng = StdRng::seed_from_u64(2);
        let cat = Catalog::generate(&CatalogConfig::small(), &mut rng).unwrap();
        assert_eq!(cat.len(), 500);
        assert!(!cat.is_empty());
        for obj in &cat {
            assert!(obj.duration_secs > 0.0);
            assert!(obj.size_bytes() > 0.0);
            assert!((1.0..=10.0).contains(&obj.value));
        }
    }

    #[test]
    fn ids_are_dense_and_in_order() {
        let mut rng = StdRng::seed_from_u64(3);
        let cat = Catalog::generate(&CatalogConfig::small(), &mut rng).unwrap();
        for (i, obj) in cat.iter().enumerate() {
            assert_eq!(obj.id.index(), i);
        }
        assert!(cat.get(ObjectId::new(499)).is_some());
        assert!(cat.get(ObjectId::new(500)).is_none());
    }

    #[test]
    fn paper_scale_total_bytes_is_roughly_790_gb() {
        let mut rng = StdRng::seed_from_u64(4);
        let cat = Catalog::generate(&CatalogConfig::paper_default(), &mut rng).unwrap();
        let total_gb = cat.total_bytes() / 1e9;
        // Paper: "The total unique object size is 790 GB" (mean duration 55
        // minutes at 48 KB/s for 5,000 objects). Allow sampling noise.
        assert!(
            (700.0..900.0).contains(&total_gb),
            "total unique size {total_gb} GB"
        );
    }

    #[test]
    fn from_objects_rejects_empty() {
        assert!(matches!(
            Catalog::from_objects(vec![]),
            Err(WorkloadError::EmptyCatalog)
        ));
    }

    #[test]
    fn mean_accessors_consistent() {
        let objs = vec![
            MediaObject::new(ObjectId::new(0), 60.0, 1000.0, 1.0),
            MediaObject::new(ObjectId::new(1), 120.0, 1000.0, 1.0),
        ];
        let cat = Catalog::from_objects(objs).unwrap();
        assert!((cat.mean_duration_secs() - 90.0).abs() < 1e-12);
        assert!((cat.mean_size_bytes() - 90_000.0).abs() < 1e-9);
        assert!((cat.total_bytes() - 180_000.0).abs() < 1e-9);
    }
}
