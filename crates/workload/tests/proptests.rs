//! Property-based tests for the workload generators.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sc_workload::{
    Catalog, CatalogConfig, LogNormal, PoissonProcess, RequestTrace, TraceConfig, ValueAssigner,
    ValueModel, WorkloadBuilder, ZipfLike,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Zipf probabilities always sum to one and are non-increasing in rank.
    #[test]
    fn zipf_is_a_valid_distribution(n in 1usize..400, alpha in 0.0f64..2.5) {
        let z = ZipfLike::new(n, alpha).unwrap();
        let mut total = 0.0;
        let mut prev = f64::INFINITY;
        for r in 1..=n {
            let p = z.probability(r);
            prop_assert!(p >= 0.0);
            prop_assert!(p <= prev + 1e-12);
            prev = p;
            total += p;
        }
        prop_assert!((total - 1.0).abs() < 1e-6);
    }

    /// Sampled ranks are always within range.
    #[test]
    fn zipf_samples_in_range(n in 1usize..200, alpha in 0.0f64..2.0, seed in any::<u64>()) {
        let z = ZipfLike::new(n, alpha).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..50 {
            let r = z.sample(&mut rng);
            prop_assert!(r >= 1 && r <= n);
        }
    }

    /// Lognormal samples are strictly positive and finite.
    #[test]
    fn lognormal_samples_positive(mu in -2.0f64..5.0, sigma in 0.0f64..1.5, seed in any::<u64>()) {
        let ln = LogNormal::new(mu, sigma).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..50 {
            let x = ln.sample(&mut rng);
            prop_assert!(x > 0.0);
            prop_assert!(x.is_finite());
        }
    }

    /// Poisson arrival times are strictly increasing.
    #[test]
    fn poisson_times_increasing(rate in 0.01f64..100.0, seed in any::<u64>()) {
        let p = PoissonProcess::new(rate).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let times = p.arrival_times(&mut rng, 200);
        prop_assert!(times.windows(2).all(|w| w[1] >= w[0]));
        prop_assert!(times[0] > 0.0);
    }

    /// Values always respect the configured bounds.
    #[test]
    fn values_respect_bounds(low in 0.0f64..5.0, extra in 0.0f64..10.0, seed in any::<u64>()) {
        let high = low + extra;
        let a = ValueAssigner::new(ValueModel::Uniform { low, high }).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        for v in a.assign(&mut rng, 100) {
            prop_assert!(v >= low - 1e-12 && v <= high + 1e-12);
        }
    }

    /// Generated traces reference only objects from the catalog and are
    /// sorted by time.
    #[test]
    fn traces_are_well_formed(objects in 1usize..100, requests in 1usize..500, seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let catalog = Catalog::generate(
            &CatalogConfig { objects, ..CatalogConfig::small() },
            &mut rng,
        ).unwrap();
        let trace = RequestTrace::generate(
            &catalog,
            &TraceConfig { requests, ..TraceConfig::small() },
            &mut rng,
        ).unwrap();
        prop_assert_eq!(trace.len(), requests);
        prop_assert!(trace.iter().all(|r| r.object.index() < objects));
        prop_assert!(trace.requests().windows(2).all(|w| w[0].time_secs <= w[1].time_secs));
        let counts = trace.request_counts(objects);
        let total: u64 = counts.iter().sum();
        prop_assert_eq!(total as usize, requests);
    }

    /// The builder is deterministic in its seed.
    #[test]
    fn builder_deterministic(seed in any::<u64>()) {
        let a = WorkloadBuilder::new().objects(30).requests(100).seed(seed).build().unwrap();
        let b = WorkloadBuilder::new().objects(30).requests(100).seed(seed).build().unwrap();
        prop_assert_eq!(a.trace, b.trace);
        prop_assert_eq!(a.catalog, b.catalog);
    }
}
