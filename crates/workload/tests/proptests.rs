//! Property-style tests for the workload generators.
//!
//! Seeded-loop property tests (the registry-less build environment has no
//! `proptest`): every property draws random cases from a fixed-seed
//! [`StdRng`], so failures reproduce deterministically.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sc_workload::{
    Catalog, CatalogConfig, LogNormal, PoissonProcess, RequestTrace, TraceConfig, ValueAssigner,
    ValueModel, WorkloadBuilder, ZipfLike,
};

/// Zipf probabilities always sum to one and are non-increasing in rank.
#[test]
fn zipf_is_a_valid_distribution() {
    let mut rng = StdRng::seed_from_u64(0x21BF);
    for _ in 0..64 {
        let n = rng.gen_range(1..400usize);
        let alpha = rng.gen_range(0.0..2.5);
        let z = ZipfLike::new(n, alpha).unwrap();
        let mut total = 0.0;
        let mut prev = f64::INFINITY;
        for r in 1..=n {
            let p = z.probability(r);
            assert!(p >= 0.0);
            assert!(p <= prev + 1e-12);
            prev = p;
            total += p;
        }
        assert!((total - 1.0).abs() < 1e-6);
    }
}

/// Sampled ranks are always within range.
#[test]
fn zipf_samples_in_range() {
    let mut rng = StdRng::seed_from_u64(0x21F5);
    for _ in 0..64 {
        let n = rng.gen_range(1..200usize);
        let alpha = rng.gen_range(0.0..2.0);
        let z = ZipfLike::new(n, alpha).unwrap();
        for _ in 0..50 {
            let r = z.sample(&mut rng);
            assert!(r >= 1 && r <= n);
        }
    }
}

/// Lognormal samples are strictly positive and finite.
#[test]
fn lognormal_samples_positive() {
    let mut rng = StdRng::seed_from_u64(0x106);
    for _ in 0..64 {
        let mu = rng.gen_range(-2.0..5.0);
        let sigma = rng.gen_range(0.0..1.5);
        let ln = LogNormal::new(mu, sigma).unwrap();
        for _ in 0..50 {
            let x = ln.sample(&mut rng);
            assert!(x > 0.0);
            assert!(x.is_finite());
        }
    }
}

/// Poisson arrival times are strictly increasing.
#[test]
fn poisson_times_increasing() {
    let mut rng = StdRng::seed_from_u64(0x9015);
    for _ in 0..64 {
        let rate = rng.gen_range(0.01..100.0);
        let p = PoissonProcess::new(rate).unwrap();
        let times = p.arrival_times(&mut rng, 200);
        assert!(times.windows(2).all(|w| w[1] >= w[0]));
        assert!(times[0] > 0.0);
    }
}

/// Values always respect the configured bounds.
#[test]
fn values_respect_bounds() {
    let mut rng = StdRng::seed_from_u64(0xBA1);
    for _ in 0..64 {
        let low = rng.gen_range(0.0..5.0);
        let high = low + rng.gen_range(0.0..10.0);
        let a = ValueAssigner::new(ValueModel::Uniform { low, high }).unwrap();
        for v in a.assign(&mut rng, 100) {
            assert!(v >= low - 1e-12 && v <= high + 1e-12);
        }
    }
}

/// Generated traces reference only objects from the catalog and are sorted
/// by time.
#[test]
fn traces_are_well_formed() {
    let mut rng = StdRng::seed_from_u64(0x7ACE);
    for _ in 0..32 {
        let objects = rng.gen_range(1..100usize);
        let requests = rng.gen_range(1..500usize);
        let catalog = Catalog::generate(
            &CatalogConfig {
                objects,
                ..CatalogConfig::small()
            },
            &mut rng,
        )
        .unwrap();
        let trace = RequestTrace::generate(
            &catalog,
            &TraceConfig {
                requests,
                ..TraceConfig::small()
            },
            &mut rng,
        )
        .unwrap();
        assert_eq!(trace.len(), requests);
        assert!(trace.iter().all(|r| r.object.index() < objects));
        assert!(trace
            .requests()
            .windows(2)
            .all(|w| w[0].time_secs <= w[1].time_secs));
        let counts = trace.request_counts(objects);
        let total: u64 = counts.iter().sum();
        assert_eq!(total as usize, requests);
    }
}

/// The builder is deterministic in its seed.
#[test]
fn builder_deterministic() {
    let mut rng = StdRng::seed_from_u64(0xD373);
    for _ in 0..16 {
        let seed: u64 = rng.gen();
        let a = WorkloadBuilder::new()
            .objects(30)
            .requests(100)
            .seed(seed)
            .build()
            .unwrap();
        let b = WorkloadBuilder::new()
            .objects(30)
            .requests(100)
            .seed(seed)
            .build()
            .unwrap();
        assert_eq!(a.trace, b.trace);
        assert_eq!(a.catalog, b.catalog);
    }
}
