//! Parameter sweeps used by the experiment drivers.
//!
//! Every sweep flattens its full parameter grid — `(policy, cache size,
//! run seed)` and friends — into one work list and hands it to the
//! execution layer ([`crate::exec`]), so all points of a figure shard
//! across threads at once instead of executing as nested sequential loops.
//! Results are merged in deterministic grid order: a sweep's output is
//! byte-identical for every thread count.
//!
//! Sweeps vary exactly one dimension and inherit everything else — in
//! particular [`SimulationConfig::bandwidth_model`] and
//! [`SimulationConfig::estimator`] — from the base configuration, so any
//! sweep runs unchanged under i.i.d. or AR(1) bandwidth.

use crate::config::{SimError, SimulationConfig};
use crate::exec::{run_grid, ParallelExecutor};
use crate::metrics::Metrics;
use crate::report::FigureSeries;
use sc_cache::policy::PolicyKind;

/// The cache sizes used across the paper's figures, expressed as fractions
/// of the total unique object size (4 GB ≈ 0.5 % up to 128 GB ≈ 16.9 % of
/// 790 GB — paper Section 3.2).
pub const PAPER_CACHE_FRACTIONS: [f64; 6] = [0.005, 0.01, 0.02, 0.04, 0.08, 0.169];

/// A reduced set of cache fractions for quick runs and tests.
pub const QUICK_CACHE_FRACTIONS: [f64; 3] = [0.01, 0.05, 0.169];

/// Sweeps the cache size for one policy, holding everything else fixed.
///
/// Returns one [`FigureSeries`] labelled with the policy name, with the
/// cache fraction on the x-axis.
///
/// # Errors
///
/// Propagates configuration validation errors from the runner.
pub fn sweep_cache_size(
    base: &SimulationConfig,
    policy: PolicyKind,
    fractions: &[f64],
    runs: usize,
) -> Result<FigureSeries, SimError> {
    sweep_cache_size_with(base, policy, fractions, runs, &ParallelExecutor::from_env())
}

/// [`sweep_cache_size`] with an explicit executor (thread count).
///
/// # Errors
///
/// Propagates configuration validation errors from the runner.
pub fn sweep_cache_size_with(
    base: &SimulationConfig,
    policy: PolicyKind,
    fractions: &[f64],
    runs: usize,
    executor: &ParallelExecutor,
) -> Result<FigureSeries, SimError> {
    let configs: Vec<SimulationConfig> = fractions
        .iter()
        .map(|&fraction| SimulationConfig { policy, ..*base }.with_cache_fraction(fraction))
        .collect();
    let metrics = run_grid(&configs, runs, executor)?;
    let mut series = FigureSeries::new(policy.label());
    for (&fraction, m) in fractions.iter().zip(metrics) {
        series.push(fraction, m);
    }
    Ok(series)
}

/// Sweeps the cache size for several policies. The whole
/// `policies × fractions × runs` grid is flattened into one work list and
/// sharded across the environment-configured executor.
///
/// # Errors
///
/// Propagates configuration validation errors from the runner.
pub fn sweep_policies(
    base: &SimulationConfig,
    policies: &[PolicyKind],
    fractions: &[f64],
    runs: usize,
) -> Result<Vec<FigureSeries>, SimError> {
    sweep_policies_with(
        base,
        policies,
        fractions,
        runs,
        &ParallelExecutor::from_env(),
    )
}

/// [`sweep_policies`] with an explicit executor (thread count).
///
/// # Errors
///
/// Propagates configuration validation errors from the runner.
pub fn sweep_policies_with(
    base: &SimulationConfig,
    policies: &[PolicyKind],
    fractions: &[f64],
    runs: usize,
    executor: &ParallelExecutor,
) -> Result<Vec<FigureSeries>, SimError> {
    let mut configs = Vec::with_capacity(policies.len() * fractions.len());
    for &policy in policies {
        for &fraction in fractions {
            configs.push(SimulationConfig { policy, ..*base }.with_cache_fraction(fraction));
        }
    }
    let metrics = run_grid(&configs, runs, executor)?;
    let mut points = metrics.into_iter();
    let mut out = Vec::with_capacity(policies.len());
    for &policy in policies {
        let mut series = FigureSeries::new(policy.label());
        for &fraction in fractions {
            series.push(fraction, points.next().expect("grid covers the sweep"));
        }
        out.push(series);
    }
    Ok(out)
}

/// Sweeps the conservative estimator `e` of the hybrid PB(e) policy at a
/// fixed cache size. Returns `(e, metrics)` pairs.
///
/// # Errors
///
/// Propagates configuration validation errors from the runner.
pub fn sweep_estimator(
    base: &SimulationConfig,
    cache_fraction: f64,
    estimators: &[f64],
    value_based: bool,
    runs: usize,
) -> Result<Vec<(f64, Metrics)>, SimError> {
    sweep_estimator_with(
        base,
        cache_fraction,
        estimators,
        value_based,
        runs,
        &ParallelExecutor::from_env(),
    )
}

/// [`sweep_estimator`] with an explicit executor (thread count).
///
/// # Errors
///
/// Propagates configuration validation errors from the runner.
pub fn sweep_estimator_with(
    base: &SimulationConfig,
    cache_fraction: f64,
    estimators: &[f64],
    value_based: bool,
    runs: usize,
    executor: &ParallelExecutor,
) -> Result<Vec<(f64, Metrics)>, SimError> {
    let configs: Vec<SimulationConfig> = estimators
        .iter()
        .map(|&e| {
            let policy = if value_based {
                PolicyKind::PartialBandwidthValue { e }
            } else {
                PolicyKind::HybridPartialBandwidth { e }
            };
            SimulationConfig { policy, ..*base }.with_cache_fraction(cache_fraction)
        })
        .collect();
    let metrics = run_grid(&configs, runs, executor)?;
    Ok(estimators.iter().copied().zip(metrics).collect())
}

/// Sweeps the Zipf skew parameter α for one policy at a fixed cache size.
/// Returns `(alpha, metrics)` pairs.
///
/// # Errors
///
/// Propagates configuration validation errors from the runner.
pub fn sweep_zipf_alpha(
    base: &SimulationConfig,
    policy: PolicyKind,
    cache_fraction: f64,
    alphas: &[f64],
    runs: usize,
) -> Result<Vec<(f64, Metrics)>, SimError> {
    sweep_zipf_alpha_with(
        base,
        policy,
        cache_fraction,
        alphas,
        runs,
        &ParallelExecutor::from_env(),
    )
}

/// [`sweep_zipf_alpha`] with an explicit executor (thread count).
///
/// # Errors
///
/// Propagates configuration validation errors from the runner.
pub fn sweep_zipf_alpha_with(
    base: &SimulationConfig,
    policy: PolicyKind,
    cache_fraction: f64,
    alphas: &[f64],
    runs: usize,
    executor: &ParallelExecutor,
) -> Result<Vec<(f64, Metrics)>, SimError> {
    let configs: Vec<SimulationConfig> = alphas
        .iter()
        .map(|&alpha| {
            let mut config =
                SimulationConfig { policy, ..*base }.with_cache_fraction(cache_fraction);
            config.workload.trace.zipf_alpha = alpha;
            config
        })
        .collect();
    let metrics = run_grid(&configs, runs, executor)?;
    Ok(alphas.iter().copied().zip(metrics).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> SimulationConfig {
        SimulationConfig::small()
    }

    #[test]
    fn cache_size_sweep_is_monotone_in_traffic_reduction() {
        let series =
            sweep_cache_size(&base(), PolicyKind::IntegralFrequency, &[0.01, 0.1], 1).unwrap();
        assert_eq!(series.points.len(), 2);
        assert!(
            series.points[1].metrics.traffic_reduction_ratio
                >= series.points[0].metrics.traffic_reduction_ratio
        );
        assert_eq!(series.label, "IF");
    }

    #[test]
    fn policy_sweep_produces_one_series_per_policy() {
        let series = sweep_policies(
            &base(),
            &[PolicyKind::PartialBandwidth, PolicyKind::IntegralBandwidth],
            &[0.05],
            1,
        )
        .unwrap();
        assert_eq!(series.len(), 2);
        assert_eq!(series[0].label, "PB");
        assert_eq!(series[1].label, "IB");
    }

    #[test]
    fn estimator_sweep_spans_ib_to_pb() {
        let points = sweep_estimator(&base(), 0.05, &[0.0, 1.0], false, 1).unwrap();
        assert_eq!(points.len(), 2);
        // e = 0 caches whole objects: higher traffic reduction than e = 1.
        assert!(
            points[0].1.traffic_reduction_ratio >= points[1].1.traffic_reduction_ratio - 0.02,
            "e=0 {} vs e=1 {}",
            points[0].1.traffic_reduction_ratio,
            points[1].1.traffic_reduction_ratio
        );
    }

    #[test]
    fn zipf_sweep_gains_from_locality() {
        let points =
            sweep_zipf_alpha(&base(), PolicyKind::PartialBandwidth, 0.05, &[0.5, 1.2], 1).unwrap();
        assert_eq!(points.len(), 2);
        // Stronger locality (higher alpha) should not reduce traffic savings.
        assert!(points[1].1.traffic_reduction_ratio >= points[0].1.traffic_reduction_ratio - 0.02);
    }
}
