//! The simulation loop and replicated runs.
//!
//! The per-run body lives in [`crate::exec::SimWorker`]; everything here
//! that executes more than one run is routed through the execution layer
//! ([`crate::exec`]), which shards the independent `(configuration, seed)`
//! grid across threads and merges results in deterministic seed order —
//! parallel output is byte-identical to sequential output.
//!
//! All entry points take their bandwidth behaviour from the configuration:
//! [`SimulationConfig::bandwidth_model`] selects i.i.d. per-request ratios
//! or AR(1) evolution on the simulation clock, and
//! [`SimulationConfig::estimator`] selects what the caching algorithm
//! knows about each path (oracle mean, passive EWMA/windowed measurement,
//! or active probing).

use crate::config::{SimError, SimulationConfig};
use crate::exec::{run_grid, ParallelExecutor, SimWorker};
use crate::metrics::{Metrics, SessionMetrics};
use crate::session::{run_session_grid, SessionRunResult, SessionWorker};

/// Result of one simulation run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunResult {
    /// Metrics collected over the measurement (post-warm-up) phase.
    pub metrics: Metrics,
    /// Number of warm-up requests that were excluded from the metrics.
    pub warmup_requests: u64,
    /// Bytes held in the cache at the end of the run.
    pub final_cache_used_bytes: f64,
    /// Number of distinct objects (fully or partially) cached at the end.
    pub final_cached_objects: usize,
}

/// Runs a single simulation described by `config`.
///
/// # Errors
///
/// Returns a [`SimError`] if the configuration is invalid.
pub fn run_simulation(config: &SimulationConfig) -> Result<RunResult, SimError> {
    SimWorker::new(*config, config.seed).run()
}

/// Runs `runs` replicated simulations (seeds `seed`, `seed + 1`, …) and
/// averages their metrics, mirroring the paper's practice of averaging ten
/// runs per data point. Runs are sharded across the environment-configured
/// executor ([`ParallelExecutor::from_env`], `SC_SIM_THREADS`).
///
/// # Errors
///
/// Returns [`SimError::NoRuns`] when `runs` is zero, or any validation
/// error of the underlying configuration.
pub fn run_replicated(config: &SimulationConfig, runs: usize) -> Result<Metrics, SimError> {
    run_replicated_with(config, runs, &ParallelExecutor::from_env())
}

/// [`run_replicated`] with an explicit executor (thread count).
///
/// # Errors
///
/// Returns [`SimError::NoRuns`] when `runs` is zero, or any validation
/// error of the underlying configuration.
pub fn run_replicated_with(
    config: &SimulationConfig,
    runs: usize,
    executor: &ParallelExecutor,
) -> Result<Metrics, SimError> {
    let mut metrics = run_grid(std::slice::from_ref(config), runs, executor)?;
    Ok(metrics.pop().expect("one configuration yields one average"))
}

/// Runs the same pre-generated workload through several policies, so the
/// comparison is paired (identical request streams and path bandwidths per
/// seed). Returns one averaged [`Metrics`] per configuration, in order.
///
/// The workload for each seed is generated **once** and shared by every
/// configuration with identical workload parameters, so the pairing is
/// structural, not merely a property of equal seeds; configurations whose
/// workload parameters differ simply get their own generation. The
/// `(configuration, seed)` grid is sharded across the environment-configured
/// executor ([`ParallelExecutor::from_env`], `SC_SIM_THREADS`).
///
/// # Errors
///
/// Propagates validation errors; returns [`SimError::NoRuns`] when `runs`
/// is zero.
pub fn run_comparison(configs: &[SimulationConfig], runs: usize) -> Result<Vec<Metrics>, SimError> {
    run_comparison_with(configs, runs, &ParallelExecutor::from_env())
}

/// [`run_comparison`] with an explicit executor (thread count).
///
/// # Errors
///
/// Propagates validation errors; returns [`SimError::NoRuns`] when `runs`
/// is zero.
pub fn run_comparison_with(
    configs: &[SimulationConfig],
    runs: usize,
    executor: &ParallelExecutor,
) -> Result<Vec<Metrics>, SimError> {
    run_grid(configs, runs, executor)
}

/// Runs a single **session-mode** simulation described by `config`: the
/// discrete-event core of [`crate::session`], where sessions span their
/// playback duration and share per-path bottleneck bandwidth.
///
/// # Errors
///
/// Returns a [`SimError`] if the configuration is invalid.
pub fn run_sessions(config: &SimulationConfig) -> Result<SessionRunResult, SimError> {
    SessionWorker::new(*config, config.seed).run()
}

/// Session-mode analogue of [`run_replicated`]: `runs` replicated
/// session simulations (seeds `seed`, `seed + 1`, …), averaged.
///
/// # Errors
///
/// Returns [`SimError::NoRuns`] when `runs` is zero, or any validation
/// error of the underlying configuration.
pub fn run_sessions_replicated(
    config: &SimulationConfig,
    runs: usize,
) -> Result<SessionMetrics, SimError> {
    run_sessions_replicated_with(config, runs, &ParallelExecutor::from_env())
}

/// [`run_sessions_replicated`] with an explicit executor (thread count).
///
/// # Errors
///
/// Returns [`SimError::NoRuns`] when `runs` is zero, or any validation
/// error of the underlying configuration.
pub fn run_sessions_replicated_with(
    config: &SimulationConfig,
    runs: usize,
    executor: &ParallelExecutor,
) -> Result<SessionMetrics, SimError> {
    let mut metrics = run_session_grid(std::slice::from_ref(config), runs, executor)?;
    Ok(metrics.pop().expect("one configuration yields one average"))
}

/// Session-mode analogue of [`run_comparison`]: paired comparison of
/// several configurations over shared workloads, returning one averaged
/// [`SessionMetrics`] per configuration, in order.
///
/// # Errors
///
/// Propagates validation errors; returns [`SimError::NoRuns`] when `runs`
/// is zero.
pub fn run_session_comparison(
    configs: &[SimulationConfig],
    runs: usize,
) -> Result<Vec<SessionMetrics>, SimError> {
    run_session_comparison_with(configs, runs, &ParallelExecutor::from_env())
}

/// [`run_session_comparison`] with an explicit executor (thread count).
///
/// # Errors
///
/// Propagates validation errors; returns [`SimError::NoRuns`] when `runs`
/// is zero.
pub fn run_session_comparison_with(
    configs: &[SimulationConfig],
    runs: usize,
    executor: &ParallelExecutor,
) -> Result<Vec<SessionMetrics>, SimError> {
    run_session_grid(configs, runs, executor)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::VariabilityKind;
    use sc_cache::policy::PolicyKind;

    fn small(policy: PolicyKind, cache_fraction: f64) -> SimulationConfig {
        SimulationConfig {
            policy,
            ..SimulationConfig::small()
        }
        .with_cache_fraction(cache_fraction)
    }

    #[test]
    fn simulation_runs_and_uses_cache() {
        let cfg = small(PolicyKind::PartialBandwidth, 0.05);
        let result = run_simulation(&cfg).unwrap();
        assert_eq!(result.metrics.requests, 2_500);
        assert!(result.final_cache_used_bytes > 0.0);
        assert!(result.final_cached_objects > 0);
        assert!(result.metrics.traffic_reduction_ratio > 0.0);
        assert!(result.metrics.avg_stream_quality > 0.0);
        assert!(result.metrics.avg_stream_quality <= 1.0);
    }

    #[test]
    fn zero_cache_size_yields_no_traffic_reduction() {
        let mut cfg = small(PolicyKind::PartialBandwidth, 0.0);
        cfg.cache_size_bytes = 0.0;
        let result = run_simulation(&cfg).unwrap();
        assert_eq!(result.metrics.traffic_reduction_ratio, 0.0);
        assert_eq!(result.final_cached_objects, 0);
        // Even with no cache, some requests enjoy abundant bandwidth.
        assert!(result.metrics.immediate_ratio > 0.0);
    }

    #[test]
    fn bigger_caches_do_not_hurt() {
        let small_cache = run_replicated(&small(PolicyKind::PartialBandwidth, 0.01), 2).unwrap();
        let big_cache = run_replicated(&small(PolicyKind::PartialBandwidth, 0.15), 2).unwrap();
        assert!(big_cache.traffic_reduction_ratio >= small_cache.traffic_reduction_ratio);
        assert!(big_cache.avg_service_delay_secs <= small_cache.avg_service_delay_secs + 1e-6);
        assert!(big_cache.avg_stream_quality + 1e-9 >= small_cache.avg_stream_quality);
    }

    #[test]
    fn caching_improves_over_no_cache() {
        let mut no_cache_cfg = small(PolicyKind::PartialBandwidth, 0.0);
        no_cache_cfg.cache_size_bytes = 0.0;
        let no_cache = run_simulation(&no_cache_cfg).unwrap().metrics;
        let with_cache = run_simulation(&small(PolicyKind::PartialBandwidth, 0.1))
            .unwrap()
            .metrics;
        assert!(with_cache.avg_service_delay_secs < no_cache.avg_service_delay_secs);
        assert!(with_cache.avg_stream_quality > no_cache.avg_stream_quality);
    }

    #[test]
    fn same_seed_is_reproducible() {
        let cfg = small(PolicyKind::IntegralBandwidth, 0.05);
        let a = run_simulation(&cfg).unwrap();
        let b = run_simulation(&cfg).unwrap();
        assert_eq!(a.metrics, b.metrics);
    }

    #[test]
    fn replication_requires_at_least_one_run() {
        let cfg = small(PolicyKind::PartialBandwidth, 0.05);
        assert!(matches!(run_replicated(&cfg, 0), Err(SimError::NoRuns)));
        assert!(matches!(run_comparison(&[cfg], 0), Err(SimError::NoRuns)));
    }

    #[test]
    fn comparison_runs_all_policies_on_same_workload() {
        let configs = vec![
            small(PolicyKind::IntegralFrequency, 0.05),
            small(PolicyKind::PartialBandwidth, 0.05),
            small(PolicyKind::IntegralBandwidth, 0.05),
        ];
        let metrics = run_comparison(&configs, 1).unwrap();
        assert_eq!(metrics.len(), 3);
        // Under constant bandwidth, PB should not have higher average delay
        // than IF (the paper's headline qualitative result).
        let if_delay = metrics[0].avg_service_delay_secs;
        let pb_delay = metrics[1].avg_service_delay_secs;
        assert!(
            pb_delay <= if_delay + 1e-6,
            "PB delay {pb_delay} vs IF delay {if_delay}"
        );
        // IF should achieve at least as much traffic reduction as PB.
        assert!(
            metrics[0].traffic_reduction_ratio >= metrics[1].traffic_reduction_ratio - 0.02,
            "IF {} vs PB {}",
            metrics[0].traffic_reduction_ratio,
            metrics[1].traffic_reduction_ratio
        );
    }

    #[test]
    fn session_mode_entry_points_run_and_average() {
        let cfg = small(PolicyKind::PartialBandwidth, 0.05);
        let single = run_sessions(&cfg).unwrap();
        assert_eq!(single.metrics.sessions, 5_000);
        let avg = run_sessions_replicated(&cfg, 2).unwrap();
        assert_eq!(avg.sessions, 5_000);
        assert!(avg.viewer_seconds > 0.0);
        assert!(matches!(
            run_sessions_replicated(&cfg, 0),
            Err(SimError::NoRuns)
        ));
        let compared =
            run_session_comparison(&[cfg, small(PolicyKind::IntegralBandwidth, 0.05)], 1).unwrap();
        assert_eq!(compared.len(), 2);
        // Paired comparison: identical workloads, so the viewer curves
        // agree up to float accumulation order (the policies split the
        // integral at different event instants).
        let (a, b) = (compared[0].viewer_seconds, compared[1].viewer_seconds);
        assert!((a - b).abs() / a < 1e-12, "{a} vs {b}");
        assert_eq!(compared[0].sessions, compared[1].sessions);
    }

    #[test]
    fn variable_bandwidth_increases_delay() {
        let constant = run_replicated(&small(PolicyKind::PartialBandwidth, 0.05), 2).unwrap();
        let variable_cfg = SimulationConfig {
            variability: VariabilityKind::NlanrLike,
            ..small(PolicyKind::PartialBandwidth, 0.05)
        };
        let variable = run_replicated(&variable_cfg, 2).unwrap();
        assert!(
            variable.avg_service_delay_secs > constant.avg_service_delay_secs,
            "variable {} vs constant {}",
            variable.avg_service_delay_secs,
            constant.avg_service_delay_secs
        );
        assert!(variable.avg_stream_quality <= constant.avg_stream_quality + 1e-9);
    }
}
