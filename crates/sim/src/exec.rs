//! The parallel execution layer.
//!
//! Every multi-run entry point of the simulator — [`run_replicated`],
//! [`run_comparison`], and the sweeps in [`crate::sweep`] — is a grid of
//! fully independent `(configuration, seed)` simulations. This module turns
//! that grid into shardable work:
//!
//! * [`SimWorker`] is the reusable, `Send`-safe body of one simulation run.
//!   It optionally borrows an [`Arc`]-shared [`SharedWorkload`], so one
//!   workload generation per seed is shared by every configuration that
//!   uses the same workload parameters (paired policy comparisons).
//! * [`ParallelExecutor`] shards work items across `std::thread::scope`
//!   threads and merges results **in item order**, so the parallel output is
//!   byte-identical to a sequential run: each item is seeded independently
//!   and touches no shared mutable state, which makes the schedule
//!   irrelevant to the result.
//! * [`run_grid`] flattens a `configs × runs` grid into one work list,
//!   deduplicates workload generation, runs everything through an executor,
//!   and averages per-configuration metrics in deterministic seed order.
//!
//! The thread count comes from [`ExecConfig`]: explicitly, from the
//! `SC_SIM_THREADS` environment variable, or (by default) from
//! [`std::thread::available_parallelism`].
//!
//! [`run_replicated`]: crate::run_replicated
//! [`run_comparison`]: crate::run_comparison

use crate::bandwidth::{BandwidthProvider, EstimatorBank};
use crate::config::{SimError, SimulationConfig};
use crate::delivery::deliver;
use crate::metrics::{Metrics, MetricsCollector};
use crate::runner::RunResult;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sc_cache::{CacheEngine, ObjectKey, ObjectMeta};
use sc_workload::{Catalog, MediaObject, RequestTrace, WorkloadConfig};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Environment variable controlling the default number of worker threads.
pub const THREADS_ENV_VAR: &str = "SC_SIM_THREADS";

/// Derives the bandwidth-stream seed from a run seed.
///
/// Bandwidth state (path means, AR(1) series, per-request draws) must be
/// decoupled from workload generation so that changing workload parameters
/// never perturbs the bandwidth realisation of a given run seed. Both the
/// per-request mode ([`SimWorker`]) and the session mode
/// ([`crate::session::SessionWorker`]) derive their bandwidth RNG from this
/// function, which keeps the two modes' path capacities comparable for the
/// same seed.
pub fn bandwidth_seed(run_seed: u64) -> u64 {
    run_seed ^ 0x9e37_79b9_7f4a_7c15
}

/// Derives the path-outage-timeline seed from a run seed.
///
/// Fault injection draws its exponential up/down periods from a stream
/// that is decoupled from both workload generation (the run seed itself)
/// and the bandwidth realisation ([`bandwidth_seed`]), so enabling or
/// re-parameterising the fault model never perturbs which requests arrive
/// or what the healthy path capacities are — only when outages strike.
pub fn fault_seed(run_seed: u64) -> u64 {
    run_seed ^ 0xc2b2_ae3d_27d4_eb4f
}

/// Configuration of the execution layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecConfig {
    /// Number of worker threads; `1` means fully sequential execution.
    pub threads: usize,
}

impl ExecConfig {
    /// Sequential execution (one thread, no spawning).
    pub fn sequential() -> Self {
        ExecConfig { threads: 1 }
    }

    /// An explicit thread count (clamped to at least 1).
    pub fn with_threads(threads: usize) -> Self {
        ExecConfig {
            threads: threads.max(1),
        }
    }

    /// Reads `SC_SIM_THREADS`; a missing, unparsable or zero value falls
    /// back to [`std::thread::available_parallelism`].
    pub fn from_env() -> Self {
        Self::from_env_value(std::env::var(THREADS_ENV_VAR).ok().as_deref())
    }

    /// The parsing behind [`from_env`](Self::from_env), taking the raw
    /// variable value so it is testable without mutating the process
    /// environment (which is not thread-safe).
    fn from_env_value(value: Option<&str>) -> Self {
        let threads = value
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            });
        ExecConfig { threads }
    }
}

impl Default for ExecConfig {
    fn default() -> Self {
        Self::from_env()
    }
}

/// A workload generated once and shared (via [`Arc`]) by every run that
/// needs the identical catalog and request stream.
///
/// The catalog's [`ObjectMeta`] table is precomputed here, once per
/// workload, so the simulation loop indexes metadata instead of
/// reconstructing an `ObjectMeta` from the catalog on every request — and
/// paired policy comparisons sharing a workload share the table too.
#[derive(Debug, Clone, PartialEq)]
pub struct SharedWorkload {
    /// The object catalog.
    pub catalog: Catalog,
    /// The request trace.
    pub trace: RequestTrace,
    /// Cache-side metadata of catalog object `i` at index `i`.
    metas: Vec<ObjectMeta>,
}

impl SharedWorkload {
    /// Bundles a catalog and trace, precomputing the meta table.
    pub fn new(catalog: Catalog, trace: RequestTrace) -> Self {
        let metas = meta_table(&catalog);
        SharedWorkload {
            catalog,
            trace,
            metas,
        }
    }

    /// Generates the workload described by `config` under `seed`
    /// (overriding the configuration's own seed, as replicated runs do).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Workload`] if the configuration is invalid.
    pub fn generate(config: &WorkloadConfig, seed: u64) -> Result<Self, SimError> {
        let mut wl_config = *config;
        wl_config.seed = seed;
        let workload = wl_config
            .generate()
            .map_err(|e| SimError::Workload(e.to_string()))?;
        Ok(Self::new(workload.catalog, workload.trace))
    }

    /// The precomputed per-object metadata, indexed by catalog index.
    pub fn metas(&self) -> &[ObjectMeta] {
        &self.metas
    }
}

/// Converts a workload [`MediaObject`] into the cache's [`ObjectMeta`].
pub(crate) fn to_meta(obj: &MediaObject) -> ObjectMeta {
    ObjectMeta::new(
        ObjectKey::new(obj.id.index() as u64),
        obj.duration_secs,
        obj.bitrate_bps,
        obj.value,
    )
}

/// Precomputes the cache-side metadata of every catalog object, indexed by
/// the object's dense catalog index (== its cache slot handle).
pub(crate) fn meta_table(catalog: &Catalog) -> Vec<ObjectMeta> {
    catalog.iter().map(to_meta).collect()
}

/// The self-contained body of one simulation run: a configuration, a run
/// seed, and optionally a pre-generated shared workload.
///
/// A worker owns everything it needs (the workload only behind an [`Arc`]),
/// so it is `Send` and can execute on any thread; given the same inputs it
/// produces bit-identical results regardless of where or when it runs.
#[derive(Debug, Clone)]
pub struct SimWorker {
    config: SimulationConfig,
    seed: u64,
    workload: Option<Arc<SharedWorkload>>,
}

impl SimWorker {
    /// A worker that generates its own workload from `config.workload`
    /// (with the seed overridden by `seed`).
    pub fn new(config: SimulationConfig, seed: u64) -> Self {
        SimWorker {
            config,
            seed,
            workload: None,
        }
    }

    /// A worker running over a pre-generated workload. The caller is
    /// responsible for the workload matching `seed` (as [`run_grid`] does);
    /// the bandwidth stream is still derived from `seed` alone.
    pub fn with_workload(
        config: SimulationConfig,
        seed: u64,
        workload: Arc<SharedWorkload>,
    ) -> Self {
        SimWorker {
            config,
            seed,
            workload: Some(workload),
        }
    }

    /// The run seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The configuration under test.
    pub fn config(&self) -> &SimulationConfig {
        &self.config
    }

    /// Executes the simulation run.
    ///
    /// # Errors
    ///
    /// Returns a [`SimError`] if the configuration is invalid.
    pub fn run(&self) -> Result<RunResult, SimError> {
        let config = &self.config;
        config.validate()?;
        let generated;
        let shared = match &self.workload {
            Some(shared) => shared.as_ref(),
            None => {
                generated = SharedWorkload::generate(&config.workload, self.seed)?;
                &generated
            }
        };
        let (catalog, trace) = (&shared.catalog, &shared.trace);
        // Metadata is precomputed per catalog: the request loop below
        // indexes this table instead of rebuilding an ObjectMeta per
        // request.
        let metas = shared.metas();

        // Bandwidth state and the per-request variability stream use a seed
        // derived from the run seed but decoupled from workload generation.
        // In AR(1) mode the per-path series span the whole trace (the last
        // arrival time); in i.i.d. mode the horizon is irrelevant and the
        // rng stream is identical to the seed behaviour.
        let mut bw_rng = StdRng::seed_from_u64(bandwidth_seed(self.seed));
        let horizon_secs = trace.requests().last().map_or(0.0, |r| r.time_secs);
        let provider = BandwidthProvider::generate_with_model(
            catalog.len(),
            config.variability,
            config.bandwidth_model,
            horizon_secs,
            &mut bw_rng,
        );
        let mut estimators = EstimatorBank::new(config.estimator, catalog.len());

        let mut cache = CacheEngine::new(config.cache_size_bytes, config.policy.build())
            .map_err(|e| SimError::Workload(e.to_string()))?;
        // Catalog ids are dense, so the engine's slab can be slot-addressed
        // by catalog index: the per-request path below performs no hashing.
        cache.ensure_slots(catalog.len());

        let warmup_len = ((trace.len() as f64) * config.warmup_fraction).round() as usize;
        let mut collector = MetricsCollector::new();

        for (i, request) in trace.iter().enumerate() {
            let index = request.object.index();
            let meta = &metas[index];
            let oracle = provider.estimated_bps(index);
            let instantaneous = provider.request_bps(index, request.time_secs, &mut bw_rng);

            // The caching algorithm sees the configured estimator's view of
            // the path; the actual transfer experiences the instantaneous
            // bandwidth at the request's arrival time.
            let estimated = estimators.decision_bps(index, oracle, instantaneous);
            let outcome = cache.on_access_slot(index as u32, meta, estimated);

            if i >= warmup_len {
                let delivery = deliver(meta, outcome.cached_bytes_before, instantaneous);
                collector.record(&delivery);
            }

            // Passive estimators learn from transfers that actually touched
            // the origin; a full cache hit reveals nothing about the path.
            if outcome.cached_bytes_before < meta.size_bytes() {
                estimators.observe_transfer(index, instantaneous);
            }
        }

        Ok(RunResult {
            metrics: collector.finish(),
            warmup_requests: warmup_len as u64,
            final_cache_used_bytes: cache.used_bytes(),
            final_cached_objects: cache.len(),
        })
    }
}

/// Shards independent work items across a scoped thread pool.
///
/// Results are always returned in item order, and each item is processed by
/// exactly one thread with no shared mutable state, so the output is
/// independent of the thread count and of scheduling — the determinism
/// guarantee the golden-metrics tests rely on.
#[derive(Debug, Clone)]
pub struct ParallelExecutor {
    threads: usize,
}

impl ParallelExecutor {
    /// An executor with the given configuration.
    pub fn new(config: ExecConfig) -> Self {
        ParallelExecutor {
            threads: config.threads.max(1),
        }
    }

    /// An executor configured from the environment ([`ExecConfig::from_env`]).
    pub fn from_env() -> Self {
        Self::new(ExecConfig::from_env())
    }

    /// A strictly sequential executor (runs items inline, spawns nothing).
    pub fn sequential() -> Self {
        Self::new(ExecConfig::sequential())
    }

    /// The number of worker threads this executor uses.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Applies `f` to every item, sharding across worker threads, and
    /// returns the results in item order.
    ///
    /// With one thread (or at most one item) the items are processed inline
    /// on the calling thread, in order, with no synchronisation at all —
    /// this is the reference sequential path.
    pub fn map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        let n = items.len();
        if self.threads <= 1 || n <= 1 {
            return items.iter().map(f).collect();
        }

        let next = AtomicUsize::new(0);
        let slots: Mutex<Vec<Option<R>>> = Mutex::new((0..n).map(|_| None).collect());
        std::thread::scope(|scope| {
            for _ in 0..self.threads.min(n) {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let result = f(&items[i]);
                    slots.lock().expect("executor mutex poisoned")[i] = Some(result);
                });
            }
        });
        slots
            .into_inner()
            .expect("executor mutex poisoned")
            .into_iter()
            .map(|slot| slot.expect("every work item produces a result"))
            .collect()
    }

    /// Like [`map`](Self::map), but consumes the items: each one is dropped
    /// as soon as its result is produced. [`run_grid`] relies on this to
    /// release a shared workload's memory once its last run finishes,
    /// instead of holding every workload of a large grid until the end.
    pub fn map_consume<T, R, F>(&self, items: Vec<T>, f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        let n = items.len();
        if self.threads <= 1 || n <= 1 {
            return items.into_iter().map(f).collect();
        }

        let next = AtomicUsize::new(0);
        let cells: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
        let slots: Mutex<Vec<Option<R>>> = Mutex::new((0..n).map(|_| None).collect());
        std::thread::scope(|scope| {
            for _ in 0..self.threads.min(n) {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let item = cells[i]
                        .lock()
                        .expect("executor mutex poisoned")
                        .take()
                        .expect("each work item is claimed exactly once");
                    let result = f(item);
                    slots.lock().expect("executor mutex poisoned")[i] = Some(result);
                });
            }
        });
        slots
            .into_inner()
            .expect("executor mutex poisoned")
            .into_iter()
            .map(|slot| slot.expect("every work item produces a result"))
            .collect()
    }
}

impl Default for ParallelExecutor {
    fn default() -> Self {
        Self::from_env()
    }
}

/// Runs the full `configs × runs` grid through `executor` and returns one
/// seed-averaged [`Metrics`] per configuration, in configuration order.
///
/// Replicated runs use seeds `config.seed`, `config.seed + 1`, …,
/// `config.seed + runs - 1`. The workload for each distinct
/// `(workload parameters, seed)` pair is generated exactly once (in
/// parallel) and shared by every configuration that needs it, so a paired
/// policy comparison is both faster than regenerating per configuration and
/// structurally guaranteed to see identical request streams.
///
/// The merge happens in deterministic `(configuration, seed)` order, so the
/// result is byte-identical for every thread count, including the
/// sequential executor.
///
/// # Errors
///
/// Returns [`SimError::NoRuns`] when `runs` is zero, or the first
/// validation error across the grid in configuration order.
pub fn run_grid(
    configs: &[SimulationConfig],
    runs: usize,
    executor: &ParallelExecutor,
) -> Result<Vec<Metrics>, SimError> {
    struct PerRequestGrid;
    impl GridRunner for PerRequestGrid {
        type Out = Metrics;
        fn run(
            &self,
            config: &SimulationConfig,
            seed: u64,
            workload: Arc<SharedWorkload>,
        ) -> Result<Metrics, SimError> {
            SimWorker::with_workload(*config, seed, workload)
                .run()
                .map(|r| r.metrics)
        }
        fn average(&self, runs: &[Metrics]) -> Metrics {
            Metrics::average(runs)
        }
    }
    run_grid_with(configs, runs, executor, &PerRequestGrid)
}

/// The per-run body and per-configuration reduction of a simulation grid.
///
/// [`run_grid_with`] is generic over this trait so the per-request mode
/// ([`run_grid`]) and the session mode
/// ([`crate::session::run_session_grid`]) share one grid engine — the
/// flattening, workload deduplication, sharding, and deterministic
/// in-order merge are written (and tested for thread-count invariance)
/// exactly once.
pub trait GridRunner: Sync {
    /// The per-run (and per-configuration, after averaging) result type.
    type Out: Send;

    /// Executes one `(configuration, seed)` run over a shared workload.
    ///
    /// # Errors
    ///
    /// Returns a [`SimError`] if the run cannot be executed.
    fn run(
        &self,
        config: &SimulationConfig,
        seed: u64,
        workload: Arc<SharedWorkload>,
    ) -> Result<Self::Out, SimError>;

    /// Reduces one configuration's per-seed results (in seed order) to the
    /// configuration's aggregate.
    fn average(&self, runs: &[Self::Out]) -> Self::Out;
}

/// Runs the full `configs × runs` grid through `executor` with a custom
/// per-run body — the engine behind [`run_grid`], exposed for alternate
/// simulation modes. See [`run_grid`] for the seeding, deduplication, and
/// determinism contract.
///
/// # Errors
///
/// Returns [`SimError::NoRuns`] when `runs` is zero, or the first
/// validation error across the grid in configuration order.
pub fn run_grid_with<G: GridRunner>(
    configs: &[SimulationConfig],
    runs: usize,
    executor: &ParallelExecutor,
    runner: &G,
) -> Result<Vec<G::Out>, SimError> {
    if runs == 0 {
        return Err(SimError::NoRuns);
    }
    for config in configs {
        config.validate()?;
    }
    if configs.is_empty() {
        return Ok(Vec::new());
    }

    // Flatten the grid and deduplicate workload generation: one generation
    // per distinct (workload parameters, seed) pair, in first-use order.
    let mut keys: Vec<WorkloadConfig> = Vec::new();
    let mut items: Vec<(usize, u64, usize)> = Vec::with_capacity(configs.len() * runs);
    for (ci, config) in configs.iter().enumerate() {
        for r in 0..runs {
            let seed = config.seed + r as u64;
            let mut wl = config.workload;
            wl.seed = seed;
            let key = match keys.iter().position(|k| *k == wl) {
                Some(i) => i,
                None => {
                    keys.push(wl);
                    keys.len() - 1
                }
            };
            items.push((ci, seed, key));
        }
    }

    // Stage 1: generate each distinct workload once, sharded across threads.
    let mut workloads = Vec::with_capacity(keys.len());
    for generated in executor.map(&keys, |wl| {
        SharedWorkload::generate(wl, wl.seed).map(Arc::new)
    }) {
        workloads.push(generated?);
    }

    // Stage 2: run the flattened (configuration, seed) grid. The work
    // items hold the only remaining Arcs to the workloads (the lookup
    // table is dropped before running), and the executor consumes each
    // item as it completes, so a workload's memory is freed as soon as its
    // last run finishes instead of living for the whole grid.
    let work: Vec<(usize, u64, Arc<SharedWorkload>)> = items
        .iter()
        .map(|&(ci, seed, key)| (ci, seed, workloads[key].clone()))
        .collect();
    drop(workloads);
    let results = executor.map_consume(work, |(ci, seed, workload)| {
        runner.run(&configs[ci], seed, workload)
    });

    // Merge in deterministic (configuration, seed) order.
    let mut per_config: Vec<Vec<G::Out>> = std::iter::repeat_with(|| Vec::with_capacity(runs))
        .take(configs.len())
        .collect();
    for (&(ci, _, _), result) in items.iter().zip(results) {
        per_config[ci].push(result?);
    }
    Ok(per_config.iter().map(|m| runner.average(m)).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use sc_cache::policy::PolicyKind;

    fn small(policy: PolicyKind, cache_fraction: f64) -> SimulationConfig {
        SimulationConfig {
            policy,
            ..SimulationConfig::small()
        }
        .with_cache_fraction(cache_fraction)
    }

    #[test]
    fn executor_map_preserves_item_order() {
        let items: Vec<usize> = (0..64).collect();
        for threads in [1, 2, 4, 7] {
            let executor = ParallelExecutor::new(ExecConfig::with_threads(threads));
            let doubled = executor.map(&items, |&i| i * 2);
            assert_eq!(doubled, (0..64).map(|i| i * 2).collect::<Vec<_>>());
        }
    }

    #[test]
    fn executor_map_consume_preserves_order_and_drops_items() {
        struct Tracked(usize, Arc<AtomicUsize>);
        impl Drop for Tracked {
            fn drop(&mut self) {
                self.1.fetch_sub(1, Ordering::SeqCst);
            }
        }
        let live = Arc::new(AtomicUsize::new(0));
        for threads in [1, 4] {
            let items: Vec<Tracked> = (0..32)
                .map(|i| {
                    live.fetch_add(1, Ordering::SeqCst);
                    Tracked(i, live.clone())
                })
                .collect();
            let executor = ParallelExecutor::new(ExecConfig::with_threads(threads));
            let tripled = executor.map_consume(items, |t| t.0 * 3);
            assert_eq!(tripled, (0..32).map(|i| i * 3).collect::<Vec<_>>());
            assert_eq!(
                live.load(Ordering::SeqCst),
                0,
                "threads={threads} leaked items"
            );
        }
    }

    #[test]
    fn executor_clamps_to_at_least_one_thread() {
        assert_eq!(
            ParallelExecutor::new(ExecConfig::with_threads(0)).threads(),
            1
        );
        assert_eq!(ExecConfig::with_threads(0).threads, 1);
        assert_eq!(ExecConfig::sequential().threads, 1);
    }

    #[test]
    fn env_var_value_overrides_thread_count() {
        // Exercises the parsing without std::env::set_var: mutating the
        // process environment races concurrently-running tests that read
        // SC_SIM_THREADS through ParallelExecutor::from_env().
        assert_eq!(ExecConfig::from_env_value(Some("3")).threads, 3);
        assert_eq!(ExecConfig::from_env_value(Some(" 8 ")).threads, 8);
        let fallback = ExecConfig::from_env_value(None).threads;
        assert!(fallback >= 1);
        assert_eq!(
            ExecConfig::from_env_value(Some("not-a-number")).threads,
            fallback
        );
        assert_eq!(ExecConfig::from_env_value(Some("0")).threads, fallback);
        assert!(ExecConfig::from_env().threads >= 1);
    }

    #[test]
    fn worker_with_shared_workload_matches_self_generated() {
        let config = small(PolicyKind::PartialBandwidth, 0.05);
        let seed = config.seed;
        let own = SimWorker::new(config, seed).run().unwrap();
        let shared = Arc::new(SharedWorkload::generate(&config.workload, seed).unwrap());
        let borrowed = SimWorker::with_workload(config, seed, shared)
            .run()
            .unwrap();
        assert_eq!(own.metrics, borrowed.metrics);
        assert_eq!(own.final_cached_objects, borrowed.final_cached_objects);
    }

    #[test]
    fn grid_is_thread_count_invariant() {
        let configs = vec![
            small(PolicyKind::PartialBandwidth, 0.05),
            small(PolicyKind::IntegralFrequency, 0.05),
        ];
        let sequential = run_grid(&configs, 2, &ParallelExecutor::sequential()).unwrap();
        for threads in [2, 4] {
            let parallel = run_grid(
                &configs,
                2,
                &ParallelExecutor::new(ExecConfig::with_threads(threads)),
            )
            .unwrap();
            assert_eq!(sequential, parallel, "threads={threads} diverged");
        }
    }

    #[test]
    fn grid_rejects_zero_runs_and_invalid_configs() {
        let config = small(PolicyKind::PartialBandwidth, 0.05);
        let executor = ParallelExecutor::sequential();
        assert!(matches!(
            run_grid(&[config], 0, &executor),
            Err(SimError::NoRuns)
        ));
        let mut bad = config;
        bad.cache_size_bytes = -1.0;
        assert!(matches!(
            run_grid(&[config, bad], 1, &executor),
            Err(SimError::InvalidCacheSize(_))
        ));
        assert_eq!(run_grid(&[], 1, &executor).unwrap(), Vec::new());
    }

    #[test]
    fn grid_shares_workloads_across_identical_seeds() {
        // Two configs with identical workload parameters and seeds: the
        // grid must produce the same result as running them separately.
        let pb = small(PolicyKind::PartialBandwidth, 0.05);
        let if_ = small(PolicyKind::IntegralFrequency, 0.05);
        let together = run_grid(&[pb, if_], 2, &ParallelExecutor::sequential()).unwrap();
        let alone_pb = run_grid(&[pb], 2, &ParallelExecutor::sequential()).unwrap();
        let alone_if = run_grid(&[if_], 2, &ParallelExecutor::sequential()).unwrap();
        assert_eq!(together[0], alone_pb[0]);
        assert_eq!(together[1], alone_if[0]);
    }
}
