//! The performance metrics of Section 3.3 of the paper, plus the
//! time-weighted session-mode metrics of the discrete-event core.

use crate::delivery::DeliveryOutcome;
use crate::session::SessionState;

/// Aggregated metrics over the measurement phase of a simulation run.
///
/// * **traffic reduction ratio** — fraction of requested bytes served by
///   the cache;
/// * **average service delay** — mean startup delay over all requests;
/// * **average stream quality** — mean achievable quality with immediate
///   playout;
/// * **total added value** — summed value of requests that could be played
///   immediately (Section 2.6).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Metrics {
    /// Number of requests measured.
    pub requests: u64,
    /// Fraction of requested bytes served from the cache.
    pub traffic_reduction_ratio: f64,
    /// Mean startup delay in seconds.
    pub avg_service_delay_secs: f64,
    /// Mean stream quality in `[0, 1]`.
    pub avg_stream_quality: f64,
    /// Total added value (same unit as the per-object values, e.g. dollars).
    pub total_added_value: f64,
    /// Fraction of requests that found at least one byte in the cache.
    pub hit_ratio: f64,
    /// Fraction of requests that started with zero delay.
    pub immediate_ratio: f64,
}

/// Accumulates per-request delivery outcomes into [`Metrics`].
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct MetricsCollector {
    requests: u64,
    hits: u64,
    immediate: u64,
    bytes_requested: f64,
    bytes_from_cache: f64,
    total_delay: f64,
    total_quality: f64,
    total_value: f64,
}

impl MetricsCollector {
    /// Creates an empty collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one delivered request.
    pub fn record(&mut self, outcome: &DeliveryOutcome) {
        self.requests += 1;
        if outcome.bytes_from_cache > 0.0 {
            self.hits += 1;
        }
        if outcome.service_delay_secs <= 0.0 {
            self.immediate += 1;
        }
        self.bytes_requested += outcome.bytes_from_cache + outcome.bytes_from_origin;
        self.bytes_from_cache += outcome.bytes_from_cache;
        self.total_delay += outcome.service_delay_secs;
        self.total_quality += outcome.stream_quality;
        self.total_value += outcome.value_added;
    }

    /// Number of requests recorded so far.
    pub fn requests(&self) -> u64 {
        self.requests
    }

    /// Finalises the collector into [`Metrics`].
    pub fn finish(&self) -> Metrics {
        let n = self.requests as f64;
        if self.requests == 0 {
            return Metrics::default();
        }
        Metrics {
            requests: self.requests,
            traffic_reduction_ratio: if self.bytes_requested > 0.0 {
                self.bytes_from_cache / self.bytes_requested
            } else {
                0.0
            },
            avg_service_delay_secs: self.total_delay / n,
            avg_stream_quality: self.total_quality / n,
            total_added_value: self.total_value,
            hit_ratio: self.hits as f64 / n,
            immediate_ratio: self.immediate as f64 / n,
        }
    }
}

impl Metrics {
    /// Averages a set of per-run metrics (the paper averages ten runs per
    /// data point). Returns the default metrics when `runs` is empty.
    pub fn average(runs: &[Metrics]) -> Metrics {
        if runs.is_empty() {
            return Metrics::default();
        }
        let n = runs.len() as f64;
        Metrics {
            requests: (runs.iter().map(|m| m.requests).sum::<u64>() as f64 / n).round() as u64,
            traffic_reduction_ratio: runs.iter().map(|m| m.traffic_reduction_ratio).sum::<f64>()
                / n,
            avg_service_delay_secs: runs.iter().map(|m| m.avg_service_delay_secs).sum::<f64>() / n,
            avg_stream_quality: runs.iter().map(|m| m.avg_stream_quality).sum::<f64>() / n,
            total_added_value: runs.iter().map(|m| m.total_added_value).sum::<f64>() / n,
            hit_ratio: runs.iter().map(|m| m.hit_ratio).sum::<f64>() / n,
            immediate_ratio: runs.iter().map(|m| m.immediate_ratio).sum::<f64>() / n,
        }
    }
}

/// Time-weighted metrics of one session-mode simulation run
/// ([`crate::session`]).
///
/// Unlike the per-request [`Metrics`], session metrics describe the system
/// *over time*: how many viewers are concurrently active, how often
/// playback buffers drain under contention, and how the origin egress is
/// distributed across the run. All sessions count — the contention
/// transient is part of the measured signal, so there is no warmup cutoff,
/// and the concurrent-viewer curve integrates exactly to the sum of the
/// session durations.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SessionMetrics {
    /// Number of sessions simulated.
    pub sessions: u64,
    /// Integral of the concurrent-viewer curve (viewer-seconds); equals
    /// the sum of all session playback durations.
    pub viewer_seconds: f64,
    /// Time-averaged concurrent viewers over the horizon.
    pub avg_concurrent_viewers: f64,
    /// Maximum concurrent viewers at any instant.
    pub peak_concurrent_viewers: u64,
    /// Fraction of sessions that rebuffered at least once (total stall
    /// time above [`crate::session::REBUFFER_EPSILON_SECS`]).
    pub rebuffer_probability: f64,
    /// Mean rebuffering time per session, in seconds.
    pub avg_rebuffer_secs: f64,
    /// Fraction of requested bytes served from the cache (prefix bytes
    /// over total session bytes).
    pub traffic_reduction_ratio: f64,
    /// Total bytes fetched from the origin.
    pub origin_bytes_total: f64,
    /// Origin egress over time: bytes fetched per fixed-width bin spanning
    /// `[0, horizon_secs]` (transfers outlasting the horizon land in the
    /// last bin, so the bins sum to `origin_bytes_total`).
    pub egress_bins_bytes: Vec<f64>,
    /// The observation horizon: the end of the last playback window.
    pub horizon_secs: f64,
    /// Total path down-time injected by the fault model, summed over all
    /// paths and clamped to the horizon, in seconds. Zero when fault
    /// injection is off.
    pub outage_secs: f64,
    /// Playback time sessions spent inside a path outage *without*
    /// stalling, summed over all sessions, in seconds — the cached prefix
    /// masking the fault. Zero when fault injection is off.
    pub masked_stall_secs: f64,
}

impl SessionMetrics {
    /// Aggregates the final session states of one run.
    pub(crate) fn from_sessions(
        states: &[SessionState],
        viewer_seconds: f64,
        peak_concurrent_viewers: u64,
        horizon_secs: f64,
        egress_bins_bytes: Vec<f64>,
    ) -> SessionMetrics {
        let n = states.len() as f64;
        let rebuffered = states
            .iter()
            .filter(|s| s.rebuffer_secs > crate::session::REBUFFER_EPSILON_SECS)
            .count();
        let total_rebuffer: f64 = states.iter().map(|s| s.rebuffer_secs).sum();
        let bytes_requested: f64 = states.iter().map(|s| s.spec.size_bytes).sum();
        let bytes_from_cache: f64 = states.iter().map(|s| s.prefix_bytes).sum();
        let origin_bytes_total: f64 = states.iter().map(|s| s.downloaded_bytes).sum();
        let masked_stall_secs: f64 = states.iter().map(|s| s.masked_stall_secs).sum();
        SessionMetrics {
            sessions: states.len() as u64,
            viewer_seconds,
            avg_concurrent_viewers: if horizon_secs > 0.0 {
                viewer_seconds / horizon_secs
            } else {
                0.0
            },
            peak_concurrent_viewers,
            rebuffer_probability: if states.is_empty() {
                0.0
            } else {
                rebuffered as f64 / n
            },
            avg_rebuffer_secs: if states.is_empty() {
                0.0
            } else {
                total_rebuffer / n
            },
            traffic_reduction_ratio: if bytes_requested > 0.0 {
                bytes_from_cache / bytes_requested
            } else {
                0.0
            },
            origin_bytes_total,
            egress_bins_bytes,
            horizon_secs,
            // The outage total lives on the timeline, not the sessions;
            // the caller (`simulate_sessions_with_faults`) fills it in.
            outage_secs: 0.0,
            masked_stall_secs,
        }
    }

    /// Averages a set of per-run session metrics element-wise, including
    /// the egress bins (runs are expected to share a bin count; shorter
    /// runs contribute zero to the missing tail bins). Returns the default
    /// metrics when `runs` is empty.
    pub fn average(runs: &[SessionMetrics]) -> SessionMetrics {
        if runs.is_empty() {
            return SessionMetrics::default();
        }
        let n = runs.len() as f64;
        let bins = runs
            .iter()
            .map(|m| m.egress_bins_bytes.len())
            .max()
            .unwrap_or(0);
        let mut egress_bins_bytes = vec![0.0; bins];
        for m in runs {
            for (acc, &b) in egress_bins_bytes.iter_mut().zip(&m.egress_bins_bytes) {
                *acc += b / n;
            }
        }
        SessionMetrics {
            sessions: (runs.iter().map(|m| m.sessions).sum::<u64>() as f64 / n).round() as u64,
            viewer_seconds: runs.iter().map(|m| m.viewer_seconds).sum::<f64>() / n,
            avg_concurrent_viewers: runs.iter().map(|m| m.avg_concurrent_viewers).sum::<f64>() / n,
            peak_concurrent_viewers: (runs.iter().map(|m| m.peak_concurrent_viewers).sum::<u64>()
                as f64
                / n)
                .round() as u64,
            rebuffer_probability: runs.iter().map(|m| m.rebuffer_probability).sum::<f64>() / n,
            avg_rebuffer_secs: runs.iter().map(|m| m.avg_rebuffer_secs).sum::<f64>() / n,
            traffic_reduction_ratio: runs.iter().map(|m| m.traffic_reduction_ratio).sum::<f64>()
                / n,
            origin_bytes_total: runs.iter().map(|m| m.origin_bytes_total).sum::<f64>() / n,
            egress_bins_bytes,
            horizon_secs: runs.iter().map(|m| m.horizon_secs).sum::<f64>() / n,
            outage_secs: runs.iter().map(|m| m.outage_secs).sum::<f64>() / n,
            masked_stall_secs: runs.iter().map(|m| m.masked_stall_secs).sum::<f64>() / n,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(delay: f64, quality: f64, cache: f64, origin: f64, value: f64) -> DeliveryOutcome {
        DeliveryOutcome {
            service_delay_secs: delay,
            stream_quality: quality,
            bytes_from_cache: cache,
            bytes_from_origin: origin,
            value_added: value,
        }
    }

    #[test]
    fn empty_collector_yields_default() {
        let c = MetricsCollector::new();
        assert_eq!(c.finish(), Metrics::default());
        assert_eq!(c.requests(), 0);
    }

    #[test]
    fn collector_aggregates() {
        let mut c = MetricsCollector::new();
        c.record(&outcome(10.0, 0.5, 0.0, 100.0, 0.0));
        c.record(&outcome(0.0, 1.0, 50.0, 50.0, 4.0));
        let m = c.finish();
        assert_eq!(m.requests, 2);
        assert!((m.avg_service_delay_secs - 5.0).abs() < 1e-12);
        assert!((m.avg_stream_quality - 0.75).abs() < 1e-12);
        assert!((m.traffic_reduction_ratio - 50.0 / 200.0).abs() < 1e-12);
        assert_eq!(m.total_added_value, 4.0);
        assert!((m.hit_ratio - 0.5).abs() < 1e-12);
        assert!((m.immediate_ratio - 0.5).abs() < 1e-12);
    }

    #[test]
    fn averaging_runs() {
        let a = Metrics {
            requests: 10,
            traffic_reduction_ratio: 0.2,
            avg_service_delay_secs: 10.0,
            avg_stream_quality: 0.9,
            total_added_value: 100.0,
            hit_ratio: 0.5,
            immediate_ratio: 0.6,
        };
        let b = Metrics {
            requests: 20,
            traffic_reduction_ratio: 0.4,
            avg_service_delay_secs: 30.0,
            avg_stream_quality: 0.7,
            total_added_value: 300.0,
            hit_ratio: 0.7,
            immediate_ratio: 0.8,
        };
        let avg = Metrics::average(&[a, b]);
        assert_eq!(avg.requests, 15);
        assert!((avg.traffic_reduction_ratio - 0.3).abs() < 1e-12);
        assert!((avg.avg_service_delay_secs - 20.0).abs() < 1e-12);
        assert!((avg.avg_stream_quality - 0.8).abs() < 1e-12);
        assert!((avg.total_added_value - 200.0).abs() < 1e-12);
        assert_eq!(Metrics::average(&[]), Metrics::default());
    }

    #[test]
    fn rebuffer_dust_threshold_counts_strictly_above_epsilon_only() {
        use crate::session::{SessionSpec, SessionState, REBUFFER_EPSILON_SECS};
        let spec = SessionSpec {
            path: 0,
            arrival_secs: 0.0,
            duration_secs: 10.0,
            rate_bps: 1_000.0,
            size_bytes: 10_000.0,
        };
        let make = |stall: f64| {
            let mut s = SessionState::begin(spec, 0.0);
            s.rebuffer_secs = stall;
            s
        };
        // Exactly at the threshold (and below it): float-accumulation
        // dust, not a rebuffer event.
        let at = make(REBUFFER_EPSILON_SECS);
        let below = make(REBUFFER_EPSILON_SECS / 2.0);
        // The next representable value above the threshold: a real stall.
        let above = make(REBUFFER_EPSILON_SECS * (1.0 + f64::EPSILON));
        assert!(above.rebuffer_secs > REBUFFER_EPSILON_SECS);
        for (state, expected) in [(at, 0.0), (below, 0.0), (above, 1.0)] {
            let m = SessionMetrics::from_sessions(&[state], 10.0, 1, 10.0, vec![0.0]);
            assert_eq!(
                m.rebuffer_probability,
                expected,
                "stall of {:e} s must {} as a rebuffer",
                m.avg_rebuffer_secs,
                if expected > 0.0 { "count" } else { "not count" }
            );
        }
    }

    #[test]
    fn session_metrics_average_is_element_wise() {
        let a = SessionMetrics {
            sessions: 10,
            viewer_seconds: 100.0,
            avg_concurrent_viewers: 2.0,
            peak_concurrent_viewers: 4,
            rebuffer_probability: 0.2,
            avg_rebuffer_secs: 1.0,
            traffic_reduction_ratio: 0.3,
            origin_bytes_total: 1_000.0,
            egress_bins_bytes: vec![600.0, 400.0],
            horizon_secs: 50.0,
            outage_secs: 10.0,
            masked_stall_secs: 4.0,
        };
        let b = SessionMetrics {
            sessions: 20,
            viewer_seconds: 300.0,
            avg_concurrent_viewers: 4.0,
            peak_concurrent_viewers: 8,
            rebuffer_probability: 0.4,
            avg_rebuffer_secs: 3.0,
            traffic_reduction_ratio: 0.5,
            origin_bytes_total: 3_000.0,
            egress_bins_bytes: vec![1_000.0, 2_000.0],
            horizon_secs: 70.0,
            outage_secs: 20.0,
            masked_stall_secs: 8.0,
        };
        let avg = SessionMetrics::average(&[a, b]);
        assert_eq!(avg.sessions, 15);
        assert!((avg.viewer_seconds - 200.0).abs() < 1e-12);
        assert!((avg.avg_concurrent_viewers - 3.0).abs() < 1e-12);
        assert_eq!(avg.peak_concurrent_viewers, 6);
        assert!((avg.rebuffer_probability - 0.3).abs() < 1e-12);
        assert!((avg.avg_rebuffer_secs - 2.0).abs() < 1e-12);
        assert!((avg.traffic_reduction_ratio - 0.4).abs() < 1e-12);
        assert!((avg.origin_bytes_total - 2_000.0).abs() < 1e-12);
        assert_eq!(avg.egress_bins_bytes, vec![800.0, 1_200.0]);
        assert!((avg.horizon_secs - 60.0).abs() < 1e-12);
        assert!((avg.outage_secs - 15.0).abs() < 1e-12);
        assert!((avg.masked_stall_secs - 6.0).abs() < 1e-12);
        assert_eq!(SessionMetrics::average(&[]), SessionMetrics::default());
    }
}
