//! The performance metrics of Section 3.3 of the paper.

use crate::delivery::DeliveryOutcome;

/// Aggregated metrics over the measurement phase of a simulation run.
///
/// * **traffic reduction ratio** — fraction of requested bytes served by
///   the cache;
/// * **average service delay** — mean startup delay over all requests;
/// * **average stream quality** — mean achievable quality with immediate
///   playout;
/// * **total added value** — summed value of requests that could be played
///   immediately (Section 2.6).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Metrics {
    /// Number of requests measured.
    pub requests: u64,
    /// Fraction of requested bytes served from the cache.
    pub traffic_reduction_ratio: f64,
    /// Mean startup delay in seconds.
    pub avg_service_delay_secs: f64,
    /// Mean stream quality in `[0, 1]`.
    pub avg_stream_quality: f64,
    /// Total added value (same unit as the per-object values, e.g. dollars).
    pub total_added_value: f64,
    /// Fraction of requests that found at least one byte in the cache.
    pub hit_ratio: f64,
    /// Fraction of requests that started with zero delay.
    pub immediate_ratio: f64,
}

/// Accumulates per-request delivery outcomes into [`Metrics`].
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct MetricsCollector {
    requests: u64,
    hits: u64,
    immediate: u64,
    bytes_requested: f64,
    bytes_from_cache: f64,
    total_delay: f64,
    total_quality: f64,
    total_value: f64,
}

impl MetricsCollector {
    /// Creates an empty collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one delivered request.
    pub fn record(&mut self, outcome: &DeliveryOutcome) {
        self.requests += 1;
        if outcome.bytes_from_cache > 0.0 {
            self.hits += 1;
        }
        if outcome.service_delay_secs <= 0.0 {
            self.immediate += 1;
        }
        self.bytes_requested += outcome.bytes_from_cache + outcome.bytes_from_origin;
        self.bytes_from_cache += outcome.bytes_from_cache;
        self.total_delay += outcome.service_delay_secs;
        self.total_quality += outcome.stream_quality;
        self.total_value += outcome.value_added;
    }

    /// Number of requests recorded so far.
    pub fn requests(&self) -> u64 {
        self.requests
    }

    /// Finalises the collector into [`Metrics`].
    pub fn finish(&self) -> Metrics {
        let n = self.requests as f64;
        if self.requests == 0 {
            return Metrics::default();
        }
        Metrics {
            requests: self.requests,
            traffic_reduction_ratio: if self.bytes_requested > 0.0 {
                self.bytes_from_cache / self.bytes_requested
            } else {
                0.0
            },
            avg_service_delay_secs: self.total_delay / n,
            avg_stream_quality: self.total_quality / n,
            total_added_value: self.total_value,
            hit_ratio: self.hits as f64 / n,
            immediate_ratio: self.immediate as f64 / n,
        }
    }
}

impl Metrics {
    /// Averages a set of per-run metrics (the paper averages ten runs per
    /// data point). Returns the default metrics when `runs` is empty.
    pub fn average(runs: &[Metrics]) -> Metrics {
        if runs.is_empty() {
            return Metrics::default();
        }
        let n = runs.len() as f64;
        Metrics {
            requests: (runs.iter().map(|m| m.requests).sum::<u64>() as f64 / n).round() as u64,
            traffic_reduction_ratio: runs.iter().map(|m| m.traffic_reduction_ratio).sum::<f64>()
                / n,
            avg_service_delay_secs: runs.iter().map(|m| m.avg_service_delay_secs).sum::<f64>() / n,
            avg_stream_quality: runs.iter().map(|m| m.avg_stream_quality).sum::<f64>() / n,
            total_added_value: runs.iter().map(|m| m.total_added_value).sum::<f64>() / n,
            hit_ratio: runs.iter().map(|m| m.hit_ratio).sum::<f64>() / n,
            immediate_ratio: runs.iter().map(|m| m.immediate_ratio).sum::<f64>() / n,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(delay: f64, quality: f64, cache: f64, origin: f64, value: f64) -> DeliveryOutcome {
        DeliveryOutcome {
            service_delay_secs: delay,
            stream_quality: quality,
            bytes_from_cache: cache,
            bytes_from_origin: origin,
            value_added: value,
        }
    }

    #[test]
    fn empty_collector_yields_default() {
        let c = MetricsCollector::new();
        assert_eq!(c.finish(), Metrics::default());
        assert_eq!(c.requests(), 0);
    }

    #[test]
    fn collector_aggregates() {
        let mut c = MetricsCollector::new();
        c.record(&outcome(10.0, 0.5, 0.0, 100.0, 0.0));
        c.record(&outcome(0.0, 1.0, 50.0, 50.0, 4.0));
        let m = c.finish();
        assert_eq!(m.requests, 2);
        assert!((m.avg_service_delay_secs - 5.0).abs() < 1e-12);
        assert!((m.avg_stream_quality - 0.75).abs() < 1e-12);
        assert!((m.traffic_reduction_ratio - 50.0 / 200.0).abs() < 1e-12);
        assert_eq!(m.total_added_value, 4.0);
        assert!((m.hit_ratio - 0.5).abs() < 1e-12);
        assert!((m.immediate_ratio - 0.5).abs() < 1e-12);
    }

    #[test]
    fn averaging_runs() {
        let a = Metrics {
            requests: 10,
            traffic_reduction_ratio: 0.2,
            avg_service_delay_secs: 10.0,
            avg_stream_quality: 0.9,
            total_added_value: 100.0,
            hit_ratio: 0.5,
            immediate_ratio: 0.6,
        };
        let b = Metrics {
            requests: 20,
            traffic_reduction_ratio: 0.4,
            avg_service_delay_secs: 30.0,
            avg_stream_quality: 0.7,
            total_added_value: 300.0,
            hit_ratio: 0.7,
            immediate_ratio: 0.8,
        };
        let avg = Metrics::average(&[a, b]);
        assert_eq!(avg.requests, 15);
        assert!((avg.traffic_reduction_ratio - 0.3).abs() < 1e-12);
        assert!((avg.avg_service_delay_secs - 20.0).abs() < 1e-12);
        assert!((avg.avg_stream_quality - 0.8).abs() < 1e-12);
        assert!((avg.total_added_value - 200.0).abs() < 1e-12);
        assert_eq!(Metrics::average(&[]), Metrics::default());
    }
}
