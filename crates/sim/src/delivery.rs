//! The joint cache + origin delivery model (Section 2.1 of the paper).

use sc_cache::{service_delay_secs, stream_quality, ObjectMeta};

/// Outcome of delivering one request jointly from the cache and the origin
/// server.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeliveryOutcome {
    /// Startup delay in seconds before full-quality playout can begin.
    pub service_delay_secs: f64,
    /// Achievable stream quality with immediate playout, in `[0, 1]`.
    pub stream_quality: f64,
    /// Bytes of the request served from the cache.
    pub bytes_from_cache: f64,
    /// Bytes fetched from the origin server.
    pub bytes_from_origin: f64,
    /// Value realised by this request: the object's value if it could be
    /// played immediately at full quality, zero otherwise (Section 2.6).
    pub value_added: f64,
}

/// Computes the delivery outcome for one request.
///
/// `cached_bytes` is the prefix available at the cache when the request
/// arrives and `bandwidth_bps` the instantaneous bandwidth of the path to
/// the origin during this transfer.
///
/// ```
/// use sc_cache::{ObjectKey, ObjectMeta};
/// use sc_sim::deliver;
///
/// let obj = ObjectMeta::new(ObjectKey::new(1), 100.0, 48_000.0, 4.0);
/// // Nothing cached over a half-rate path: the client waits.
/// let miss = deliver(&obj, 0.0, 24_000.0);
/// assert_eq!(miss.service_delay_secs, 100.0);
/// assert_eq!(miss.value_added, 0.0);
/// // Prefix cached: immediate full-quality playout, value realised.
/// let hit = deliver(&obj, obj.size_bytes() / 2.0, 24_000.0);
/// assert_eq!(hit.service_delay_secs, 0.0);
/// assert_eq!(hit.value_added, 4.0);
/// ```
pub fn deliver(meta: &ObjectMeta, cached_bytes: f64, bandwidth_bps: f64) -> DeliveryOutcome {
    let size = meta.size_bytes();
    let from_cache = cached_bytes.clamp(0.0, size);
    let from_origin = size - from_cache;
    let delay = service_delay_secs(
        meta.duration_secs,
        meta.bitrate_bps,
        bandwidth_bps,
        from_cache,
    );
    let quality = stream_quality(
        meta.duration_secs,
        meta.bitrate_bps,
        bandwidth_bps,
        from_cache,
    );
    DeliveryOutcome {
        service_delay_secs: delay,
        stream_quality: quality,
        bytes_from_cache: from_cache,
        bytes_from_origin: from_origin,
        value_added: if delay <= 0.0 { meta.value } else { 0.0 },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sc_cache::ObjectKey;

    fn obj() -> ObjectMeta {
        ObjectMeta::new(ObjectKey::new(1), 200.0, 48_000.0, 6.0)
    }

    #[test]
    fn abundant_bandwidth_needs_no_cache() {
        let out = deliver(&obj(), 0.0, 96_000.0);
        assert_eq!(out.service_delay_secs, 0.0);
        assert_eq!(out.stream_quality, 1.0);
        assert_eq!(out.value_added, 6.0);
        assert_eq!(out.bytes_from_cache, 0.0);
        assert_eq!(out.bytes_from_origin, obj().size_bytes());
    }

    #[test]
    fn partial_prefix_reduces_delay_and_raises_quality() {
        let o = obj();
        let none = deliver(&o, 0.0, 24_000.0);
        let quarter = deliver(&o, o.size_bytes() / 4.0, 24_000.0);
        let half = deliver(&o, o.size_bytes() / 2.0, 24_000.0);
        assert!(none.service_delay_secs > quarter.service_delay_secs);
        assert!(quarter.service_delay_secs > half.service_delay_secs);
        assert_eq!(half.service_delay_secs, 0.0);
        assert!(none.stream_quality < quarter.stream_quality);
        assert!(quarter.stream_quality < half.stream_quality);
        assert_eq!(half.value_added, 6.0);
        assert_eq!(quarter.value_added, 0.0);
    }

    #[test]
    fn cached_bytes_clamped_to_size() {
        let o = obj();
        let out = deliver(&o, 10.0 * o.size_bytes(), 24_000.0);
        assert_eq!(out.bytes_from_cache, o.size_bytes());
        assert_eq!(out.bytes_from_origin, 0.0);
        assert_eq!(out.service_delay_secs, 0.0);
    }

    #[test]
    fn bytes_always_sum_to_size() {
        let o = obj();
        for frac in [0.0, 0.3, 0.9, 1.0] {
            let out = deliver(&o, frac * o.size_bytes(), 30_000.0);
            assert!((out.bytes_from_cache + out.bytes_from_origin - o.size_bytes()).abs() < 1e-6);
        }
    }
}
