//! The deterministic discrete-event queue behind the session simulator.
//!
//! [`EventQueue`] is a binary min-heap of timestamped events with a hard
//! determinism contract: events are popped in increasing `(time, sequence)`
//! order, where the sequence number is assigned monotonically at push time.
//! Two events with *exactly* equal timestamps therefore pop in the order
//! they were scheduled, regardless of heap internals or push interleaving —
//! the property the session core's tie-break (simultaneous arrivals and
//! departures) and its cross-thread byte-identity rest on.
//!
//! Completion events get cancelled and re-scheduled every time a
//! processor-sharing re-division changes a session's bandwidth share.
//! Rather than rebuilding the heap, [`EventQueue::cancel`] tombstones the
//! event's sequence number and [`EventQueue::pop`] silently discards
//! tombstoned entries, so a cancelled event is never observed by the
//! simulation loop.

use std::collections::BinaryHeap;
use std::collections::HashSet;

/// What happened, attached to every scheduled event.
///
/// The payload is a session index into the simulator's session table for
/// the session events, and a path index for the fault events.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A session arrives: it performs its cache access and (if any origin
    /// bytes remain) joins its path's processor-sharing set.
    Arrival(u32),
    /// A session's origin transfer finishes: it releases its bandwidth
    /// share and the path re-divides among the remaining sessions.
    TransferComplete(u32),
    /// A session's playback window ends: the concurrent-viewer count drops.
    PlaybackEnd(u32),
    /// A path outage begins: the path's capacity drops to its residual
    /// fraction and every affected session re-shares.
    PathDown(u32),
    /// A path outage ends: full capacity returns and every affected
    /// session re-shares.
    PathUp(u32),
}

/// A scheduled event, as returned by [`EventQueue::pop`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Event {
    /// Simulated time at which the event fires, in seconds.
    pub time_secs: f64,
    /// Monotonic schedule-order sequence number (the tie-break).
    pub seq: u64,
    /// The event payload.
    pub kind: EventKind,
}

/// Internal heap entry ordered so that `BinaryHeap` (a max-heap) pops the
/// smallest `(time, seq)` first.
#[derive(Debug)]
struct HeapEntry(Event);

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.0.time_secs.to_bits() == other.0.time_secs.to_bits() && self.0.seq == other.0.seq
    }
}

impl Eq for HeapEntry {}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: the smallest (time, seq) must be the heap maximum.
        // total_cmp gives a total order; event times are finite by
        // construction (EventQueue::push rejects non-finite times).
        other
            .0
            .time_secs
            .total_cmp(&self.0.time_secs)
            .then(other.0.seq.cmp(&self.0.seq))
    }
}

/// A binary-heap event queue with deterministic `(time, sequence)` ordering
/// and tombstone-based cancellation.
///
/// ```
/// use sc_sim::event::{EventKind, EventQueue};
///
/// let mut queue = EventQueue::new();
/// let _late = queue.push(5.0, EventKind::Arrival(0));
/// let early = queue.push(1.0, EventKind::Arrival(1));
/// let tied = queue.push(5.0, EventKind::PlaybackEnd(1));
/// queue.cancel(early);
/// // The cancelled event is never observed; equal times pop in push order.
/// assert_eq!(queue.pop().unwrap().kind, EventKind::Arrival(0));
/// assert_eq!(queue.pop().unwrap().seq, tied);
/// assert!(queue.pop().is_none());
/// ```
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<HeapEntry>,
    /// Sequence numbers currently live in the heap (pushed, not yet popped
    /// or cancelled) — makes [`cancel`](Self::cancel) O(1) instead of an
    /// O(heap) scan, which matters because every processor-sharing
    /// re-division cancels one completion event per path member.
    pending: HashSet<u64>,
    cancelled: HashSet<u64>,
    next_seq: u64,
}

impl EventQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules an event at `time_secs` and returns its sequence number
    /// (the handle for [`cancel`](Self::cancel)).
    ///
    /// # Panics
    ///
    /// Panics if `time_secs` is not finite — a non-finite timestamp would
    /// poison the pop order (a `NaN` has no place in a total event order,
    /// and an infinite completion time means a zero bandwidth share, which
    /// the session core rules out before scheduling).
    pub fn push(&mut self, time_secs: f64, kind: EventKind) -> u64 {
        assert!(
            time_secs.is_finite(),
            "event time must be finite, got {time_secs} for {kind:?}"
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.pending.insert(seq);
        self.heap.push(HeapEntry(Event {
            time_secs,
            seq,
            kind,
        }));
        seq
    }

    /// Cancels a previously scheduled event by its sequence number.
    ///
    /// Returns `true` if the event was still pending (it will now never be
    /// popped) and `false` if it had already been popped, cancelled, or was
    /// never scheduled.
    pub fn cancel(&mut self, seq: u64) -> bool {
        // An already-popped (or already-cancelled, or never-scheduled) seq
        // is not pending; tombstoning it would report a stale cancellation
        // as successful.
        if self.pending.remove(&seq) {
            self.cancelled.insert(seq);
            return true;
        }
        false
    }

    /// Pops the next pending event in `(time, seq)` order, discarding
    /// cancelled entries.
    pub fn pop(&mut self) -> Option<Event> {
        while let Some(HeapEntry(event)) = self.heap.pop() {
            if self.cancelled.remove(&event.seq) {
                continue;
            }
            self.pending.remove(&event.seq);
            return Some(event);
        }
        None
    }

    /// The timestamp of the next pending (non-cancelled) event.
    pub fn peek_time(&mut self) -> Option<f64> {
        // Drain cancelled entries off the top so the peek is accurate.
        while let Some(HeapEntry(event)) = self.heap.peek() {
            if self.cancelled.contains(&event.seq) {
                let seq = event.seq;
                self.heap.pop();
                self.cancelled.remove(&seq);
                continue;
            }
            return Some(event.time_secs);
        }
        None
    }

    /// Number of pending (non-cancelled) events.
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// Returns `true` when no pending events remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total number of sequence numbers handed out so far.
    pub fn scheduled(&self) -> u64 {
        self.next_seq
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(3.0, EventKind::Arrival(0));
        q.push(1.0, EventKind::Arrival(1));
        q.push(2.0, EventKind::Arrival(2));
        let order: Vec<u32> = std::iter::from_fn(|| q.pop())
            .map(|e| match e.kind {
                EventKind::Arrival(s) => s,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(order, vec![1, 2, 0]);
        assert!(q.is_empty());
    }

    #[test]
    fn equal_timestamps_pop_in_sequence_order_regardless_of_push_order() {
        // Interleave several distinct timestamps so the tied entries enter
        // the heap at different depths; the pop order of the tied group
        // must still be exactly their push order.
        let mut q = EventQueue::new();
        let mut tied_seqs = Vec::new();
        for i in 0..8u32 {
            tied_seqs.push(q.push(10.0, EventKind::Arrival(i)));
            q.push(10.0 + f64::from(i + 1), EventKind::PlaybackEnd(i));
            q.push(
                10.0 - f64::from(i + 1) * 0.5,
                EventKind::TransferComplete(i),
            );
        }
        let mut popped = Vec::new();
        while let Some(event) = q.pop() {
            if event.time_secs == 10.0 {
                popped.push(event.seq);
            }
        }
        assert_eq!(popped, tied_seqs, "tied events must pop in push order");
    }

    #[test]
    fn sequence_numbers_are_monotonic_and_reported() {
        let mut q = EventQueue::new();
        let a = q.push(1.0, EventKind::Arrival(0));
        let b = q.push(0.5, EventKind::Arrival(1));
        assert!(b > a);
        assert_eq!(q.scheduled(), 2);
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn cancel_hides_event_from_pop() {
        let mut q = EventQueue::new();
        let keep = q.push(1.0, EventKind::Arrival(0));
        let drop_ = q.push(0.5, EventKind::TransferComplete(0));
        assert!(q.cancel(drop_));
        assert_eq!(q.len(), 1);
        let event = q.pop().unwrap();
        assert_eq!(event.seq, keep);
        assert!(q.pop().is_none());
    }

    #[test]
    fn cancel_then_reschedule_pops_only_the_replacement() {
        // The session core's re-division pattern: a completion event is
        // cancelled and re-scheduled (possibly earlier, possibly later)
        // every time the share changes.
        let mut q = EventQueue::new();
        let first = q.push(10.0, EventKind::TransferComplete(7));
        assert!(q.cancel(first));
        let earlier = q.push(4.0, EventKind::TransferComplete(7));
        assert!(q.cancel(earlier));
        let final_ = q.push(6.0, EventKind::TransferComplete(7));
        q.push(5.0, EventKind::Arrival(1));

        let popped: Vec<Event> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(popped.len(), 2);
        assert_eq!(popped[0].kind, EventKind::Arrival(1));
        assert_eq!(popped[1].seq, final_);
        assert_eq!(popped[1].time_secs, 6.0);
    }

    #[test]
    fn cancel_of_unknown_or_popped_or_cancelled_seq_is_false() {
        let mut q = EventQueue::new();
        let a = q.push(1.0, EventKind::Arrival(0));
        assert!(!q.cancel(999), "never-scheduled seq");
        assert!(q.cancel(a));
        assert!(!q.cancel(a), "double cancel");
        let b = q.push(2.0, EventKind::Arrival(1));
        assert_eq!(q.pop().unwrap().seq, b);
        assert!(!q.cancel(b), "already popped");
    }

    #[test]
    fn peek_time_skips_cancelled_entries() {
        let mut q = EventQueue::new();
        let head = q.push(1.0, EventKind::Arrival(0));
        q.push(3.0, EventKind::Arrival(1));
        assert_eq!(q.peek_time(), Some(1.0));
        assert!(q.cancel(head));
        assert_eq!(q.peek_time(), Some(3.0));
        q.pop();
        assert_eq!(q.peek_time(), None);
        assert!(q.is_empty());
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn non_finite_times_are_rejected() {
        let mut q = EventQueue::new();
        q.push(f64::NAN, EventKind::Arrival(0));
    }

    #[test]
    fn negative_zero_and_zero_tie_break_by_seq() {
        // total_cmp orders -0.0 < 0.0; both are "time zero" for the
        // simulation, and the seq tie-break keeps the pop order stable
        // either way. Pin the exact behaviour so it never drifts silently.
        let mut q = EventQueue::new();
        let plus = q.push(0.0, EventKind::Arrival(0));
        let minus = q.push(-0.0, EventKind::Arrival(1));
        assert_eq!(q.pop().unwrap().seq, minus);
        assert_eq!(q.pop().unwrap().seq, plus);
    }
}
