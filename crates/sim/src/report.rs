//! Structured experiment results and plain-text report formatting.

use crate::metrics::{Metrics, SessionMetrics};
use std::fmt::Write as _;

/// One measured point of a figure: an x-coordinate (cache fraction,
/// estimator `e`, Zipf α, …) plus the averaged metrics at that point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FigurePoint {
    /// The x-axis value.
    pub x: f64,
    /// Averaged metrics at this point.
    pub metrics: Metrics,
}

/// One curve of a figure (e.g. one caching policy).
#[derive(Debug, Clone, PartialEq)]
pub struct FigureSeries {
    /// Curve label (usually the policy name).
    pub label: String,
    /// Points in increasing x order.
    pub points: Vec<FigurePoint>,
}

impl FigureSeries {
    /// Creates an empty series.
    pub fn new(label: impl Into<String>) -> Self {
        FigureSeries {
            label: label.into(),
            points: Vec::new(),
        }
    }

    /// Appends a point.
    pub fn push(&mut self, x: f64, metrics: Metrics) {
        self.points.push(FigurePoint { x, metrics });
    }
}

/// A complete reproduced figure or table: metadata plus one or more series.
#[derive(Debug, Clone, PartialEq)]
pub struct FigureResult {
    /// Identifier, e.g. `"fig5"` or `"table1"`.
    pub id: String,
    /// Human-readable title.
    pub title: String,
    /// Meaning of the x-axis.
    pub x_label: String,
    /// The measured series.
    pub series: Vec<FigureSeries>,
}

impl FigureResult {
    /// Creates an empty figure result.
    pub fn new(
        id: impl Into<String>,
        title: impl Into<String>,
        x_label: impl Into<String>,
    ) -> Self {
        FigureResult {
            id: id.into(),
            title: title.into(),
            x_label: x_label.into(),
            series: Vec::new(),
        }
    }

    /// Looks up a series by label.
    pub fn series(&self, label: &str) -> Option<&FigureSeries> {
        self.series.iter().find(|s| s.label == label)
    }

    /// Renders the result as an aligned plain-text table, one row per
    /// (series, x) pair, with one column per metric — the same rows the
    /// paper plots.
    pub fn to_table(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "# {} — {}", self.id, self.title);
        let _ = writeln!(
            out,
            "{:<14} {:>10} {:>10} {:>12} {:>10} {:>14} {:>10}",
            "series", self.x_label, "traffic", "delay(s)", "quality", "value($)", "hit"
        );
        for series in &self.series {
            for p in &series.points {
                let m = p.metrics;
                let _ = writeln!(
                    out,
                    "{:<14} {:>10.4} {:>10.4} {:>12.2} {:>10.4} {:>14.1} {:>10.4}",
                    series.label,
                    p.x,
                    m.traffic_reduction_ratio,
                    m.avg_service_delay_secs,
                    m.avg_stream_quality,
                    m.total_added_value,
                    m.hit_ratio
                );
            }
        }
        out
    }
}

/// One measured point of a session-mode figure: an x-coordinate plus the
/// averaged time-weighted session metrics at that point.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionFigurePoint {
    /// The x-axis value.
    pub x: f64,
    /// Averaged session metrics at this point.
    pub metrics: SessionMetrics,
}

/// One curve of a session-mode figure (e.g. one caching policy).
#[derive(Debug, Clone, PartialEq)]
pub struct SessionFigureSeries {
    /// Curve label (usually the policy name).
    pub label: String,
    /// Points in increasing x order.
    pub points: Vec<SessionFigurePoint>,
}

impl SessionFigureSeries {
    /// Creates an empty series.
    pub fn new(label: impl Into<String>) -> Self {
        SessionFigureSeries {
            label: label.into(),
            points: Vec::new(),
        }
    }

    /// Appends a point.
    pub fn push(&mut self, x: f64, metrics: SessionMetrics) {
        self.points.push(SessionFigurePoint { x, metrics });
    }
}

/// A complete session-mode figure: metadata plus one or more series of
/// [`SessionMetrics`] points.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionFigureResult {
    /// Identifier, e.g. `"fig_sessions"`.
    pub id: String,
    /// Human-readable title.
    pub title: String,
    /// Meaning of the x-axis.
    pub x_label: String,
    /// The measured series.
    pub series: Vec<SessionFigureSeries>,
}

impl SessionFigureResult {
    /// Creates an empty session figure result.
    pub fn new(
        id: impl Into<String>,
        title: impl Into<String>,
        x_label: impl Into<String>,
    ) -> Self {
        SessionFigureResult {
            id: id.into(),
            title: title.into(),
            x_label: x_label.into(),
            series: Vec::new(),
        }
    }

    /// Looks up a series by label.
    pub fn series(&self, label: &str) -> Option<&SessionFigureSeries> {
        self.series.iter().find(|s| s.label == label)
    }

    /// Renders the result as an aligned plain-text table, one row per
    /// (series, x) pair, with one column per session metric.
    pub fn to_table(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "# {} — {}", self.id, self.title);
        let _ = writeln!(
            out,
            "{:<14} {:>10} {:>10} {:>10} {:>6} {:>10} {:>12} {:>14}",
            "series", self.x_label, "traffic", "viewers", "peak", "rebuf", "rebuf(s)", "origin(GB)"
        );
        for series in &self.series {
            for p in &series.points {
                let m = &p.metrics;
                let _ = writeln!(
                    out,
                    "{:<14} {:>10.4} {:>10.4} {:>10.2} {:>6} {:>10.4} {:>12.2} {:>14.3}",
                    series.label,
                    p.x,
                    m.traffic_reduction_ratio,
                    m.avg_concurrent_viewers,
                    m.peak_concurrent_viewers,
                    m.rebuffer_probability,
                    m.avg_rebuffer_secs,
                    m.origin_bytes_total / 1e9
                );
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn metrics(traffic: f64, delay: f64) -> Metrics {
        Metrics {
            requests: 100,
            traffic_reduction_ratio: traffic,
            avg_service_delay_secs: delay,
            avg_stream_quality: 0.9,
            total_added_value: 12.0,
            hit_ratio: 0.4,
            immediate_ratio: 0.5,
        }
    }

    #[test]
    fn series_and_lookup() {
        let mut fig = FigureResult::new("fig5", "Policy comparison", "cache fraction");
        let mut pb = FigureSeries::new("PB");
        pb.push(0.01, metrics(0.1, 50.0));
        pb.push(0.05, metrics(0.2, 30.0));
        fig.series.push(pb);
        assert!(fig.series("PB").is_some());
        assert!(fig.series("IF").is_none());
        assert_eq!(fig.series("PB").unwrap().points.len(), 2);
    }

    #[test]
    fn table_rendering_contains_all_rows() {
        let mut fig = FigureResult::new("fig9", "Estimator sweep", "e");
        let mut s = FigureSeries::new("PB(e)");
        s.push(0.2, metrics(0.15, 42.0));
        fig.series.push(s);
        let table = fig.to_table();
        assert!(table.contains("fig9"));
        assert!(table.contains("PB(e)"));
        assert!(table.contains("42.00"));
        assert!(table.lines().count() >= 3);
    }

    #[test]
    fn session_figure_series_lookup_and_table() {
        let mut fig =
            SessionFigureResult::new("fig_sessions", "Session contention", "cache fraction");
        let mut pb = SessionFigureSeries::new("PB");
        pb.push(
            0.05,
            SessionMetrics {
                sessions: 1_000,
                viewer_seconds: 5e5,
                avg_concurrent_viewers: 12.5,
                peak_concurrent_viewers: 40,
                rebuffer_probability: 0.125,
                avg_rebuffer_secs: 3.25,
                traffic_reduction_ratio: 0.2,
                origin_bytes_total: 2.5e9,
                egress_bins_bytes: vec![1.5e9, 1e9],
                horizon_secs: 4e4,
                outage_secs: 0.0,
                masked_stall_secs: 0.0,
            },
        );
        fig.series.push(pb);
        assert!(fig.series("PB").is_some());
        assert!(fig.series("LRU").is_none());
        let table = fig.to_table();
        assert!(table.contains("fig_sessions"));
        assert!(table.contains("0.1250"));
        assert!(table.contains("2.500"));
        assert!(table.lines().count() >= 3);
    }
}
