//! Drivers that regenerate every table and figure of the paper's evaluation
//! (Section 4).
//!
//! Each function returns a [`FigureResult`](crate::FigureResult) containing
//! the same series the paper plots; the `sc-bench` binaries print these as
//! tables and JSON. Absolute values differ from the paper (the bandwidth
//! models are synthetic equivalents — see `DESIGN.md`), but the qualitative
//! shape (which policy wins, where crossovers occur) is preserved.
//!
//! Beyond the paper: [`fig7_with`]/[`fig8_with`] rerun the
//! variable-bandwidth figures under AR(1) bandwidth evolution
//! ([`crate::BandwidthModel::Ar1`]) instead of i.i.d. ratios, and [`fig13`]
//! studies how bandwidth-estimator staleness (oracle vs EWMA vs windowed vs
//! probe) affects partial caching under that drift.

mod estimator_figures;
mod fault_figures;
mod figures;
mod session_figures;
mod table1;
mod value_figures;

pub use estimator_figures::{fig13, fig13_with, FIG13_ESTIMATORS};
pub use fault_figures::{fig_faults, fig_faults_with, FIG_FAULTS_MTTRS, FIG_FAULTS_POLICIES};
pub use figures::{
    fig5, fig6, fig7, fig7_with, fig8, fig8_with, fig9, policy_comparison_figure,
    policy_comparison_figure_with_model,
};
pub use session_figures::{fig_sessions, fig_sessions_with, FIG_SESSIONS_POLICIES};
pub use table1::{table1, Table1};
pub use value_figures::{fig10, fig11, fig12, value_comparison_figure};

use crate::config::SimulationConfig;
use crate::sweep::{PAPER_CACHE_FRACTIONS, QUICK_CACHE_FRACTIONS};
use sc_workload::WorkloadConfig;

/// How much compute to spend on an experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExperimentScale {
    /// Full paper scale: 5,000 objects, 100,000 requests per run, several
    /// replicated runs per data point, all six cache sizes.
    Paper,
    /// Reduced scale for quick exploration: 1,000 objects, 20,000 requests,
    /// two runs, three cache sizes.
    Quick,
    /// Minimal scale used by the test suite: 300 objects, 4,000 requests,
    /// one run, two cache sizes.
    Test,
}

impl ExperimentScale {
    /// The workload configuration for this scale.
    pub fn workload(&self) -> WorkloadConfig {
        let mut w = WorkloadConfig::paper_default();
        match self {
            ExperimentScale::Paper => {}
            ExperimentScale::Quick => {
                w.catalog.objects = 1_000;
                w.trace.requests = 20_000;
            }
            ExperimentScale::Test => {
                w.catalog.objects = 300;
                w.trace.requests = 4_000;
            }
        }
        w
    }

    /// Number of replicated runs averaged per data point.
    pub fn runs(&self) -> usize {
        match self {
            // The paper averages ten runs; three keeps the full-scale
            // harness affordable while still smoothing seed noise.
            ExperimentScale::Paper => 3,
            ExperimentScale::Quick => 2,
            ExperimentScale::Test => 1,
        }
    }

    /// Cache-size fractions swept on the x-axis.
    pub fn cache_fractions(&self) -> Vec<f64> {
        match self {
            ExperimentScale::Paper => PAPER_CACHE_FRACTIONS.to_vec(),
            ExperimentScale::Quick => QUICK_CACHE_FRACTIONS.to_vec(),
            ExperimentScale::Test => vec![0.02, 0.1],
        }
    }

    /// The base simulation configuration for this scale (constant bandwidth,
    /// PB policy; experiments override what they need).
    pub fn base_config(&self) -> SimulationConfig {
        SimulationConfig {
            workload: self.workload(),
            ..SimulationConfig::paper_default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_shrink_monotonically() {
        let paper = ExperimentScale::Paper;
        let quick = ExperimentScale::Quick;
        let test = ExperimentScale::Test;
        assert!(paper.workload().trace.requests > quick.workload().trace.requests);
        assert!(quick.workload().trace.requests > test.workload().trace.requests);
        assert!(paper.runs() >= quick.runs());
        assert!(quick.runs() >= test.runs());
        assert!(paper.cache_fractions().len() >= quick.cache_fractions().len());
        assert!(test.base_config().validate().is_ok());
    }
}
