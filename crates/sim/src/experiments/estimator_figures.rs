//! Figure 13 (beyond the paper): bandwidth-estimator staleness under
//! time-varying bandwidth.
//!
//! The paper's evaluation gives the caching algorithm an oracle — the true
//! long-run mean bandwidth of every path. Once path bandwidth *drifts*
//! ([`BandwidthModel::Ar1`]), a real proxy has to estimate it (Section 2.7):
//! passively from the throughput of past transfers (EWMA, sliding window)
//! or actively by probing. This experiment compares those estimators under
//! identical drifting-bandwidth workloads: one series per
//! [`EstimatorKind`], cache fraction on the x-axis, everything else held at
//! the Figure 8 configuration (PB policy, measured-path variability).

use crate::config::{BandwidthModel, EstimatorKind, SimError, SimulationConfig, VariabilityKind};
use crate::exec::{run_grid, ParallelExecutor};
use crate::experiments::ExperimentScale;
use crate::report::{FigureResult, FigureSeries};
use sc_cache::policy::PolicyKind;

/// The estimator kinds compared by [`fig13`], in series order.
pub const FIG13_ESTIMATORS: [EstimatorKind; 4] = [
    EstimatorKind::Oracle,
    EstimatorKind::Ewma { alpha: 0.3 },
    EstimatorKind::Windowed { window: 8 },
    EstimatorKind::Probe,
];

/// Figure 13: PB under AR(1) bandwidth drift, driven by each of the
/// paper's estimator families. Runs with [`BandwidthModel::ar1_default`].
///
/// # Errors
///
/// Propagates configuration validation errors from the simulator.
pub fn fig13(scale: ExperimentScale) -> Result<FigureResult, SimError> {
    fig13_with(scale, BandwidthModel::ar1_default())
}

/// [`fig13`] under an explicit [`BandwidthModel`] (an [`BandwidthModel::Iid`]
/// run is the no-drift control: estimators then only add sampling noise).
///
/// # Errors
///
/// Propagates configuration validation errors from the simulator.
pub fn fig13_with(scale: ExperimentScale, model: BandwidthModel) -> Result<FigureResult, SimError> {
    let base = SimulationConfig {
        policy: PolicyKind::PartialBandwidth,
        variability: VariabilityKind::MeasuredModerate,
        bandwidth_model: model,
        ..scale.base_config()
    };
    let fractions = scale.cache_fractions();

    // One flattened (estimator, cache fraction) grid so every point of the
    // figure shards across threads at once; run_grid merges in
    // deterministic grid order.
    let mut configs = Vec::with_capacity(FIG13_ESTIMATORS.len() * fractions.len());
    for &estimator in &FIG13_ESTIMATORS {
        for &fraction in &fractions {
            configs.push(SimulationConfig { estimator, ..base }.with_cache_fraction(fraction));
        }
    }
    let metrics = run_grid(&configs, scale.runs(), &ParallelExecutor::from_env())?;

    // Like fig7/fig8, each bandwidth model gets its own figure id so the
    // drift run and the no-drift control can sit side by side in results/.
    let (id, title) = match model {
        BandwidthModel::Ar1 { .. } => (
            "fig13",
            "PB under AR(1) bandwidth drift: oracle vs EWMA vs windowed vs probe estimation",
        ),
        BandwidthModel::Iid => (
            "fig13_iid",
            "PB under i.i.d. bandwidth (no-drift control): oracle vs EWMA vs windowed vs probe estimation",
        ),
    };
    let mut fig = FigureResult::new(id, title, "cache fraction");
    let mut points = metrics.into_iter();
    for &estimator in &FIG13_ESTIMATORS {
        let mut series = FigureSeries::new(estimator.label());
        for &fraction in &fractions {
            series.push(fraction, points.next().expect("grid covers the figure"));
        }
        fig.series.push(series);
    }
    Ok(fig)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig13_produces_one_series_per_estimator() {
        let fig = fig13(ExperimentScale::Test).unwrap();
        assert_eq!(fig.id, "fig13");
        assert_eq!(fig.series.len(), FIG13_ESTIMATORS.len());
        for (series, kind) in fig.series.iter().zip(FIG13_ESTIMATORS) {
            assert_eq!(series.label, kind.label());
            assert_eq!(
                series.points.len(),
                ExperimentScale::Test.cache_fractions().len()
            );
            for p in &series.points {
                assert!(p.metrics.requests > 0);
                assert!(p.metrics.avg_stream_quality > 0.0);
            }
        }
        // The estimator choice must reach the cache decisions: under drift
        // the stale-estimator runs cannot all be identical to the oracle.
        let oracle = fig.series("oracle-mean").unwrap();
        let differs = ["ewma", "windowed", "probe"]
            .iter()
            .any(|label| fig.series(label).unwrap().points[0].metrics != oracle.points[0].metrics);
        assert!(differs, "estimators never diverged from the oracle");
    }

    #[test]
    fn fig13_is_reproducible() {
        let a = fig13(ExperimentScale::Test).unwrap();
        let b = fig13(ExperimentScale::Test).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn fig13_no_drift_control_gets_its_own_id() {
        let fig = fig13_with(ExperimentScale::Test, BandwidthModel::Iid).unwrap();
        assert_eq!(fig.id, "fig13_iid");
        assert!(fig.title.contains("no-drift"));
    }
}
