//! The `fig_sessions` figure family (beyond the paper): policy comparison
//! under session-level shared-bottleneck contention.
//!
//! The paper's figures treat every request as an isolated bandwidth draw;
//! this experiment replays the same workloads through the discrete-event
//! session core ([`crate::session`]), where sessions span their playback
//! duration and share each origin path's bottleneck capacity by processor
//! sharing. The time-weighted metrics — concurrent viewers, rebuffer
//! probability, origin egress over time — quantify what partial caching
//! buys once contention exists: every cached prefix byte both removes
//! origin traffic *and* frees bottleneck bandwidth for the sessions that
//! still need it.

use crate::config::{SimError, SimulationConfig, VariabilityKind};
use crate::exec::ParallelExecutor;
use crate::experiments::ExperimentScale;
use crate::report::{SessionFigureResult, SessionFigureSeries};
use crate::session::run_session_grid;
use sc_cache::policy::PolicyKind;

/// The policies compared by [`fig_sessions`], in series order.
pub const FIG_SESSIONS_POLICIES: [PolicyKind; 3] = [
    PolicyKind::PartialBandwidth,
    PolicyKind::IntegralBandwidth,
    PolicyKind::Lru,
];

/// The session-contention figure: PB vs IB vs LRU across cache fractions,
/// under the constant-variability paper setting, measured by the
/// time-weighted session metrics.
///
/// # Errors
///
/// Propagates configuration validation errors from the simulator.
pub fn fig_sessions(scale: ExperimentScale) -> Result<SessionFigureResult, SimError> {
    fig_sessions_with(scale, &ParallelExecutor::from_env())
}

/// [`fig_sessions`] with an explicit executor (thread count).
///
/// # Errors
///
/// Propagates configuration validation errors from the simulator.
pub fn fig_sessions_with(
    scale: ExperimentScale,
    executor: &ParallelExecutor,
) -> Result<SessionFigureResult, SimError> {
    let base = SimulationConfig {
        variability: VariabilityKind::Constant,
        ..scale.base_config()
    };
    let fractions = scale.cache_fractions();

    // One flattened (policy, cache fraction) grid so every point of the
    // figure shards across threads at once; the session grid merges in
    // deterministic grid order, exactly like the per-request figures.
    let mut configs = Vec::with_capacity(FIG_SESSIONS_POLICIES.len() * fractions.len());
    for &policy in &FIG_SESSIONS_POLICIES {
        for &fraction in &fractions {
            configs.push(SimulationConfig { policy, ..base }.with_cache_fraction(fraction));
        }
    }
    let metrics = run_session_grid(&configs, scale.runs(), executor)?;

    let mut fig = SessionFigureResult::new(
        "fig_sessions",
        "Session-level contention: PB vs IB vs LRU under shared-bottleneck processor sharing",
        "cache fraction",
    );
    let mut points = metrics.into_iter();
    for &policy in &FIG_SESSIONS_POLICIES {
        let mut series = SessionFigureSeries::new(policy.label());
        for &fraction in &fractions {
            series.push(fraction, points.next().expect("grid covers the figure"));
        }
        fig.series.push(series);
    }
    Ok(fig)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig_sessions_produces_one_series_per_policy() {
        let fig = fig_sessions(ExperimentScale::Test).unwrap();
        assert_eq!(fig.id, "fig_sessions");
        assert_eq!(fig.series.len(), FIG_SESSIONS_POLICIES.len());
        for (series, policy) in fig.series.iter().zip(FIG_SESSIONS_POLICIES) {
            assert_eq!(series.label, policy.label());
            assert_eq!(
                series.points.len(),
                ExperimentScale::Test.cache_fractions().len()
            );
            for p in &series.points {
                assert!(p.metrics.sessions > 0);
                assert!(p.metrics.viewer_seconds > 0.0);
                assert!((0.0..=1.0).contains(&p.metrics.rebuffer_probability));
            }
        }
        // The policy choice must reach the outcome: the three series cannot
        // all coincide on the first point.
        let first: Vec<_> = fig.series.iter().map(|s| &s.points[0].metrics).collect();
        assert!(
            first[0] != first[1] || first[0] != first[2],
            "policies never diverged"
        );
        // Paired workloads: the viewer curve is policy-independent up to
        // float accumulation order (policies change the event instants the
        // integral is split at, not its value).
        for other in [first[1], first[2]] {
            assert!(
                (first[0].viewer_seconds - other.viewer_seconds).abs() / first[0].viewer_seconds
                    < 1e-12
            );
            assert_eq!(first[0].sessions, other.sessions);
        }
    }

    #[test]
    fn fig_sessions_is_reproducible() {
        let a = fig_sessions(ExperimentScale::Test).unwrap();
        let b = fig_sessions(ExperimentScale::Test).unwrap();
        assert_eq!(a, b);
    }
}
