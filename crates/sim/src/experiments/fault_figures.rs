//! The `fig_faults` figure (beyond the paper): resilience of partial
//! caching under origin-path outages.
//!
//! The paper argues that a network-aware cached prefix accelerates startup;
//! this experiment measures the same prefix's second dividend —
//! *availability*. Origin paths are subjected to the seeded outage model
//! ([`crate::PathFaultModel`]): exponential failure/repair alternation with
//! a small residual capacity during the outage. The figure sweeps the
//! outage rate (failures per hour of path up-time, the x-axis) at two
//! repair speeds, and compares how the rebuffer probability of PB, IB and
//! LRU degrades — plus how much stall time the cached prefixes mask
//! ([`crate::SessionMetrics::masked_stall_secs`]).

use crate::config::{PathFaultModel, SimError, SimulationConfig, VariabilityKind};
use crate::exec::ParallelExecutor;
use crate::experiments::ExperimentScale;
use crate::report::{SessionFigureResult, SessionFigureSeries};
use crate::session::run_session_grid;
use sc_cache::policy::PolicyKind;

/// The policies compared by [`fig_faults`], in series order.
pub const FIG_FAULTS_POLICIES: [PolicyKind; 3] = [
    PolicyKind::PartialBandwidth,
    PolicyKind::IntegralBandwidth,
    PolicyKind::Lru,
];

/// The mean-time-to-repair values (seconds) compared by [`fig_faults`]:
/// a fast recovery and a slow one, bracketing the session durations.
pub const FIG_FAULTS_MTTRS: [f64; 2] = [60.0, 300.0];

/// Capacity fraction surviving an outage in this figure: a brown-out close
/// to a hard failure.
const FAULT_RESIDUAL: f64 = 0.02;

/// Cache fraction held fixed while the outage rate sweeps — the middle of
/// the range where the policies are already well separated in
/// `fig_sessions`.
const FAULT_CACHE_FRACTION: f64 = 0.10;

/// Outage rates swept on the x-axis, in failures per hour of up-time.
fn outage_rates(scale: ExperimentScale) -> Vec<f64> {
    match scale {
        ExperimentScale::Paper => vec![0.0, 1.0, 2.0, 4.0, 8.0, 16.0],
        ExperimentScale::Quick => vec![0.0, 2.0, 8.0],
        ExperimentScale::Test => vec![0.0, 6.0],
    }
}

/// The resilience figure: rebuffer probability (and masked stall time)
/// versus origin outage rate, one series per `policy × MTTR` combination,
/// at a fixed mid-range cache fraction.
///
/// A zero rate means no fault injection at all — the leftmost point of
/// every series reproduces the healthy baseline bit-for-bit.
///
/// # Errors
///
/// Propagates configuration validation errors from the simulator.
pub fn fig_faults(scale: ExperimentScale) -> Result<SessionFigureResult, SimError> {
    fig_faults_with(scale, &ParallelExecutor::from_env())
}

/// [`fig_faults`] with an explicit executor (thread count).
///
/// # Errors
///
/// Propagates configuration validation errors from the simulator.
pub fn fig_faults_with(
    scale: ExperimentScale,
    executor: &ParallelExecutor,
) -> Result<SessionFigureResult, SimError> {
    let base = SimulationConfig {
        variability: VariabilityKind::Constant,
        ..scale.base_config()
    }
    .with_cache_fraction(FAULT_CACHE_FRACTION);
    let rates = outage_rates(scale);

    // One flattened (policy, mttr, rate) grid so the whole figure shards
    // across threads at once and merges in deterministic grid order.
    let mut configs = Vec::with_capacity(FIG_FAULTS_POLICIES.len() * FIG_FAULTS_MTTRS.len());
    for &policy in &FIG_FAULTS_POLICIES {
        for &mttr_secs in &FIG_FAULTS_MTTRS {
            for &rate in &rates {
                let path_faults = (rate > 0.0).then(|| PathFaultModel {
                    mtbf_secs: 3_600.0 / rate,
                    mttr_secs,
                    residual_capacity_fraction: FAULT_RESIDUAL,
                });
                configs.push(SimulationConfig {
                    policy,
                    path_faults,
                    ..base
                });
            }
        }
    }
    let metrics = run_session_grid(&configs, scale.runs(), executor)?;

    let mut fig = SessionFigureResult::new(
        "fig_faults",
        "Resilience under origin outages: rebuffer probability vs outage rate and MTTR",
        "outages per hour",
    );
    let mut points = metrics.into_iter();
    for &policy in &FIG_FAULTS_POLICIES {
        for &mttr_secs in &FIG_FAULTS_MTTRS {
            let mut series =
                SessionFigureSeries::new(format!("{} mttr={}s", policy.label(), mttr_secs));
            for &rate in &rates {
                series.push(rate, points.next().expect("grid covers the figure"));
            }
            fig.series.push(series);
        }
    }
    Ok(fig)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig_faults_produces_policy_by_mttr_series() {
        let fig = fig_faults(ExperimentScale::Test).unwrap();
        assert_eq!(fig.id, "fig_faults");
        assert_eq!(
            fig.series.len(),
            FIG_FAULTS_POLICIES.len() * FIG_FAULTS_MTTRS.len()
        );
        for series in &fig.series {
            assert_eq!(
                series.points.len(),
                outage_rates(ExperimentScale::Test).len()
            );
            // The rate-0 point carries no outage; every faulted point does.
            assert_eq!(series.points[0].metrics.outage_secs, 0.0);
            assert_eq!(series.points[0].metrics.masked_stall_secs, 0.0);
            for p in &series.points[1..] {
                assert!(p.metrics.outage_secs > 0.0);
                assert!((0.0..=1.0).contains(&p.metrics.rebuffer_probability));
            }
        }
        // Outages must hurt: the faulted point cannot rebuffer less than
        // the healthy baseline of the same series.
        for series in &fig.series {
            let healthy = &series.points[0].metrics;
            let faulted = series.points.last().unwrap();
            assert!(faulted.metrics.avg_rebuffer_secs >= healthy.avg_rebuffer_secs);
        }
    }

    #[test]
    fn fig_faults_is_reproducible() {
        let a = fig_faults(ExperimentScale::Test).unwrap();
        let b = fig_faults(ExperimentScale::Test).unwrap();
        assert_eq!(a, b);
    }
}
