//! Figures 10–12: value-maximising caching (Section 2.6 / Section 4.4).

use crate::config::{SimError, SimulationConfig, VariabilityKind};
use crate::experiments::ExperimentScale;
use crate::report::{FigureResult, FigureSeries};
use crate::sweep::{sweep_estimator, sweep_policies};
use sc_cache::policy::PolicyKind;

/// The IF / PB-V / IB-V comparison over a range of cache sizes under the
/// given variability model — the common engine behind Figures 10 and 11.
/// The metrics of interest are the traffic-reduction ratio and the total
/// added value.
///
/// # Errors
///
/// Propagates configuration validation errors from the simulator.
pub fn value_comparison_figure(
    id: &str,
    title: &str,
    variability: VariabilityKind,
    scale: ExperimentScale,
) -> Result<FigureResult, SimError> {
    let base = SimulationConfig {
        variability,
        ..scale.base_config()
    };
    let policies = [
        PolicyKind::IntegralFrequency,
        PolicyKind::PartialBandwidthValue { e: 1.0 },
        PolicyKind::IntegralBandwidthValue,
    ];
    let series = sweep_policies(&base, &policies, &scale.cache_fractions(), scale.runs())?;
    let mut fig = FigureResult::new(id, title, "cache fraction");
    fig.series = series;
    Ok(fig)
}

/// Figure 10: IF vs PB-V vs IB-V under constant bandwidth.
///
/// # Errors
///
/// Propagates configuration validation errors from the simulator.
pub fn fig10(scale: ExperimentScale) -> Result<FigureResult, SimError> {
    value_comparison_figure(
        "fig10",
        "Value-based caching (IF vs PB-V vs IB-V) under constant bandwidth",
        VariabilityKind::Constant,
        scale,
    )
}

/// Figure 11: IF vs PB-V vs IB-V under measured-path bandwidth variability.
///
/// # Errors
///
/// Propagates configuration validation errors from the simulator.
pub fn fig11(scale: ExperimentScale) -> Result<FigureResult, SimError> {
    value_comparison_figure(
        "fig11",
        "Value-based caching (IF vs PB-V vs IB-V) under measured-path variability",
        VariabilityKind::MeasuredModerate,
        scale,
    )
}

/// Figure 12: the conservative-estimator sweep for value-based partial
/// caching (PB-V(e)) under measured-path variability. One series per cache
/// size, `e` on the x-axis; the paper finds that a moderate `e ≈ 0.5`
/// maximises the total added value.
///
/// # Errors
///
/// Propagates configuration validation errors from the simulator.
pub fn fig12(scale: ExperimentScale) -> Result<FigureResult, SimError> {
    let base = SimulationConfig {
        variability: VariabilityKind::MeasuredModerate,
        ..scale.base_config()
    };
    let estimators: Vec<f64> = match scale {
        ExperimentScale::Paper => vec![0.2, 0.4, 0.5, 0.6, 0.8, 1.0],
        ExperimentScale::Quick => vec![0.2, 0.5, 1.0],
        ExperimentScale::Test => vec![0.5, 1.0],
    };
    let mut fig = FigureResult::new(
        "fig12",
        "Value-based partial caching with conservative bandwidth estimation (PB-V(e))",
        "estimator e",
    );
    for &fraction in &scale.cache_fractions() {
        let points = sweep_estimator(&base, fraction, &estimators, true, scale.runs())?;
        let mut series = FigureSeries::new(format!("PB-V(e) C={fraction:.3}"));
        for (e, metrics) in points {
            series.push(e, metrics);
        }
        fig.series.push(series);
    }
    Ok(fig)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig10_value_ordering_matches_paper() {
        let fig = fig10(ExperimentScale::Test).unwrap();
        assert_eq!(fig.series.len(), 3);
        let if_series = fig.series("IF").unwrap();
        let pbv_series = fig.series("PB-V").unwrap();
        let ibv_series = fig.series("IB-V").unwrap();
        for i in 0..if_series.points.len() {
            let if_m = if_series.points[i].metrics;
            let pbv_m = pbv_series.points[i].metrics;
            let ibv_m = ibv_series.points[i].metrics;
            // Paper Figure 10: PB-V yields the highest total added value,
            // IF the highest traffic reduction; IB-V sits in between on
            // value.
            assert!(
                pbv_m.total_added_value + 1e-9 >= if_m.total_added_value,
                "PB-V value {} vs IF value {}",
                pbv_m.total_added_value,
                if_m.total_added_value
            );
            assert!(
                if_m.traffic_reduction_ratio >= pbv_m.traffic_reduction_ratio - 0.03,
                "IF traffic {} vs PB-V {}",
                if_m.traffic_reduction_ratio,
                pbv_m.traffic_reduction_ratio
            );
            assert!(pbv_m.total_added_value + 1e-9 >= ibv_m.total_added_value * 0.8);
        }
    }

    #[test]
    fn fig12_has_one_series_per_cache_size() {
        let fig = fig12(ExperimentScale::Test).unwrap();
        assert_eq!(
            fig.series.len(),
            ExperimentScale::Test.cache_fractions().len()
        );
        for series in &fig.series {
            assert_eq!(series.points.len(), 2);
            for p in &series.points {
                assert!(p.metrics.total_added_value >= 0.0);
            }
        }
    }
}
