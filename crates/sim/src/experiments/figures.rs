//! Figures 5–9: delay/quality-oriented policy comparisons.

use crate::config::{BandwidthModel, SimError, SimulationConfig, VariabilityKind};
use crate::experiments::ExperimentScale;
use crate::report::{FigureResult, FigureSeries};
use crate::sweep::{sweep_estimator, sweep_policies, sweep_zipf_alpha};
use sc_cache::policy::PolicyKind;

/// The IF / PB / IB comparison over a range of cache sizes, under the given
/// bandwidth-variability model. This is the common engine behind Figures 5,
/// 7 and 8 of the paper.
///
/// # Errors
///
/// Propagates configuration validation errors from the simulator.
pub fn policy_comparison_figure(
    id: &str,
    title: &str,
    variability: VariabilityKind,
    scale: ExperimentScale,
) -> Result<FigureResult, SimError> {
    policy_comparison_figure_with_model(id, title, variability, BandwidthModel::Iid, scale)
}

/// [`policy_comparison_figure`] under an explicit [`BandwidthModel`] —
/// running a figure in [`BandwidthModel::Ar1`] mode replaces the i.i.d.
/// per-request ratios by a mean-reverting evolution of every path, which is
/// the more faithful reading of the paper's Figure 4 measurements.
///
/// # Errors
///
/// Propagates configuration validation errors from the simulator.
pub fn policy_comparison_figure_with_model(
    id: &str,
    title: &str,
    variability: VariabilityKind,
    bandwidth_model: BandwidthModel,
    scale: ExperimentScale,
) -> Result<FigureResult, SimError> {
    let base = SimulationConfig {
        variability,
        bandwidth_model,
        ..scale.base_config()
    };
    let policies = [
        PolicyKind::IntegralFrequency,
        PolicyKind::PartialBandwidth,
        PolicyKind::IntegralBandwidth,
    ];
    let series = sweep_policies(&base, &policies, &scale.cache_fractions(), scale.runs())?;
    let mut fig = FigureResult::new(id, title, "cache fraction");
    fig.series = series;
    Ok(fig)
}

/// Figure 5: IF vs PB vs IB under **constant** bandwidth — traffic-reduction
/// ratio, average service delay and average stream quality versus cache
/// size.
///
/// # Errors
///
/// Propagates configuration validation errors from the simulator.
pub fn fig5(scale: ExperimentScale) -> Result<FigureResult, SimError> {
    policy_comparison_figure(
        "fig5",
        "IF vs PB vs IB under constant bandwidth",
        VariabilityKind::Constant,
        scale,
    )
}

/// Figure 7: the same comparison under **high** (NLANR-log-like) bandwidth
/// variability.
///
/// # Errors
///
/// Propagates configuration validation errors from the simulator.
pub fn fig7(scale: ExperimentScale) -> Result<FigureResult, SimError> {
    fig7_with(scale, BandwidthModel::Iid)
}

/// [`fig7`] under an explicit [`BandwidthModel`]. In AR(1) mode the figure
/// id becomes `fig7_ar1`, so both variants can be emitted side by side.
///
/// # Errors
///
/// Propagates configuration validation errors from the simulator.
pub fn fig7_with(scale: ExperimentScale, model: BandwidthModel) -> Result<FigureResult, SimError> {
    let (id, title) = match model {
        BandwidthModel::Iid => (
            "fig7",
            "IF vs PB vs IB under high (NLANR-like) bandwidth variability",
        ),
        BandwidthModel::Ar1 { .. } => (
            "fig7_ar1",
            "IF vs PB vs IB under high (NLANR-like) AR(1) bandwidth evolution",
        ),
    };
    policy_comparison_figure_with_model(id, title, VariabilityKind::NlanrLike, model, scale)
}

/// Figure 8: the same comparison under **low** (measured-path) bandwidth
/// variability.
///
/// # Errors
///
/// Propagates configuration validation errors from the simulator.
pub fn fig8(scale: ExperimentScale) -> Result<FigureResult, SimError> {
    fig8_with(scale, BandwidthModel::Iid)
}

/// [`fig8`] under an explicit [`BandwidthModel`]. In AR(1) mode the figure
/// id becomes `fig8_ar1`, so both variants can be emitted side by side.
///
/// # Errors
///
/// Propagates configuration validation errors from the simulator.
pub fn fig8_with(scale: ExperimentScale, model: BandwidthModel) -> Result<FigureResult, SimError> {
    let (id, title) = match model {
        BandwidthModel::Iid => (
            "fig8",
            "IF vs PB vs IB under measured-path bandwidth variability",
        ),
        BandwidthModel::Ar1 { .. } => (
            "fig8_ar1",
            "IF vs PB vs IB under measured-path AR(1) bandwidth evolution",
        ),
    };
    policy_comparison_figure_with_model(id, title, VariabilityKind::MeasuredModerate, model, scale)
}

/// Figure 6: effect of the Zipf-like popularity skew α on PB and IB, over a
/// grid of (α, cache size) points. Each series is labelled
/// `"<policy> C=<fraction>"` with α on the x-axis.
///
/// # Errors
///
/// Propagates configuration validation errors from the simulator.
pub fn fig6(scale: ExperimentScale) -> Result<FigureResult, SimError> {
    let base = scale.base_config();
    let alphas: Vec<f64> = match scale {
        ExperimentScale::Paper => vec![0.6, 0.73, 0.9, 1.05, 1.2],
        ExperimentScale::Quick => vec![0.6, 0.9, 1.2],
        ExperimentScale::Test => vec![0.6, 1.2],
    };
    let fractions = scale.cache_fractions();
    let mut fig = FigureResult::new(
        "fig6",
        "Effect of Zipf popularity skew (alpha) on PB and IB",
        "zipf alpha",
    );
    for policy in [PolicyKind::PartialBandwidth, PolicyKind::IntegralBandwidth] {
        for &fraction in &fractions {
            let points = sweep_zipf_alpha(&base, policy, fraction, &alphas, scale.runs())?;
            let mut series = FigureSeries::new(format!("{} C={:.3}", policy.label(), fraction));
            for (alpha, metrics) in points {
                series.push(alpha, metrics);
            }
            fig.series.push(series);
        }
    }
    Ok(fig)
}

/// Figure 9: the estimator sweep — partial caching based on a conservative
/// bandwidth estimate `e ∈ (0, 1]`, spanning the spectrum from IB-like
/// (`e → 0`) to PB (`e = 1`), under variable bandwidth. One series per
/// cache size, `e` on the x-axis.
///
/// # Errors
///
/// Propagates configuration validation errors from the simulator.
pub fn fig9(scale: ExperimentScale) -> Result<FigureResult, SimError> {
    let base = SimulationConfig {
        variability: VariabilityKind::NlanrLike,
        ..scale.base_config()
    };
    let estimators: Vec<f64> = match scale {
        ExperimentScale::Paper => vec![0.0, 0.2, 0.4, 0.6, 0.8, 1.0],
        ExperimentScale::Quick => vec![0.0, 0.5, 1.0],
        ExperimentScale::Test => vec![0.0, 1.0],
    };
    let mut fig = FigureResult::new(
        "fig9",
        "Partial caching with conservative bandwidth estimation (PB(e))",
        "estimator e",
    );
    for &fraction in &scale.cache_fractions() {
        let points = sweep_estimator(&base, fraction, &estimators, false, scale.runs())?;
        let mut series = FigureSeries::new(format!("PB(e) C={fraction:.3}"));
        for (e, metrics) in points {
            series.push(e, metrics);
        }
        fig.series.push(series);
    }
    Ok(fig)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig5_shapes_match_the_paper() {
        let fig = fig5(ExperimentScale::Test).unwrap();
        assert_eq!(fig.series.len(), 3);
        let if_series = fig.series("IF").unwrap();
        let pb_series = fig.series("PB").unwrap();
        let ib_series = fig.series("IB").unwrap();
        for i in 0..if_series.points.len() {
            let if_m = if_series.points[i].metrics;
            let pb_m = pb_series.points[i].metrics;
            let ib_m = ib_series.points[i].metrics;
            // Paper Figure 5: IF achieves the highest traffic reduction, PB
            // the lowest; PB achieves the lowest delay and highest quality.
            assert!(
                if_m.traffic_reduction_ratio >= pb_m.traffic_reduction_ratio - 0.03,
                "IF traffic {} vs PB {}",
                if_m.traffic_reduction_ratio,
                pb_m.traffic_reduction_ratio
            );
            assert!(
                pb_m.avg_service_delay_secs <= if_m.avg_service_delay_secs + 1.0,
                "PB delay {} vs IF {}",
                pb_m.avg_service_delay_secs,
                if_m.avg_service_delay_secs
            );
            assert!(
                pb_m.avg_service_delay_secs <= ib_m.avg_service_delay_secs + 1.0,
                "PB delay {} vs IB {}",
                pb_m.avg_service_delay_secs,
                ib_m.avg_service_delay_secs
            );
            assert!(pb_m.avg_stream_quality + 0.02 >= if_m.avg_stream_quality);
        }
    }

    #[test]
    fn fig7_and_fig8_run_in_ar1_mode_with_distinct_ids() {
        let ar1 = BandwidthModel::ar1_default();
        let f7 = fig7_with(ExperimentScale::Test, ar1).unwrap();
        assert_eq!(f7.id, "fig7_ar1");
        assert_eq!(f7.series.len(), 3);
        let f8 = fig8_with(ExperimentScale::Test, ar1).unwrap();
        assert_eq!(f8.id, "fig8_ar1");
        // AR(1) evolution must actually change the numbers relative to the
        // i.i.d. run of the same figure (same seeds, same workload).
        let f8_iid = fig8(ExperimentScale::Test).unwrap();
        assert_eq!(f8_iid.id, "fig8");
        assert_ne!(
            f8.series("PB").unwrap().points[0].metrics,
            f8_iid.series("PB").unwrap().points[0].metrics,
            "AR(1) mode did not alter the simulation"
        );
    }

    #[test]
    fn fig9_e_zero_reduces_more_traffic_than_e_one() {
        let fig = fig9(ExperimentScale::Test).unwrap();
        for series in &fig.series {
            let first = series.points.first().unwrap();
            let last = series.points.last().unwrap();
            assert_eq!(first.x, 0.0);
            assert_eq!(last.x, 1.0);
            assert!(
                first.metrics.traffic_reduction_ratio
                    >= last.metrics.traffic_reduction_ratio - 0.03
            );
        }
    }
}
