//! Table 1: characteristics of the synthetic workload.

use crate::config::SimError;
use crate::experiments::ExperimentScale;
use sc_workload::{CatalogStats, TraceStats};
use std::fmt;

/// The reproduced Table 1: the paper's nominal workload parameters next to
/// the statistics measured on an actually generated workload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Table1 {
    /// Configured number of objects.
    pub objects: usize,
    /// Configured number of requests.
    pub requests: usize,
    /// Configured Zipf skew α.
    pub zipf_alpha: f64,
    /// Configured object bit-rate in bytes per second.
    pub bitrate_bps: f64,
    /// Measured catalog statistics.
    pub catalog: CatalogStats,
    /// Measured trace statistics.
    pub trace: TraceStats,
}

impl Table1 {
    /// Measured total unique object size in gigabytes (paper: ≈ 790 GB at
    /// full scale).
    pub fn total_unique_gb(&self) -> f64 {
        self.catalog.total_bytes / 1e9
    }
}

impl fmt::Display for Table1 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "# table1 — Characteristics of the Synthetic Workload")?;
        writeln!(f, "{:<34} {:>16}", "Number of Objects", self.objects)?;
        writeln!(
            f,
            "{:<34} {:>16}",
            "Object Popularity",
            format!("Zipf-like a={}", self.zipf_alpha)
        )?;
        writeln!(f, "{:<34} {:>16}", "Number of Requests", self.requests)?;
        writeln!(f, "{:<34} {:>16}", "Request Arrival Process", "Poisson")?;
        writeln!(
            f,
            "{:<34} {:>16}",
            "Mean Object Duration (min)",
            format!("{:.1}", self.catalog.mean_duration_minutes)
        )?;
        writeln!(
            f,
            "{:<34} {:>16}",
            "Mean Object Length (frames)",
            format!("{:.0}", self.catalog.mean_frames)
        )?;
        writeln!(
            f,
            "{:<34} {:>16}",
            "Object Bit-rate (KB/s)",
            format!("{:.0}", self.bitrate_bps / 1_000.0)
        )?;
        writeln!(
            f,
            "{:<34} {:>16}",
            "Total Storage (GB)",
            format!("{:.0}", self.total_unique_gb())
        )?;
        writeln!(
            f,
            "{:<34} {:>16}",
            "Top-decile request share",
            format!("{:.2}", self.trace.top_decile_share)
        )?;
        Ok(())
    }
}

/// Generates the workload for the given scale and measures its Table-1
/// statistics.
///
/// # Errors
///
/// Returns [`SimError::Workload`] if the workload configuration is invalid.
pub fn table1(scale: ExperimentScale) -> Result<Table1, SimError> {
    let config = scale.workload();
    let workload = config
        .generate()
        .map_err(|e| SimError::Workload(e.to_string()))?;
    Ok(Table1 {
        objects: config.catalog.objects,
        requests: config.trace.requests,
        zipf_alpha: config.trace.zipf_alpha,
        bitrate_bps: config.catalog.bitrate_bps,
        catalog: workload.catalog_stats(),
        trace: workload.trace_stats(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_test_scale_matches_configuration() {
        let t = table1(ExperimentScale::Test).unwrap();
        assert_eq!(t.objects, 300);
        assert_eq!(t.requests, 4_000);
        assert_eq!(t.catalog.objects, 300);
        assert_eq!(t.trace.requests, 4_000);
        assert!((40.0..70.0).contains(&t.catalog.mean_duration_minutes));
        let rendered = t.to_string();
        assert!(rendered.contains("Zipf-like"));
        assert!(rendered.contains("Total Storage"));
    }

    #[test]
    fn table1_mean_duration_near_55_minutes() {
        let t = table1(ExperimentScale::Quick).unwrap();
        assert!(
            (48.0..62.0).contains(&t.catalog.mean_duration_minutes),
            "mean duration {}",
            t.catalog.mean_duration_minutes
        );
        assert!(t.total_unique_gb() > 100.0); // 1,000 objects ≈ 158 GB
    }
}
