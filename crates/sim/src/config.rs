//! Simulation configuration.

use sc_cache::policy::PolicyKind;
use sc_workload::WorkloadConfig;
use std::error::Error;
use std::fmt;

/// Which bandwidth-variability model drives the instantaneous bandwidth of
/// each request (Section 3.1 / Figures 3–4 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VariabilityKind {
    /// No variability: each path's bandwidth is constant over time
    /// (the assumption behind Figures 5, 6 and 10).
    Constant,
    /// High variability matching the NLANR proxy-log ratios (Figure 3;
    /// used in Figure 7).
    NlanrLike,
    /// Low variability (INRIA-like measured path, Figure 4).
    MeasuredLow,
    /// Moderate variability (Taiwan-like measured path, Figure 4; used in
    /// Figures 8, 11 and 12).
    MeasuredModerate,
    /// Higher measured-path variability (Hong-Kong-like, Figure 4).
    MeasuredHigh,
}

impl VariabilityKind {
    /// Instantiates the corresponding ratio distribution.
    pub fn model(&self) -> sc_netmodel::VariabilityModel {
        use sc_netmodel::VariabilityModel as V;
        match self {
            VariabilityKind::Constant => V::constant(),
            VariabilityKind::NlanrLike => V::nlanr_like(),
            VariabilityKind::MeasuredLow => V::measured_path_low(),
            VariabilityKind::MeasuredModerate => V::measured_path_moderate(),
            VariabilityKind::MeasuredHigh => V::measured_path_high(),
        }
    }

    /// Human-readable label used in reports.
    pub fn label(&self) -> &'static str {
        match self {
            VariabilityKind::Constant => "constant",
            VariabilityKind::NlanrLike => "nlanr-variability",
            VariabilityKind::MeasuredLow => "measured-low",
            VariabilityKind::MeasuredModerate => "measured-moderate",
            VariabilityKind::MeasuredHigh => "measured-high",
        }
    }
}

/// How each path's *instantaneous* bandwidth relates to its long-run
/// average over the course of a simulated session.
///
/// The paper's measurements (Section 3.1) show both a marginal ratio
/// distribution (Figures 3–4) and temporal structure: bandwidth drifts
/// slowly around the mean rather than being redrawn independently for every
/// request. [`BandwidthModel::Iid`] reproduces only the marginal
/// distribution; [`BandwidthModel::Ar1`] additionally reproduces the drift
/// by evolving every path through the mean-reverting AR(1) process of
/// [`sc_netmodel::BandwidthTimeSeries`], sampled at each request's arrival
/// time on the simulation clock.
///
/// ```
/// use sc_sim::{BandwidthModel, SimulationConfig};
///
/// let mut config = SimulationConfig::small();
/// assert_eq!(config.bandwidth_model, BandwidthModel::Iid);
/// // Switch Figure 7/8-style runs to time-varying bandwidth.
/// config.bandwidth_model = BandwidthModel::ar1_default();
/// assert!(config.validate().is_ok());
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BandwidthModel {
    /// Each request draws an independent sample-to-mean ratio from the
    /// configured [`VariabilityKind`] — the seed behaviour, and the model
    /// behind the golden regression metrics.
    Iid,
    /// Each path's bandwidth evolves as a mean-reverting AR(1) process
    /// ([`sc_netmodel::TimeSeriesConfig`]): the path mean comes from the
    /// NLANR-like base distribution and the marginal coefficient of
    /// variation from the configured [`VariabilityKind`], so only the
    /// *temporal* parameters live here.
    Ar1 {
        /// Autocorrelation of consecutive series samples, in `[0, 1)`.
        autocorrelation: f64,
        /// Spacing of the series samples in (simulated) seconds.
        interval_secs: f64,
    },
}

impl BandwidthModel {
    /// The default AR(1) parameterisation: strongly correlated samples
    /// (`rho = 0.9`) every four minutes, matching the measurement cadence
    /// of the paper's Figure 4 paths.
    pub fn ar1_default() -> Self {
        BandwidthModel::Ar1 {
            autocorrelation: 0.9,
            interval_secs: 240.0,
        }
    }

    /// Human-readable label used in reports.
    pub fn label(&self) -> &'static str {
        match self {
            BandwidthModel::Iid => "iid",
            BandwidthModel::Ar1 { .. } => "ar1",
        }
    }

    /// Validates the model parameters.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::BandwidthModel`] when the AR(1) autocorrelation
    /// is outside `[0, 1)` or the sampling interval is not positive.
    pub fn validate(&self) -> Result<(), SimError> {
        if let BandwidthModel::Ar1 {
            autocorrelation,
            interval_secs,
        } = *self
        {
            if !autocorrelation.is_finite() || !(0.0..1.0).contains(&autocorrelation) {
                return Err(SimError::BandwidthModel(format!(
                    "AR(1) autocorrelation must lie in [0, 1), got {autocorrelation}"
                )));
            }
            if !interval_secs.is_finite() || interval_secs <= 0.0 {
                return Err(SimError::BandwidthModel(format!(
                    "AR(1) interval must be positive and finite, got {interval_secs}"
                )));
            }
        }
        Ok(())
    }
}

/// How the caching algorithm estimates each path's bandwidth (Section 2.7
/// of the paper).
///
/// The cache's placement decisions need a bandwidth estimate per origin
/// path; the transfer itself experiences the *true* instantaneous
/// bandwidth. Under time-varying bandwidth ([`BandwidthModel::Ar1`]) the
/// estimator's staleness becomes a first-order effect — the subject of the
/// fig13 experiment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EstimatorKind {
    /// An oracle that always reports the path's long-run mean — the seed
    /// behaviour, exact under [`BandwidthModel::Iid`], increasingly stale
    /// under drift.
    Oracle,
    /// Passive exponentially-weighted moving average over the throughput of
    /// past transfers ([`sc_netmodel::EwmaEstimator`]).
    Ewma {
        /// Weight of the newest observation, in `[0, 1]`.
        alpha: f64,
    },
    /// Passive sliding-window mean over the last `window` transfers
    /// ([`sc_netmodel::WindowedEstimator`]).
    Windowed {
        /// Number of recent transfers averaged.
        window: usize,
    },
    /// Active probing: measure the path's current bandwidth just before
    /// each placement decision ([`sc_netmodel::ProbeEstimator`]) — fresh
    /// but (in a real proxy) not free.
    Probe,
}

impl EstimatorKind {
    /// Human-readable label used in reports.
    pub fn label(&self) -> &'static str {
        match self {
            EstimatorKind::Oracle => "oracle-mean",
            EstimatorKind::Ewma { .. } => "ewma",
            EstimatorKind::Windowed { .. } => "windowed",
            EstimatorKind::Probe => "probe",
        }
    }

    /// Validates the estimator parameters.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Estimator`] for an EWMA weight outside `[0, 1]`
    /// or a zero-length window.
    pub fn validate(&self) -> Result<(), SimError> {
        match *self {
            EstimatorKind::Ewma { alpha }
                if !alpha.is_finite() || !(0.0..=1.0).contains(&alpha) =>
            {
                Err(SimError::Estimator(format!(
                    "EWMA alpha must lie in [0, 1], got {alpha}"
                )))
            }
            EstimatorKind::Windowed { window: 0 } => Err(SimError::Estimator(
                "window must hold at least one sample".to_string(),
            )),
            _ => Ok(()),
        }
    }
}

/// A stochastic outage model for the origin paths of the session
/// simulator — the deterministic counterpart of the runnable proxy's
/// fault-injection layer (`sc_proxy`'s `FaultPlan`).
///
/// Each path alternates between *up* and *down* periods whose lengths are
/// drawn from exponential distributions with means `mtbf_secs` (mean time
/// between failures) and `mttr_secs` (mean time to repair). While a path is
/// down its capacity is multiplied by `residual_capacity_fraction` — a
/// brown-out rather than a hard zero, which keeps the processor-sharing
/// core's positive-capacity invariant intact (a full outage is approximated
/// by a small residual such as the default 1 %).
///
/// The whole outage timeline is pre-generated from a seed derived from the
/// run seed ([`crate::exec::fault_seed`]) before the event loop starts, so
/// runs remain byte-identical at any `SC_SIM_THREADS`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PathFaultModel {
    /// Mean up-time between outages, in seconds (exponentially
    /// distributed).
    pub mtbf_secs: f64,
    /// Mean outage duration, in seconds (exponentially distributed).
    pub mttr_secs: f64,
    /// Multiplier applied to a path's capacity while it is down, in
    /// `(0, 1]`.
    pub residual_capacity_fraction: f64,
}

impl Default for PathFaultModel {
    /// One outage per simulated hour on average, repaired in a minute,
    /// with 1 % of the path capacity surviving the outage.
    fn default() -> Self {
        PathFaultModel {
            mtbf_secs: 3_600.0,
            mttr_secs: 60.0,
            residual_capacity_fraction: 0.01,
        }
    }
}

impl PathFaultModel {
    /// Validates the model parameters.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::FaultModel`] when either mean is not positive
    /// and finite or the residual capacity fraction is outside `(0, 1]`.
    pub fn validate(&self) -> Result<(), SimError> {
        if !self.mtbf_secs.is_finite() || self.mtbf_secs <= 0.0 {
            return Err(SimError::FaultModel(format!(
                "mean time between failures must be positive and finite, got {}",
                self.mtbf_secs
            )));
        }
        if !self.mttr_secs.is_finite() || self.mttr_secs <= 0.0 {
            return Err(SimError::FaultModel(format!(
                "mean time to repair must be positive and finite, got {}",
                self.mttr_secs
            )));
        }
        if !self.residual_capacity_fraction.is_finite()
            || self.residual_capacity_fraction <= 0.0
            || self.residual_capacity_fraction > 1.0
        {
            return Err(SimError::FaultModel(format!(
                "residual capacity fraction must lie in (0, 1], got {}",
                self.residual_capacity_fraction
            )));
        }
        Ok(())
    }
}

/// Error returned when a [`SimulationConfig`] is invalid.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// The cache size was negative or not finite.
    InvalidCacheSize(f64),
    /// The warm-up fraction was outside `[0, 1)`.
    InvalidWarmup(f64),
    /// The workload configuration was invalid.
    Workload(String),
    /// The number of replicated runs was zero.
    NoRuns,
    /// The bandwidth model parameters were invalid.
    BandwidthModel(String),
    /// The bandwidth estimator parameters were invalid.
    Estimator(String),
    /// The session-mode egress bin count was zero.
    InvalidEgressBins,
    /// The path fault model parameters were invalid.
    FaultModel(String),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::InvalidCacheSize(v) => {
                write!(f, "cache size must be finite and non-negative, got {v}")
            }
            SimError::InvalidWarmup(v) => {
                write!(f, "warm-up fraction must lie in [0, 1), got {v}")
            }
            SimError::Workload(why) => write!(f, "invalid workload configuration: {why}"),
            SimError::NoRuns => write!(f, "at least one simulation run is required"),
            SimError::BandwidthModel(why) => write!(f, "invalid bandwidth model: {why}"),
            SimError::Estimator(why) => write!(f, "invalid bandwidth estimator: {why}"),
            SimError::InvalidEgressBins => {
                write!(f, "session egress accumulation needs at least one bin")
            }
            SimError::FaultModel(why) => write!(f, "invalid path fault model: {why}"),
        }
    }
}

impl Error for SimError {}

/// Full description of one simulation run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimulationConfig {
    /// Workload (catalog + request trace) configuration.
    pub workload: WorkloadConfig,
    /// Cache capacity in bytes.
    pub cache_size_bytes: f64,
    /// Replacement policy under test.
    pub policy: PolicyKind,
    /// Bandwidth variability model (the marginal ratio distribution).
    pub variability: VariabilityKind,
    /// Temporal structure of each path's bandwidth: i.i.d. per-request
    /// ratios or an AR(1) evolution sampled on the simulation clock.
    pub bandwidth_model: BandwidthModel,
    /// How the caching algorithm estimates per-path bandwidth.
    pub estimator: EstimatorKind,
    /// Fraction of the trace used to warm the cache before metrics are
    /// collected (the paper uses the first half, i.e. `0.5`). Per-request
    /// mode only; session-mode metrics are time-weighted over the whole
    /// trace.
    pub warmup_fraction: f64,
    /// Number of fixed-width time bins of the session-mode
    /// origin-egress-over-time curve (session mode only).
    pub session_egress_bins: usize,
    /// Optional path outage model (session mode only). `None` — the
    /// default — injects no faults and leaves every golden-pinned result
    /// bit-for-bit unchanged.
    pub path_faults: Option<PathFaultModel>,
    /// Base seed; replicated runs use `seed`, `seed + 1`, ….
    pub seed: u64,
}

impl Default for SimulationConfig {
    fn default() -> Self {
        SimulationConfig {
            workload: WorkloadConfig::default(),
            cache_size_bytes: 32.0 * 1e9,
            policy: PolicyKind::PartialBandwidth,
            variability: VariabilityKind::Constant,
            bandwidth_model: BandwidthModel::Iid,
            estimator: EstimatorKind::Oracle,
            warmup_fraction: 0.5,
            session_egress_bins: 24,
            path_faults: None,
            seed: 1,
        }
    }
}

impl SimulationConfig {
    /// The paper's default setting (Table 1 workload, constant bandwidth,
    /// 32 GB cache, PB policy, first half of the trace as warm-up).
    pub fn paper_default() -> Self {
        Self::default()
    }

    /// A reduced-scale configuration suitable for unit tests and examples
    /// (500 objects, 5,000 requests).
    pub fn small() -> Self {
        SimulationConfig {
            workload: WorkloadConfig::small(),
            cache_size_bytes: 2.0 * 1e9,
            ..Self::default()
        }
    }

    /// Sets the cache size as a fraction of the expected total unique bytes
    /// of the workload (the x-axis of most figures in the paper).
    pub fn with_cache_fraction(mut self, fraction: f64) -> Self {
        self.cache_size_bytes = fraction * self.expected_total_bytes();
        self
    }

    /// Expected total unique bytes implied by the workload configuration
    /// (object count × mean duration × bit-rate).
    pub fn expected_total_bytes(&self) -> f64 {
        let mu = self.workload.catalog.duration_mu;
        let sigma = self.workload.catalog.duration_sigma;
        let mean_minutes = (mu + sigma * sigma / 2.0).exp();
        self.workload.catalog.objects as f64
            * mean_minutes
            * 60.0
            * self.workload.catalog.bitrate_bps
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a [`SimError`] describing the first problem found.
    pub fn validate(&self) -> Result<(), SimError> {
        if !self.cache_size_bytes.is_finite() || self.cache_size_bytes < 0.0 {
            return Err(SimError::InvalidCacheSize(self.cache_size_bytes));
        }
        if !self.warmup_fraction.is_finite() || !(0.0..1.0).contains(&self.warmup_fraction) {
            return Err(SimError::InvalidWarmup(self.warmup_fraction));
        }
        if self.session_egress_bins == 0 {
            return Err(SimError::InvalidEgressBins);
        }
        self.bandwidth_model.validate()?;
        self.estimator.validate()?;
        if let Some(faults) = &self.path_faults {
            faults.validate()?;
        }
        self.workload
            .validate()
            .map_err(|e| SimError::Workload(e.to_string()))?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper() {
        let c = SimulationConfig::paper_default();
        assert_eq!(c.workload.catalog.objects, 5_000);
        assert_eq!(c.warmup_fraction, 0.5);
        assert_eq!(c.variability, VariabilityKind::Constant);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn expected_total_bytes_is_near_790_gb_at_paper_scale() {
        let c = SimulationConfig::paper_default();
        let gb = c.expected_total_bytes() / 1e9;
        assert!((750.0..830.0).contains(&gb), "expected total {gb} GB");
    }

    #[test]
    fn cache_fraction_scales_capacity() {
        let c = SimulationConfig::paper_default().with_cache_fraction(0.01);
        assert!((c.cache_size_bytes / c.expected_total_bytes() - 0.01).abs() < 1e-12);
    }

    #[test]
    fn validation_rejects_bad_values() {
        let mut c = SimulationConfig::small();
        c.cache_size_bytes = -1.0;
        assert!(matches!(c.validate(), Err(SimError::InvalidCacheSize(_))));
        let mut c = SimulationConfig::small();
        c.warmup_fraction = 1.0;
        assert!(matches!(c.validate(), Err(SimError::InvalidWarmup(_))));
        let mut c = SimulationConfig::small();
        c.workload.catalog.objects = 0;
        assert!(matches!(c.validate(), Err(SimError::Workload(_))));
        let mut c = SimulationConfig::small();
        c.session_egress_bins = 0;
        assert!(matches!(c.validate(), Err(SimError::InvalidEgressBins)));
        assert!(SimError::InvalidEgressBins.to_string().contains("bin"));
    }

    #[test]
    fn variability_kinds_build_models() {
        for kind in [
            VariabilityKind::Constant,
            VariabilityKind::NlanrLike,
            VariabilityKind::MeasuredLow,
            VariabilityKind::MeasuredModerate,
            VariabilityKind::MeasuredHigh,
        ] {
            let m = kind.model();
            assert!((m.distribution().mean() - 1.0).abs() < 1e-9);
            assert!(!kind.label().is_empty());
        }
        assert_eq!(
            VariabilityKind::Constant.model().coefficient_of_variation(),
            0.0
        );
    }

    #[test]
    fn fault_model_validation() {
        assert!(PathFaultModel::default().validate().is_ok());
        for bad in [
            PathFaultModel {
                mtbf_secs: 0.0,
                ..PathFaultModel::default()
            },
            PathFaultModel {
                mtbf_secs: f64::INFINITY,
                ..PathFaultModel::default()
            },
            PathFaultModel {
                mttr_secs: -1.0,
                ..PathFaultModel::default()
            },
            PathFaultModel {
                residual_capacity_fraction: 0.0,
                ..PathFaultModel::default()
            },
            PathFaultModel {
                residual_capacity_fraction: 1.5,
                ..PathFaultModel::default()
            },
            PathFaultModel {
                residual_capacity_fraction: f64::NAN,
                ..PathFaultModel::default()
            },
        ] {
            assert!(matches!(bad.validate(), Err(SimError::FaultModel(_))));
            let mut c = SimulationConfig::small();
            c.path_faults = Some(bad);
            assert!(c.validate().is_err());
        }
        // The boundary residual 1.0 (an outage with no capacity effect) is
        // legal.
        assert!(PathFaultModel {
            residual_capacity_fraction: 1.0,
            ..PathFaultModel::default()
        }
        .validate()
        .is_ok());
        assert_eq!(SimulationConfig::default().path_faults, None);
    }

    #[test]
    fn sim_error_display() {
        assert!(SimError::NoRuns.to_string().contains("at least one"));
        assert!(SimError::InvalidCacheSize(-2.0).to_string().contains("-2"));
        assert!(SimError::BandwidthModel("x".into())
            .to_string()
            .contains("bandwidth model"));
        assert!(SimError::Estimator("x".into())
            .to_string()
            .contains("estimator"));
    }

    #[test]
    fn default_bandwidth_model_is_iid_with_oracle_estimator() {
        let c = SimulationConfig::paper_default();
        assert_eq!(c.bandwidth_model, BandwidthModel::Iid);
        assert_eq!(c.estimator, EstimatorKind::Oracle);
        assert_eq!(c.bandwidth_model.label(), "iid");
        assert_eq!(c.estimator.label(), "oracle-mean");
    }

    #[test]
    fn bandwidth_model_validation() {
        assert!(BandwidthModel::Iid.validate().is_ok());
        assert!(BandwidthModel::ar1_default().validate().is_ok());
        assert_eq!(BandwidthModel::ar1_default().label(), "ar1");
        for bad in [
            BandwidthModel::Ar1 {
                autocorrelation: 1.0,
                interval_secs: 240.0,
            },
            BandwidthModel::Ar1 {
                autocorrelation: -0.1,
                interval_secs: 240.0,
            },
            BandwidthModel::Ar1 {
                autocorrelation: 0.5,
                interval_secs: 0.0,
            },
        ] {
            assert!(matches!(bad.validate(), Err(SimError::BandwidthModel(_))));
            let mut c = SimulationConfig::small();
            c.bandwidth_model = bad;
            assert!(c.validate().is_err());
        }
    }

    #[test]
    fn estimator_kind_validation() {
        assert!(EstimatorKind::Oracle.validate().is_ok());
        assert!(EstimatorKind::Probe.validate().is_ok());
        assert!(EstimatorKind::Ewma { alpha: 0.3 }.validate().is_ok());
        assert!(EstimatorKind::Windowed { window: 8 }.validate().is_ok());
        for bad in [
            EstimatorKind::Ewma { alpha: -0.1 },
            EstimatorKind::Ewma { alpha: 1.5 },
            EstimatorKind::Windowed { window: 0 },
        ] {
            assert!(matches!(bad.validate(), Err(SimError::Estimator(_))));
            let mut c = SimulationConfig::small();
            c.estimator = bad;
            assert!(c.validate().is_err());
        }
        for kind in [
            EstimatorKind::Ewma { alpha: 0.3 },
            EstimatorKind::Windowed { window: 8 },
            EstimatorKind::Probe,
        ] {
            assert!(!kind.label().is_empty());
        }
    }
}
