//! Per-request bandwidth provisioning for the simulator.

use crate::config::VariabilityKind;
use rand::Rng;
use sc_netmodel::{NlanrBandwidthModel, PathSet, VariabilityModel};

/// Supplies the simulator with per-object average bandwidths and per-request
/// instantaneous bandwidth samples.
///
/// Matches the methodology of Section 4.3 of the paper: every object's
/// origin server is reached over a path whose *average* bandwidth is drawn
/// from the NLANR-like distribution of Figure 2, and each request observes
/// an *instance* obtained by multiplying that average by a ratio drawn from
/// the configured variability model.
#[derive(Debug, Clone)]
pub struct BandwidthProvider {
    paths: PathSet,
    variability: VariabilityModel,
}

impl BandwidthProvider {
    /// Generates bandwidth state for `objects` objects.
    ///
    /// Path averages are drawn from the paper-default NLANR model using
    /// `rng`; per-request variation follows `kind`.
    pub fn generate<R: Rng + ?Sized>(objects: usize, kind: VariabilityKind, rng: &mut R) -> Self {
        let variability = kind.model();
        let paths = PathSet::generate(
            objects,
            &NlanrBandwidthModel::paper_default(),
            variability.clone(),
            rng,
        );
        BandwidthProvider { paths, variability }
    }

    /// Builds a provider from an explicit path set and variability model
    /// (used by tests and ablations).
    pub fn from_parts(paths: PathSet, variability: VariabilityModel) -> Self {
        BandwidthProvider { paths, variability }
    }

    /// Number of paths (== number of objects).
    pub fn len(&self) -> usize {
        self.paths.len()
    }

    /// Returns `true` if the provider holds no paths.
    pub fn is_empty(&self) -> bool {
        self.paths.is_empty()
    }

    /// The average bandwidth of the path to object `index`, i.e. what a
    /// measurement-based estimator would report to the caching algorithm.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn estimated_bps(&self, index: usize) -> f64 {
        self.paths.mean_bps(index)
    }

    /// The instantaneous bandwidth observed by one request for object
    /// `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn instantaneous_bps<R: Rng + ?Sized>(&self, index: usize, rng: &mut R) -> f64 {
        self.paths.bandwidth_sample(index, rng)
    }

    /// The variability model in use.
    pub fn variability(&self) -> &VariabilityModel {
        &self.variability
    }

    /// The underlying path set.
    pub fn paths(&self) -> &PathSet {
        &self.paths
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn constant_variability_matches_estimate() {
        let mut rng = StdRng::seed_from_u64(1);
        let p = BandwidthProvider::generate(50, VariabilityKind::Constant, &mut rng);
        assert_eq!(p.len(), 50);
        assert!(!p.is_empty());
        for i in 0..50 {
            let est = p.estimated_bps(i);
            let inst = p.instantaneous_bps(i, &mut rng);
            assert!((est - inst).abs() < 1e-9);
        }
    }

    #[test]
    fn variable_bandwidth_deviates_from_estimate() {
        let mut rng = StdRng::seed_from_u64(2);
        let p = BandwidthProvider::generate(20, VariabilityKind::NlanrLike, &mut rng);
        let mut any_deviation = false;
        for i in 0..20 {
            let est = p.estimated_bps(i);
            let inst = p.instantaneous_bps(i, &mut rng);
            assert!(inst >= 0.0);
            if (est - inst).abs() > 1.0 {
                any_deviation = true;
            }
        }
        assert!(any_deviation);
        assert!(p.variability().coefficient_of_variation() > 0.3);
    }

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let pa = BandwidthProvider::generate(30, VariabilityKind::MeasuredLow, &mut a);
        let pb = BandwidthProvider::generate(30, VariabilityKind::MeasuredLow, &mut b);
        for i in 0..30 {
            assert_eq!(pa.estimated_bps(i), pb.estimated_bps(i));
        }
        assert_eq!(pa.paths().len(), 30);
    }
}
